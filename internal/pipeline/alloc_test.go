package pipeline

import (
	"testing"

	"waycache/internal/access"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

// mixedBlock builds one i-cache block's worth of instructions mixing ALU
// ops, dependent loads, stores and a backward branch, so a warm pipeline
// cycle exercises fetch, dispatch, issue (with d-cache loads), store
// commit and branch prediction.
func mixedBlock() []trace.Inst {
	base := uint64(0x400000)
	mk := func(i int, kind isa.Kind) trace.Inst {
		in := trace.Inst{PC: base + uint64(i)*4, Kind: kind}
		switch {
		case kind.IsMem():
			addr := uint64(0x10000 + i*64)
			in.Addr, in.BaseValue, in.Offset = addr, addr-8, 8
			in.Dst, in.Src1 = isa.Int(i%8), isa.Int((i+1)%8)
		case kind.IsControl():
			in.Taken, in.Target = true, base
		default:
			in.Dst, in.Src1, in.Src2 = isa.Int(i%8), isa.Int((i+2)%8), isa.Int((i+4)%8)
		}
		return in
	}
	return []trace.Inst{
		mk(0, isa.KindIntALU),
		mk(1, isa.KindLoad),
		mk(2, isa.KindIntALU),
		mk(3, isa.KindStore),
		mk(4, isa.KindFPALU),
		mk(5, isa.KindLoad),
		mk(6, isa.KindIntMul),
		mk(7, isa.KindBranch),
	}
}

// TestWarmCycleZeroAllocs pins the steady-state guarantee for the whole
// timing model: once the pipeline is warm, a full commit/issue/fetch cycle
// allocates nothing, for the plain baseline and for the heaviest
// prediction-carrying configuration.
func TestWarmCycleZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		dpol access.DPolicy
		ipol access.IPolicy
	}{
		{"parallel", access.DParallel, access.IParallel},
		{"seldm+waypred", access.DSelDMWayPred, access.IWayPred},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := &trace.Repeat{Insts: mixedBlock()}
			p := testRig(tc.dpol, tc.ipol, src, 1<<40)
			// Warm caches, predictors and the ROB ring.
			for i := 0; i < 20_000; i++ {
				p.commit()
				p.issue()
				p.fetch()
				p.cycle++
			}
			if avg := testing.AllocsPerRun(5000, func() {
				p.commit()
				p.issue()
				p.fetch()
				p.cycle++
			}); avg != 0 {
				t.Errorf("%s: warm pipeline cycle allocates %.2f/op, want 0", tc.name, avg)
			}
		})
	}
}
