// Package pipeline is the cycle-level out-of-order processor timing model:
// the stand-in for SimpleScalar's sim-outorder configured as in the paper's
// Table 1 (8-wide issue, 64-entry reorder buffer, 32-entry load/store
// queue, 2 d-cache ports, 2-level hybrid branch prediction).
//
// The model is trace-driven: it consumes the architecturally correct
// dynamic instruction stream and imposes timing. Branch mispredictions
// stall fetch until the branch resolves (wrong-path instructions are not
// simulated — their timing effect, the fetch bubble, is). Loads access the
// d-cache when they issue; stores access it at commit through a write
// buffer. The i-cache is accessed once per fetch group with the way
// prediction assembled from the BTB, RAS and SAWP per Section 2.3 of the
// paper.
//
// The core is event-driven: Run steps commit/issue/fetch cycle by cycle
// while work exists, but a dead cycle — commit blocked on an in-flight
// completion, no instruction ready to issue, fetch gated by the i-cache
// port timer or a full ROB — fast-forwards the clock straight to the next
// cycle anything can happen (the earliest pending completion, or the fetch
// timer), instead of iterating through the stall. Fast-forward is
// observationally equivalent to cycle stepping: every Stats counter,
// including Cycles, is exactly what the cycle-by-cycle loop produces (the
// differential oracle in oracle_test.go and the byte-identical golden
// fixtures in CI enforce this). The ROB is laid out structure-of-arrays so
// the commit/issue scans and the next-event search walk dense typed
// slices, and sources that expose in-memory windows (trace.WindowSource)
// feed fetch whole block strides without a per-instruction copy.
//
// Simplifications, all orthogonal to the energy techniques under study and
// applied identically to baselines and techniques: perfect memory
// disambiguation with no store-to-load forwarding stalls, unlimited
// outstanding misses, universal function units.
package pipeline

import (
	"fmt"
	"math"
	"math/bits"

	"waycache/internal/access"
	"waycache/internal/branch"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

// Config sets the machine's structural parameters (paper Table 1 defaults
// via DefaultConfig).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	LSQSize     int
	DCachePorts int

	// MaxInsts stops the run after this many committed instructions.
	MaxInsts int64
}

// DefaultConfig returns the paper's Table 1 core.
func DefaultConfig(maxInsts int64) Config {
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     64,
		LSQSize:     32,
		DCachePorts: 2,
		MaxInsts:    maxInsts,
	}
}

// Stats aggregates the run's timing and activity counters; the wattch
// package prices the activity into processor energy.
type Stats struct {
	Cycles    int64
	Committed int64

	FetchGroups   int64
	Dispatched    int64
	Issued        int64
	Loads         int64
	Stores        int64
	Branches      int64
	BranchMispred int64
	RASMispred    int64
	RegReads      int64
	RegWrites     int64
	IntOps        int64
	FPOps         int64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// notDone is the doneAt sentinel for a dispatched-but-not-issued entry. It
// keeps the per-entry state to one comparison: doneAt[i] <= cycle means
// completed, == notDone means not yet issued, anything else is a scheduled
// completion — and the next-event search needs no flag checks at all.
const notDone = int64(math.MaxInt64)

// ROB entry flag bits.
const (
	// flagMispred marks a control instruction that redirects fetch at
	// resolution.
	flagMispred uint8 = 1 << iota
	// flagSrc1, flagSrc2, flagDst record which register operands exist,
	// so the issue-time stat counts read one byte instead of the payload.
	flagSrc1
	flagSrc2
	flagDst
)

// Pipeline wires a trace source to the cache controllers and front end.
type Pipeline struct {
	cfg Config
	src trace.Source
	dc  access.DController
	ic  *access.ICache
	fe  *branch.FrontEnd

	stats Stats
	cycle int64

	// ROB as a structure-of-arrays ring of power-of-two length
	// (>= ROBSize, so seq & robMask is injective over any window of
	// ROBSize in-flight entries): index [seq & robMask] valid for
	// head <= seq < tail. Capacity checks still use the configured
	// ROBSize. The per-seq timing state lives in dense parallel slices —
	// doneAt (with the notDone sentinel), flags, producer seqs — so the
	// commit/issue scans and the next-event min search walk contiguous
	// typed memory; the 72-byte instruction payloads sit apart in insts
	// and are touched only when an entry actually issues or commits.
	doneAt []int64    // completion cycle; notDone until issued
	flags  []uint8    // flagMispred | flagSrc1 | flagSrc2 | flagDst
	kinds  []isa.Kind // instruction kind, mirrored out of the payload
	dsts   []isa.Reg  // destination register, mirrored out of the payload
	prod1  []int64    // producer sequence numbers, -1 when none
	prod2  []int64
	insts  []trace.Inst // dispatched instruction payloads; the commit and
	// issue scans touch it only for memory ops (the d-cache needs the
	// address fields) — everything they need per ALU op lives in the
	// single-byte arrays above, one cache line per 64 entries
	// unissued is a bitmap over ring slots (bit idx set = dispatched, not
	// yet issued); the issue cursor advances over its clear prefix a word
	// at a time. scannable is the subset the issue scan actually visits:
	// entries whose producers have all been scheduled (or retired). An
	// entry with an unissued producer is in neither scan — it hangs off
	// that producer's waiter list (waiters/nextWaiter, an intrusive
	// per-slot chain) and is woken when the producer issues, either onto
	// its other pending producer's list or into the scannable set with
	// wakeAt = the latest producer completion time. The scan's whole
	// ready check is then wakeAt[i] <= cycle: exactly the old per-producer
	// probe, precomputed once per wake instead of re-derived every cycle.
	unissued   []uint64
	scannable  []uint64
	wakeAt     []int64
	waiters    []int64
	nextWaiter []int64
	// inflight over-approximates the slots holding a scheduled future
	// completion: set at issue, cleared lazily by the next-event rescan
	// once the completion is in the past. The rescan pops its set bits
	// instead of probing every doneAt slot in the window.
	inflight []uint64
	robMask  int64
	head     int64
	tail     int64
	// issueCursor trails the first non-issued entry: every entry below it
	// has issued, so the per-cycle issue scan never revisits the completed
	// prefix of a long-stalled ROB. It only ever advances (entries never
	// un-issue; head only grows).
	issueCursor int64
	lsq         int // mem ops currently in the ROB

	// nextDoneAt is the stall fast-forward's next-event tracker: a value t
	// such that no in-flight completion lies in (cycle, t), maintained at
	// issue time by folding in every scheduled doneAt. Once the clock
	// reaches it the tracker is stale, and the next stall recomputes it
	// exactly with one min-scan of the doneAt window.
	nextDoneAt int64

	regProducer [isa.NumRegs]int64 // seq of last in-flight writer, -1 if none

	// Fetch state.
	pending     trace.Inst // lookahead instruction (non-window sources)
	pendingOK   bool
	batch       trace.WindowSource // non-nil when src exposes windows
	win         []trace.Inst       // unconsumed prefix of the current window
	winUsed     int                // consumed insts not yet reported to Advance
	exhausted   bool
	fetchableAt int64  // next cycle fetch may run
	waitBranch  int64  // seq of unresolved mispredicted control, -1 if none
	icBlockMask uint64 // ^(i-cache block bytes - 1), hoisted off the fetch path

	// Way prediction handed to the next i-cache access.
	nextWay access.WayPred
}

// New builds a pipeline. dc and ic must be freshly constructed controllers;
// fe the front end whose BTB/RAS/SAWP carry way predictions.
func New(cfg Config, src trace.Source, dc access.DController, ic *access.ICache, fe *branch.FrontEnd) *Pipeline {
	if cfg.ROBSize <= 0 || cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 ||
		cfg.CommitWidth <= 0 || cfg.LSQSize <= 0 || cfg.DCachePorts <= 0 {
		panic(fmt.Sprintf("pipeline: non-positive config %+v", cfg))
	}
	ringSize := 1 << bits.Len(uint(cfg.ROBSize-1)) // next power of two >= ROBSize
	p := &Pipeline{
		cfg: cfg, src: src, dc: dc, ic: ic, fe: fe,
		doneAt:      make([]int64, ringSize),
		unissued:    make([]uint64, (ringSize+63)/64),
		scannable:   make([]uint64, (ringSize+63)/64),
		inflight:    make([]uint64, (ringSize+63)/64),
		wakeAt:      make([]int64, ringSize),
		waiters:     make([]int64, ringSize),
		nextWaiter:  make([]int64, ringSize),
		flags:       make([]uint8, ringSize),
		kinds:       make([]isa.Kind, ringSize),
		dsts:        make([]isa.Reg, ringSize),
		prod1:       make([]int64, ringSize),
		prod2:       make([]int64, ringSize),
		insts:       make([]trace.Inst, ringSize),
		robMask:     int64(ringSize - 1),
		waitBranch:  -1,
		icBlockMask: ^uint64(ic.L1.BlockBytes() - 1),
	}
	for i := range p.regProducer {
		p.regProducer[i] = -1
	}
	if ws, ok := src.(trace.WindowSource); ok {
		p.batch = ws
	}
	return p
}

// Stats returns a copy of the counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Run simulates until MaxInsts instructions commit or the source drains,
// and returns the final statistics.
//
// The loop body is the classic commit/issue/fetch cycle step, but a dead
// cycle — one in which nothing committed, issued or fetched — jumps the
// clock to stallTarget() instead of incrementing it, skipping the stall's
// remaining dead cycles in O(1). The livelock safety net therefore bounds
// loop iterations, not cycles: every iteration either performs work
// (bounded by the instruction budget) or advances the clock past a stall,
// so a legitimate multi-million-cycle memory stall cannot trip it the way
// a cycle cap would.
func (p *Pipeline) Run() Stats {
	limit := p.cfg.MaxInsts*200 + 1_000_000
	for iters := int64(0); p.stats.Committed < p.cfg.MaxInsts; {
		if iters++; iters > limit {
			panic("pipeline: iteration limit exceeded — livelock")
		}
		c0, i0, f0 := p.stats.Committed, p.stats.Issued, p.stats.FetchGroups
		p.commit()
		p.issue()
		p.fetch()
		if p.stats.Committed != c0 || p.stats.Issued != i0 || p.stats.FetchGroups != f0 {
			p.cycle++
		} else {
			// Dead cycle: fast-forward. The target is exactly the first
			// cycle the stepping loop could have done anything, so the
			// clock (and every derived counter) stays bit-identical.
			p.cycle = p.stallTarget()
			p.stats.Cycles = p.cycle
		}
		if p.exhausted && p.head == p.tail {
			break
		}
	}
	p.stats.Cycles = p.cycle
	return p.stats
}

// stallTarget returns the next cycle at which any stage can make progress,
// given that the current cycle did none. Commit is blocked until the head's
// completion and issue until some producer's completion — both bounded
// below by the next pending completion. Fetch can additionally wake on its
// port timer, but only when the timer is its sole gate: a branch stall
// clears at issue time and a full ROB/LSQ at commit time, which the
// completion bound already covers.
//
//wclint:hotpath
func (p *Pipeline) stallTarget() int64 {
	next := p.nextEvent()
	if !p.exhausted && p.waitBranch < 0 && p.fetchableAt > p.cycle &&
		p.fetchableAt < next && !p.robFull() && p.lsq < p.cfg.LSQSize {
		next = p.fetchableAt
	}
	if next == notDone {
		// No known event: the source just drained or is about to. Step a
		// single cycle, exactly as the stepping loop would.
		return p.cycle + 1
	}
	return next
}

// nextEvent returns the earliest in-flight completion strictly after the
// current cycle, or notDone when there is none. It serves the tracker's
// value when still ahead of the clock and otherwise recomputes it by
// popping the inflight bitmap — only slots that ever had a scheduled
// completion are probed, and slots whose completion has passed drop out of
// the bitmap here, so repeated stalls don't re-probe them. (A popped slot
// recycled by a not-yet-issued entry reads notDone: harmless to the min,
// and re-marked at issue anyway.)
//
//wclint:hotpath
func (p *Pipeline) nextEvent() int64 {
	if p.nextDoneAt > p.cycle {
		return p.nextDoneAt
	}
	min := notDone
	for wi, w := range p.inflight {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			if d := p.doneAt[wi<<6+j]; d > p.cycle {
				if d < min {
					min = d
				}
			} else {
				p.inflight[wi] &^= 1 << uint(j)
			}
		}
	}
	p.nextDoneAt = min
	return min
}

//wclint:hotpath
func (p *Pipeline) commit() {
	// Locals keep the ring state in registers across the store interface
	// call (see issue for the same pattern). Only stores touch the payload;
	// kind and destination come from the byte arrays.
	doneAt, kinds, dsts, mask := p.doneAt, p.kinds, p.dsts, p.robMask
	cycle, tail := p.cycle, p.tail
	for n := 0; n < p.cfg.CommitWidth && p.head < tail &&
		p.stats.Committed < p.cfg.MaxInsts; n++ {
		idx := p.head & mask
		if doneAt[idx] > cycle { // covers not-issued: notDone
			return
		}
		kind := kinds[idx]
		if kind == isa.KindStore {
			// Stores probe the tag array and write the matching way at
			// commit; the write buffer hides the latency.
			p.dc.Store(&p.insts[idx])
			p.lsq--
		}
		if kind == isa.KindLoad {
			p.lsq--
		}
		// Free the architectural register mapping if this is still the
		// newest producer.
		if d := dsts[idx]; !d.IsZero() && p.regProducer[d] == p.head {
			p.regProducer[d] = -1
		}
		p.head++
		p.stats.Committed++
	}
}

// wake reprocesses the waiter chain of a producer that just issued. Each
// waiter either re-chains onto its other still-unissued producer or enters
// the scannable set with wakeAt set to its latest producer completion — a
// time now fully known, since every remaining producer is scheduled. A
// producer below head has retired (its value committed in the past) and
// contributes nothing.
//
//wclint:hotpath
func (p *Pipeline) wake(wseq int64) {
	doneAt, mask, head := p.doneAt, p.robMask, p.head
	for wseq >= 0 {
		wi := wseq & mask
		next := p.nextWaiter[wi]
		if pr := p.prod1[wi]; pr >= head && doneAt[pr&mask] == notDone {
			p.nextWaiter[wi] = p.waiters[pr&mask]
			p.waiters[pr&mask] = wseq
		} else if pr := p.prod2[wi]; pr >= head && doneAt[pr&mask] == notDone {
			p.nextWaiter[wi] = p.waiters[pr&mask]
			p.waiters[pr&mask] = wseq
		} else {
			wa := int64(0)
			if pr := p.prod1[wi]; pr >= head {
				wa = doneAt[pr&mask]
			}
			if pr := p.prod2[wi]; pr >= head {
				if d := doneAt[pr&mask]; d > wa {
					wa = d
				}
			}
			p.wakeAt[wi] = wa
			p.scannable[wi>>6] |= 1 << uint(wi&63)
		}
		wseq = next
	}
}

//wclint:hotpath
func (p *Pipeline) issue() {
	issued := 0
	ports := p.cfg.DCachePorts
	width := p.cfg.IssueWidth
	// Hoist the hot ring state into locals: slice headers and loop bounds
	// stay in registers across the d-cache interface calls below, which
	// would otherwise force a reload of every field on each iteration.
	doneAt, unissued, scannable, mask := p.doneAt, p.unissued, p.scannable, p.robMask
	head, tail, cycle := p.head, p.tail, p.cycle
	ringSize := mask + 1

	// Advance the cursor to the first unissued seq, word-wise over the
	// unissued bitmap. The cursor only moves forward, so the whole-run cost
	// is one pass over the issued prefix — amortized O(1) per instruction —
	// and the scan below never revisits the completed prefix of a
	// long-stalled ROB. (The cursor tracks unissued, not scannable: a
	// chain-stalled entry below the first scannable bit must stay inside
	// the scanned range for the cycle its producer wakes it.)
	cursor := p.issueCursor
	if cursor < head {
		cursor = head
	}
	for cursor < tail {
		idx := cursor & mask
		w := unissued[idx>>6] >> uint(idx&63)
		span := 64 - idx&63
		if r := ringSize - idx; r < span {
			span = r // ring wraps mid-word (ring smaller than one word)
		}
		if r := tail - cursor; r < span {
			span = r
		}
		if span < 64 {
			w &= 1<<uint(span) - 1
		}
		if w != 0 {
			cursor += int64(bits.TrailingZeros64(w))
			break
		}
		cursor += span
	}
	p.issueCursor = cursor

	// The in-order window scan, over set bits of the scannable bitmap only:
	// issued-but-uncommitted holes and chain-stalled entries — the bulk of
	// a wide window — cost nothing at all. The outer loop takes the window
	// a word-chunk at a time (clipped to the word, the ring edge, and
	// tail); the inner loop pops candidate entries in seq order. A bit set
	// by a mid-scan wake lands in a later chunk or next call; either way
	// its wakeAt is past the current cycle, so nothing issuable is missed.
	for seq := cursor; seq < tail && issued < width; {
		idx := seq & mask
		w := scannable[idx>>6] >> uint(idx&63)
		span := 64 - idx&63
		if r := ringSize - idx; r < span {
			span = r
		}
		if r := tail - seq; r < span {
			span = r
		}
		if span < 64 {
			w &= 1<<uint(span) - 1
		}
		for w != 0 && issued < width {
			j := int64(bits.TrailingZeros64(w))
			w &= w - 1
			s := seq + j
			i2 := idx + j
			// One precomputed comparison stands in for the old per-producer
			// probes: wakeAt is the latest producer completion, fixed when
			// the last producer was scheduled.
			if p.wakeAt[i2] > cycle {
				continue
			}
			kind := p.kinds[i2]
			if kind == isa.KindLoad && ports == 0 {
				continue
			}

			lat := kind.Latency()
			switch kind {
			case isa.KindLoad:
				ports--
				p.stats.Loads++
				cacheLat, _ := p.dc.Load(&p.insts[i2])
				lat += cacheLat - 1 // the cache latency includes the access cycle
			case isa.KindStore:
				p.stats.Stores++
				// Address generation only; the write happens at commit.
			case isa.KindIntALU, isa.KindIntMul:
				p.stats.IntOps++
			case isa.KindFPALU, isa.KindFPMul, isa.KindFPDiv:
				p.stats.FPOps++
			}
			done := cycle + int64(lat)
			doneAt[i2] = done
			unissued[i2>>6] &^= 1 << uint(i2&63)
			scannable[i2>>6] &^= 1 << uint(i2&63)
			p.inflight[i2>>6] |= 1 << uint(i2&63)
			if done < p.nextDoneAt {
				p.nextDoneAt = done
			}
			// This entry's completion is now scheduled: release anything
			// chained on it.
			if wseq := p.waiters[i2]; wseq >= 0 {
				p.waiters[i2] = -1
				p.wake(wseq)
			}
			issued++
			p.stats.Issued++
			f := p.flags[i2]
			if f&flagSrc1 != 0 {
				p.stats.RegReads++
			}
			if f&flagSrc2 != 0 {
				p.stats.RegReads++
			}
			if f&flagDst != 0 {
				p.stats.RegWrites++
			}

			// A mispredicted control instruction restarts fetch one cycle
			// after it resolves.
			if f&flagMispred != 0 && p.waitBranch == s {
				p.fetchableAt = done + 1
				p.waitBranch = -1
			}
		}
		seq += span
	}
}

// peekInst returns the lookahead instruction without consuming it, pulling
// from the source's window when it has one (no copy) and through the
// single-instruction pending buffer otherwise.
//
//wclint:hotpath
func (p *Pipeline) peekInst() (*trace.Inst, bool) {
	if p.batch != nil {
		if len(p.win) == 0 && !p.refillWindow() {
			return nil, false
		}
		return &p.win[0], true
	}
	if p.pendingOK {
		return &p.pending, true
	}
	if p.exhausted {
		return nil, false
	}
	if !p.src.Next(&p.pending) {
		p.exhausted = true
		return nil, false
	}
	p.pendingOK = true
	return &p.pending, true
}

// refillWindow reports the consumed prefix to the source in one Advance
// call and pulls the next window — the whole remaining trace for an
// arena-backed replay — so steady-state fetch makes no per-instruction
// source calls at all.
//
//wclint:hotpath
func (p *Pipeline) refillWindow() bool {
	if p.exhausted {
		return false
	}
	if p.winUsed > 0 {
		p.batch.Advance(p.winUsed)
		p.winUsed = 0
	}
	p.win = p.batch.Window()
	if len(p.win) == 0 {
		p.exhausted = true
		return false
	}
	return true
}

// consumeInst consumes the instruction peekInst returned. The returned
// pointer stays valid until the next peekInst call.
//
//wclint:hotpath
func (p *Pipeline) consumeInst() {
	if p.batch != nil {
		p.win = p.win[1:]
		p.winUsed++
		return
	}
	p.pendingOK = false
}

//wclint:hotpath
func (p *Pipeline) robFull() bool {
	return p.tail-p.head >= int64(p.cfg.ROBSize)
}

//wclint:hotpath
func (p *Pipeline) dispatch(in *trace.Inst, mispred bool) {
	idx := p.tail & p.robMask
	p.insts[idx] = *in
	p.doneAt[idx] = notDone
	p.unissued[idx>>6] |= 1 << uint(idx&63)
	p.kinds[idx] = in.Kind
	p.dsts[idx] = in.Dst
	var f uint8
	if mispred {
		f = flagMispred
	}
	// Record only producers that are still incomplete: completion is
	// monotone (doneAt never un-passes the clock), so a producer that has
	// already finished is dropped here once instead of being re-checked by
	// every issue scan until this entry issues.
	pr1, pr2 := int64(-1), int64(-1)
	if !in.Src1.IsZero() {
		f |= flagSrc1
		if pr := p.regProducer[in.Src1]; pr >= 0 && p.doneAt[pr&p.robMask] > p.cycle {
			pr1 = pr
		}
	}
	if !in.Src2.IsZero() {
		f |= flagSrc2
		if pr := p.regProducer[in.Src2]; pr >= 0 && p.doneAt[pr&p.robMask] > p.cycle {
			pr2 = pr
		}
	}
	if !in.Dst.IsZero() {
		f |= flagDst
	}
	p.flags[idx] = f
	p.prod1[idx], p.prod2[idx] = pr1, pr2
	p.waiters[idx] = -1
	// Classify the entry for the issue scan. An unissued producer means the
	// entry's ready time is unknowable: chain it on that producer's waiter
	// list (wake re-examines it when the producer issues). Otherwise every
	// remaining producer has a scheduled completion, so the ready time is
	// simply their max — precompute it and make the entry scannable.
	if pr1 >= 0 && p.doneAt[pr1&p.robMask] == notDone {
		p.nextWaiter[idx] = p.waiters[pr1&p.robMask]
		p.waiters[pr1&p.robMask] = p.tail
	} else if pr2 >= 0 && p.doneAt[pr2&p.robMask] == notDone {
		p.nextWaiter[idx] = p.waiters[pr2&p.robMask]
		p.waiters[pr2&p.robMask] = p.tail
	} else {
		wa := int64(0)
		if pr1 >= 0 {
			wa = p.doneAt[pr1&p.robMask]
		}
		if pr2 >= 0 {
			if d := p.doneAt[pr2&p.robMask]; d > wa {
				wa = d
			}
		}
		p.wakeAt[idx] = wa
		p.scannable[idx>>6] |= 1 << uint(idx&63)
	}
	if !in.Dst.IsZero() {
		p.regProducer[in.Dst] = p.tail
	}
	if in.Kind.IsMem() {
		p.lsq++
	}
	if mispred {
		p.waitBranch = p.tail
	}
	p.tail++
	p.stats.Dispatched++
}

// fetch runs one fetch group: a single i-cache access plus up to FetchWidth
// instructions from the same cache block, ending early at a taken (or
// mispredicted) control instruction. With a window source the whole
// block stride is read in place from the source's memory.
//
//wclint:hotpath
func (p *Pipeline) fetch() {
	if p.cycle < p.fetchableAt || p.waitBranch >= 0 {
		return
	}
	var in *trace.Inst
	if len(p.win) != 0 {
		in = &p.win[0]
	} else if pk, ok := p.peekInst(); ok {
		in = pk
	} else {
		return
	}
	if p.robFull() || p.lsq >= p.cfg.LSQSize {
		return
	}

	block := in.PC & p.icBlockMask

	lat, _, trueWay := p.ic.Fetch(in.PC, p.nextWay)
	p.stats.FetchGroups++

	// Train the structures that predicted (or should predict) this block's
	// way, now that the true way is known.
	p.fe.TrainWays(trueWay)

	// Defaults for the next access: sequential transition predicted by the
	// SAWP, trained on this block.
	endedByControl := false
	for n := 0; n < p.cfg.FetchWidth; n++ {
		if p.robFull() || p.lsq >= p.cfg.LSQSize {
			break
		}
		// Window fast path, inline: most iterations take an instruction
		// straight out of the current window; peekInst (not inlinable) is
		// only reached at window boundaries and on non-window sources.
		var in *trace.Inst
		if len(p.win) != 0 {
			in = &p.win[0]
		} else if pk, ok := p.peekInst(); ok {
			in = pk
		} else {
			break
		}
		if in.PC&p.icBlockMask != block {
			break
		}
		// Consume the lookahead in place: in stays valid until the next
		// peek, so dispatch/fetchControl can read it without a copy.
		p.consumeInst()

		if !in.Kind.IsControl() {
			p.dispatch(in, false)
			continue
		}
		endedByControl = true
		stop := p.fetchControl(in, block, trueWay)
		if stop {
			break
		}
		endedByControl = false
	}

	if !endedByControl {
		// Sequential (or not-taken-branch) transition into the next block:
		// the SAWP predicts and is trained on it.
		way, ok := p.fe.SAWP.Lookup(block)
		p.nextWay = access.WayPred{Way: way, OK: ok, Source: access.SrcSAWP}
		p.fe.NoteSAWP(block)
	}

	// The i-cache occupies the port for lat cycles on misses and way
	// mispredictions; the next group cannot start before that.
	if lat < 1 {
		lat = 1
	}
	p.fetchableAt = p.cycle + int64(lat)
}

// fetchControl dispatches a control instruction, performs all front-end
// prediction and training, and reports whether the fetch group must stop.
//
//wclint:hotpath
func (p *Pipeline) fetchControl(in *trace.Inst, block uint64, blockWay int) bool {
	fe := p.fe
	switch in.Kind {
	case isa.KindBranch:
		p.stats.Branches++
		predTaken := fe.Dir.Predict(in.PC)
		fe.Dir.Update(in.PC, in.Taken)
		mispred := predTaken != in.Taken
		if mispred {
			p.stats.BranchMispred++
		}
		if in.Taken {
			// Train the BTB with the target's way at the next access.
			fe.NoteBTB(in.PC, in.Target)
		}
		p.dispatch(in, mispred)
		if mispred {
			// Fetch stalls until resolution; the restart fetch has no way
			// prediction (parallel access), per the paper.
			p.nextWay = access.WayPred{}
			return true
		}
		if in.Taken {
			_, way, wayOK, hit := fe.BTB.Lookup(in.PC)
			if hit && wayOK {
				p.nextWay = access.WayPred{Way: way, OK: true, Source: access.SrcBTB}
			} else {
				p.nextWay = access.WayPred{}
			}
			return true
		}
		// Correctly predicted not-taken: fetch continues within the block.
		return false

	case isa.KindJump, isa.KindCall:
		p.stats.Branches++
		_, way, wayOK, hit := fe.BTB.Lookup(in.PC)
		if hit && wayOK {
			p.nextWay = access.WayPred{Way: way, OK: true, Source: access.SrcBTB}
		} else {
			p.nextWay = access.WayPred{}
		}
		fe.NoteBTB(in.PC, in.Target)
		if in.Kind == isa.KindCall {
			// Push the return address; its block is usually the current
			// one, whose way we know right now.
			ret := in.FallThrough()
			sameBlock := ret&p.icBlockMask == block
			fe.RAS.Push(ret, blockWay, sameBlock)
		}
		p.dispatch(in, false)
		return true

	case isa.KindReturn:
		p.stats.Branches++
		addr, way, wayOK, ok := fe.RAS.Pop()
		mispred := !ok || addr != in.Target
		if mispred {
			p.stats.RASMispred++
			p.stats.BranchMispred++
		}
		p.dispatch(in, mispred)
		if mispred {
			p.nextWay = access.WayPred{}
			return true
		}
		if wayOK {
			p.nextWay = access.WayPred{Way: way, OK: true, Source: access.SrcRAS}
		} else {
			p.nextWay = access.WayPred{}
		}
		return true
	}
	panic("pipeline: non-control kind in fetchControl")
}
