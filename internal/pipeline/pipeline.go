// Package pipeline is the cycle-level out-of-order processor timing model:
// the stand-in for SimpleScalar's sim-outorder configured as in the paper's
// Table 1 (8-wide issue, 64-entry reorder buffer, 32-entry load/store
// queue, 2 d-cache ports, 2-level hybrid branch prediction).
//
// The model is trace-driven: it consumes the architecturally correct
// dynamic instruction stream and imposes timing. Branch mispredictions
// stall fetch until the branch resolves (wrong-path instructions are not
// simulated — their timing effect, the fetch bubble, is). Loads access the
// d-cache when they issue; stores access it at commit through a write
// buffer. The i-cache is accessed once per fetch group with the way
// prediction assembled from the BTB, RAS, and SAWP per Section 2.3 of the
// paper.
//
// Simplifications, all orthogonal to the energy techniques under study and
// applied identically to baselines and techniques: perfect memory
// disambiguation with no store-to-load forwarding stalls, unlimited
// outstanding misses, universal function units.
package pipeline

import (
	"fmt"
	"math/bits"

	"waycache/internal/access"
	"waycache/internal/branch"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

// Config sets the machine's structural parameters (paper Table 1 defaults
// via DefaultConfig).
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	LSQSize     int
	DCachePorts int

	// MaxInsts stops the run after this many committed instructions.
	MaxInsts int64
}

// DefaultConfig returns the paper's Table 1 core.
func DefaultConfig(maxInsts int64) Config {
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		ROBSize:     64,
		LSQSize:     32,
		DCachePorts: 2,
		MaxInsts:    maxInsts,
	}
}

// Stats aggregates the run's timing and activity counters; the wattch
// package prices the activity into processor energy.
type Stats struct {
	Cycles    int64
	Committed int64

	FetchGroups   int64
	Dispatched    int64
	Issued        int64
	Loads         int64
	Stores        int64
	Branches      int64
	BranchMispred int64
	RASMispred    int64
	RegReads      int64
	RegWrites     int64
	IntOps        int64
	FPOps         int64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// robEntry keeps the fields the per-cycle issue scan reads (issued, done,
// doneAt, producers) at the front of the struct, so scanning a stalled ROB
// touches the leading cache line of each entry and not the instruction
// payload behind it.
type robEntry struct {
	issued  bool
	done    bool
	mispred bool // control instruction that redirects fetch at resolution
	doneAt  int64
	prod1   int64 // producer sequence numbers, -1 when none
	prod2   int64
	seq     int64
	inst    trace.Inst
}

// Pipeline wires a trace source to the cache controllers and front end.
type Pipeline struct {
	cfg Config
	src trace.Source
	dc  access.DController
	ic  *access.ICache
	fe  *branch.FrontEnd

	stats Stats
	cycle int64

	// ROB as a ring of power-of-two length (>= ROBSize, so seq & robMask
	// is injective over any window of ROBSize in-flight entries): entries
	// [seq & robMask] valid for head <= seq < tail. Capacity checks still
	// use the configured ROBSize.
	rob     []robEntry
	robMask int64
	head    int64
	tail    int64
	// issueCursor trails the first non-issued entry: every entry below it
	// has issued, so the per-cycle issue scan never revisits the completed
	// prefix of a long-stalled ROB. It only ever advances (entries never
	// un-issue; head only grows).
	issueCursor int64
	lsq         int // mem ops currently in the ROB

	regProducer [isa.NumRegs]int64 // seq of last in-flight writer, -1 if none

	// Fetch state.
	pending     trace.Inst // lookahead instruction
	pendingOK   bool
	exhausted   bool
	fetchableAt int64  // next cycle fetch may run
	waitBranch  int64  // seq of unresolved mispredicted control, -1 if none
	icBlockMask uint64 // ^(i-cache block bytes - 1), hoisted off the fetch path

	// Way-prediction plumbing between consecutive fetch groups.
	nextWay    int
	nextWayOK  bool
	nextWaySrc access.WaySource
	trainBTB   struct {
		valid  bool
		pc     uint64
		target uint64
	}
	trainSAWP struct {
		valid bool
		block uint64
	}
}

// New builds a pipeline. dc and ic must be freshly constructed controllers;
// fe the front end whose BTB/RAS/SAWP carry way predictions.
func New(cfg Config, src trace.Source, dc access.DController, ic *access.ICache, fe *branch.FrontEnd) *Pipeline {
	if cfg.ROBSize <= 0 || cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 ||
		cfg.CommitWidth <= 0 || cfg.LSQSize <= 0 || cfg.DCachePorts <= 0 {
		panic(fmt.Sprintf("pipeline: non-positive config %+v", cfg))
	}
	ringSize := 1 << bits.Len(uint(cfg.ROBSize-1)) // next power of two >= ROBSize
	p := &Pipeline{
		cfg: cfg, src: src, dc: dc, ic: ic, fe: fe,
		rob:         make([]robEntry, ringSize),
		robMask:     int64(ringSize - 1),
		waitBranch:  -1,
		icBlockMask: ^uint64(ic.L1.BlockBytes() - 1),
	}
	for i := range p.regProducer {
		p.regProducer[i] = -1
	}
	return p
}

// Stats returns a copy of the counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Run simulates until MaxInsts instructions commit or the source drains,
// and returns the final statistics.
func (p *Pipeline) Run() Stats {
	limit := p.cfg.MaxInsts*200 + 1_000_000 // safety net against livelock bugs
	for p.stats.Committed < p.cfg.MaxInsts && p.cycle < limit {
		p.commit()
		p.issue()
		p.fetch()
		p.cycle++
		p.stats.Cycles = p.cycle
		if p.exhausted && p.head == p.tail {
			break
		}
	}
	if p.cycle >= limit {
		panic("pipeline: cycle limit exceeded — livelock")
	}
	return p.stats
}

func (p *Pipeline) entry(seq int64) *robEntry {
	return &p.rob[seq&p.robMask]
}

func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.CommitWidth && p.head < p.tail &&
		p.stats.Committed < p.cfg.MaxInsts; n++ {
		e := p.entry(p.head)
		if !e.done || e.doneAt > p.cycle {
			return
		}
		if e.inst.Kind == isa.KindStore {
			// Stores probe the tag array and write the matching way at
			// commit; the write buffer hides the latency.
			p.dc.Store(&e.inst)
			p.lsq--
		}
		if e.inst.Kind == isa.KindLoad {
			p.lsq--
		}
		// Free the architectural register mapping if this is still the
		// newest producer.
		if d := e.inst.Dst; !d.IsZero() && p.regProducer[d] == e.seq {
			p.regProducer[d] = -1
		}
		p.head++
		p.stats.Committed++
	}
}

// ready reports whether the producer identified by seq has finished.
func (p *Pipeline) producerDone(seq int64) bool {
	if seq < p.head { // covers -1 (no producer): head is never negative
		return true // retired: value lives in the register file
	}
	e := p.entry(seq)
	return e.done && e.doneAt <= p.cycle
}

func (p *Pipeline) issue() {
	issued := 0
	ports := p.cfg.DCachePorts
	// Advance the cursor over the contiguous issued prefix once, instead
	// of rescanning it every cycle while the ROB drains a long stall.
	if p.issueCursor < p.head {
		p.issueCursor = p.head
	}
	for p.issueCursor < p.tail && p.entry(p.issueCursor).issued {
		p.issueCursor++
	}
	for seq := p.issueCursor; seq < p.tail && issued < p.cfg.IssueWidth; seq++ {
		e := p.entry(seq)
		if e.issued {
			continue
		}
		if !p.producerDone(e.prod1) || !p.producerDone(e.prod2) {
			continue
		}
		kind := e.inst.Kind
		if kind == isa.KindLoad && ports == 0 {
			continue
		}

		lat := kind.Latency()
		switch kind {
		case isa.KindLoad:
			ports--
			p.stats.Loads++
			cacheLat, _ := p.dc.Load(&e.inst)
			lat += cacheLat - 1 // the cache latency includes the access cycle
		case isa.KindStore:
			p.stats.Stores++
			// Address generation only; the write happens at commit.
		case isa.KindIntALU, isa.KindIntMul:
			p.stats.IntOps++
		case isa.KindFPALU, isa.KindFPMul, isa.KindFPDiv:
			p.stats.FPOps++
		}
		e.issued = true
		e.done = true
		e.doneAt = p.cycle + int64(lat)
		issued++
		p.stats.Issued++
		if !e.inst.Src1.IsZero() {
			p.stats.RegReads++
		}
		if !e.inst.Src2.IsZero() {
			p.stats.RegReads++
		}
		if !e.inst.Dst.IsZero() {
			p.stats.RegWrites++
		}

		// A mispredicted control instruction restarts fetch one cycle
		// after it resolves.
		if e.mispred && p.waitBranch == e.seq {
			p.fetchableAt = e.doneAt + 1
			p.waitBranch = -1
		}
	}
}

// peek fills p.pending from the source.
func (p *Pipeline) peek() bool {
	if p.pendingOK {
		return true
	}
	if p.exhausted {
		return false
	}
	if !p.src.Next(&p.pending) {
		p.exhausted = true
		return false
	}
	p.pendingOK = true
	return true
}

func (p *Pipeline) robFull() bool {
	return p.tail-p.head >= int64(p.cfg.ROBSize)
}

func (p *Pipeline) dispatch(in *trace.Inst, mispred bool) {
	e := p.entry(p.tail)
	*e = robEntry{inst: *in, seq: p.tail, prod1: -1, prod2: -1, mispred: mispred}
	if !in.Src1.IsZero() {
		e.prod1 = p.regProducer[in.Src1]
	}
	if !in.Src2.IsZero() {
		e.prod2 = p.regProducer[in.Src2]
	}
	if !in.Dst.IsZero() {
		p.regProducer[in.Dst] = p.tail
	}
	if in.Kind.IsMem() {
		p.lsq++
	}
	if mispred {
		p.waitBranch = p.tail
	}
	p.tail++
	p.stats.Dispatched++
}

// fetch runs one fetch group: a single i-cache access plus up to FetchWidth
// instructions from the same cache block, ending early at a taken (or
// mispredicted) control instruction.
func (p *Pipeline) fetch() {
	if p.cycle < p.fetchableAt || p.waitBranch >= 0 {
		return
	}
	if !p.peek() {
		return
	}
	if p.robFull() || p.lsq >= p.cfg.LSQSize {
		return
	}

	block := p.pending.PC & p.icBlockMask

	lat, _, trueWay := p.ic.Fetch(p.pending.PC, p.nextWay, p.nextWayOK, p.nextWaySrc)
	p.stats.FetchGroups++

	// Train the structures that predicted (or should predict) this block's
	// way, now that the true way is known.
	if p.trainBTB.valid {
		p.fe.BTB.Update(p.trainBTB.pc, p.trainBTB.target, trueWay, true)
		p.trainBTB.valid = false
	}
	if p.trainSAWP.valid {
		p.fe.SAWP.Update(p.trainSAWP.block, trueWay)
		p.trainSAWP.valid = false
	}

	// Defaults for the next access: sequential transition predicted by the
	// SAWP, trained on this block.
	endedByControl := false
	for n := 0; n < p.cfg.FetchWidth; n++ {
		if p.robFull() || p.lsq >= p.cfg.LSQSize {
			break
		}
		if !p.peek() {
			break
		}
		if p.pending.PC&p.icBlockMask != block {
			break
		}
		// Consume the lookahead in place: p.pending stays intact until the
		// next peek, so dispatch/fetchControl can read it without a copy.
		in := &p.pending
		p.pendingOK = false

		if !in.Kind.IsControl() {
			p.dispatch(in, false)
			continue
		}
		endedByControl = true
		stop := p.fetchControl(in, block, trueWay)
		if stop {
			break
		}
		endedByControl = false
	}

	if !endedByControl {
		// Sequential (or not-taken-branch) transition into the next block:
		// the SAWP predicts and is trained on it.
		way, ok := p.fe.SAWP.Lookup(block)
		p.nextWay, p.nextWayOK, p.nextWaySrc = way, ok, access.SrcSAWP
		p.trainSAWP.valid = true
		p.trainSAWP.block = block
	}

	// The i-cache occupies the port for lat cycles on misses and way
	// mispredictions; the next group cannot start before that.
	if lat < 1 {
		lat = 1
	}
	p.fetchableAt = p.cycle + int64(lat)
}

// fetchControl dispatches a control instruction, performs all front-end
// prediction and training, and reports whether the fetch group must stop.
func (p *Pipeline) fetchControl(in *trace.Inst, block uint64, blockWay int) bool {
	fe := p.fe
	switch in.Kind {
	case isa.KindBranch:
		p.stats.Branches++
		predTaken := fe.Dir.Predict(in.PC)
		fe.Dir.Update(in.PC, in.Taken)
		mispred := predTaken != in.Taken
		if mispred {
			p.stats.BranchMispred++
		}
		if in.Taken {
			// Train the BTB with the target's way at the next access.
			p.trainBTB = struct {
				valid  bool
				pc     uint64
				target uint64
			}{true, in.PC, in.Target}
		}
		p.dispatch(in, mispred)
		if mispred {
			// Fetch stalls until resolution; the restart fetch has no way
			// prediction (parallel access), per the paper.
			p.nextWay, p.nextWayOK, p.nextWaySrc = 0, false, access.SrcNone
			return true
		}
		if in.Taken {
			_, way, wayOK, hit := fe.BTB.Lookup(in.PC)
			if hit && wayOK {
				p.nextWay, p.nextWayOK, p.nextWaySrc = way, true, access.SrcBTB
			} else {
				p.nextWay, p.nextWayOK, p.nextWaySrc = 0, false, access.SrcNone
			}
			return true
		}
		// Correctly predicted not-taken: fetch continues within the block.
		return false

	case isa.KindJump, isa.KindCall:
		p.stats.Branches++
		_, way, wayOK, hit := fe.BTB.Lookup(in.PC)
		if hit && wayOK {
			p.nextWay, p.nextWayOK, p.nextWaySrc = way, true, access.SrcBTB
		} else {
			p.nextWay, p.nextWayOK, p.nextWaySrc = 0, false, access.SrcNone
		}
		p.trainBTB = struct {
			valid  bool
			pc     uint64
			target uint64
		}{true, in.PC, in.Target}
		if in.Kind == isa.KindCall {
			// Push the return address; its block is usually the current
			// one, whose way we know right now.
			ret := in.FallThrough()
			sameBlock := ret&p.icBlockMask == block
			fe.RAS.Push(ret, blockWay, sameBlock)
		}
		p.dispatch(in, false)
		return true

	case isa.KindReturn:
		p.stats.Branches++
		addr, way, wayOK, ok := fe.RAS.Pop()
		mispred := !ok || addr != in.Target
		if mispred {
			p.stats.RASMispred++
			p.stats.BranchMispred++
		}
		p.dispatch(in, mispred)
		if mispred {
			p.nextWay, p.nextWayOK, p.nextWaySrc = 0, false, access.SrcNone
			return true
		}
		if wayOK {
			p.nextWay, p.nextWayOK, p.nextWaySrc = way, true, access.SrcRAS
		} else {
			p.nextWay, p.nextWayOK, p.nextWaySrc = 0, false, access.SrcNone
		}
		return true
	}
	panic("pipeline: non-control kind in fetchControl")
}
