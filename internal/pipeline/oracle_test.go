package pipeline

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"waycache/internal/access"
	"waycache/internal/branch"
	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/isa"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// This file holds the differential oracle for the event-driven core: a
// verbatim copy of the pre-event-driven cycle-stepping scheduler
// (referenceRun below), kept test-only, and a property test that runs both
// schedulers over randomized machines, workloads and d-cache policies and
// requires bit-identical Stats. The event-driven core's claim is
// observational equivalence — fast-forward, wakeup chains and batched
// fetch may reorder *work inside the simulator*, never *events inside the
// simulated machine* — and this is the test that pins the claim beyond
// the fixed golden configurations.

// refEntry is the reference scheduler's array-of-structs ROB entry.
type refEntry struct {
	issued  bool
	done    bool
	mispred bool
	doneAt  int64
	prod1   int64
	prod2   int64
	seq     int64
	inst    trace.Inst
}

// reference is the old Pipeline, scheduling logic untouched: one
// commit/issue/fetch step per cycle, producer readiness re-derived from
// the ROB on every scan, instructions pulled one Next call at a time. It
// shares the model code (caches, predictors, front end) with the real
// core, so any Stats divergence is a scheduling bug, not a model drift.
type reference struct {
	cfg Config
	src trace.Source
	dc  access.DController
	ic  *access.ICache
	fe  *branch.FrontEnd

	stats Stats
	cycle int64

	rob         []refEntry
	robMask     int64
	head        int64
	tail        int64
	issueCursor int64
	lsq         int

	regProducer [isa.NumRegs]int64

	pending     trace.Inst
	pendingOK   bool
	exhausted   bool
	fetchableAt int64
	waitBranch  int64
	icBlockMask uint64

	nextWay access.WayPred
}

// referenceRun simulates cfg over src with the cycle-stepping scheduler
// and returns its Stats. It is the oracle the event-driven Pipeline.Run is
// compared against.
func referenceRun(cfg Config, src trace.Source, dc access.DController, ic *access.ICache, fe *branch.FrontEnd) Stats {
	ringSize := int64(1)
	for ringSize < int64(cfg.ROBSize) {
		ringSize <<= 1
	}
	r := &reference{
		cfg: cfg, src: src, dc: dc, ic: ic, fe: fe,
		rob:         make([]refEntry, ringSize),
		robMask:     ringSize - 1,
		waitBranch:  -1,
		icBlockMask: ^uint64(ic.L1.BlockBytes() - 1),
	}
	for i := range r.regProducer {
		r.regProducer[i] = -1
	}
	limit := cfg.MaxInsts*200 + 1_000_000
	for r.stats.Committed < cfg.MaxInsts && r.cycle < limit {
		r.commit()
		r.issue()
		r.fetch()
		r.cycle++
		r.stats.Cycles = r.cycle
		if r.exhausted && r.head == r.tail {
			break
		}
	}
	if r.cycle >= limit {
		panic("reference: cycle limit exceeded — livelock")
	}
	return r.stats
}

func (r *reference) entry(seq int64) *refEntry {
	return &r.rob[seq&r.robMask]
}

func (r *reference) commit() {
	for n := 0; n < r.cfg.CommitWidth && r.head < r.tail &&
		r.stats.Committed < r.cfg.MaxInsts; n++ {
		e := r.entry(r.head)
		if !e.done || e.doneAt > r.cycle {
			return
		}
		if e.inst.Kind == isa.KindStore {
			r.dc.Store(&e.inst)
			r.lsq--
		}
		if e.inst.Kind == isa.KindLoad {
			r.lsq--
		}
		if d := e.inst.Dst; !d.IsZero() && r.regProducer[d] == e.seq {
			r.regProducer[d] = -1
		}
		r.head++
		r.stats.Committed++
	}
}

func (r *reference) producerDone(seq int64) bool {
	if seq < r.head {
		return true
	}
	e := r.entry(seq)
	return e.done && e.doneAt <= r.cycle
}

func (r *reference) issue() {
	issued := 0
	ports := r.cfg.DCachePorts
	if r.issueCursor < r.head {
		r.issueCursor = r.head
	}
	for r.issueCursor < r.tail && r.entry(r.issueCursor).issued {
		r.issueCursor++
	}
	for seq := r.issueCursor; seq < r.tail && issued < r.cfg.IssueWidth; seq++ {
		e := r.entry(seq)
		if e.issued {
			continue
		}
		if !r.producerDone(e.prod1) || !r.producerDone(e.prod2) {
			continue
		}
		kind := e.inst.Kind
		if kind == isa.KindLoad && ports == 0 {
			continue
		}

		lat := kind.Latency()
		switch kind {
		case isa.KindLoad:
			ports--
			r.stats.Loads++
			cacheLat, _ := r.dc.Load(&e.inst)
			lat += cacheLat - 1
		case isa.KindStore:
			r.stats.Stores++
		case isa.KindIntALU, isa.KindIntMul:
			r.stats.IntOps++
		case isa.KindFPALU, isa.KindFPMul, isa.KindFPDiv:
			r.stats.FPOps++
		}
		e.issued = true
		e.done = true
		e.doneAt = r.cycle + int64(lat)
		issued++
		r.stats.Issued++
		if !e.inst.Src1.IsZero() {
			r.stats.RegReads++
		}
		if !e.inst.Src2.IsZero() {
			r.stats.RegReads++
		}
		if !e.inst.Dst.IsZero() {
			r.stats.RegWrites++
		}

		if e.mispred && r.waitBranch == e.seq {
			r.fetchableAt = e.doneAt + 1
			r.waitBranch = -1
		}
	}
}

func (r *reference) peek() bool {
	if r.pendingOK {
		return true
	}
	if r.exhausted {
		return false
	}
	if !r.src.Next(&r.pending) {
		r.exhausted = true
		return false
	}
	r.pendingOK = true
	return true
}

func (r *reference) robFull() bool {
	return r.tail-r.head >= int64(r.cfg.ROBSize)
}

func (r *reference) dispatch(in *trace.Inst, mispred bool) {
	e := r.entry(r.tail)
	*e = refEntry{inst: *in, seq: r.tail, prod1: -1, prod2: -1, mispred: mispred}
	if !in.Src1.IsZero() {
		e.prod1 = r.regProducer[in.Src1]
	}
	if !in.Src2.IsZero() {
		e.prod2 = r.regProducer[in.Src2]
	}
	if !in.Dst.IsZero() {
		r.regProducer[in.Dst] = r.tail
	}
	if in.Kind.IsMem() {
		r.lsq++
	}
	if mispred {
		r.waitBranch = r.tail
	}
	r.tail++
	r.stats.Dispatched++
}

func (r *reference) fetch() {
	if r.cycle < r.fetchableAt || r.waitBranch >= 0 {
		return
	}
	if !r.peek() {
		return
	}
	if r.robFull() || r.lsq >= r.cfg.LSQSize {
		return
	}

	block := r.pending.PC & r.icBlockMask

	lat, _, trueWay := r.ic.Fetch(r.pending.PC, r.nextWay)
	r.stats.FetchGroups++

	r.fe.TrainWays(trueWay)

	endedByControl := false
	for n := 0; n < r.cfg.FetchWidth; n++ {
		if r.robFull() || r.lsq >= r.cfg.LSQSize {
			break
		}
		if !r.peek() {
			break
		}
		if r.pending.PC&r.icBlockMask != block {
			break
		}
		in := &r.pending
		r.pendingOK = false

		if !in.Kind.IsControl() {
			r.dispatch(in, false)
			continue
		}
		endedByControl = true
		stop := r.fetchControl(in, block, trueWay)
		if stop {
			break
		}
		endedByControl = false
	}

	if !endedByControl {
		way, ok := r.fe.SAWP.Lookup(block)
		r.nextWay = access.WayPred{Way: way, OK: ok, Source: access.SrcSAWP}
		r.fe.NoteSAWP(block)
	}

	if lat < 1 {
		lat = 1
	}
	r.fetchableAt = r.cycle + int64(lat)
}

func (r *reference) fetchControl(in *trace.Inst, block uint64, blockWay int) bool {
	fe := r.fe
	switch in.Kind {
	case isa.KindBranch:
		r.stats.Branches++
		predTaken := fe.Dir.Predict(in.PC)
		fe.Dir.Update(in.PC, in.Taken)
		mispred := predTaken != in.Taken
		if mispred {
			r.stats.BranchMispred++
		}
		if in.Taken {
			fe.NoteBTB(in.PC, in.Target)
		}
		r.dispatch(in, mispred)
		if mispred {
			r.nextWay = access.WayPred{}
			return true
		}
		if in.Taken {
			_, way, wayOK, hit := fe.BTB.Lookup(in.PC)
			if hit && wayOK {
				r.nextWay = access.WayPred{Way: way, OK: true, Source: access.SrcBTB}
			} else {
				r.nextWay = access.WayPred{}
			}
			return true
		}
		return false

	case isa.KindJump, isa.KindCall:
		r.stats.Branches++
		_, way, wayOK, hit := fe.BTB.Lookup(in.PC)
		if hit && wayOK {
			r.nextWay = access.WayPred{Way: way, OK: true, Source: access.SrcBTB}
		} else {
			r.nextWay = access.WayPred{}
		}
		fe.NoteBTB(in.PC, in.Target)
		if in.Kind == isa.KindCall {
			ret := in.FallThrough()
			sameBlock := ret&r.icBlockMask == block
			fe.RAS.Push(ret, blockWay, sameBlock)
		}
		r.dispatch(in, false)
		return true

	case isa.KindReturn:
		r.stats.Branches++
		addr, way, wayOK, ok := fe.RAS.Pop()
		mispred := !ok || addr != in.Target
		if mispred {
			r.stats.RASMispred++
			r.stats.BranchMispred++
		}
		r.dispatch(in, mispred)
		if mispred {
			r.nextWay = access.WayPred{}
			return true
		}
		if wayOK {
			r.nextWay = access.WayPred{Way: way, OK: true, Source: access.SrcRAS}
		} else {
			r.nextWay = access.WayPred{}
		}
		return true
	}
	panic("reference: non-control kind in fetchControl")
}

// nextOnly hides a source's window methods, forcing the per-instruction
// Next path (what a live walker looks like to the pipeline).
type nextOnly struct{ src trace.Source }

func (n *nextOnly) Next(out *trace.Inst) bool { return n.src.Next(out) }

// oracleRig builds one matched pair of model state for a trial. Both
// schedulers must see freshly constructed, identically configured caches
// and predictors: they are stateful, and sharing them would let one run
// warm the other.
func oracleRig(policy access.DPolicy, dsize, isize int) (access.DController, *access.ICache, *branch.FrontEnd) {
	hier := cache.DefaultHierarchy(32)
	dc := access.NewDCache(access.DConfig{
		Policy: policy,
		Cache:  cache.Config{Name: "L1d", SizeBytes: dsize, Ways: 4, BlockBytes: 32},
		Costs:  energy.PaperCosts(),
	}, hier)
	ic := access.NewICache(access.IConfig{
		Policy: access.IWayPred,
		Cache:  cache.Config{Name: "L1i", SizeBytes: isize, Ways: 4, BlockBytes: 32},
		Costs:  energy.PaperCosts(),
	}, hier)
	return dc, ic, branch.NewFrontEnd()
}

// TestOracleEquivalence is the differential property test: random machine
// shapes (including non-power-of-two ROBs and single-entry LSQs and
// ports) × every d-cache policy × real workload streams, event-driven
// Stats must equal the cycle-stepping reference's exactly — through the
// per-Next path, the windowed path, and a .wct capture replay.
func TestOracleEquivalence(t *testing.T) {
	policies := []access.DPolicy{
		access.DParallel, access.DSequential,
		access.DWayPredPC, access.DWayPredXOR,
		access.DSelDMParallel, access.DSelDMWayPred, access.DSelDMSequential,
		access.DWayPredMRU,
	}
	names := workload.Names()
	rng := rand.New(rand.NewSource(0x5eed))

	trial := 0
	for _, policy := range policies {
		for rep := 0; rep < 3; rep++ {
			trial++
			cfg := Config{
				FetchWidth:  1 + rng.Intn(8),
				IssueWidth:  1 + rng.Intn(8),
				CommitWidth: 1 + rng.Intn(8),
				ROBSize:     2 + rng.Intn(99), // mostly non-power-of-two
				LSQSize:     1 + rng.Intn(40),
				DCachePorts: 1 + rng.Intn(3),
				MaxInsts:    int64(1000 + rng.Intn(3000)),
			}
			bench := names[trial%len(names)]
			prog, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}

			// Materialize the stream once so every scheduler and source
			// shape consumes the identical sequence. Every third trial the
			// stream is shorter than MaxInsts, exercising the drain path.
			n := cfg.MaxInsts + 300
			if trial%3 == 0 {
				n = cfg.MaxInsts - int64(rng.Intn(500))
			}
			insts := make([]trace.Inst, n)
			w := prog.NewWalker()
			for i := range insts {
				if !w.Next(&insts[i]) {
					t.Fatalf("%s: walker dried up at %d", bench, i)
				}
			}
			sizes := []int{4 << 10, 8 << 10, 16 << 10}
			dsize := sizes[rng.Intn(len(sizes))]
			isize := sizes[rng.Intn(len(sizes))]

			run := func(src trace.Source, ref bool) Stats {
				dc, ic, fe := oracleRig(policy, dsize, isize)
				if ref {
					return referenceRun(cfg, src, dc, ic, fe)
				}
				return New(cfg, src, dc, ic, fe).Run()
			}

			want := run(&nextOnly{&trace.SliceSource{Insts: insts}}, true)
			ctx := func(leg string) string {
				return leg + " policy=" + policy.String() + " bench=" + bench
			}
			if got := run(&nextOnly{&trace.SliceSource{Insts: insts}}, false); got != want {
				t.Errorf("%s:\n got %+v\nwant %+v\ncfg %+v", ctx("next-path"), got, want, cfg)
			}
			if got := run(trace.NewLimit(&trace.SliceSource{Insts: insts}, n), false); got != want {
				t.Errorf("%s:\n got %+v\nwant %+v\ncfg %+v", ctx("window-path"), got, want, cfg)
			}
			if trial%4 == 0 {
				if got := run(replaySource(t, bench, insts), false); got != want {
					t.Errorf("%s:\n got %+v\nwant %+v\ncfg %+v", ctx("replay-path"), got, want, cfg)
				}
			}
		}
	}
}

// replaySource round-trips insts through an actual .wct capture file and
// the shared decode arena — the exact production replay path (MemSource
// behind a window-aware Limit).
func replaySource(t *testing.T, bench string, insts []trace.Inst) trace.Source {
	t.Helper()
	path := filepath.Join(t.TempDir(), bench+".wct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, trace.Header{Benchmark: bench, Insts: int64(len(insts))})
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mem, err := trace.SharedArena().Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewLimit(mem, int64(len(insts)))
}
