package pipeline

import (
	"testing"

	"waycache/internal/access"
	"waycache/internal/branch"
	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

func testRig(dpol access.DPolicy, ipol access.IPolicy, src trace.Source, maxInsts int64) *Pipeline {
	hier := cache.DefaultHierarchy(32)
	dc := access.NewDCache(access.DConfig{
		Policy:      dpol,
		Cache:       cache.Config{Name: "L1d", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
		BaseLatency: 1,
		Costs:       energy.PaperCosts(),
	}, hier)
	ic := access.NewICache(access.IConfig{
		Policy:      ipol,
		Cache:       cache.Config{Name: "L1i", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
		BaseLatency: 1,
		Costs:       energy.PaperCosts(),
	}, hier)
	return New(DefaultConfig(maxInsts), src, dc, ic, branch.NewFrontEnd())
}

// seqALUs builds n independent ALU instructions at consecutive PCs.
func seqALUs(n int) []trace.Inst {
	insts := make([]trace.Inst, n)
	for i := range insts {
		insts[i] = trace.Inst{
			PC:   0x400000 + uint64(i)*4,
			Kind: isa.KindIntALU,
			Dst:  isa.Int(i),
		}
	}
	return insts
}

func TestIndependentALUsSuperscalar(t *testing.T) {
	// One warm 8-instruction block of independent single-cycle ops looped
	// 1000 times on an 8-wide machine: IPC must be well above 1.
	src := &trace.Repeat{Insts: seqALUs(8)}
	p := testRig(access.DParallel, access.IParallel, src, 8000)
	st := p.Run()
	if st.Committed != 8000 {
		t.Fatalf("committed %d, want 8000", st.Committed)
	}
	if ipc := st.IPC(); ipc < 3 {
		t.Fatalf("IPC %.2f too low for independent ALU stream", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// A strict dependence chain cannot exceed IPC 1.
	n := 500
	insts := make([]trace.Inst, n)
	for i := range insts {
		insts[i] = trace.Inst{
			PC:   0x400000 + uint64(i)*4,
			Kind: isa.KindIntALU,
			Dst:  isa.Int(1),
			Src1: isa.Int(1),
		}
	}
	src := &trace.SliceSource{Insts: insts}
	st := testRig(access.DParallel, access.IParallel, src, int64(n)).Run()
	if ipc := st.IPC(); ipc > 1.05 {
		t.Fatalf("IPC %.2f for a serial chain; scoreboard broken", ipc)
	}
}

func TestLoadLatencyExposedOnChains(t *testing.T) {
	// load -> use chains: sequential access (+1 cycle per load) must be
	// measurably slower than parallel access on the same trace.
	mk := func() trace.Source {
		// A pointer-chase kernel: each load's address depends on the
		// previous load's result, so cache latency is fully serialized.
		ld := trace.Inst{PC: 0x400000, Kind: isa.KindLoad, Dst: isa.Int(1), Src1: isa.Int(1),
			Addr: 0x1000, BaseValue: 0x1000}
		use := trace.Inst{PC: 0x400004, Kind: isa.KindIntALU, Dst: isa.Int(1), Src1: isa.Int(1)}
		return &trace.Repeat{Insts: []trace.Inst{ld, use}}
	}
	base := testRig(access.DParallel, access.IParallel, mk(), 800).Run()
	seq := testRig(access.DSequential, access.IParallel, mk(), 800).Run()
	if seq.Cycles <= base.Cycles {
		t.Fatalf("sequential (%d cyc) not slower than parallel (%d cyc)", seq.Cycles, base.Cycles)
	}
	slowdown := float64(seq.Cycles-base.Cycles) / float64(base.Cycles)
	if slowdown < 0.2 {
		t.Fatalf("slowdown %.2f too small for fully dependent loads", slowdown)
	}
}

func TestBranchMispredictionStallsFetch(t *testing.T) {
	// Alternating branch outcomes with a *random* pattern are hard; every
	// misprediction should cost fetch cycles relative to an untaken run.
	mkBranches := func(taken func(i int) bool) trace.Source {
		// The same static branch executed 300 times (a self-loop).
		var insts []trace.Inst
		for i := 0; i < 3000; i++ {
			insts = append(insts, trace.Inst{
				PC: 0x400000, Kind: isa.KindBranch,
				Taken: taken(i), Target: 0x400000,
			})
		}
		return &trace.SliceSource{Insts: insts}
	}
	// Baseline: always not-taken (predictable, and fetch packs many
	// branches per group). Noisy: pseudo-random outcomes of the same
	// static branch. Run lengths amortize the one cold i-cache miss.
	steady := testRig(access.DParallel, access.IParallel, mkBranches(func(int) bool { return false }), 3000).Run()
	noisy := testRig(access.DParallel, access.IParallel, mkBranches(func(i int) bool {
		return (i*2654435761)%7 < 3 // deterministic pseudo-random pattern
	}), 3000).Run()
	if noisy.BranchMispred <= steady.BranchMispred {
		t.Fatalf("noisy pattern mispredicts (%d) not above steady (%d)",
			noisy.BranchMispred, steady.BranchMispred)
	}
	if noisy.Cycles <= steady.Cycles {
		t.Fatalf("mispredictions did not cost cycles: %d vs %d", noisy.Cycles, steady.Cycles)
	}
}

func TestROBLimitsOutstandingWork(t *testing.T) {
	// A long-latency load followed by many independent ALUs: the ROB (64)
	// caps how far the machine runs ahead, so cycles must reflect the miss.
	var insts []trace.Inst
	pc := uint64(0x400000)
	insts = append(insts, trace.Inst{PC: pc, Kind: isa.KindLoad, Dst: isa.Int(1),
		Addr: 0x10000, BaseValue: 0x10000})
	for i := 0; i < 300; i++ {
		pc += 4
		insts = append(insts, trace.Inst{PC: pc, Kind: isa.KindIntALU, Dst: isa.Int(2), Src1: isa.Int(2)})
	}
	st := testRig(access.DParallel, access.IParallel, &trace.SliceSource{Insts: insts}, 301).Run()
	// The serial ALU chain takes ~300 cycles anyway; the cold miss (~108)
	// overlaps. Sanity: cycles >= chain length, and load+miss committed.
	if st.Cycles < 300 {
		t.Fatalf("cycles %d below serial chain bound", st.Cycles)
	}
	if st.Committed != 301 {
		t.Fatalf("committed %d", st.Committed)
	}
}

func TestStoresCommitThroughWriteBuffer(t *testing.T) {
	var insts []trace.Inst
	for i := 0; i < 8; i++ {
		insts = append(insts, trace.Inst{PC: uint64(0x400000 + i*4), Kind: isa.KindStore,
			Addr: uint64(0x1000 + (i%4)*8), BaseValue: uint64(0x1000 + (i%4)*8)})
	}
	p := testRig(access.DParallel, access.IParallel, &trace.Repeat{Insts: insts}, 2000)
	st := p.Run()
	if st.Stores < 2000 {
		t.Fatalf("stores issued %d, want >= 2000", st.Stores)
	}
	if st.Committed != 2000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if ipc := st.IPC(); ipc < 2 {
		t.Fatalf("stores should not serialize commit: IPC %.2f", ipc)
	}
}

func TestRunStopsAtMaxInsts(t *testing.T) {
	src := &trace.Repeat{Insts: seqALUs(8)}
	st := testRig(access.DParallel, access.IParallel, src, 100).Run()
	if st.Committed != 100 {
		t.Fatalf("committed %d, want exactly MaxInsts", st.Committed)
	}
}

func TestSourceDrainEndsRun(t *testing.T) {
	src := &trace.SliceSource{Insts: seqALUs(17)}
	st := testRig(access.DParallel, access.IParallel, src, 1000).Run()
	if st.Committed != 17 {
		t.Fatalf("committed %d, want 17 (source drained)", st.Committed)
	}
}

func TestStatsAccounting(t *testing.T) {
	var insts []trace.Inst
	pc := uint64(0x400000)
	for i := 0; i < 50; i++ {
		insts = append(insts,
			trace.Inst{PC: pc, Kind: isa.KindLoad, Dst: isa.Int(1), Addr: 0x2000, BaseValue: 0x2000},
			trace.Inst{PC: pc + 4, Kind: isa.KindFPALU, Dst: isa.FP(1), Src1: isa.FP(1)},
			trace.Inst{PC: pc + 8, Kind: isa.KindStore, Addr: 0x3000, BaseValue: 0x3000, Src1: isa.Int(1)},
		)
		pc += 12
	}
	st := testRig(access.DParallel, access.IParallel, &trace.SliceSource{Insts: insts}, 150).Run()
	if st.Loads != 50 || st.Stores != 50 || st.FPOps != 50 {
		t.Fatalf("op counts: %+v", st)
	}
	if st.Dispatched != 150 || st.Issued != 150 {
		t.Fatalf("dispatch/issue counts: %+v", st)
	}
	if st.RegWrites == 0 || st.RegReads == 0 {
		t.Fatal("register activity not counted")
	}
}

func TestDeterministicCycles(t *testing.T) {
	mk := func() *trace.SliceSource { return &trace.SliceSource{Insts: seqALUs(500)} }
	a := testRig(access.DSelDMWayPred, access.IWayPred, mk(), 500).Run()
	b := testRig(access.DSelDMWayPred, access.IWayPred, mk(), 500).Run()
	if a != b {
		t.Fatalf("nondeterministic pipeline: %+v vs %+v", a, b)
	}
}

func TestNonPowerOfTwoROBSize(t *testing.T) {
	// The ROB ring is allocated at the next power of two; the configured
	// size still bounds in-flight instructions. A 48-entry ROB must behave
	// like a 48-entry ROB, not a 64-entry one: fewer entries than the
	// 64-entry default means same-or-more cycles on a stalling workload.
	n := 600
	insts := make([]trace.Inst, n)
	for i := range insts {
		addr := uint64(0x100000 + i*4096) // L1-missing loads to fill the ROB
		insts[i] = trace.Inst{
			PC: 0x400000 + uint64(i)*4, Kind: isa.KindLoad,
			Addr: addr, BaseValue: addr - 8, Offset: 8,
			Dst: isa.Int(i % 30), Src1: isa.Int((i + 1) % 30),
		}
	}
	run := func(robSize int) Stats {
		cfg := DefaultConfig(int64(n))
		cfg.ROBSize = robSize
		src := &trace.SliceSource{Insts: insts}
		hier := cache.DefaultHierarchy(32)
		dc := access.NewDCache(access.DConfig{
			Policy: access.DParallel,
			Cache:  cache.Config{Name: "L1d", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
			Costs:  energy.PaperCosts(),
		}, hier)
		ic := access.NewICache(access.IConfig{
			Policy: access.IParallel,
			Cache:  cache.Config{Name: "L1i", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
		}, hier)
		return New(cfg, src, dc, ic, branch.NewFrontEnd()).Run()
	}
	s48, s64 := run(48), run(64)
	if s48.Committed != int64(n) || s64.Committed != int64(n) {
		t.Fatalf("committed %d / %d, want %d", s48.Committed, s64.Committed, n)
	}
	if s48.Cycles < s64.Cycles {
		t.Fatalf("48-entry ROB finished in %d cycles, faster than 64-entry's %d", s48.Cycles, s64.Cycles)
	}
	// Determinism across repeat runs, ring size notwithstanding.
	if again := run(48); again != s48 {
		t.Fatalf("non-power-of-two ROB nondeterministic: %+v vs %+v", again, s48)
	}
}
