// Package faultinject is a scriptable fault-injection proxy for chaos
// testing the distributed sweep stack. A Proxy wraps any http.Handler
// (typically a real internal/server instance) and perturbs traffic on a
// deterministic, seeded schedule: dropped connections, truncated
// responses, latency spikes, 5xx bursts, and whole-host freezes.
//
// Determinism is the point. Every probabilistic decision flows through a
// splitmix64 stream keyed by (seed, rule, match ordinal), so a chaos test
// that fails replays identically from its seed — no flaky "sometimes the
// connection drops" tests. Schedules are expressed per rule: After skips
// the first N matching requests, Every fires on each Nth match after
// that, Count bounds total firings, Prob gates each firing on the seeded
// stream. Unmatched (or unfired) requests pass through untouched.
//
//	proxy := faultinject.New(backend, 42,
//	    faultinject.Rule{Method: "GET", Path: "/export", Kind: faultinject.Truncate, After: 1, Count: 2, Bytes: 100},
//	    faultinject.Rule{Path: "/jobs", Kind: faultinject.Status, Code: 502, Every: 3},
//	)
//	ts := httptest.NewServer(proxy)
//
// Freezing — a host that accepts connections and then never answers, the
// way a SIGSTOPped or livelocked process behaves — is both a rule kind
// (deterministic schedule) and an imperative switch (Freeze/Unfreeze)
// for tests that choreograph the timeline themselves.
package faultinject

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind is the failure mode a rule injects.
type Kind int

const (
	// Drop severs the connection before any response bytes are written —
	// the client sees a transport error, not an HTTP status.
	Drop Kind = iota
	// Truncate forwards the response but cuts the body after Bytes
	// bytes and severs the connection — a mid-stream disconnect.
	Truncate
	// Delay sleeps Delay before forwarding, then serves normally — a
	// latency spike (the request still succeeds).
	Delay
	// Status short-circuits with an HTTP error response of Code
	// (default 502) without reaching the backend — a 5xx burst.
	Status
	// Freeze holds the request open, never answering, until the proxy
	// is unfrozen or the client gives up — a wedged host.
	Freeze
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	case Delay:
		return "delay"
	case Status:
		return "status"
	case Freeze:
		return "freeze"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule matches requests and injects one failure mode on a schedule.
// Matching is by substring: a request matches when Method equals the
// request method (empty matches all) and Path is a substring of the URL
// path (empty matches all).
type Rule struct {
	Method string
	Path   string
	Kind   Kind

	// Schedule: of the requests this rule matches, skip the first After,
	// then fire on every Every-th (0 or 1: every one), at most Count
	// times total (0: unlimited). Prob, when in (0, 1), additionally
	// gates each would-be firing on the rule's seeded random stream.
	After int
	Every int
	Count int
	Prob  float64

	// Mode parameters.
	Delay time.Duration // Delay kind: how long to stall
	Bytes int           // Truncate kind: body bytes to let through
	Code  int           // Status kind: response code (default 502)
}

// Proxy wraps a handler with fault injection. Safe for concurrent use.
type Proxy struct {
	inner http.Handler
	seed  uint64

	mu      sync.Mutex
	rules   []*ruleState
	frozen  bool
	thaw    chan struct{}
	counts  map[string]int // fired faults by "<kind> <method> <path>"
	matched int
}

type ruleState struct {
	Rule
	matches int // requests matched so far
	fired   int // faults injected so far
	rng     uint64
}

// New wraps inner with seeded fault rules.
func New(inner http.Handler, seed uint64, rules ...Rule) *Proxy {
	p := &Proxy{
		inner: inner, seed: seed,
		thaw:   make(chan struct{}),
		counts: make(map[string]int),
	}
	for i, r := range rules {
		if r.Kind == Status && r.Code == 0 {
			r.Code = http.StatusBadGateway
		}
		// Each rule gets its own deterministic stream, keyed by the proxy
		// seed and the rule's position.
		p.rules = append(p.rules, &ruleState{Rule: r, rng: splitmix(seed + uint64(i)*0x9e3779b97f4a7c15 + 1)})
	}
	return p
}

// splitmix advances a splitmix64 state and returns the mixed output.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Freeze makes the proxy hold every subsequent request open without
// answering, emulating a SIGSTOPped host. Idempotent.
func (p *Proxy) Freeze() {
	p.mu.Lock()
	p.frozen = true
	p.mu.Unlock()
}

// Unfreeze releases every held request (they proceed to the backend) and
// resumes normal service. Idempotent.
func (p *Proxy) Unfreeze() {
	p.mu.Lock()
	if p.frozen {
		p.frozen = false
		close(p.thaw)
		p.thaw = make(chan struct{})
	}
	p.mu.Unlock()
}

// Faults reports how many faults of each kind have fired, keyed
// "<kind> <method> <path>" by the rule's matcher — a test's evidence
// that its chaos schedule actually exercised something.
func (p *Proxy) Faults() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// decide picks the fault (if any) for this request. Separated from
// ServeHTTP so all state mutation happens under one lock acquisition.
func (p *Proxy) decide(r *http.Request) (*ruleState, bool, chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.matched++
	if p.frozen {
		return nil, true, p.thaw
	}
	for _, rs := range p.rules {
		if rs.Method != "" && rs.Method != r.Method {
			continue
		}
		if rs.Path != "" && !strings.Contains(r.URL.Path, rs.Path) {
			continue
		}
		rs.matches++
		if rs.matches <= rs.After {
			continue
		}
		if rs.Count > 0 && rs.fired >= rs.Count {
			continue
		}
		if rs.Every > 1 && (rs.matches-rs.After-1)%rs.Every != 0 {
			continue
		}
		if rs.Prob > 0 && rs.Prob < 1 {
			rs.rng = splitmix(rs.rng)
			if float64(rs.rng>>11)/float64(1<<53) >= rs.Prob {
				continue
			}
		}
		rs.fired++
		p.counts[fmt.Sprintf("%s %s %s", rs.Kind, rs.Method, rs.Path)]++
		return rs, false, nil
	}
	return nil, false, nil
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rs, frozen, thaw := p.decide(r)
	if frozen {
		// Hold the request open until unfrozen or the client hangs up.
		select {
		case <-thaw:
			p.inner.ServeHTTP(w, r)
		case <-r.Context().Done():
		}
		return
	}
	if rs == nil {
		p.inner.ServeHTTP(w, r)
		return
	}
	switch rs.Kind {
	case Drop:
		// net/http aborts the connection without a reply when a handler
		// panics with ErrAbortHandler — exactly a dropped connection.
		panic(http.ErrAbortHandler)
	case Delay:
		select {
		case <-time.After(rs.Delay):
		case <-r.Context().Done():
			return
		}
		p.inner.ServeHTTP(w, r)
	case Status:
		http.Error(w, fmt.Sprintf("faultinject: scripted %d", rs.Code), rs.Code)
	case Truncate:
		tw := &truncatingWriter{ResponseWriter: w, remaining: rs.Bytes}
		p.inner.ServeHTTP(tw, r)
		if tw.truncated {
			panic(http.ErrAbortHandler) // sever after the partial body
		}
	case Freeze:
		select {
		case <-thawOf(p):
			p.inner.ServeHTTP(w, r)
		case <-r.Context().Done():
		}
	default:
		p.inner.ServeHTTP(w, r)
	}
}

// thawOf snapshots the current thaw channel (a scheduled Freeze rule
// behaves like an imperative freeze for just that request).
func thawOf(p *Proxy) chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.thaw
}

// truncatingWriter lets Bytes bytes through, then swallows the rest and
// marks the response for connection abort.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
	truncated bool
}

func (t *truncatingWriter) Write(b []byte) (int, error) {
	if t.truncated {
		return len(b), nil // swallow, pretend success so the handler finishes
	}
	if len(b) <= t.remaining {
		t.remaining -= len(b)
		return t.ResponseWriter.Write(b)
	}
	n := t.remaining
	t.remaining = 0
	t.truncated = true
	if n > 0 {
		if _, err := t.ResponseWriter.Write(b[:n]); err != nil {
			return 0, err
		}
	}
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush() // force the partial body onto the wire before the abort
	}
	return len(b), nil
}

// Flush preserves SSE streaming through the truncating writer.
func (t *truncatingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
