package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func backend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 1000))
	})
}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

// TestStatusSchedule: After skips, Every strides, Count bounds.
func TestStatusSchedule(t *testing.T) {
	p := New(backend(), 1, Rule{Kind: Status, Code: 503, After: 1, Every: 2, Count: 2})
	ts := httptest.NewServer(p)
	defer ts.Close()

	var codes []int
	for i := 0; i < 6; i++ {
		code, _, err := get(t, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, code)
	}
	// Match 1 skipped (After), then every 2nd: matches 2 and 4 fire,
	// match 6 would but Count=2 exhausted.
	want := []int{200, 503, 200, 503, 200, 200}
	for i, c := range codes {
		if c != want[i] {
			t.Errorf("request %d -> %d, want %d (all: %v)", i+1, c, want[i], codes)
		}
	}
	if got := p.Faults()["status  "]; got != 2 {
		t.Errorf("fault count = %d, want 2", got)
	}
}

// TestDropSeversConnection: the client must see a transport error, not a
// status.
func TestDropSeversConnection(t *testing.T) {
	p := New(backend(), 1, Rule{Kind: Drop, Count: 1})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if _, _, err := get(t, ts.URL); err == nil {
		t.Fatal("dropped request returned a response")
	}
	if _, body, err := get(t, ts.URL); err != nil || len(body) != 1000 {
		t.Fatalf("request after drop: err=%v len=%d, want full body", err, len(body))
	}
}

// TestTruncateCutsBody: the client reads exactly Bytes bytes then a
// broken stream.
func TestTruncateCutsBody(t *testing.T) {
	p := New(backend(), 1, Rule{Kind: Truncate, Bytes: 100, Count: 1})
	ts := httptest.NewServer(p)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Error("truncated body read cleanly to EOF")
	}
	if len(body) != 100 {
		t.Errorf("read %d bytes before the cut, want 100", len(body))
	}
}

// TestDelayStalls: the request succeeds but not before the spike.
func TestDelayStalls(t *testing.T) {
	p := New(backend(), 1, Rule{Kind: Delay, Delay: 150 * time.Millisecond, Count: 1})
	ts := httptest.NewServer(p)
	defer ts.Close()

	start := time.Now()
	if code, _, err := get(t, ts.URL); err != nil || code != 200 {
		t.Fatalf("delayed request: code=%d err=%v", code, err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Errorf("request finished in %v, want >= 150ms", d)
	}
}

// TestFreezeAndUnfreeze: frozen requests hang; unfreezing releases them.
func TestFreezeAndUnfreeze(t *testing.T) {
	p := New(backend(), 1)
	ts := httptest.NewServer(p)
	defer ts.Close()

	p.Freeze()
	var wg sync.WaitGroup
	wg.Add(1)
	codeCh := make(chan int, 1)
	go func() {
		defer wg.Done()
		code, _, err := get(t, ts.URL)
		if err == nil {
			codeCh <- code
		}
	}()
	select {
	case <-codeCh:
		t.Fatal("request completed against a frozen proxy")
	case <-time.After(100 * time.Millisecond):
	}
	p.Unfreeze()
	wg.Wait()
	select {
	case code := <-codeCh:
		if code != 200 {
			t.Errorf("thawed request -> %d", code)
		}
	default:
		t.Error("thawed request never completed")
	}
}

// TestProbIsDeterministic: the same seed yields the same fault pattern.
func TestProbIsDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		p := New(backend(), seed, Rule{Kind: Status, Prob: 0.5})
		ts := httptest.NewServer(p)
		defer ts.Close()
		var b strings.Builder
		for i := 0; i < 32; i++ {
			code, _, err := get(t, ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			if code == 200 {
				b.WriteByte('.')
			} else {
				b.WriteByte('X')
			}
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Errorf("same seed, different patterns:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "X") || !strings.Contains(a, ".") {
		t.Errorf("Prob=0.5 pattern %q fired always or never", a)
	}
	if c := pattern(8); c == a {
		t.Errorf("different seeds produced the identical pattern %q", a)
	}
}

// TestMethodAndPathMatch: rules only perturb what they name.
func TestMethodAndPathMatch(t *testing.T) {
	p := New(backend(), 1, Rule{Method: "POST", Path: "/jobs", Kind: Status})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if code, _, _ := get(t, ts.URL+"/jobs"); code != 200 {
		t.Errorf("GET /jobs -> %d, want pass-through", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("POST /jobs -> %d, want injected 502", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/other", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("POST /other -> %d, want pass-through", resp.StatusCode)
	}
}
