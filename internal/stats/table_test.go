package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "bench", "value")
	tb.Add("gcc", "0.31")
	tb.Addf("swim", 0.12345)
	out := tb.String()
	for _, want := range []string{"Demo", "bench", "gcc", "0.31", "swim", "0.123"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("x")
	tb.Add("1", "2", "3", "4") // extra dropped
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Error("extra cell not dropped")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	xs := []float64{1, 2, 6}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 6 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Errorf("Pct = %q", Pct(0.125))
	}
	if F3(0.12345) != "0.123" {
		t.Errorf("F3 = %q", F3(0.12345))
	}
}
