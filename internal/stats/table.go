// Package stats provides small reporting helpers: fixed-width text tables
// for the experiment harness and summary statistics used by the figures.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted values: strings pass through, float64s
// are rendered with three decimals, everything else via %v.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.Add(row...)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// F3 formats with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
