// Package tracestore implements the content-addressed trace store.
//
// A trace's identity is the SHA-256 of its canonical .wct bytes (see
// internal/trace ref.go); the store maps that hash to a local file. The
// on-disk layout under the store root is:
//
//	objects/<hh>/<hash>.wct   the trace bytes, named by their own hash
//	refs/<hash>/<owner>       one empty file per ref-count owner
//	tmp/                      staging area for in-flight Puts
//
// where <hh> is the first two hex digits of the hash (fan-out so no
// directory grows unboundedly). Objects are immutable once written: a Put
// streams to tmp/ while hashing, validates the .wct header, and renames
// into place — a hash that exists is already the right bytes, so Put of a
// duplicate is a no-op (dedupe). Readers therefore never see partial
// objects, and two processes sharing a store root cannot corrupt it.
//
// Ref counting is advisory and file-based: AddRef(hash, owner) records
// that owner still wants the object, GC removes objects with no refs that
// are older than a grace period. Nothing in the read path consults refs —
// a store used purely as a cache can skip them entirely.
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"waycache/internal/trace"
)

// ErrNotFound reports a hash the store has no object for. Callers
// distinguish it (errors.Is) from I/O failures: "not here" can be cured
// by fetching from a peer, a read error cannot.
var ErrNotFound = errors.New("tracestore: object not found")

// Store is a content-addressed collection of .wct files rooted at a
// directory. Methods are safe for concurrent use by multiple goroutines
// and cooperating processes (all mutations go through atomic renames).
type Store struct {
	root string
}

// Open returns a Store rooted at dir, creating the layout if needed.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "refs", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.root, "objects", hash[:2], hash+trace.FileExt)
}

// Put streams r into the store, returning the content hash of the bytes
// and the byte count. The stream must be a well-formed .wct file — the
// header is validated before the object is committed, so the store never
// serves bytes the trace reader would reject outright. If the object
// already exists the stream is still drained (to compute its hash) but
// the existing object is kept.
func (s *Store) Put(r io.Reader) (hash string, n int64, err error) {
	created, hash, n, err := s.put(r, "")
	_ = created
	return hash, n, err
}

// PutExpected streams r into the store, requiring its content hash to be
// want. A mismatch is an error and nothing is stored — this is the
// server-side check for uploads that name their own hash. created
// reports whether the object was new.
func (s *Store) PutExpected(r io.Reader, want string) (created bool, n int64, err error) {
	if !trace.ValidHash(want) {
		return false, 0, fmt.Errorf("tracestore: invalid content hash %q", want)
	}
	created, _, n, err = s.put(r, want)
	return created, n, err
}

// PutFile adds the .wct file at path to the store.
func (s *Store) PutFile(path string) (hash string, n int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return s.Put(f)
}

func (s *Store) put(r io.Reader, want string) (created bool, hash string, n int64, err error) {
	tmp, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "put-*"+trace.FileExt)
	if err != nil {
		return false, "", 0, fmt.Errorf("tracestore: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		tmp.Close()
		os.Remove(tmpPath) // no-op once renamed into place
	}()

	sum := sha256.New()
	n, err = io.Copy(io.MultiWriter(tmp, sum), r)
	if err != nil {
		return false, "", n, fmt.Errorf("tracestore: reading trace: %w", err)
	}
	hash = hex.EncodeToString(sum.Sum(nil))
	if want != "" && hash != want {
		return false, "", n, fmt.Errorf("tracestore: content hash mismatch: bytes hash to %s, upload names %s",
			trace.ShortHash(hash), trace.ShortHash(want))
	}

	// Validate the header so a hash never names bytes the reader rejects
	// outright. Mid-stream corruption is deliberately allowed through —
	// the .wct error-deferral contract (errors surface at the consumption
	// point) applies to stored objects exactly as to local files.
	if f, err := trace.Open(tmpPath); err != nil {
		return false, "", n, fmt.Errorf("tracestore: not a valid trace: %w", err)
	} else {
		f.Close()
	}

	dst := s.objectPath(hash)
	if _, err := os.Stat(dst); err == nil {
		return false, hash, n, nil // dedupe: the bytes are already here
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return false, "", n, fmt.Errorf("tracestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return false, "", n, fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmpPath, dst); err != nil {
		return false, "", n, fmt.Errorf("tracestore: %w", err)
	}
	return true, hash, n, nil
}

// Path returns the local file path of the object named by hash, or an
// error wrapping ErrNotFound when the store has no such object. The
// signature matches core.TraceStore, so a *Store plugs directly into
// core.Config.TraceStore.
func (s *Store) Path(hash string) (string, error) {
	if !trace.ValidHash(hash) {
		return "", fmt.Errorf("tracestore: invalid content hash %q", hash)
	}
	p := s.objectPath(hash)
	if _, err := os.Stat(p); err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("%w: %s", ErrNotFound, trace.ShortHash(hash))
		}
		return "", fmt.Errorf("tracestore: %w", err)
	}
	return p, nil
}

// Has reports whether the store holds the object named by hash.
func (s *Store) Has(hash string) bool {
	_, err := s.Path(hash)
	return err == nil
}

// Open opens the object named by hash for reading, returning its size.
// The caller owns the returned file.
func (s *Store) Open(hash string) (*os.File, int64, error) {
	p, err := s.Path(hash)
	if err != nil {
		return nil, 0, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, 0, fmt.Errorf("tracestore: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("tracestore: %w", err)
	}
	return f, fi.Size(), nil
}

// Hashes lists every object in the store, sorted.
func (s *Store) Hashes() ([]string, error) {
	fans, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	var out []string
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		objs, err := os.ReadDir(filepath.Join(s.root, "objects", fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
		for _, o := range objs {
			name := o.Name()
			if filepath.Ext(name) != trace.FileExt {
				continue
			}
			h := name[:len(name)-len(trace.FileExt)]
			if trace.ValidHash(h) {
				out = append(out, h)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// AddRef records that owner wants the object named by hash kept. Owners
// are free-form tokens (a job name, a host, "pin"); adding the same
// (hash, owner) twice is a no-op.
func (s *Store) AddRef(hash, owner string) error {
	if !trace.ValidHash(hash) {
		return fmt.Errorf("tracestore: invalid content hash %q", hash)
	}
	if owner == "" || owner != filepath.Base(owner) {
		return fmt.Errorf("tracestore: invalid ref owner %q", owner)
	}
	dir := filepath.Join(s.root, "refs", hash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, owner), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	return f.Close()
}

// DropRef removes owner's ref on hash. Dropping a ref that does not
// exist is a no-op.
func (s *Store) DropRef(hash, owner string) error {
	if !trace.ValidHash(hash) {
		return fmt.Errorf("tracestore: invalid content hash %q", hash)
	}
	if owner == "" || owner != filepath.Base(owner) {
		return fmt.Errorf("tracestore: invalid ref owner %q", owner)
	}
	err := os.Remove(filepath.Join(s.root, "refs", hash, owner))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("tracestore: %w", err)
	}
	os.Remove(filepath.Join(s.root, "refs", hash)) // drop the dir if now empty
	return nil
}

// RefCount returns the number of owners holding refs on hash.
func (s *Store) RefCount(hash string) int {
	ents, err := os.ReadDir(filepath.Join(s.root, "refs", hash))
	if err != nil {
		return 0
	}
	return len(ents)
}

// GC removes objects that have no refs and were stored at least minAge
// ago, returning the hashes removed. The age floor keeps GC from racing
// a Put-then-AddRef sequence in another process: a freshly uploaded
// object is never collected before its owner had time to ref it.
func (s *Store) GC(minAge time.Duration) (removed []string, err error) {
	hashes, err := s.Hashes()
	if err != nil {
		return nil, err
	}
	cutoff := time.Now().Add(-minAge)
	for _, h := range hashes {
		if s.RefCount(h) > 0 {
			continue
		}
		p := s.objectPath(h)
		fi, err := os.Stat(p)
		if err != nil {
			continue // raced with another GC
		}
		if fi.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("tracestore: %w", err)
		}
		os.Remove(filepath.Join(s.root, "refs", h))
		removed = append(removed, h)
	}
	return removed, nil
}
