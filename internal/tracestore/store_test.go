package tracestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

// wctBytes builds a tiny valid .wct capture.
func wctBytes(t *testing.T, bench string, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Benchmark: bench, Insts: int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x1000)
	for i := 0; i < n; i++ {
		addr := uint64(0x8000 + i*16)
		in := trace.Inst{PC: pc, Kind: isa.KindLoad, Addr: addr, BaseValue: addr, Offset: 0}
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
		pc += isa.InstBytes
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sha(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := wctBytes(t, "gcc", 25)
	hash, n, err := s.Put(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if hash != sha(b) {
		t.Fatalf("Put hash %s, want %s", hash, sha(b))
	}
	if n != int64(len(b)) {
		t.Fatalf("Put counted %d bytes, want %d", n, len(b))
	}

	p, err := s.Path(hash)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("stored object differs from the uploaded bytes")
	}
	if !s.Has(hash) {
		t.Fatal("Has is false for a stored object")
	}

	f, size, err := s.Open(hash)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if size != int64(len(b)) {
		t.Fatalf("Open size %d, want %d", size, len(b))
	}
}

func TestPutDedupes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := wctBytes(t, "gcc", 10)
	h1, _, err := s.Put(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Path(h1)
	fi1, _ := os.Stat(p)

	time.Sleep(10 * time.Millisecond)
	h2, _, err := s.Put(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same bytes hashed differently: %s vs %s", h1, h2)
	}
	fi2, _ := os.Stat(p)
	if !fi1.ModTime().Equal(fi2.ModTime()) {
		t.Fatal("duplicate Put rewrote the existing object")
	}
	hashes, err := s.Hashes()
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != 1 || hashes[0] != h1 {
		t.Fatalf("Hashes = %v, want [%s]", hashes, h1)
	}
}

func TestPutExpected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := wctBytes(t, "gcc", 10)

	created, _, err := s.PutExpected(bytes.NewReader(b), sha(b))
	if err != nil || !created {
		t.Fatalf("PutExpected = (%v, %v), want created", created, err)
	}
	created, _, err = s.PutExpected(bytes.NewReader(b), sha(b))
	if err != nil || created {
		t.Fatalf("second PutExpected = (%v, %v), want existing", created, err)
	}

	wrong := strings.Repeat("00", 32)
	if _, _, err := s.PutExpected(bytes.NewReader(b), wrong); err == nil {
		t.Fatal("PutExpected accepted a wrong hash")
	}
	if s.Has(wrong) {
		t.Fatal("failed PutExpected left an object behind")
	}
	if _, _, err := s.PutExpected(bytes.NewReader(b), "nothex"); err == nil {
		t.Fatal("PutExpected accepted a malformed hash")
	}
}

func TestPutRejectsNonTrace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(strings.NewReader("this is not a wct file")); err == nil {
		t.Fatal("Put accepted bytes with no trace header")
	}
	hashes, _ := s.Hashes()
	if len(hashes) != 0 {
		t.Fatalf("rejected Put left objects: %v", hashes)
	}
	// The staging area must not leak temp files.
	tmps, _ := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("rejected Put leaked %d temp files", len(tmps))
	}
}

func TestPathNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	missing := strings.Repeat("ab", 32)
	if _, err := s.Path(missing); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Path(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Path("nothex"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Path(malformed) = %v, want a validation error distinct from ErrNotFound", err)
	}
}

func TestPutFile(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := wctBytes(t, "swim", 15)
	path := filepath.Join(t.TempDir(), "swim.wct")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	hash, _, err := s.PutFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hash != sha(b) {
		t.Fatalf("PutFile hash %s, want %s", hash, sha(b))
	}
}

func TestRefsAndGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b1 := wctBytes(t, "gcc", 10)
	b2 := wctBytes(t, "swim", 10)
	h1, _, _ := s.Put(bytes.NewReader(b1))
	h2, _, _ := s.Put(bytes.NewReader(b2))

	if err := s.AddRef(h1, "job-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRef(h1, "job-a"); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.AddRef(h1, "job-b"); err != nil {
		t.Fatal(err)
	}
	if got := s.RefCount(h1); got != 2 {
		t.Fatalf("RefCount = %d, want 2", got)
	}
	if err := s.AddRef(h1, "../escape"); err == nil {
		t.Fatal("AddRef accepted a path-traversal owner")
	}

	// Unreferenced h2 is collected once old enough; referenced h1 stays.
	old := time.Now().Add(-time.Hour)
	for _, h := range []string{h1, h2} {
		p, _ := s.Path(h)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.GC(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != h2 {
		t.Fatalf("GC removed %v, want [%s]", removed, h2)
	}
	if !s.Has(h1) || s.Has(h2) {
		t.Fatal("GC removed the wrong object")
	}

	// Fresh unreferenced objects survive the age floor.
	h3, _, _ := s.Put(bytes.NewReader(wctBytes(t, "mesa", 5)))
	removed, err = s.GC(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 || !s.Has(h3) {
		t.Fatalf("GC collected a fresh object: removed=%v", removed)
	}

	// Dropping the last ref makes h1 collectable.
	if err := s.DropRef(h1, "job-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropRef(h1, "job-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropRef(h1, "job-b"); err != nil { // idempotent
		t.Fatal(err)
	}
	removed, err = s.GC(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != h1 {
		t.Fatalf("GC after DropRef removed %v, want [%s]", removed, h1)
	}
}

func TestStoreServesArenaLoadRef(t *testing.T) {
	// End-to-end with the arena: the store path plus the store's own hash
	// is exactly what LoadRef wants.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := wctBytes(t, "gcc", 40)
	hash, _, err := s.Put(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Path(hash)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewArena(0).LoadRef(p, hash)
	if err != nil {
		t.Fatal(err)
	}
	if h := src.Header(); h.Benchmark != "gcc" || h.Insts != 40 {
		t.Fatalf("replayed header %+v", h)
	}
	var in trace.Inst
	count := 0
	for src.Next(&in) {
		count++
	}
	if count != 40 || src.Err() != nil {
		t.Fatalf("replayed %d records, err %v", count, src.Err())
	}
}
