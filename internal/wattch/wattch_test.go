package wattch

import (
	"testing"

	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/pipeline"
)

func sampleStats() pipeline.Stats {
	return pipeline.Stats{
		Cycles: 1000, Committed: 2000,
		FetchGroups: 300, Dispatched: 2100, Issued: 2050,
		Loads: 500, Stores: 200, Branches: 250,
		RegReads: 3000, RegWrites: 1800,
		IntOps: 900, FPOps: 150,
	}
}

func TestBreakdownTotalsAndShares(t *testing.T) {
	d := &energy.Account{Costs: energy.PaperCosts(), ParallelReads: 500, Writes: 200, Fills: 20}
	i := &energy.Account{Costs: energy.PaperCosts(), ParallelReads: 300, Fills: 5}
	h := cache.HierarchyStats{L2Accesses: 25, Writebacks: 5}
	b := Compute(sampleStats(), d, i, h, DefaultUnits())

	sum := b.Clock + b.Frontend + b.Rename + b.Window + b.Regfile + b.FU + b.LSQ + b.L1I + b.L1D + b.L2
	if diff := b.Total() - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Total %v != component sum %v", b.Total(), sum)
	}
	if b.L1D != d.Total() || b.L1I != i.Total() {
		t.Fatal("L1 components must equal the accounts' totals")
	}
	share := b.L1Share()
	if share <= 0 || share >= 1 {
		t.Fatalf("L1Share = %v", share)
	}
}

func TestClockScalesWithCycles(t *testing.T) {
	d := &energy.Account{Costs: energy.PaperCosts()}
	i := &energy.Account{Costs: energy.PaperCosts()}
	ps := sampleStats()
	b1 := Compute(ps, d, i, cache.HierarchyStats{}, DefaultUnits())
	ps.Cycles *= 2
	b2 := Compute(ps, d, i, cache.HierarchyStats{}, DefaultUnits())
	if b2.Clock != 2*b1.Clock {
		t.Fatalf("clock energy %v -> %v not proportional to cycles", b1.Clock, b2.Clock)
	}
}

func TestZeroActivityZeroEnergy(t *testing.T) {
	d := &energy.Account{Costs: energy.PaperCosts()}
	i := &energy.Account{Costs: energy.PaperCosts()}
	b := Compute(pipeline.Stats{}, d, i, cache.HierarchyStats{}, DefaultUnits())
	if b.Total() != 0 {
		t.Fatalf("zero activity produced energy %v", b.Total())
	}
	if b.L1Share() != 0 {
		t.Fatal("L1Share of zero-energy run should be 0")
	}
}

func TestCacheSavingsMoveTotal(t *testing.T) {
	// Replacing parallel reads with one-way reads must reduce the total by
	// exactly the L1 delta — no hidden coupling.
	ps := sampleStats()
	h := cache.HierarchyStats{}
	par := &energy.Account{Costs: energy.PaperCosts(), ParallelReads: 500}
	one := &energy.Account{Costs: energy.PaperCosts(), OneWayReads: 500}
	i := &energy.Account{Costs: energy.PaperCosts()}
	bPar := Compute(ps, par, i, h, DefaultUnits())
	bOne := Compute(ps, one, i, h, DefaultUnits())
	wantDelta := par.Total() - one.Total()
	if got := bPar.Total() - bOne.Total(); got-wantDelta > 1e-9 || wantDelta-got > 1e-9 {
		t.Fatalf("total delta %v != L1 delta %v", got, wantDelta)
	}
}
