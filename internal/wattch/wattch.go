// Package wattch estimates whole-processor dynamic energy from pipeline
// activity counts, in the spirit of Wattch's activity-based accounting.
//
// Every unit has a per-event energy in the same normalized units as the
// cache model (1.0 = one parallel read of the reference 16 KB 4-way L1).
// The unit constants are calibrated so that, for the parallel-access
// baseline, the two L1 caches dissipate 10–16 % of total processor energy
// — the paper's own characterization of its Wattch configuration — with a
// plausible Wattch-like split for the rest (clock dominant, then the issue
// window, functional units, register file, front end).
package wattch

import (
	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/pipeline"
)

// Units holds per-event energies for the non-cache processor units.
type Units struct {
	Clock    float64 // per cycle: clock tree + latches (conditional clocking folded in)
	Rename   float64 // per dispatched instruction
	Window   float64 // per issued instruction: wakeup + select
	LSQ      float64 // per load or store: address CAM + queue write
	RegRead  float64 // per register-file read port use
	RegWrite float64 // per register-file write
	IntOp    float64 // per integer ALU/multiplier operation
	FPOp     float64 // per floating-point operation
	Fetch    float64 // per fetch group: fetch datapath + BTB probe
	Dir      float64 // per conditional branch: direction-predictor access
	L2Access float64 // per L2 access (reads, fills, writebacks)
}

// DefaultUnits returns the calibrated constants.
func DefaultUnits() Units {
	return Units{
		Clock:    2.6,
		Rename:   0.20,
		Window:   0.55,
		LSQ:      0.15,
		RegRead:  0.12,
		RegWrite: 0.15,
		IntOp:    0.40,
		FPOp:     0.90,
		Fetch:    0.50,
		Dir:      0.15,
		L2Access: 3.50,
	}
}

// Breakdown is the per-unit energy total of one run.
type Breakdown struct {
	Clock    float64
	Frontend float64 // fetch datapath, BTB, direction predictor
	Rename   float64
	Window   float64
	Regfile  float64
	FU       float64
	LSQ      float64
	L1I      float64 // includes way-prediction structure overhead
	L1D      float64 // includes prediction-table overhead
	L2       float64
}

// Total sums all units.
func (b Breakdown) Total() float64 {
	return b.Clock + b.Frontend + b.Rename + b.Window + b.Regfile +
		b.FU + b.LSQ + b.L1I + b.L1D + b.L2
}

// L1Share returns the L1 i+d fraction of total energy.
func (b Breakdown) L1Share() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.L1I + b.L1D) / t
}

// Compute prices a run's activity. dAcct and iAcct are the L1 energy
// accounts maintained by the access controllers; hier the shared L2/memory
// statistics.
func Compute(ps pipeline.Stats, dAcct, iAcct *energy.Account, hier cache.HierarchyStats, u Units) Breakdown {
	return Breakdown{
		Clock:    float64(ps.Cycles) * u.Clock,
		Frontend: float64(ps.FetchGroups)*u.Fetch + float64(ps.Branches)*u.Dir,
		Rename:   float64(ps.Dispatched) * u.Rename,
		Window:   float64(ps.Issued) * u.Window,
		Regfile:  float64(ps.RegReads)*u.RegRead + float64(ps.RegWrites)*u.RegWrite,
		FU:       float64(ps.IntOps)*u.IntOp + float64(ps.FPOps)*u.FPOp,
		LSQ:      float64(ps.Loads+ps.Stores) * u.LSQ,
		L1I:      iAcct.Total(),
		L1D:      dAcct.Total(),
		L2:       float64(hier.L2Accesses+hier.Writebacks) * u.L2Access,
	}
}
