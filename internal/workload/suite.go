package workload

import (
	"fmt"
	"sort"

	"waycache/internal/program"
)

// Stream constructor helpers. All data streams produce 8-byte-aligned base
// values; immediate offsets are multiples of 8 as well, so effective
// addresses look like compiled scalar code.

func seqStream(name string, base, length uint64, stride int64, advEvery int) program.Stream {
	return program.Stream{Name: name, Kind: program.StreamSeq, Base: base, Length: length,
		Stride: stride, AdvanceEvery: advEvery, Align: 8}
}

func globalStream(name string, base uint64) program.Stream {
	return program.Stream{Name: name, Kind: program.StreamGlobal, Base: base}
}

func randomStream(name string, base, length uint64, advEvery int) program.Stream {
	return program.Stream{Name: name, Kind: program.StreamRandom, Base: base, Length: length,
		AdvanceEvery: advEvery, Align: 8}
}

func chaseStream(name string, base, length uint64, advEvery int) program.Stream {
	return program.Stream{Name: name, Kind: program.StreamChase, Base: base, Length: length,
		AdvanceEvery: advEvery, Align: 8}
}

func stackStream(name string, frameBytes int64) program.Stream {
	return program.Stream{Name: name, Kind: program.StreamStack, Base: StackBase - stackSlot,
		Stride: frameBytes}
}

func cyclicStream(name string, base uint64, nways int, cycleStride uint64, advEvery int) program.Stream {
	return program.Stream{Name: name, Kind: program.StreamCyclic, Base: base, NWays: nways,
		CycleStride: cycleStride, AdvanceEvery: advEvery}
}

// The 16 KB direct-mapping span: addresses equal modulo dmSpan collide in
// the 16 KB direct-mapped reference cache and in the direct-mapping
// position of the 16 KB 4-way cache (index bits + 2 borrowed tag bits).
const dmSpan = 16 << 10

// Small hot objects are placed at deliberate offsets within the 16 KB span
// so they do not alias each other accidentally; only the cf* conflict sets
// (spaced exactly dmSpan apart) collide by construction. Large streamed
// regions necessarily sweep the whole span — that interference is real and
// wanted.
//
//	0x0000-0x0BFF  hot globals (slotG0/G1/G2)
//	0x0C00-0x1BFF  small resident array
//	0x1C00-0x27FF  conflict set (duo/trio spaced dmSpan apart)
//	0x2800-0x33FF  stack frames (descending from 0x3400)
const (
	slotG0    = 0x0000
	slotG1    = 0x0400
	slotG2    = 0x0800
	slotRes   = 0x0C00
	slotCf    = 0x1C00
	stackSlot = 0x0C00 // StackBase is dmSpan-aligned; descend from slot 0x3400
)

// Suite returns the synthetic stand-ins for the paper's Table 2
// applications, in alphabetical order (the paper's table order).
func Suite() []Profile {
	return []Profile{
		applu(), fpppp(), gcc(), govm(), li(), m88ksim(),
		mgrid(), perl(), swim(), troff(), vortex(),
	}
}

// Names lists the suite's benchmark names in order.
func Names() []string {
	s := Suite()
	names := make([]string, len(s))
	for i, p := range s {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, known)
}

// conflictPair returns the canonical conflicting-access generator: two hot
// blocks exactly dmSpan apart, alternated deterministically. Every switch
// misses in a direct-mapped cache (and in the direct-mapping *position* of
// the 4-way cache, which is what the victim list must learn), while the
// 4-way set-associative cache keeps both resident.
//
// Binding weight and miss contribution are decoupled: the stream is bound
// with a substantial weight (so every hot loop carries a representative
// template and the dynamic mix is stable) while advEvery throttles how
// often the pair actually alternates — the direct-mapped miss contribution
// is weight/advEvery, tuned per benchmark.
func conflictPair(advEvery int) program.Stream {
	return cyclicStream("cfpair", GlobalBase+slotCf, 2, dmSpan, advEvery)
}

// Standard integer-code binding weights for the intStreams environment:
// irregular, resident, stack, gA, gB, gC, cfpair. Rare *behaviour* is
// expressed through AdvanceEvery, never through tiny binding weights,
// which would make the dynamic mix a lottery over which loops are hot.
var intWeights = []float64{0.12, 0.26, 0.20, 0.14, 0.10, 0.08, 0.08}

// intStreams builds the common integer-code data environment: one
// irregular region (chase or random), a small resident array, stack, three
// hot globals, and the conflict pair.
func intStreams(irregular program.Stream, cfAdv int) []program.Stream {
	g := GlobalBase
	return []program.Stream{
		irregular,
		seqStream("resident", g+slotRes, 3<<10, 32, 1),
		stackStream("stack", 160),
		globalStream("gA", g+slotG0),
		globalStream("gB", g+slotG1),
		globalStream("gC", g+slotG2),
		conflictPair(cfAdv),
	}
}

// applu — FP solver: long basic blocks, deep fixed-trip loops, large grid
// arrays streamed with good spatial locality. High miss rate in both DM
// and 4-way (capacity), small conflict component (Table 4: 8.2 / 7.0).
func applu() Profile {
	h, g := HeapBase, GlobalBase
	return Profile{
		Name: "applu", Seed: 0xA991,
		Funcs: 14, BlocksPerFunc: [2]int{6, 12}, InstsPerBlock: [2]int{14, 26},
		LoadFrac: 0.28, StoreFrac: 0.10, FPFrac: 0.75,
		LoopFrac: 0.50, LoopTrip: 40, LoopFixed: true,
		CallFrac: 0.04, BiasedFrac: 0.75, RandomFrac: 0.10, TakenBias: 0.85, FallFrac: 0.1,
		OffsetMax: 24,
		Streams: []program.Stream{
			seqStream("grid1", h, 1<<20, 8, 2),
			seqStream("grid2", h+2<<20, 512<<10, 16, 1),
			seqStream("resident", g+slotRes, 2<<10, 32, 1),
			globalStream("gA", g+slotG0),
			globalStream("gB", g+slotG1),
			conflictPair(8),
		},
		StreamWeights: []float64{0.24, 0.055, 0.14, 0.15, 0.14, 0.08},
	}
}

// fpppp — FP chemistry kernel: enormous basic blocks and a code footprint
// far beyond 16 KB (the i-cache thrasher of Figure 10), data mostly
// resident except a trio of DM-conflicting hot arrays (6.3 / 0.5).
func fpppp() Profile {
	h, g := HeapBase, GlobalBase
	return Profile{
		Name: "fpppp", Seed: 0xF1FF,
		Funcs: 16, BlocksPerFunc: [2]int{12, 24}, InstsPerBlock: [2]int{30, 60},
		LoadFrac: 0.33, StoreFrac: 0.12, FPFrac: 0.85,
		LoopFrac: 0.10, LoopTrip: 6, LoopFixed: false,
		CallFrac: 0.10, BiasedFrac: 0.82, RandomFrac: 0.03, TakenBias: 0.92, FallFrac: 0.3,
		OffsetMax: 24,
		Streams: []program.Stream{
			seqStream("work", h, 64<<10, 8, 4),
			seqStream("resident", g+slotRes, 4<<10, 32, 1),
			globalStream("gA", g+slotG0),
			globalStream("gB", g+slotG1),
			globalStream("cfA", g+slotCf),
			globalStream("cfB", g+slotCf+dmSpan),
			globalStream("cfC", g+slotCf+2*dmSpan),
		},
		StreamWeights: []float64{0.05, 0.26, 0.28, 0.27, 0.017, 0.017, 0.017},
	}
}

// gcc — compiler: many functions, short blocks, call-dense, data spread
// over IR-sized chased structures plus DM-conflicting hot tables
// (5.1 / 3.3).
func gcc() Profile {
	h := HeapBase
	return Profile{
		Name: "gcc", Seed: 0x6CC1,
		Funcs: 80, BlocksPerFunc: [2]int{6, 14}, InstsPerBlock: [2]int{4, 10},
		LoadFrac: 0.26, StoreFrac: 0.11, FPFrac: 0.0,
		LoopFrac: 0.22, LoopTrip: 10, LoopFixed: false,
		CallFrac: 0.12, BiasedFrac: 0.75, RandomFrac: 0.05, TakenBias: 0.9, FallFrac: 0.1,
		OffsetMax:     32,
		Streams:       intStreams(chaseStream("ir", h, 48<<10, 3), 4),
		StreamWeights: intWeights,
	}
}

// govm — the go-playing program (named govm internally to avoid clashing
// with the language): branchy, irregular, random-ish board reads with a
// strong conflict component (5.9 / 2.0).
func govm() Profile {
	h := HeapBase
	return Profile{
		Name: "go", Seed: 0x6011,
		Funcs: 60, BlocksPerFunc: [2]int{6, 14}, InstsPerBlock: [2]int{4, 10},
		LoadFrac: 0.27, StoreFrac: 0.09, FPFrac: 0.0,
		LoopFrac: 0.20, LoopTrip: 8, LoopFixed: false,
		CallFrac: 0.10, BiasedFrac: 0.62, RandomFrac: 0.18, TakenBias: 0.82, FallFrac: 0.1,
		OffsetMax:     24,
		Streams:       intStreams(randomStream("board", h, 40<<10, 4), 2),
		StreamWeights: intWeights,
	}
}

// li — lisp interpreter: cons-cell chasing with strong temporal reuse,
// deep call stacks (4.7 / 3.3).
func li() Profile {
	h := HeapBase
	return Profile{
		Name: "li", Seed: 0x1151,
		Funcs: 30, BlocksPerFunc: [2]int{4, 9}, InstsPerBlock: [2]int{4, 9},
		LoadFrac: 0.29, StoreFrac: 0.10, FPFrac: 0.0,
		LoopFrac: 0.18, LoopTrip: 8, LoopFixed: false,
		CallFrac: 0.16, BiasedFrac: 0.73, RandomFrac: 0.05, TakenBias: 0.88, FallFrac: 0.1,
		OffsetMax:     16,
		Streams:       intStreams(chaseStream("cons", h, 40<<10, 3), 6),
		StreamWeights: intWeights,
	}
}

// m88ksim — CPU simulator: tight interpreter loop over big global machine
// state (3.5 / 1.3).
func m88ksim() Profile {
	h := HeapBase
	return Profile{
		Name: "m88ksim", Seed: 0x8851,
		Funcs: 40, BlocksPerFunc: [2]int{5, 11}, InstsPerBlock: [2]int{5, 10},
		LoadFrac: 0.27, StoreFrac: 0.10, FPFrac: 0.0,
		LoopFrac: 0.25, LoopTrip: 10, LoopFixed: false,
		CallFrac: 0.10, BiasedFrac: 0.76, RandomFrac: 0.04, TakenBias: 0.92, FallFrac: 0.1,
		OffsetMax:     24,
		Streams:       intStreams(randomStream("memimg", h, 48<<10, 12), 4),
		StreamWeights: intWeights,
	}
}

// mgrid — multigrid FP stencil: almost pure sequential streaming, nearly
// all accesses non-conflicting (5.4 / 5.1; the paper notes >99 %
// non-conflicting accesses).
func mgrid() Profile {
	h, g := HeapBase, GlobalBase
	return Profile{
		Name: "mgrid", Seed: 0x4641,
		Funcs: 12, BlocksPerFunc: [2]int{5, 10}, InstsPerBlock: [2]int{14, 26},
		LoadFrac: 0.30, StoreFrac: 0.08, FPFrac: 0.8,
		LoopFrac: 0.55, LoopTrip: 60, LoopFixed: true,
		CallFrac: 0.03, BiasedFrac: 0.80, RandomFrac: 0.05, TakenBias: 0.9, FallFrac: 0.1,
		OffsetMax: 16,
		Streams: []program.Stream{
			seqStream("grid", h, 2<<20, 8, 2),
			seqStream("gridB", h+4<<20, 1<<20, 8, 1),
			seqStream("resident", g+slotRes, 2<<10, 32, 1),
			globalStream("gA", g+slotG0),
			globalStream("gB", g+slotG1),
			conflictPair(24),
		},
		StreamWeights: []float64{0.31, 0.09, 0.14, 0.18, 0.17, 0.08},
	}
}

// perl — interpreter: hash-table randomness plus conflicting hot globals
// (3.0 / 1.3).
func perl() Profile {
	h := HeapBase
	return Profile{
		Name: "perl", Seed: 0x9E23,
		Funcs: 50, BlocksPerFunc: [2]int{5, 11}, InstsPerBlock: [2]int{4, 10},
		LoadFrac: 0.28, StoreFrac: 0.11, FPFrac: 0.05,
		LoopFrac: 0.22, LoopTrip: 9, LoopFixed: false,
		CallFrac: 0.13, BiasedFrac: 0.73, RandomFrac: 0.05, TakenBias: 0.88, FallFrac: 0.1,
		OffsetMax:     24,
		Streams:       intStreams(chaseStream("hash", h, 32<<10, 3), 5),
		StreamWeights: intWeights,
	}
}

// swim — shallow-water FP code: huge streaming arrays plus the pathology
// the paper calls out: a >4-way cyclic conflict pattern that makes the
// 4-way LRU cache miss *more* than direct-mapped (23.3 / 25.2).
func swim() Profile {
	h, g := HeapBase, GlobalBase
	return Profile{
		Name: "swim", Seed: 0x5A13,
		Funcs: 10, BlocksPerFunc: [2]int{5, 10}, InstsPerBlock: [2]int{16, 30},
		LoadFrac: 0.30, StoreFrac: 0.10, FPFrac: 0.8,
		LoopFrac: 0.55, LoopTrip: 80, LoopFixed: true,
		CallFrac: 0.02, BiasedFrac: 0.85, RandomFrac: 0.03, TakenBias: 0.9, FallFrac: 0.1,
		OffsetMax: 8,
		Streams: []program.Stream{
			seqStream("u", h, 4<<20, 8, 1),
			seqStream("v", h+8<<20, 4<<20, 8, 1),
			// Five blocks 4 KB apart: same 4-way set, cycled round-robin.
			// LRU in 4 ways loses every time; only the pair 16 KB apart
			// collides in the direct-mapped positions, so DM does better.
			cyclicStream("pathological", g+0x3400, 5, 4<<10, 1),
			seqStream("resident", g+slotRes, 4<<10, 32, 1),
			globalStream("gA", g+slotG0),
			globalStream("gB", g+slotG1),
			conflictPair(4),
		},
		StreamWeights: []float64{0.20, 0.17, 0.160, 0.18, 0.12, 0.10, 0.080},
	}
}

// troff — text formatter: small working set, mostly resident, a modest
// conflict pair (2.7 / 0.8).
func troff() Profile {
	h := HeapBase
	return Profile{
		Name: "troff", Seed: 0x7201,
		Funcs: 35, BlocksPerFunc: [2]int{5, 10}, InstsPerBlock: [2]int{4, 10},
		LoadFrac: 0.27, StoreFrac: 0.10, FPFrac: 0.0,
		LoopFrac: 0.25, LoopTrip: 10, LoopFixed: false,
		CallFrac: 0.10, BiasedFrac: 0.76, RandomFrac: 0.04, TakenBias: 0.92, FallFrac: 0.1,
		OffsetMax:     16,
		Streams:       intStreams(randomStream("doc", h, 24<<10, 8), 4),
		StreamWeights: intWeights,
	}
}

// vortex — object-oriented database: store-heavy, chased object graphs
// (3.1 / 1.8).
func vortex() Profile {
	h := HeapBase
	return Profile{
		Name: "vortex", Seed: 0xB0B1,
		Funcs: 70, BlocksPerFunc: [2]int{5, 11}, InstsPerBlock: [2]int{4, 10},
		LoadFrac: 0.25, StoreFrac: 0.15, FPFrac: 0.0,
		LoopFrac: 0.20, LoopTrip: 9, LoopFixed: false,
		CallFrac: 0.12, BiasedFrac: 0.74, RandomFrac: 0.04, TakenBias: 0.9, FallFrac: 0.1,
		OffsetMax:     32,
		Streams:       intStreams(chaseStream("objects", h, 40<<10, 5), 6),
		StreamWeights: intWeights,
	}
}
