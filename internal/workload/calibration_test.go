package workload

import (
	"testing"

	"waycache/internal/cache"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

// missRates runs n instructions of the profile through a 16 KB
// direct-mapped and a 16 KB 4-way cache and returns the d-cache miss rates,
// mirroring the paper's Table 4 methodology.
func missRates(t *testing.T, p Profile, n int64) (dm, sa float64) {
	t.Helper()
	dmc := cache.New(cache.Config{Name: "dm", SizeBytes: 16 << 10, Ways: 1, BlockBytes: 32})
	sac := cache.New(cache.Config{Name: "sa", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32})
	w := p.NewWalker()
	var in trace.Inst
	for i := int64(0); i < n; i++ {
		if !w.Next(&in) {
			t.Fatalf("%s: walker ended early", p.Name)
		}
		if in.Kind.IsMem() {
			dmc.Access(in.Addr, in.Kind == isa.KindStore)
			sac.Access(in.Addr, in.Kind == isa.KindStore)
		}
	}
	return dmc.Stats().MissRate(), sac.Stats().MissRate()
}

// paperTable4 holds the published miss rates (percent) for reference.
var paperTable4 = map[string][2]float64{
	"applu": {8.2, 7.0}, "fpppp": {6.3, 0.5}, "gcc": {5.1, 3.3},
	"go": {5.9, 2.0}, "li": {4.7, 3.3}, "m88ksim": {3.5, 1.3},
	"mgrid": {5.4, 5.1}, "perl": {3.0, 1.3}, "swim": {23.3, 25.2},
	"troff": {2.7, 0.8}, "vortex": {3.1, 1.8},
}

func TestTable4Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	const n = 1_500_000
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			dm, sa := missRates(t, p, n)
			want := paperTable4[p.Name]
			t.Logf("%-8s DM %.1f%% (paper %.1f) | 4-way %.1f%% (paper %.1f)",
				p.Name, dm*100, want[0], sa*100, want[1])

			if p.Name == "swim" {
				// The pathological case: 4-way must be at least as bad as DM,
				// and both must be high.
				if sa < dm-0.01 {
					t.Errorf("swim: 4-way (%.1f%%) should not beat DM (%.1f%%)", sa*100, dm*100)
				}
				if dm < 0.10 {
					t.Errorf("swim DM miss rate %.1f%% too low", dm*100)
				}
				return
			}
			// Everyone else: DM strictly worse than 4-way.
			if dm <= sa {
				t.Errorf("%s: DM (%.2f%%) not worse than 4-way (%.2f%%)", p.Name, dm*100, sa*100)
			}
			// Coarse magnitude bands: within a factor of ~2.5 of the paper.
			checkBand := func(label string, got, paper float64) {
				lo, hi := paper/2.5, paper*2.5
				if got*100 < lo || got*100 > hi {
					t.Errorf("%s %s miss %.2f%% outside [%.2f, %.2f] around paper's %.1f%%",
						p.Name, label, got*100, lo, hi, paper)
				}
			}
			checkBand("DM", dm, want[0])
			checkBand("4-way", sa, want[1])
		})
	}
}
