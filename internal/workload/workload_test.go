package workload

import (
	"testing"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

func TestSuiteCompleteness(t *testing.T) {
	s := Suite()
	if len(s) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (Table 2)", len(s))
	}
	want := []string{"applu", "fpppp", "gcc", "go", "li", "m88ksim",
		"mgrid", "perl", "swim", "troff", "vortex"}
	for i, name := range want {
		if s[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, s[i].Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatalf("ByName(swim) = %v, %v", p.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestAllProfilesBuild(t *testing.T) {
	for _, p := range Suite() {
		prog, err := p.Build()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", p.Name, err)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	w1, w2 := p.NewWalker(), p.NewWalker()
	var a, b trace.Inst
	for i := 0; i < 20000; i++ {
		w1.Next(&a)
		w2.Next(&b)
		if a != b {
			t.Fatalf("gcc walkers diverged at %d", i)
		}
	}
}

func TestInstructionMixes(t *testing.T) {
	// Dynamic mixes should be in sane ranges: loads 15-40%, stores 5-20%,
	// branches present, and FP benchmarks actually issue FP ops.
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			w := p.NewWalker()
			var in trace.Inst
			counts := map[isa.Kind]int{}
			const n = 300000
			for i := 0; i < n; i++ {
				w.Next(&in)
				counts[in.Kind]++
			}
			loads := float64(counts[isa.KindLoad]) / n
			stores := float64(counts[isa.KindStore]) / n
			branches := float64(counts[isa.KindBranch]+counts[isa.KindJump]+
				counts[isa.KindCall]+counts[isa.KindReturn]) / n
			fp := float64(counts[isa.KindFPALU]+counts[isa.KindFPMul]+counts[isa.KindFPDiv]) / n

			if loads < 0.12 || loads > 0.45 {
				t.Errorf("load fraction %.2f out of range", loads)
			}
			if stores < 0.03 || stores > 0.25 {
				t.Errorf("store fraction %.2f out of range", stores)
			}
			if branches < 0.005 || branches > 0.35 {
				t.Errorf("control fraction %.2f out of range", branches)
			}
			isFP := p.FPFrac > 0.3
			if isFP && fp < 0.15 {
				t.Errorf("FP benchmark has only %.2f FP ops", fp)
			}
			if !isFP && fp > 0.1 {
				t.Errorf("integer benchmark has %.2f FP ops", fp)
			}
		})
	}
}

func TestCodeFootprints(t *testing.T) {
	// fpppp must have the largest footprint, well beyond the 16 KB i-cache;
	// FP loop kernels must be comparatively small.
	sizes := map[string]uint64{}
	for _, p := range Suite() {
		sizes[p.Name] = p.MustBuild().CodeBytes()
	}
	if sizes["fpppp"] < 32<<10 {
		t.Errorf("fpppp code %d bytes; need >32K to thrash a 16K i-cache", sizes["fpppp"])
	}
	for _, small := range []string{"mgrid", "swim", "li"} {
		if sizes[small] >= sizes["fpppp"] {
			t.Errorf("%s (%d) should be smaller than fpppp (%d)", small, sizes[small], sizes["fpppp"])
		}
	}
}

func TestBasicBlockLengths(t *testing.T) {
	// FP codes have long basic blocks (the paper's premise for SAWP use);
	// integer codes short ones. Measure dynamic run length between control
	// instructions.
	runLen := func(name string) float64 {
		p, _ := ByName(name)
		w := p.NewWalker()
		var in trace.Inst
		runs, cur, total := 0, 0, 0
		for i := 0; i < 200000; i++ {
			w.Next(&in)
			cur++
			if in.Kind.IsControl() {
				runs++
				total += cur
				cur = 0
			}
		}
		if runs == 0 {
			return 0
		}
		return float64(total) / float64(runs)
	}
	fp := runLen("fpppp")
	gcc := runLen("gcc")
	if fp < 2*gcc {
		t.Errorf("fpppp dynamic block length %.1f not ≫ gcc %.1f", fp, gcc)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := Profile{Name: "", Funcs: 1}
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	p, _ := ByName("gcc")
	p.StreamWeights = p.StreamWeights[:2]
	if err := p.Validate(); err == nil {
		t.Error("weight/stream mismatch accepted")
	}
	p2, _ := ByName("gcc")
	p2.LoadFrac, p2.StoreFrac = 0.6, 0.5
	if err := p2.Validate(); err == nil {
		t.Error("overfull memory mix accepted")
	}
}

func TestMemoryPayloads(t *testing.T) {
	// Every memory instruction must satisfy Addr = BaseValue + Offset and
	// have 8-aligned addresses (scalar ISA convention).
	p, _ := ByName("vortex")
	w := p.NewWalker()
	var in trace.Inst
	seen := 0
	for i := 0; i < 100000; i++ {
		w.Next(&in)
		if !in.Kind.IsMem() {
			continue
		}
		seen++
		if in.Addr != in.BaseValue+uint64(int64(in.Offset)) {
			t.Fatalf("payload inconsistency: %+v", in)
		}
		if in.Addr%8 != 0 {
			t.Fatalf("unaligned access %#x", in.Addr)
		}
	}
	if seen == 0 {
		t.Fatal("no memory instructions seen")
	}
}
