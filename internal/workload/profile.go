// Package workload defines the synthetic benchmark suite standing in for
// the paper's SPEC95 applications (Table 2), and the profile-driven
// program generator that builds them.
//
// Each benchmark is a Profile: knobs for code shape (functions, basic-block
// lengths, loop structure, call density), branch behaviour, instruction mix
// and — most importantly for this paper — the data-reference streams whose
// conflict and locality structure is calibrated against the paper's Table 4
// miss rates (direct-mapped vs 4-way set-associative 16 KB L1).
package workload

import (
	"fmt"

	"waycache/internal/isa"
	"waycache/internal/prng"
	"waycache/internal/program"
	"waycache/internal/trace"
)

// Memory-layout bases for generated data regions.
const (
	GlobalBase uint64 = 0x0060_0000
	HeapBase   uint64 = 0x0080_0000
	StackBase         = program.StackBase
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	Seed uint64

	// Code shape.
	Funcs         int
	BlocksPerFunc [2]int // inclusive min,max
	InstsPerBlock [2]int // inclusive min,max (body length)

	// Instruction mix (fractions of body instructions).
	LoadFrac  float64
	StoreFrac float64
	FPFrac    float64 // fraction of compute instructions that are FP

	// Control behaviour.
	LoopFrac   float64 // fraction of non-final blocks ending in a back-edge
	LoopTrip   float64 // mean loop trip count
	LoopFixed  bool    // trip counts exactly LoopTrip (predictable)
	CallFrac   float64 // fraction of non-final blocks ending in a call
	BiasedFrac float64 // of remaining branches: biased conditionals
	RandomFrac float64 // of remaining branches: 50/50 conditionals
	TakenBias  float64 // probability for biased branches
	FallFrac   float64 // of remaining blocks: plain fallthrough

	// MaxCallDepth caps the call-graph depth (default 12, safely inside
	// the 16-entry return address stack; real programs' call depths
	// oscillate near the top of the stack rather than sweeping it).
	MaxCallDepth int

	// Data behaviour.
	Streams       []program.Stream
	StreamWeights []float64 // relative probability a memory template binds to stream i
	OffsetMax     int32     // immediate offsets drawn from {0,8,...,OffsetMax}
}

// Validate performs basic sanity checks.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile missing name")
	}
	if p.Funcs <= 0 {
		return fmt.Errorf("workload %s: need at least one function", p.Name)
	}
	if len(p.Streams) == 0 || len(p.StreamWeights) != len(p.Streams) {
		return fmt.Errorf("workload %s: streams/weights mismatch (%d vs %d)",
			p.Name, len(p.Streams), len(p.StreamWeights))
	}
	if p.LoadFrac+p.StoreFrac > 0.9 {
		return fmt.Errorf("workload %s: memory fraction %.2f too high", p.Name, p.LoadFrac+p.StoreFrac)
	}
	return nil
}

// Build generates the static program for the profile. Construction is
// entirely deterministic in p.Seed.
func (p Profile) Build() (*program.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.MaxCallDepth == 0 {
		p.MaxCallDepth = 12
	}
	rng := prng.New(p.Seed)
	g := &generator{p: p, rng: rng, depth: make([]int, p.Funcs)}
	prog := &program.Program{Name: p.Name, Streams: p.Streams}
	for fi := 0; fi < p.Funcs; fi++ {
		prog.Funcs = append(prog.Funcs, g.buildFunc(fi))
	}
	prog.Entry = 0
	prog.Layout()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid program: %w", p.Name, err)
	}
	return prog, nil
}

// MustBuild is Build that panics on error; profiles are static data, so an
// error is a programming mistake.
func (p Profile) MustBuild() *program.Program {
	prog, err := p.Build()
	if err != nil {
		panic(err)
	}
	return prog
}

// NewWalker builds the program and returns a trace source over it, seeded
// independently of program construction.
func (p Profile) NewWalker() *program.Walker {
	return program.NewWalker(p.MustBuild(), p.Seed^0x9e3779b9)
}

// CaptureFile records the first n instructions of the benchmark's dynamic
// stream to a trace file at path (see docs/TRACE_FORMAT.md). The header
// carries the profile's name and seed, which replay consumers verify
// before substituting the file for the live walker.
func (p Profile) CaptureFile(path string, n int64) error {
	h := trace.Header{Benchmark: p.Name, Seed: p.Seed, Insts: n}
	return trace.CaptureFile(path, h, p.NewWalker())
}

type generator struct {
	p       Profile
	rng     *prng.Source
	intReg  int
	fpReg   int
	recent  []isa.Reg // recently written registers, for source picking
	recentF []isa.Reg
	sched   []float64 // smooth weighted round-robin state for stream binding
	depth   []int     // call-DAG depth per function, for MaxCallDepth capping
}

func (g *generator) rangeIn(r [2]int) int {
	lo, hi := r[0], r[1]
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

func (g *generator) nextIntReg() isa.Reg {
	g.intReg++
	r := isa.Int(g.intReg)
	g.recent = append(g.recent, r)
	if len(g.recent) > 8 {
		g.recent = g.recent[1:]
	}
	return r
}

func (g *generator) nextFPReg() isa.Reg {
	g.fpReg++
	r := isa.FP(g.fpReg)
	g.recentF = append(g.recentF, r)
	if len(g.recentF) > 8 {
		g.recentF = g.recentF[1:]
	}
	return r
}

func (g *generator) pickSrc(fp bool) isa.Reg {
	pool := g.recent
	if fp {
		pool = g.recentF
	}
	if len(pool) == 0 {
		return isa.RegZero
	}
	return pool[g.rng.Intn(len(pool))]
}

// pickStream binds a memory template to a stream using smooth weighted
// round-robin rather than random sampling. Loop bodies dominate dynamic
// execution, so a random binding would make the *dynamic* stream mix hostage
// to which handful of blocks happens to be hot; the low-discrepancy schedule
// interleaves streams through the template sequence so every loop sees a
// representative mix and the dynamic proportions track StreamWeights.
func (g *generator) pickStream() int {
	weights := g.p.StreamWeights
	if g.sched == nil {
		g.sched = make([]float64, len(weights))
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	best := 0
	for i, w := range weights {
		g.sched[i] += w
		if g.sched[i] > g.sched[best] {
			best = i
		}
	}
	g.sched[best] -= total
	return best
}

func (g *generator) pickOffset() int32 {
	if g.p.OffsetMax <= 0 {
		return 0
	}
	steps := int(g.p.OffsetMax/8) + 1
	return int32(g.rng.Intn(steps)) * 8
}

// buildBody fills a block with a realistic mix of compute and memory
// instructions. Dependences are deliberately tight, as in compiled code:
// a load's value is usually consumed by the instruction right after it
// (load-use criticality is what makes sequential-access and misprediction
// latency hurt, as the paper's 11 % sequential degradation shows), and
// compute instructions frequently chain.
func (g *generator) buildBody(n int) []program.InstTemplate {
	body := make([]program.InstTemplate, 0, n)
	var lastLoad isa.Reg // dst of the most recent load, 0 = none
	var lastALU isa.Reg  // dst of the most recent compute op
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		switch {
		case r < g.p.LoadFrac:
			stream := g.pickStream()
			// Address dependences: chased streams are load-to-load chains
			// (the address is the previous load's result); other loads
			// frequently compute their address from recent ALU results.
			addr := g.pickSrc(false)
			switch {
			case g.p.Streams[stream].Kind == program.StreamChase && !lastLoad.IsZero() && g.rng.Bool(0.85):
				addr = lastLoad // p = p->next
			case !lastLoad.IsZero() && g.rng.Bool(0.30):
				addr = lastLoad // indexed indirection: a[b[i]], spill reloads
			case !lastALU.IsZero() && g.rng.Bool(0.55):
				addr = lastALU // address arithmetic
			}
			dst := g.nextIntReg()
			body = append(body, program.InstTemplate{
				Kind:   isa.KindLoad,
				Dst:    dst,
				Src1:   addr,
				Stream: stream, Offset: g.pickOffset(),
			})
			lastLoad = dst
		case r < g.p.LoadFrac+g.p.StoreFrac:
			val := g.pickSrc(false)
			if !lastALU.IsZero() && g.rng.Bool(0.6) {
				val = lastALU
			}
			body = append(body, program.InstTemplate{
				Kind: isa.KindStore,
				Src1: g.pickSrc(false), Src2: val,
				Stream: g.pickStream(), Offset: g.pickOffset(),
			})
		default:
			fp := g.rng.Bool(g.p.FPFrac)
			src1 := g.pickSrc(fp)
			// Load-use chain: consume the pending load value immediately.
			if !lastLoad.IsZero() && g.rng.Bool(0.85) {
				src1 = lastLoad
				lastLoad = isa.RegZero
			} else if !lastALU.IsZero() && g.rng.Bool(0.6) {
				src1 = lastALU // compute chain
			}
			if fp {
				kind := isa.KindFPALU
				switch g.rng.Intn(8) {
				case 0:
					kind = isa.KindFPDiv
				case 1, 2:
					kind = isa.KindFPMul
				}
				dst := g.nextFPReg()
				body = append(body, program.InstTemplate{
					Kind: kind, Dst: dst,
					Src1: src1, Src2: g.pickSrc(true),
					Stream: -1,
				})
				lastALU = dst
			} else {
				kind := isa.KindIntALU
				if g.rng.Bool(0.1) {
					kind = isa.KindIntMul
				}
				dst := g.nextIntReg()
				body = append(body, program.InstTemplate{
					Kind: kind, Dst: dst,
					Src1: src1, Src2: g.pickSrc(false),
					Stream: -1,
				})
				lastALU = dst
			}
		}
	}
	return body
}

// buildFunc generates one function's CFG: a chain of blocks with loop
// back-edges, forward conditional skips, calls (forward-only, keeping the
// call graph a DAG) and a final return.
func (g *generator) buildFunc(fi int) *program.Func {
	nb := g.rangeIn(g.p.BlocksPerFunc)
	if nb < 1 {
		nb = 1
	}
	f := &program.Func{Name: fmt.Sprintf("%s_f%03d", g.p.Name, fi)}
	for bi := 0; bi < nb; bi++ {
		blk := &program.Block{Body: g.buildBody(g.rangeIn(g.p.InstsPerBlock))}
		if bi == nb-1 {
			blk.Term = program.Terminator{Kind: program.TermReturn}
			f.Blocks = append(f.Blocks, blk)
			break
		}
		r := g.rng.Float64()
		switch {
		case r < g.p.LoopFrac && bi > 0:
			// Back-edge: loop over the last 1-3 blocks.
			span := 1 + g.rng.Intn(3)
			target := bi - span + 1
			if target < 0 {
				target = 0
			}
			blk.Term = program.Terminator{
				Kind: program.TermBranch, Target: target,
				Pattern: program.PatLoop, Trip: g.p.LoopTrip, Fixed: g.p.LoopFixed,
			}
		case r < g.p.LoopFrac+g.p.CallFrac && fi+1 < g.p.Funcs && g.depth[fi] < g.p.MaxCallDepth:
			callee := fi + 1 + g.rng.Intn(g.p.Funcs-fi-1)
			if d := g.depth[fi] + 1; d > g.depth[callee] {
				g.depth[callee] = d
			}
			blk.Term = program.Terminator{Kind: program.TermCall, Callee: callee}
		case r < g.p.LoopFrac+g.p.CallFrac+g.p.FallFrac:
			blk.Term = program.Terminator{Kind: program.TermFall}
		default:
			// Forward conditional: skip 1-2 blocks when taken.
			target := bi + 1 + 1 + g.rng.Intn(2)
			if target >= nb {
				target = nb - 1
			}
			t := program.Terminator{Kind: program.TermBranch, Target: target}
			pr := g.rng.Float64() * (g.p.BiasedFrac + g.p.RandomFrac)
			if pr < g.p.BiasedFrac {
				t.Pattern, t.Prob = program.PatBiased, g.p.TakenBias
			} else {
				t.Pattern = program.PatRandom
			}
			blk.Term = t
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}
