package traceconv

// ChampSim binary traces: fixed 64-byte little-endian records,
//
//	offset  field
//	0       ip         uint64
//	8       is_branch  uint8
//	9       branch_taken uint8
//	10      dest_regs  [2]uint8
//	12      src_regs   [4]uint8
//	16      dest_mem   [2]uint64   (store addresses; 0 = unused slot)
//	32      src_mem    [4]uint64   (load addresses;  0 = unused slot)
//
// ChampSim does not record branch targets, so the importer keeps one
// record of lookahead: a taken branch's target is the next record's ip
// (the architecturally next fetch address), and a not-taken branch is
// emitted as-is. ChampSim also carries no instruction sizes, so no
// discontinuity synthesis happens here — branches are explicit.

import (
	"encoding/binary"
	"io"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

const champRecordBytes = 64

type champsimImporter struct{}

func (champsimImporter) Name() string { return "champsim" }

type champRecord struct {
	ip       uint64
	isBranch bool
	taken    bool
	destRegs [2]uint8
	srcRegs  [4]uint8
	destMem  [2]uint64
	srcMem   [4]uint64
}

func decodeChampRecord(b *[champRecordBytes]byte, rec *champRecord) {
	rec.ip = binary.LittleEndian.Uint64(b[0:8])
	rec.isBranch = b[8] != 0
	rec.taken = b[9] != 0
	copy(rec.destRegs[:], b[10:12])
	copy(rec.srcRegs[:], b[12:16])
	for i := range rec.destMem {
		rec.destMem[i] = binary.LittleEndian.Uint64(b[16+8*i : 24+8*i])
	}
	for i := range rec.srcMem {
		rec.srcMem[i] = binary.LittleEndian.Uint64(b[32+8*i : 40+8*i])
	}
}

func (champsimImporter) Read(r io.Reader, opts Options, emit func(*trace.Inst) error) (Stats, error) {
	var st Stats
	d := &dropper{st: &st, lossy: opts.Lossy, format: "champsim"}
	emit = counted(&st, emit)

	var buf [champRecordBytes]byte
	var cur, next champRecord
	have := false
	for {
		_, err := io.ReadFull(r, buf[:])
		if err == io.EOF {
			break
		}
		if err != nil { // ErrUnexpectedEOF: a torn final record
			if derr := d.drop("truncated-record", err.Error()); derr != nil {
				return st, derr
			}
			break
		}
		st.Records++
		decodeChampRecord(&buf, &next)
		if have {
			if err := emitChampRecord(&cur, next.ip, emit); err != nil {
				return st, err
			}
		}
		cur, have = next, true
	}
	if have {
		// Final record: no lookahead, so a taken branch targets its own
		// fall-through — the stream ends there and nothing fetches after it.
		if err := emitChampRecord(&cur, cur.ip+isa.InstBytes, emit); err != nil {
			return st, err
		}
	}
	return st, nil
}

// emitChampRecord expands one ChampSim record: loads, then stores, then
// the branch (target = nextIP when taken) or a plain ALU op when the
// record carried nothing else.
func emitChampRecord(rec *champRecord, nextIP uint64, emit func(*trace.Inst) error) error {
	emitted := false
	for _, a := range rec.srcMem {
		if a == 0 {
			continue
		}
		in := trace.Inst{
			PC: rec.ip, Kind: isa.KindLoad,
			Dst: mapReg(rec.destRegs[0]), Src1: mapReg(rec.srcRegs[0]),
			Addr: a, BaseValue: a,
		}
		if err := emit(&in); err != nil {
			return err
		}
		emitted = true
	}
	for _, a := range rec.destMem {
		if a == 0 {
			continue
		}
		in := trace.Inst{
			PC: rec.ip, Kind: isa.KindStore,
			Src1: mapReg(rec.srcRegs[0]), Src2: mapReg(rec.srcRegs[1]),
			Addr: a, BaseValue: a,
		}
		if err := emit(&in); err != nil {
			return err
		}
		emitted = true
	}
	if rec.isBranch {
		in := trace.Inst{
			PC: rec.ip, Kind: isa.KindBranch,
			Src1:  mapReg(rec.srcRegs[0]),
			Taken: rec.taken,
		}
		if rec.taken {
			in.Target = nextIP
		}
		return emit(&in)
	}
	if !emitted {
		in := trace.Inst{
			PC: rec.ip, Kind: isa.KindIntALU,
			Dst: mapReg(rec.destRegs[0]), Src1: mapReg(rec.srcRegs[0]), Src2: mapReg(rec.srcRegs[1]),
		}
		return emit(&in)
	}
	return nil
}
