// Package traceconv imports external trace formats into the canonical
// .wct capture format.
//
// Three importers ship, behind one Importer interface: ChampSim binary
// traces, DynamoRIO drcachesim CSV exports, and Valgrind lackey
// --trace-mem text. Each external record expands into one or more
// canonical trace.Inst micro-ops under a fixed reconciliation rule (see
// docs/TRACE_FORMAT.md, "Importing external traces"):
//
//   - data references become loads/stores at the instruction's PC, with
//     BaseValue = Addr and Offset = 0 (the XOR way-prediction handle then
//     equals the true address — external formats carry no base-register
//     values, so the import models a predictor fed perfect handles);
//   - explicit branch records become KindBranch with the recorded
//     direction and target;
//   - a fetch discontinuity with no explicit branch (only detectable when
//     the format carries instruction sizes) synthesizes a taken KindJump;
//   - an instruction that produced no micro-op at all becomes KindIntALU,
//     so instruction counts and fetch bandwidth are preserved.
//
// Imports are deterministic: the same input bytes and options produce the
// same .wct bytes, so a converted trace has one content hash everywhere.
//
// Strict mode (the default) fails on the first malformed record; lossy
// mode drops malformed records and reports per-reason counts in Stats.
// Exporters for the same three formats (export.go) close the loop for
// fixtures and benchmarks.
package traceconv

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

// Options controls an import.
type Options struct {
	// Benchmark is recorded in the output header. Job-side trace
	// validation matches it against config benchmarks, so name the
	// workload the trace captures.
	Benchmark string

	// MaxInsts stops the import after emitting this many canonical
	// instructions (0 = no limit).
	MaxInsts int64

	// Lossy drops malformed records (counted in Stats) instead of
	// failing on the first one.
	Lossy bool
}

// Stats reports what an import consumed and produced.
type Stats struct {
	Records int64 // external records consumed
	Insts   int64 // canonical instructions emitted
	Dropped int64 // malformed records dropped (lossy mode only)

	// Reasons counts drops by reason string.
	Reasons map[string]int64
}

// DropSummary renders the drop reasons as a stable one-line summary.
func (s Stats) DropSummary() string {
	if s.Dropped == 0 {
		return ""
	}
	reasons := make([]string, 0, len(s.Reasons))
	for r := range s.Reasons {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	out := ""
	for i, r := range reasons {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s ×%d", r, s.Reasons[r])
	}
	return out
}

// Importer converts one external trace format. Read consumes the whole
// input, calling emit for every canonical instruction; an error from emit
// aborts the import and is returned as-is.
type Importer interface {
	Name() string
	Read(r io.Reader, opts Options, emit func(*trace.Inst) error) (Stats, error)
}

// errStop aborts an import that reached Options.MaxInsts. It travels
// through the emit callback and is swallowed by Convert.
var errStop = errors.New("traceconv: instruction limit reached")

var importers = []Importer{champsimImporter{}, drcachesimImporter{}, lackeyImporter{}}

// Names lists the registered importer names, sorted.
func Names() []string {
	out := make([]string, len(importers))
	for i, imp := range importers {
		out[i] = imp.Name()
	}
	sort.Strings(out)
	return out
}

// ByName returns the importer for a format name.
func ByName(name string) (Importer, error) {
	for _, imp := range importers {
		if imp.Name() == name {
			return imp, nil
		}
	}
	return nil, fmt.Errorf("traceconv: unknown format %q (have %v)", name, Names())
}

// Convert runs imp over r and writes a canonical .wct capture to w. The
// header declares the exact emitted instruction count (and Seed 0 —
// imported traces are externally produced, not walker captures), so the
// output is byte-deterministic for fixed input and options.
func Convert(imp Importer, r io.Reader, w io.Writer, opts Options) (Stats, error) {
	var insts []trace.Inst
	st, err := imp.Read(r, opts, func(in *trace.Inst) error {
		insts = append(insts, *in)
		if opts.MaxInsts > 0 && int64(len(insts)) >= opts.MaxInsts {
			return errStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		return st, err
	}
	tw, err := trace.NewWriter(w, trace.Header{Benchmark: opts.Benchmark, Insts: int64(len(insts))})
	if err != nil {
		return st, err
	}
	for i := range insts {
		if err := tw.Write(&insts[i]); err != nil {
			return st, err
		}
	}
	return st, tw.Close()
}

// mapReg clamps an external register number into the abstract 64-register
// file: zero stays the hard-wired zero register (no dependence), every
// other number maps stably onto a non-zero register.
func mapReg(r uint8) isa.Reg {
	if r == 0 {
		return isa.RegZero
	}
	return isa.Reg(1 + (int(r)-1)%(isa.NumRegs-1))
}

// dropper implements the strict/lossy policy shared by all importers.
type dropper struct {
	st     *Stats
	lossy  bool
	format string
}

// drop records a malformed record: in lossy mode it counts it under
// reason and returns nil, in strict mode it returns an error carrying
// detail.
func (d *dropper) drop(reason, detail string) error {
	if !d.lossy {
		return fmt.Errorf("traceconv: %s: %s (%s); use lossy mode to drop such records", d.format, reason, detail)
	}
	d.st.Dropped++
	if d.st.Reasons == nil {
		d.st.Reasons = make(map[string]int64)
	}
	d.st.Reasons[reason]++
	return nil
}

// group accumulates the data references and control outcome of one
// fetched external instruction; flush applies the reconciliation rule.
// Used by the text importers (lackey, drcachesim), which interleave fetch
// and data-reference records.
type group struct {
	pc     uint64
	size   uint64
	loads  []uint64
	stores []uint64
	hasCtl bool
	ctl    trace.Inst
	live   bool
}

// start resets the group for the instruction fetched at pc.
func (g *group) start(pc, size uint64) {
	g.pc, g.size = pc, size
	g.loads, g.stores = g.loads[:0], g.stores[:0]
	g.hasCtl = false
	g.live = true
}

// flush emits the group's micro-ops. nextPC is the following fetch
// address (0 = end of stream): a discontinuity with no explicit control
// record synthesizes a taken jump, and an instruction with no micro-ops
// at all becomes an ALU op so the instruction count survives the import.
func (g *group) flush(nextPC uint64, emit func(*trace.Inst) error) error {
	if !g.live {
		return nil
	}
	g.live = false
	emitted := false
	for _, a := range g.loads {
		in := trace.Inst{PC: g.pc, Kind: isa.KindLoad, Addr: a, BaseValue: a}
		if err := emit(&in); err != nil {
			return err
		}
		emitted = true
	}
	for _, a := range g.stores {
		in := trace.Inst{PC: g.pc, Kind: isa.KindStore, Addr: a, BaseValue: a}
		if err := emit(&in); err != nil {
			return err
		}
		emitted = true
	}
	if g.hasCtl {
		in := g.ctl
		in.PC = g.pc
		return emit(&in)
	}
	if nextPC != 0 && g.size != 0 && nextPC != g.pc+g.size {
		in := trace.Inst{PC: g.pc, Kind: isa.KindJump, Taken: true, Target: nextPC}
		return emit(&in)
	}
	if !emitted {
		in := trace.Inst{PC: g.pc, Kind: isa.KindIntALU}
		return emit(&in)
	}
	return nil
}

// counted wraps emit so st.Insts tracks every instruction the callback
// accepted — including the final one when emit signals the MaxInsts stop.
func counted(st *Stats, emit func(*trace.Inst) error) func(*trace.Inst) error {
	return func(in *trace.Inst) error {
		err := emit(in)
		if err == nil || errors.Is(err, errStop) {
			st.Insts++
		}
		return err
	}
}
