package traceconv

import (
	"bytes"
	"io"
	"testing"

	"waycache/internal/trace"
	"waycache/internal/workload"
)

// benchInput renders n instructions of a real suite walker in the given
// external format — the same class of input the importers see in
// production, at a size large enough to amortize setup.
func benchInput(b *testing.B, format string, n int64) []byte {
	b.Helper()
	p, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	exp, err := ExporterFor(format)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := exp(&buf, trace.NewLimit(p.NewWalker(), n), n); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchImport(b *testing.B, format string) {
	input := benchInput(b, format, 200000)
	imp, err := ByName(format)
	if err != nil {
		b.Fatal(err)
	}
	sink := func(*trace.Inst) error { return nil }
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := imp.Read(bytes.NewReader(input), Options{}, sink); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImportChampsim(b *testing.B)   { benchImport(b, "champsim") }
func BenchmarkImportDrcachesim(b *testing.B) { benchImport(b, "drcachesim") }
func BenchmarkImportLackey(b *testing.B)     { benchImport(b, "lackey") }

// BenchmarkConvert measures the full import-to-.wct pipeline (parse,
// reconcile, re-encode) per format.
func BenchmarkConvert(b *testing.B) {
	for _, format := range Names() {
		b.Run(format, func(b *testing.B) {
			input := benchInput(b, format, 200000)
			imp, err := ByName(format)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Convert(imp, bytes.NewReader(input), io.Discard, Options{Benchmark: "gcc"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
