package traceconv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden .wct fixtures")

func fixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "traceconv", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func convert(t *testing.T, format string, input []byte, opts Options) ([]byte, Stats) {
	t.Helper()
	imp, err := ByName(format)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	st, err := Convert(imp, bytes.NewReader(input), &out, opts)
	if err != nil {
		t.Fatalf("%s convert: %v", format, err)
	}
	return out.Bytes(), st
}

func decode(t *testing.T, wct []byte) (trace.Header, []trace.Inst) {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(wct))
	if err != nil {
		t.Fatal(err)
	}
	var insts []trace.Inst
	var in trace.Inst
	for r.Next(&in) {
		insts = append(insts, in)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return r.Header(), insts
}

// TestGoldenRoundTrips converts each checked-in sample and requires the
// output bytes to match the checked-in golden exactly: the converters are
// part of the determinism contract (same input ⇒ same hash everywhere).
func TestGoldenRoundTrips(t *testing.T) {
	cases := []struct{ format, in, golden string }{
		{"lackey", "lackey.txt", "lackey.golden.wct"},
		{"drcachesim", "drcachesim.csv", "drcachesim.golden.wct"},
		{"champsim", "champsim.bin", "champsim.golden.wct"},
	}
	for _, c := range cases {
		t.Run(c.format, func(t *testing.T) {
			got, st := convert(t, c.format, fixture(t, c.in), Options{Benchmark: "fixture"})
			if st.Dropped != 0 {
				t.Fatalf("clean fixture dropped %d records (%s)", st.Dropped, st.DropSummary())
			}
			goldenPath := filepath.Join("testdata", "traceconv", c.golden)
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("converted %s differs from golden %s (run go test ./internal/traceconv -update after intentional changes)", c.in, c.golden)
			}
			h, _ := decode(t, got)
			if h.Benchmark != "fixture" || h.Seed != 0 {
				t.Fatalf("header %+v: want benchmark fixture, seed 0", h)
			}
		})
	}
}

func kinds(insts []trace.Inst) []isa.Kind {
	out := make([]isa.Kind, len(insts))
	for i := range insts {
		out[i] = insts[i].Kind
	}
	return out
}

func TestLackeyReconciliation(t *testing.T) {
	wct, st := convert(t, "lackey", fixture(t, "lackey.txt"), Options{Benchmark: "fixture"})
	h, insts := decode(t, wct)
	want := []isa.Kind{
		isa.KindIntALU, // 1000: bare fetch, sequential
		isa.KindLoad,   // 1004 L
		isa.KindStore,  // 1008 S
		// 100c M expands to load+store, and the 100c→2000 discontinuity
		// synthesizes a taken jump.
		isa.KindLoad, isa.KindStore, isa.KindJump,
		isa.KindIntALU, // 2000
		isa.KindIntALU, // 2004: final flush has no next PC
	}
	got := kinds(insts)
	if len(got) != len(want) {
		t.Fatalf("got kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d: kind %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Insts != int64(len(want)) {
		t.Fatalf("header declares %d insts, want %d", h.Insts, len(want))
	}
	jump := insts[5]
	if !jump.Taken || jump.Target != 0x2000 || jump.PC != 0x100c {
		t.Fatalf("synthesized jump %+v, want taken 100c→2000", jump)
	}
	if insts[1].Addr != 0x8000 || insts[1].BaseValue != 0x8000 || insts[1].Offset != 0 {
		t.Fatalf("load payload %+v: want Addr=BaseValue=0x8000, Offset 0", insts[1])
	}
	if st.Records != 9 || st.Insts != 8 {
		t.Fatalf("stats %+v: want 9 records, 8 insts", st)
	}
}

func TestDrcachesimReconciliation(t *testing.T) {
	wct, _ := convert(t, "drcachesim", fixture(t, "drcachesim.csv"), Options{Benchmark: "fixture"})
	_, insts := decode(t, wct)
	want := []isa.Kind{
		isa.KindIntALU, // 0x1000
		isa.KindLoad,   // 0x1004
		isa.KindStore,  // 0x1008
		isa.KindBranch, // 0x100c taken → 0x2000
		isa.KindBranch, // 0x2000 not taken
		isa.KindIntALU, // 0x2004
	}
	got := kinds(insts)
	if len(got) != len(want) {
		t.Fatalf("got kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d: kind %v, want %v", i, got[i], want[i])
		}
	}
	if b := insts[3]; !b.Taken || b.Target != 0x2000 {
		t.Fatalf("taken branch %+v, want target 0x2000", b)
	}
	if b := insts[4]; b.Taken || b.Target != 0 {
		t.Fatalf("not-taken branch %+v", b)
	}
}

func TestChampsimReconciliation(t *testing.T) {
	wct, st := convert(t, "champsim", fixture(t, "champsim.bin"), Options{Benchmark: "fixture"})
	_, insts := decode(t, wct)
	want := []isa.Kind{isa.KindIntALU, isa.KindLoad, isa.KindBranch, isa.KindStore}
	got := kinds(insts)
	if len(got) != len(want) {
		t.Fatalf("got kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d: kind %v, want %v", i, got[i], want[i])
		}
	}
	// The taken branch's target comes from one-record lookahead.
	if b := insts[2]; !b.Taken || b.Target != 0x2000 {
		t.Fatalf("branch %+v, want lookahead target 0x2000", b)
	}
	if ld := insts[1]; ld.Addr != 0x8000 || ld.Dst != mapReg(5) || ld.Src1 != mapReg(6) {
		t.Fatalf("load %+v: wrong payload or register mapping", ld)
	}
	if st.Records != 4 || st.Insts != 4 {
		t.Fatalf("stats %+v: want 4 records, 4 insts", st)
	}
}

func TestMapReg(t *testing.T) {
	if mapReg(0) != isa.RegZero {
		t.Fatal("register 0 must stay the zero register")
	}
	for r := 1; r < 256; r++ {
		m := mapReg(uint8(r))
		if m == isa.RegZero || int(m) >= isa.NumRegs {
			t.Fatalf("mapReg(%d) = %d escapes the register file", r, m)
		}
	}
	if mapReg(1) != 1 || mapReg(63) != 63 {
		t.Fatal("in-range registers must map to themselves")
	}
}

func TestStrictVsLossy(t *testing.T) {
	t.Run("champsim-truncated", func(t *testing.T) {
		torn := append(fixture(t, "champsim.bin"), 0xde, 0xad)
		imp, _ := ByName("champsim")
		_, err := imp.Read(bytes.NewReader(torn), Options{}, func(*trace.Inst) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "truncated-record") {
			t.Fatalf("strict mode accepted a torn record: %v", err)
		}
		var out bytes.Buffer
		st, err := Convert(imp, bytes.NewReader(torn), &out, Options{Lossy: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.Dropped != 1 || st.Reasons["truncated-record"] != 1 || st.Insts != 4 {
			t.Fatalf("lossy stats %+v (%s)", st, st.DropSummary())
		}
	})

	t.Run("lackey-malformed", func(t *testing.T) {
		in := []byte("I  1000,4\nI  garbage\nI  1004,4\n")
		imp, _ := ByName("lackey")
		_, err := imp.Read(bytes.NewReader(in), Options{}, func(*trace.Inst) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "malformed-line") {
			t.Fatalf("strict mode accepted garbage: %v", err)
		}
		var out bytes.Buffer
		st, err := Convert(imp, bytes.NewReader(in), &out, Options{Lossy: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.Dropped != 1 || st.Insts != 2 {
			t.Fatalf("lossy stats %+v", st)
		}
	})

	t.Run("lackey-ref-before-instruction", func(t *testing.T) {
		in := []byte(" L 8000,8\nI  1000,4\n")
		imp, _ := ByName("lackey")
		if _, err := imp.Read(bytes.NewReader(in), Options{}, func(*trace.Inst) error { return nil }); err == nil {
			t.Fatal("strict mode accepted a ref before any instruction")
		}
		var out bytes.Buffer
		st, err := Convert(imp, bytes.NewReader(in), &out, Options{Lossy: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.Reasons["ref-before-instruction"] != 1 || st.Insts != 1 {
			t.Fatalf("lossy stats %+v (%s)", st, st.DropSummary())
		}
	})

	t.Run("drcachesim-branch-mismatch", func(t *testing.T) {
		in := []byte("ifetch,0x1000\nbranch,0x9999,0x2000,1\n")
		imp, _ := ByName("drcachesim")
		if _, err := imp.Read(bytes.NewReader(in), Options{}, func(*trace.Inst) error { return nil }); err == nil {
			t.Fatal("strict mode accepted a branch for the wrong pc")
		}
		var out bytes.Buffer
		st, err := Convert(imp, bytes.NewReader(in), &out, Options{Lossy: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.Reasons["branch-pc-mismatch"] != 1 {
			t.Fatalf("lossy stats %+v (%s)", st, st.DropSummary())
		}
	})
}

func TestMaxInsts(t *testing.T) {
	imp, _ := ByName("lackey")
	var out bytes.Buffer
	st, err := Convert(imp, bytes.NewReader(fixture(t, "lackey.txt")), &out, Options{Benchmark: "b", MaxInsts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Insts != 3 {
		t.Fatalf("emitted %d insts, want 3", st.Insts)
	}
	h, insts := decode(t, out.Bytes())
	if h.Insts != 3 || len(insts) != 3 {
		t.Fatalf("output holds %d/%d insts, want 3", h.Insts, len(insts))
	}
}

func TestConvertDeterministic(t *testing.T) {
	for _, c := range []struct{ format, in string }{
		{"lackey", "lackey.txt"}, {"drcachesim", "drcachesim.csv"}, {"champsim", "champsim.bin"},
	} {
		a, _ := convert(t, c.format, fixture(t, c.in), Options{Benchmark: "x"})
		b, _ := convert(t, c.format, fixture(t, c.in), Options{Benchmark: "x"})
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two conversions of the same input differ", c.format)
		}
	}
}

// TestExportImportRoundTrip pushes a crafted internal stream out through
// each exporter and back through the matching importer. Formats carry
// different information, so the invariants differ: counts are preserved
// 1:1 (not-taken branches degrade to ALU ops, which occupy the same fetch
// slot), PCs and data addresses survive exactly, and taken control
// transfers survive as control (branch or synthesized jump).
func TestExportImportRoundTrip(t *testing.T) {
	src := []trace.Inst{
		{PC: 0x1000, Kind: isa.KindIntALU, Dst: 1, Src1: 2},
		{PC: 0x1004, Kind: isa.KindLoad, Dst: 3, Src1: 4, Addr: 0x8000, BaseValue: 0x8000},
		{PC: 0x1008, Kind: isa.KindStore, Src1: 5, Addr: 0x8008, BaseValue: 0x8008},
		{PC: 0x100c, Kind: isa.KindBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Kind: isa.KindBranch, Taken: false},
		{PC: 0x2004, Kind: isa.KindIntALU},
	}
	for _, format := range Names() {
		t.Run(format, func(t *testing.T) {
			exp, err := ExporterFor(format)
			if err != nil {
				t.Fatal(err)
			}
			var ext bytes.Buffer
			n, err := exp(&ext, &trace.SliceSource{Insts: src}, 0)
			if err != nil || n != int64(len(src)) {
				t.Fatalf("export wrote %d insts, err %v", n, err)
			}
			wct, _ := convert(t, format, ext.Bytes(), Options{Benchmark: "rt"})
			_, insts := decode(t, wct)
			if len(insts) != len(src) {
				t.Fatalf("round trip %d insts, want %d (kinds %v)", len(insts), len(src), kinds(insts))
			}
			for i := range src {
				if insts[i].PC != src[i].PC {
					t.Fatalf("inst %d PC %#x, want %#x", i, insts[i].PC, src[i].PC)
				}
				if src[i].Kind.IsMem() && (insts[i].Kind != src[i].Kind || insts[i].Addr != src[i].Addr) {
					t.Fatalf("inst %d: %+v does not preserve mem ref %+v", i, insts[i], src[i])
				}
			}
			if !insts[3].Kind.IsControl() || !insts[3].Taken || insts[3].Target != 0x2000 {
				t.Fatalf("taken transfer lost: %+v", insts[3])
			}
		})
	}
}
