package traceconv

// Valgrind lackey --trace-mem=yes text: one record per line,
//
//	I  <addr>,<size>    instruction fetch
//	 L <addr>,<size>    data load
//	 S <addr>,<size>    data store
//	 M <addr>,<size>    modify (load + store of the same location)
//
// with bare (0x-less) lowercase hex addresses and decimal sizes. Data
// references attach to the most recent instruction fetch. Lackey records
// instruction sizes, so fetch discontinuities that are not explained by
// the previous instruction's size synthesize taken jumps — this is the
// format's only source of control-flow information.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"waycache/internal/trace"
)

type lackeyImporter struct{}

func (lackeyImporter) Name() string { return "lackey" }

func (lackeyImporter) Read(r io.Reader, opts Options, emit func(*trace.Inst) error) (Stats, error) {
	var st Stats
	d := &dropper{st: &st, lossy: opts.Lossy, format: "lackey"}
	emit = counted(&st, emit)

	var g group
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "=") {
			continue // valgrind banner/summary lines ("==pid== ...")
		}
		op := line[0]
		rest := strings.TrimSpace(line[1:])
		addr, size, err := parseLackeyRef(rest)
		if err != nil {
			if derr := d.drop("malformed-line", fmt.Sprintf("line %d: %q: %v", lineNo, line, err)); derr != nil {
				return st, derr
			}
			continue
		}
		st.Records++
		switch op {
		case 'I':
			if err := g.flush(addr, emit); err != nil {
				return st, err
			}
			g.start(addr, size)
		case 'L', 'S', 'M':
			if !g.live {
				st.Records--
				if derr := d.drop("ref-before-instruction", fmt.Sprintf("line %d: %q", lineNo, line)); derr != nil {
					return st, derr
				}
				continue
			}
			if op != 'S' {
				g.loads = append(g.loads, addr)
			}
			if op != 'L' {
				g.stores = append(g.stores, addr)
			}
		default:
			st.Records--
			if derr := d.drop("unknown-record", fmt.Sprintf("line %d: %q", lineNo, line)); derr != nil {
				return st, derr
			}
		}
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("traceconv: lackey: %w", err)
	}
	if err := g.flush(0, emit); err != nil {
		return st, err
	}
	return st, nil
}

// parseLackeyRef parses "<hex-addr>,<size>".
func parseLackeyRef(s string) (addr, size uint64, err error) {
	i := strings.IndexByte(s, ',')
	if i < 0 {
		return 0, 0, fmt.Errorf("missing \",<size>\"")
	}
	addr, err = strconv.ParseUint(strings.TrimSpace(s[:i]), 16, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad address: %v", err)
	}
	size, err = strconv.ParseUint(strings.TrimSpace(s[i+1:]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad size: %v", err)
	}
	return addr, size, nil
}
