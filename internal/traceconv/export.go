package traceconv

// Exporters: render an internal instruction stream in each external
// format. They exist to close the loop — golden fixtures, importer
// benchmarks, and the distributed smoke test all need realistic external
// inputs, and generating them from our own deterministic walkers needs no
// third-party tooling. The mapping is deliberately the importers'
// inverse where the formats allow it: a taken control instruction
// becomes an explicit branch record (drcachesim, champsim) or a bare
// fetch discontinuity (lackey); a not-taken branch leaves no mark in any
// format beyond a sequential fetch, so it reimports as an ALU op.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

// Exporter writes up to n instructions from src (n <= 0: the whole
// stream) in an external format, returning the instruction count written.
type Exporter func(w io.Writer, src trace.Source, n int64) (int64, error)

// ExporterFor returns the exporter matching an importer name.
func ExporterFor(format string) (Exporter, error) {
	switch format {
	case "champsim":
		return WriteChampSim, nil
	case "drcachesim":
		return WriteDrcachesim, nil
	case "lackey":
		return WriteLackey, nil
	}
	return nil, fmt.Errorf("traceconv: unknown format %q (have %v)", format, Names())
}

// WriteLackey renders src as Valgrind lackey --trace-mem text: an "I"
// fetch line per instruction, data lines for loads and stores. Control
// flow survives only as fetch discontinuities.
func WriteLackey(w io.Writer, src trace.Source, n int64) (int64, error) {
	bw := bufio.NewWriter(w)
	var in trace.Inst
	var count int64
	for (n <= 0 || count < n) && src.Next(&in) {
		fmt.Fprintf(bw, "I  %x,%d\n", in.PC, isa.InstBytes)
		switch in.Kind {
		case isa.KindLoad:
			fmt.Fprintf(bw, " L %x,8\n", in.Addr)
		case isa.KindStore:
			fmt.Fprintf(bw, " S %x,8\n", in.Addr)
		}
		count++
	}
	return count, bw.Flush()
}

// WriteDrcachesim renders src as drcachesim CSV records.
func WriteDrcachesim(w io.Writer, src trace.Source, n int64) (int64, error) {
	bw := bufio.NewWriter(w)
	var in trace.Inst
	var count int64
	for (n <= 0 || count < n) && src.Next(&in) {
		fmt.Fprintf(bw, "ifetch,0x%x,%d\n", in.PC, isa.InstBytes)
		switch {
		case in.Kind == isa.KindLoad:
			fmt.Fprintf(bw, "load,0x%x,8,0x%x\n", in.Addr, in.PC)
		case in.Kind == isa.KindStore:
			fmt.Fprintf(bw, "store,0x%x,8,0x%x\n", in.Addr, in.PC)
		case in.Kind == isa.KindBranch:
			taken := 0
			if in.Taken {
				taken = 1
			}
			fmt.Fprintf(bw, "branch,0x%x,0x%x,%d\n", in.PC, in.Target, taken)
		}
		count++
	}
	return count, bw.Flush()
}

// WriteChampSim renders src as ChampSim 64-byte binary records.
func WriteChampSim(w io.Writer, src trace.Source, n int64) (int64, error) {
	bw := bufio.NewWriter(w)
	var in trace.Inst
	var buf [champRecordBytes]byte
	var count int64
	for (n <= 0 || count < n) && src.Next(&in) {
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint64(buf[0:8], in.PC)
		switch {
		case in.Kind.IsControl():
			buf[8] = 1
			if in.Taken {
				buf[9] = 1
			}
		case in.Kind == isa.KindLoad:
			binary.LittleEndian.PutUint64(buf[32:40], in.Addr) // src_mem[0]
			buf[10] = uint8(in.Dst)                            // dest_regs[0]
			buf[12] = uint8(in.Src1)                           // src_regs[0]
		case in.Kind == isa.KindStore:
			binary.LittleEndian.PutUint64(buf[16:24], in.Addr) // dest_mem[0]
			buf[12] = uint8(in.Src1)
			buf[13] = uint8(in.Src2)
		default:
			buf[10] = uint8(in.Dst)
			buf[12] = uint8(in.Src1)
			buf[13] = uint8(in.Src2)
		}
		if _, err := bw.Write(buf[:]); err != nil {
			return count, err
		}
		count++
	}
	return count, bw.Flush()
}
