package traceconv

// Native fuzz targets for the three importers. Each target drives one
// importer over arbitrary bytes — seeded from the golden fixtures so the
// fuzzer starts inside the valid grammar — in both strict and lossy
// mode, and checks the invariants an import must keep no matter what it
// is fed:
//
//   - no panic and no unbounded expansion (MaxInsts caps the output);
//   - a Convert that reports success wrote a well-formed .wct capture
//     holding exactly Stats.Insts records;
//   - imports are deterministic: the same bytes convert to the same
//     capture, byte for byte (the content-hash contract trace:// refs
//     depend on).
//
// Run one continuously with e.g.
//
//	go test ./internal/traceconv -fuzz FuzzImportLackey -fuzztime 30s

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"waycache/internal/trace"
)

func fuzzImport(f *testing.F, format, fixture string) {
	seed, err := os.ReadFile(filepath.Join("testdata", "traceconv", fixture))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // mid-record / mid-line truncation
	f.Add([]byte{})
	imp, err := ByName(format)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, lossy := range []bool{false, true} {
			opts := Options{Benchmark: "fuzz", MaxInsts: 4096, Lossy: lossy}
			var out bytes.Buffer
			st, err := Convert(imp, bytes.NewReader(data), &out, opts)
			if err != nil {
				continue // rejected cleanly; nothing more to hold it to
			}
			r, err := trace.NewReader(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("%s lossy=%v: successful import wrote an unreadable capture: %v", format, lossy, err)
			}
			var in trace.Inst
			var n int64
			for r.Next(&in) {
				n++
			}
			if r.Err() != nil {
				t.Fatalf("%s lossy=%v: capture corrupt at record %d: %v", format, lossy, n, r.Err())
			}
			if n != st.Insts {
				t.Fatalf("%s lossy=%v: capture holds %d records, Stats.Insts = %d", format, lossy, n, st.Insts)
			}
			var again bytes.Buffer
			if _, err := Convert(imp, bytes.NewReader(data), &again, opts); err != nil {
				t.Fatalf("%s lossy=%v: re-converting identical input failed: %v", format, lossy, err)
			}
			if !bytes.Equal(out.Bytes(), again.Bytes()) {
				t.Fatalf("%s lossy=%v: two converts of identical input produced different captures", format, lossy)
			}
		}
	})
}

func FuzzImportChampSim(f *testing.F)   { fuzzImport(f, "champsim", "champsim.bin") }
func FuzzImportDRCacheSim(f *testing.F) { fuzzImport(f, "drcachesim", "drcachesim.csv") }
func FuzzImportLackey(f *testing.F)     { fuzzImport(f, "lackey", "lackey.txt") }
