package traceconv

// DynamoRIO drcachesim CSV: the text export produced by drcachesim's
// record-listing tools (and by our own exporter), one record per line,
//
//	ifetch,<pc>[,<size>]          instruction fetch (size defaults to 4)
//	load,<addr>[,<size>[,<pc>]]   data load
//	store,<addr>[,<size>[,<pc>]]  data store
//	branch,<pc>,<target>,<taken>  branch outcome (taken: 0/1/true/false)
//
// Numbers parse with a 0x prefix or as plain decimal; lines starting
// with '#' are comments. Data references and branch records attach to
// the most recent ifetch; a branch record's pc must match it. Fetch
// discontinuities with no explicit branch synthesize taken jumps, as in
// the lackey importer.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

type drcachesimImporter struct{}

func (drcachesimImporter) Name() string { return "drcachesim" }

func (drcachesimImporter) Read(r io.Reader, opts Options, emit func(*trace.Inst) error) (Stats, error) {
	var st Stats
	d := &dropper{st: &st, lossy: opts.Lossy, format: "drcachesim"}
	emit = counted(&st, emit)

	var g group
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		for i := range f {
			f[i] = strings.TrimSpace(f[i])
		}
		bad := func(reason string, err error) error {
			return d.drop(reason, fmt.Sprintf("line %d: %q: %v", lineNo, line, err))
		}
		switch f[0] {
		case "ifetch":
			if len(f) < 2 || len(f) > 3 {
				if derr := bad("malformed-line", fmt.Errorf("want ifetch,<pc>[,<size>]")); derr != nil {
					return st, derr
				}
				continue
			}
			pc, err := strconv.ParseUint(f[1], 0, 64)
			if err != nil {
				if derr := bad("malformed-line", err); derr != nil {
					return st, derr
				}
				continue
			}
			size := uint64(isa.InstBytes)
			if len(f) == 3 {
				if size, err = strconv.ParseUint(f[2], 0, 64); err != nil {
					if derr := bad("malformed-line", err); derr != nil {
						return st, derr
					}
					continue
				}
			}
			st.Records++
			if err := g.flush(pc, emit); err != nil {
				return st, err
			}
			g.start(pc, size)

		case "load", "store":
			if len(f) < 2 || len(f) > 4 {
				if derr := bad("malformed-line", fmt.Errorf("want %s,<addr>[,<size>[,<pc>]]", f[0])); derr != nil {
					return st, derr
				}
				continue
			}
			addr, err := strconv.ParseUint(f[1], 0, 64)
			if err != nil {
				if derr := bad("malformed-line", err); derr != nil {
					return st, derr
				}
				continue
			}
			if !g.live {
				if derr := d.drop("ref-before-instruction", fmt.Sprintf("line %d: %q", lineNo, line)); derr != nil {
					return st, derr
				}
				continue
			}
			st.Records++
			if f[0] == "load" {
				g.loads = append(g.loads, addr)
			} else {
				g.stores = append(g.stores, addr)
			}

		case "branch":
			if len(f) != 4 {
				if derr := bad("malformed-line", fmt.Errorf("want branch,<pc>,<target>,<taken>")); derr != nil {
					return st, derr
				}
				continue
			}
			pc, err1 := strconv.ParseUint(f[1], 0, 64)
			target, err2 := strconv.ParseUint(f[2], 0, 64)
			taken, err3 := strconv.ParseBool(f[3])
			if err1 != nil || err2 != nil || err3 != nil {
				if derr := bad("malformed-line", fmt.Errorf("%v%v%v", err1, err2, err3)); derr != nil {
					return st, derr
				}
				continue
			}
			if !g.live || g.pc != pc {
				if derr := d.drop("branch-pc-mismatch", fmt.Sprintf("line %d: branch pc %#x does not match current ifetch", lineNo, pc)); derr != nil {
					return st, derr
				}
				continue
			}
			st.Records++
			g.hasCtl = true
			g.ctl = trace.Inst{Kind: isa.KindBranch, Taken: taken}
			if taken {
				g.ctl.Target = target
			}

		default:
			if derr := d.drop("unknown-record", fmt.Sprintf("line %d: %q", lineNo, line)); derr != nil {
				return st, derr
			}
		}
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("traceconv: drcachesim: %w", err)
	}
	if err := g.flush(0, emit); err != nil {
		return st, err
	}
	return st, nil
}
