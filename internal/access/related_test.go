package access

import (
	"testing"

	"waycache/internal/cache"
	"waycache/internal/energy"
)

func newSelWays(active int) *SelectiveWays {
	return NewSelectiveWays(DConfig{
		Policy:      DParallel,
		Cache:       l1(),
		BaseLatency: 1,
		Costs:       energy.PaperCosts(),
	}, active, cache.DefaultHierarchy(32))
}

func TestSelectiveWaysShrinksCapacity(t *testing.T) {
	s := newSelWays(2)
	cfg := s.L1.Config()
	if cfg.Ways != 2 || cfg.SizeBytes != 8<<10 {
		t.Fatalf("2-of-4 ways should give an 8K 2-way array, got %+v", cfg)
	}
	if s.L1.NumSets() != 128 {
		t.Fatalf("set count must be preserved, got %d", s.L1.NumSets())
	}
}

func TestSelectiveWaysEnergyScalesWithActiveWays(t *testing.T) {
	run := func(active int) float64 {
		s := newSelWays(active)
		in := load(0x400000, 0x1000)
		s.Load(in) // miss
		for i := 0; i < 100; i++ {
			s.Load(in)
		}
		return s.Acct.Total()
	}
	e1, e2, e3 := run(1), run(2), run(3)
	if !(e1 < e2 && e2 < e3) {
		t.Fatalf("energy not monotone in active ways: %v %v %v", e1, e2, e3)
	}
	// A 2-way probe must cost less than half the baseline 4-way parallel
	// read plus tag overheads.
	costs := energy.PaperCosts()
	twoWay := costs.Tag + 2*costs.WayParallel
	if twoWay >= costs.ParallelRead() {
		t.Fatal("partial read pricing broken")
	}
}

func TestSelectiveWaysMoreMisses(t *testing.T) {
	// Halving capacity must not reduce misses on a conflicty stream.
	run := func(active int) int64 {
		s := newSelWays(active)
		for rep := 0; rep < 20; rep++ {
			for i := uint64(0); i < 3; i++ { // 3 blocks, one set
				s.Load(load(0x400000, i<<12))
			}
		}
		return s.Stats().LoadMiss
	}
	if run(2) < run(4) {
		t.Fatal("fewer active ways produced fewer misses")
	}
}

func TestSelectiveWaysRejectsBadCounts(t *testing.T) {
	for _, bad := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("active=%d accepted", bad)
				}
			}()
			newSelWays(bad)
		}()
	}
}

func TestMRUWayPrediction(t *testing.T) {
	d := newD(DWayPredMRU)
	in := load(0x400000, 0x1000)
	d.Load(in) // miss
	lat, class := d.Load(in)
	if class != ClassWayPred || lat != 1 {
		t.Fatalf("MRU re-access: lat=%d class=%v", lat, class)
	}
	// Alternating between two blocks in the same set: MRU predicts the
	// other block's way each time -> mispredictions.
	a, b := load(0x400000, 0x0<<12), load(0x400004, 0x1<<12)
	d2 := newD(DWayPredMRU)
	d2.Load(a)
	d2.Load(b)
	_, classA := d2.Load(a)
	if classA != ClassMispred {
		t.Fatalf("MRU should mispredict on alternation, got %v", classA)
	}
	if d2.Stats().MispredWay == 0 {
		t.Fatal("misprediction not counted")
	}
}

func TestMRUStoreUnaffected(t *testing.T) {
	d := newD(DWayPredMRU)
	d.Store(store(0x400000, 0x1000))
	if lat := d.Store(store(0x400000, 0x1000)); lat != 1 {
		t.Fatalf("store latency %d", lat)
	}
}
