package access

import (
	"testing"

	"waycache/internal/cache"
	"waycache/internal/energy"
)

func newI(policy IPolicy) *ICache {
	return NewICache(IConfig{
		Policy:      policy,
		Cache:       cache.Config{Name: "L1i", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
		BaseLatency: 1,
		Costs:       energy.PaperCosts(),
	}, cache.DefaultHierarchy(32))
}

func TestIFetchMissThenCorrectPrediction(t *testing.T) {
	c := newI(IWayPred)
	lat, class, way := c.Fetch(0x400000, WayPred{Way: 0, OK: false, Source: SrcNone})
	if class != IClassMiss || lat <= 1 {
		t.Fatalf("cold fetch: lat=%d class=%v", lat, class)
	}
	lat, class, got := c.Fetch(0x400000, WayPred{Way: way, OK: true, Source: SrcSAWP})
	if class != IClassTableCorrect || lat != 1 || got != way {
		t.Fatalf("predicted fetch: lat=%d class=%v way=%d", lat, class, got)
	}
}

func TestIFetchMispredictionPenalty(t *testing.T) {
	c := newI(IWayPred)
	_, _, way := c.Fetch(0x400000, WayPred{Way: 0, OK: false, Source: SrcNone})
	wrong := (way + 1) % 4
	lat, class, got := c.Fetch(0x400000, WayPred{Way: wrong, OK: true, Source: SrcBTB})
	if class != IClassMispred || lat != 2 || got != way {
		t.Fatalf("mispredicted fetch: lat=%d class=%v way=%d", lat, class, got)
	}
	if c.Acct.SecondProbes != 1 {
		t.Fatalf("SecondProbes = %d", c.Acct.SecondProbes)
	}
}

func TestIFetchNoPredictionIsParallel(t *testing.T) {
	c := newI(IWayPred)
	c.Fetch(0x400000, WayPred{Way: 0, OK: false, Source: SrcNone})
	lat, class, _ := c.Fetch(0x400000, WayPred{Way: 0, OK: false, Source: SrcNone})
	if class != IClassNoPred || lat != 1 {
		t.Fatalf("unpredicted fetch: lat=%d class=%v", lat, class)
	}
	if c.Acct.ParallelReads != 2 { // miss probe + this one
		t.Fatalf("ParallelReads = %d", c.Acct.ParallelReads)
	}
}

func TestIParallelIgnoresPredictions(t *testing.T) {
	c := newI(IParallel)
	_, _, way := c.Fetch(0x400000, WayPred{Way: 0, OK: false, Source: SrcNone})
	lat, class, _ := c.Fetch(0x400000, WayPred{Way: way, OK: true, Source: SrcBTB})
	if class != IClassNoPred || lat != 1 {
		t.Fatalf("parallel policy: lat=%d class=%v", lat, class)
	}
	if c.Acct.OneWayReads != 0 {
		t.Fatal("parallel policy read a single way")
	}
	if c.Stats().BySource[SrcBTB] != 0 {
		t.Fatal("parallel policy recorded a prediction source")
	}
}

func TestIClassBTBvsSAWPAttribution(t *testing.T) {
	c := newI(IWayPred)
	_, _, way := c.Fetch(0x400000, WayPred{Way: 0, OK: false, Source: SrcNone})
	c.Fetch(0x400000, WayPred{Way: way, OK: true, Source: SrcBTB})
	c.Fetch(0x400000, WayPred{Way: way, OK: true, Source: SrcRAS})
	c.Fetch(0x400000, WayPred{Way: way, OK: true, Source: SrcSAWP})
	st := c.Stats()
	if st.ByClass[IClassBTBCorrect] != 2 {
		t.Fatalf("BTB-correct = %d, want 2 (BTB + RAS)", st.ByClass[IClassBTBCorrect])
	}
	if st.ByClass[IClassTableCorrect] != 1 {
		t.Fatalf("table-correct = %d, want 1", st.ByClass[IClassTableCorrect])
	}
	if st.BySource[SrcBTB] != 1 || st.BySource[SrcRAS] != 1 || st.BySource[SrcSAWP] != 1 {
		t.Fatalf("source counts = %+v", st.BySource)
	}
}

func TestIFetchEnergyOrdering(t *testing.T) {
	// A predicted i-cache access stream must dissipate far less than a
	// parallel one on the same addresses.
	run := func(p IPolicy, predict bool) float64 {
		c := newI(p)
		ways := map[uint64]int{}
		for rep := 0; rep < 20; rep++ {
			for b := uint64(0); b < 64; b++ {
				pc := 0x400000 + b*32
				w, ok := ways[pc]
				_, _, trueWay := c.Fetch(pc, WayPred{Way: w, OK: predict && ok, Source: SrcSAWP})
				ways[pc] = trueWay
			}
		}
		return c.Acct.Total()
	}
	pred := run(IWayPred, true)
	par := run(IParallel, false)
	if pred >= par*0.5 {
		t.Fatalf("way-predicted stream energy %v not well below parallel %v", pred, par)
	}
}

func TestIStatsClassSum(t *testing.T) {
	c := newI(IWayPred)
	n := 200
	for i := 0; i < n; i++ {
		c.Fetch(uint64(0x400000+(i%100)*32), WayPred{Way: i % 4, OK: i%3 == 0, Source: SrcSAWP})
	}
	var sum int64
	for _, v := range c.Stats().ByClass {
		sum += v
	}
	if sum != int64(n) || c.Stats().Fetches != int64(n) {
		t.Fatalf("class sum %d, fetches %d, want %d", sum, c.Stats().Fetches, n)
	}
}
