package access

import (
	"fmt"
	"testing"

	"waycache/internal/cache"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

// allPolicies is every d-cache load policy, including the related-work
// baselines: the zero-allocation guarantee covers the whole DPolicy space.
var allPolicies = []DPolicy{
	DParallel, DSequential, DWayPredPC, DWayPredXOR,
	DSelDMParallel, DSelDMWayPred, DSelDMSequential, DWayPredMRU,
}

// allocInsts builds a deterministic mixed load pattern: enough distinct
// blocks to force steady-state misses, evictions, writebacks and selective-DM
// victim-list traffic, so the measurement covers every hot-path branch, not
// just the hit fast path.
func allocInsts(n int) []trace.Inst {
	insts := make([]trace.Inst, n)
	for i := range insts {
		addr := uint64(0x1000 + (i*3072)%(1<<18))
		insts[i] = trace.Inst{
			PC:        uint64(0x400000 + (i%256)*4),
			Kind:      isa.KindLoad,
			Addr:      addr,
			BaseValue: addr - 16,
			Offset:    16,
		}
	}
	return insts
}

// TestLoadStoreZeroAllocs pins the tentpole guarantee of the hot-path
// overhaul: once warm, DCache.Load and DCache.Store perform zero heap
// allocations per access under every policy. A regression here silently
// multiplies sweep cost by GC pressure, so it fails the build, not a
// benchmark eyeball.
func TestLoadStoreZeroAllocs(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			d := newD(pol)
			insts := allocInsts(4096)
			stores := make([]trace.Inst, len(insts))
			for i, in := range insts {
				stores[i] = in
				stores[i].Kind = isa.KindStore
			}
			// Warm every structure past compulsory behaviour.
			for i := range insts {
				d.Load(&insts[i])
				d.Store(&stores[i])
			}
			var pos int
			if avg := testing.AllocsPerRun(2000, func() {
				d.Load(&insts[pos])
				pos = (pos + 1) % len(insts)
			}); avg != 0 {
				t.Errorf("%v: DCache.Load allocates %.2f/op, want 0", pol, avg)
			}
			pos = 0
			if avg := testing.AllocsPerRun(2000, func() {
				d.Store(&stores[pos])
				pos = (pos + 1) % len(stores)
			}); avg != 0 {
				t.Errorf("%v: DCache.Store allocates %.2f/op, want 0", pol, avg)
			}
		})
	}
}

// TestSelectiveWaysZeroAllocs extends the guarantee to the Albonesi
// selective-cache-ways baseline controller.
func TestSelectiveWaysZeroAllocs(t *testing.T) {
	for _, active := range []int{1, 3, 4} {
		t.Run(fmt.Sprintf("active=%d", active), func(t *testing.T) {
			hier := cache.DefaultHierarchy(32)
			s := NewSelectiveWays(DConfig{Policy: DParallel, Cache: l1(), BaseLatency: 1}, active, hier)
			insts := allocInsts(4096)
			for i := range insts {
				s.Load(&insts[i])
			}
			var pos int
			if avg := testing.AllocsPerRun(2000, func() {
				s.Load(&insts[pos])
				pos = (pos + 1) % len(insts)
			}); avg != 0 {
				t.Errorf("SelectiveWays.Load allocates %.2f/op, want 0", avg)
			}
		})
	}
}

// TestICacheFetchZeroAllocs covers the i-cache fetch path the pipeline
// drives once per fetch group.
func TestICacheFetchZeroAllocs(t *testing.T) {
	hier := cache.DefaultHierarchy(32)
	ic := NewICache(IConfig{Policy: IWayPred, Cache: l1(), BaseLatency: 1}, hier)
	pcs := make([]uint64, 1024)
	for i := range pcs {
		pcs[i] = uint64(0x400000 + (i*4096)%(1<<17))
	}
	for _, pc := range pcs {
		ic.Fetch(pc, WayPred{Way: 0, OK: true, Source: SrcSAWP})
	}
	var pos int
	if avg := testing.AllocsPerRun(2000, func() {
		ic.Fetch(pcs[pos], WayPred{Way: 1, OK: true, Source: SrcBTB})
		pos = (pos + 1) % len(pcs)
	}); avg != 0 {
		t.Errorf("ICache.Fetch allocates %.2f/op, want 0", avg)
	}
}
