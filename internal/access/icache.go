package access

import (
	"fmt"

	"waycache/internal/cache"
	"waycache/internal/energy"
)

// IPolicy selects the i-cache access policy.
type IPolicy int

// I-cache policies evaluated in the paper.
const (
	IParallel IPolicy = iota
	IWayPred
)

// String names the policy.
func (p IPolicy) String() string {
	if p == IParallel {
		return "parallel"
	}
	return "waypred"
}

// WaySource records which structure supplied an i-cache way prediction,
// for the Figure 10 access breakdown.
type WaySource int

// Way-prediction sources.
const (
	SrcNone WaySource = iota // no prediction: parallel access
	SrcSAWP                  // sequential address way-predictor
	SrcBTB                   // branch target buffer entry
	SrcRAS                   // return address stack entry
	NumWaySources
)

// String names the source.
func (s WaySource) String() string {
	switch s {
	case SrcNone:
		return "none"
	case SrcSAWP:
		return "sawp"
	case SrcBTB:
		return "btb"
	case SrcRAS:
		return "ras"
	default:
		return fmt.Sprintf("WaySource(%d)", int(s))
	}
}

// IClass classifies one i-cache fetch access for the breakdown graph:
// correctly predicted by the SAWP, correctly predicted by the branch
// predictor structures (BTB/RAS), unpredicted (parallel), or
// way-mispredicted.
type IClass int

// I-cache access classes.
const (
	IClassTableCorrect IClass = iota // SAWP supplied the correct way
	IClassBTBCorrect                 // BTB or RAS supplied the correct way
	IClassNoPred                     // no prediction: parallel access
	IClassMispred                    // way prediction wrong: second probe
	IClassMiss                       // i-cache miss
	NumIClasses
)

// String names the class.
func (c IClass) String() string {
	switch c {
	case IClassTableCorrect:
		return "table-correct"
	case IClassBTBCorrect:
		return "btb-correct"
	case IClassNoPred:
		return "no-prediction"
	case IClassMispred:
		return "misprediction"
	case IClassMiss:
		return "miss"
	default:
		return fmt.Sprintf("IClass(%d)", int(c))
	}
}

// IStats aggregates i-cache controller statistics.
type IStats struct {
	Fetches  int64
	ByClass  [NumIClasses]int64
	BySource [NumWaySources]int64
	Misses   int64
}

// WayPred is a way prediction handed from the front end to the i-cache on
// a fetch: the predicted way, whether a prediction exists at all, and which
// structure supplied it (for the Figure 10 breakdown). The zero value is
// "no prediction": a parallel access.
type WayPred struct {
	Way    int
	OK     bool
	Source WaySource
}

// ICache is the i-cache access controller.
type ICache struct {
	Policy IPolicy
	L1     *cache.Cache
	Hier   *cache.Hierarchy
	Acct   *energy.Account

	// BaseLatency is the fetch hit latency (1 cycle in the paper).
	BaseLatency int

	stats IStats
}

// IConfig assembles an ICache controller.
type IConfig struct {
	Policy      IPolicy
	Cache       cache.Config
	BaseLatency int
	Costs       energy.Costs
}

// NewICache builds the controller.
func NewICache(cfg IConfig, hier *cache.Hierarchy) *ICache {
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 1
	}
	return &ICache{
		Policy:      cfg.Policy,
		L1:          cache.New(cfg.Cache),
		Hier:        hier,
		Acct:        &energy.Account{Costs: cfg.Costs},
		BaseLatency: cfg.BaseLatency,
	}
}

// Stats returns a copy of the counters.
func (c *ICache) Stats() IStats { return c.stats }

// Fetch accesses the i-cache block containing pc. pred carries the way
// prediction assembled by the fetch unit from the BTB, RAS or SAWP
// (pred.Source says which); under IParallel the prediction is ignored. It
// returns the access latency, the breakdown class, and the true way the
// block resides in after the access (for training the predictors).
//
//wclint:hotpath
func (c *ICache) Fetch(pc uint64, pred WayPred) (latency int, class IClass, trueWay int) {
	predWay, predOK, source := pred.Way, pred.OK, pred.Source
	c.stats.Fetches++
	if c.Policy == IParallel {
		predOK = false
		source = SrcNone
	}
	if !predOK {
		source = SrcNone
	}
	c.stats.BySource[source]++

	way, hit := c.L1.Probe(pc)
	if !hit {
		c.stats.Misses++
		if predOK {
			c.Acct.AddOneWayRead() // predicted way probed in vain
		} else {
			c.Acct.AddParallelRead()
		}
		ev, fillWay := c.L1.Fill(pc, false, false)
		c.Acct.AddFill()
		if ev.Valid && ev.Dirty {
			c.Hier.Writeback(ev.Addr)
		}
		lat := c.BaseLatency + c.Hier.FillLatency(c.L1.BlockAddr(pc))
		c.stats.ByClass[IClassMiss]++
		return lat, IClassMiss, fillWay
	}

	c.L1.Touch(pc, way, false)
	switch {
	case !predOK:
		c.Acct.AddParallelRead()
		c.stats.ByClass[IClassNoPred]++
		return c.BaseLatency, IClassNoPred, way
	case predWay == way:
		c.Acct.AddOneWayRead()
		class := IClassBTBCorrect
		if source == SrcSAWP {
			class = IClassTableCorrect
		}
		c.stats.ByClass[class]++
		return c.BaseLatency, class, way
	default:
		// Way misprediction: probe the matching way a second time.
		c.Acct.AddOneWayRead()
		c.Acct.AddSecondProbe()
		c.stats.ByClass[IClassMispred]++
		return c.BaseLatency + 1, IClassMispred, way
	}
}
