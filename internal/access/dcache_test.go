package access

import (
	"testing"

	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/isa"
	"waycache/internal/trace"
)

func l1() cache.Config {
	return cache.Config{Name: "L1d", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32}
}

func newD(policy DPolicy) *DCache {
	return NewDCache(DConfig{
		Policy:      policy,
		Cache:       l1(),
		BaseLatency: 1,
		Costs:       energy.PaperCosts(),
	}, cache.DefaultHierarchy(32))
}

func load(pc, addr uint64) *trace.Inst {
	return &trace.Inst{PC: pc, Kind: isa.KindLoad, Addr: addr, BaseValue: addr, Offset: 0}
}

func store(pc, addr uint64) *trace.Inst {
	return &trace.Inst{PC: pc, Kind: isa.KindStore, Addr: addr, BaseValue: addr, Offset: 0}
}

func TestParallelLoadHitLatencyAndEnergy(t *testing.T) {
	d := newD(DParallel)
	lat, class := d.Load(load(0x400000, 0x1000)) // miss
	if class != ClassMiss || lat <= d.BaseLatency {
		t.Fatalf("cold load: lat=%d class=%v", lat, class)
	}
	lat, class = d.Load(load(0x400000, 0x1000)) // hit
	if lat != 1 || class != ClassParallel {
		t.Fatalf("parallel hit: lat=%d class=%v", lat, class)
	}
	a := d.Acct
	if a.ParallelReads != 2 || a.Fills != 1 {
		t.Fatalf("account = %+v", a)
	}
}

func TestSequentialAddsOneCycle(t *testing.T) {
	d := newD(DSequential)
	d.Load(load(0x400000, 0x1000))
	lat, class := d.Load(load(0x400000, 0x1000))
	if lat != 2 || class != ClassSeq {
		t.Fatalf("sequential hit: lat=%d class=%v", lat, class)
	}
	// Sequential never reads more than one way.
	if d.Acct.ParallelReads != 0 {
		t.Fatal("sequential policy performed a parallel read")
	}
	if d.Acct.TagOnlyReads != 1 { // the initial miss
		t.Fatalf("TagOnlyReads = %d, want 1", d.Acct.TagOnlyReads)
	}
}

func TestWayPredPCLearnsStableWay(t *testing.T) {
	d := newD(DWayPredPC)
	in := load(0x400000, 0x1000)
	d.Load(in) // miss, trains table with fill way
	lat, class := d.Load(in)
	if class != ClassWayPred || lat != 1 {
		t.Fatalf("trained way-pred hit: lat=%d class=%v", lat, class)
	}
}

func TestWayPredMispredictionPenalty(t *testing.T) {
	d := newD(DWayPredPC)
	// Train PC A on a block, then move A's target to a block in a
	// different way of the same set.
	inA := load(0x400000, 0x0<<12) // tag 0 -> some way
	d.Load(inA)
	d.Load(inA) // correct now
	// New block, same set (index 0), different tag: fills another way.
	inB := load(0x400000, 0x1<<12)
	d.Load(inB) // miss; table now points at B's way
	// Return to the first block: prediction points at B's way -> mispredict.
	lat, class := d.Load(inA)
	if class != ClassMispred || lat != 2 {
		t.Fatalf("expected misprediction: lat=%d class=%v", lat, class)
	}
	if d.Acct.SecondProbes != 1 {
		t.Fatalf("SecondProbes = %d", d.Acct.SecondProbes)
	}
	if d.Stats().MispredWay != 1 {
		t.Fatalf("MispredWay = %d", d.Stats().MispredWay)
	}
}

func TestXORUsesHandleNotPC(t *testing.T) {
	d := newD(DWayPredXOR)
	// Same PC, two different addresses (different base values): the XOR
	// scheme should keep separate entries, unlike PC indexing.
	a := &trace.Inst{PC: 0x400000, Kind: isa.KindLoad, Addr: 0x0 << 12, BaseValue: 0x0 << 12}
	b := &trace.Inst{PC: 0x400000, Kind: isa.KindLoad, Addr: 0x40 << 12, BaseValue: 0x40 << 12}
	d.Load(a)
	d.Load(b)
	// Both were misses that trained distinct entries; both should now be
	// way-predicted correctly.
	if _, class := d.Load(a); class != ClassWayPred {
		t.Fatalf("a reload class = %v", class)
	}
	if _, class := d.Load(b); class != ClassWayPred {
		t.Fatalf("b reload class = %v", class)
	}
}

func TestSelDMDefaultsToDirectMapping(t *testing.T) {
	d := newD(DSelDMWayPred)
	in := load(0x400000, 0x1000)
	d.Load(in) // miss -> DM placement (non-conflicting default)
	lat, class := d.Load(in)
	if class != ClassDM || lat != 1 {
		t.Fatalf("non-conflicting reload: lat=%d class=%v", lat, class)
	}
	if d.Acct.OneWayReads == 0 {
		t.Fatal("DM access did not use a one-way read")
	}
}

func TestSelDMConflictingBlockMovesToSA(t *testing.T) {
	d := newD(DSelDMSequential)
	// Two blocks with the same index and the same DM way (tags differ by
	// a multiple of 4): they fight over one way until the victim list
	// flags them conflicting.
	pcA, pcB := uint64(0x400000), uint64(0x400100)
	blkA, blkB := uint64(0x0<<12), uint64(0x4<<12) // tags 0 and 4: DM way 0
	for i := 0; i < 10; i++ {
		d.Load(load(pcA, blkA))
		d.Load(load(pcB, blkB))
	}
	// After the ping-pong, at least one block should be SA-placed and the
	// loads should hit (conflict resolved).
	_, classA := d.Load(load(pcA, blkA))
	_, classB := d.Load(load(pcB, blkB))
	if classA == ClassMiss && classB == ClassMiss {
		t.Fatalf("conflict not resolved: classes %v, %v", classA, classB)
	}
	if d.Victims.Stats().Records == 0 {
		t.Fatal("victim list never trained")
	}
}

func TestSelDMParallelUsesParallelForConflicting(t *testing.T) {
	d := newD(DSelDMParallel)
	pc := uint64(0x400000)
	// Force the choice predictor to SA for this PC by updating it directly.
	d.SelDM.Update(pc, false, 1)
	d.SelDM.Update(pc, false, 1)
	in := load(pc, 0x1000)
	d.Load(in) // miss
	lat, class := d.Load(in)
	if class != ClassParallel && class != ClassMispred && class != ClassDM {
		t.Fatalf("unexpected class %v", class)
	}
	_ = lat
	if d.Acct.ParallelReads == 0 {
		t.Fatal("SelDM+parallel never issued a parallel read for SA-flagged loads")
	}
}

func TestStoresNeverPredict(t *testing.T) {
	for _, p := range []DPolicy{DParallel, DSequential, DWayPredPC, DSelDMWayPred} {
		d := newD(p)
		d.Store(store(0x400000, 0x1000)) // miss, write-allocate
		lat := d.Store(store(0x400000, 0x1000))
		if lat != d.BaseLatency {
			t.Errorf("%v: store hit latency = %d", p, lat)
		}
		if d.Acct.Writes != 1 {
			t.Errorf("%v: store hit writes = %d", p, d.Acct.Writes)
		}
		// Stores read no data ways.
		if d.Acct.ParallelReads != 0 && p != DParallel {
			t.Errorf("%v: store performed a parallel read", p)
		}
		if d.Stats().Stores != 2 {
			t.Errorf("%v: store count = %d", p, d.Stats().Stores)
		}
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	d := newD(DParallel)
	d.Store(store(0x400000, 0x0<<12))
	// Evict the dirty block by filling the set with 4 more blocks.
	for i := uint64(1); i <= 4; i++ {
		d.Load(load(0x400000, i<<12))
	}
	if d.Hier.Stats().Writebacks == 0 {
		t.Fatal("dirty eviction did not write back")
	}
}

func TestEnergyOrderingAcrossPolicies(t *testing.T) {
	// On an identical, hit-heavy access stream: sequential <= seldm+seq <=
	// seldm+waypred <= parallel in total energy.
	run := func(p DPolicy) float64 {
		d := newD(p)
		for rep := 0; rep < 50; rep++ {
			for i := uint64(0); i < 64; i++ {
				d.Load(load(0x400000+i*4, 0x1000+i*32))
			}
		}
		return d.Acct.Total()
	}
	seq := run(DSequential)
	sdmSeq := run(DSelDMSequential)
	sdmWp := run(DSelDMWayPred)
	par := run(DParallel)
	if !(seq < par && sdmSeq < par && sdmWp < par) {
		t.Fatalf("energy ordering violated: seq=%v sdmSeq=%v sdmWp=%v par=%v", seq, sdmSeq, sdmWp, par)
	}
	if par/seq < 2 {
		t.Fatalf("parallel should cost several times sequential on hits: %v vs %v", par, seq)
	}
}

func TestLoadClassCountsSum(t *testing.T) {
	d := newD(DSelDMWayPred)
	n := 0
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 512; i++ {
			d.Load(load(0x400000+(i%64)*4, (i*0x520)&0xffff0))
			n++
		}
	}
	var sum int64
	for _, c := range d.Stats().ByClass {
		sum += c
	}
	if sum != int64(n) || d.Stats().Loads != int64(n) {
		t.Fatalf("class sum %d != loads %d (stat %d)", sum, n, d.Stats().Loads)
	}
}

func TestBaseLatencyTwoCycles(t *testing.T) {
	d := NewDCache(DConfig{
		Policy: DSelDMSequential, Cache: l1(), BaseLatency: 2,
		Costs: energy.PaperCosts(),
	}, cache.DefaultHierarchy(32))
	in := load(0x400000, 0x1000)
	d.Load(in)
	lat, class := d.Load(in)
	if class != ClassDM || lat != 2 {
		t.Fatalf("2-cycle DM hit: lat=%d class=%v", lat, class)
	}
	// Force SA handling: sequential access on a 2-cycle cache = 3 cycles.
	d.SelDM.Update(in.PC, false, 0)
	d.SelDM.Update(in.PC, false, 0)
	lat, class = d.Load(in)
	if class != ClassSeq || lat != 3 {
		t.Fatalf("2-cycle sequential hit: lat=%d class=%v", lat, class)
	}
}
