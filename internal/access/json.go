package access

import (
	"encoding/json"
	"fmt"
)

// JSON encoding for the policy enums: policies marshal as the paper's
// figure names ("parallel", "seldm+waypred", ...) so serialized configs —
// persisted results, HTTP grid submissions — are self-describing, and
// unmarshal from either a name or the legacy integer enum value.

// MarshalJSON implements json.Marshaler.
func (p DPolicy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON implements json.Unmarshaler, accepting a policy name or an
// integer enum value.
func (p *DPolicy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		for cand := DParallel; cand <= DWayPredMRU; cand++ {
			if cand.String() == s {
				*p = cand
				return nil
			}
		}
		return fmt.Errorf("access: unknown d-cache policy %q", s)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("access: d-cache policy must be a name or integer, got %s", data)
	}
	if n < int(DParallel) || n > int(DWayPredMRU) {
		return fmt.Errorf("access: d-cache policy %d out of range", n)
	}
	*p = DPolicy(n)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (p IPolicy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON implements json.Unmarshaler, accepting a policy name or an
// integer enum value.
func (p *IPolicy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		for _, cand := range []IPolicy{IParallel, IWayPred} {
			if cand.String() == s {
				*p = cand
				return nil
			}
		}
		return fmt.Errorf("access: unknown i-cache policy %q", s)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("access: i-cache policy must be a name or integer, got %s", data)
	}
	if n < int(IParallel) || n > int(IWayPred) {
		return fmt.Errorf("access: i-cache policy %d out of range", n)
	}
	*p = IPolicy(n)
	return nil
}
