// Package access implements the paper's contribution: L1 cache access
// controllers that decide which data ways to probe for each access, charge
// the corresponding energy, and report the latency the timing model must
// impose.
//
// Every controller probes the full tag array on every access (the paper
// optimizes only the data array). They differ in data-way probing:
//
//	parallel:    all N ways, fastest, most energy
//	sequential:  the matching way only, +1 cycle on every load
//	way-pred:    the predicted way; on a wrong way, a second probe (+1 cycle)
//	selective-DM: the direct-mapping way for loads predicted non-conflicting;
//	             conflicting loads handled by parallel, way-pred, or
//	             sequential per configuration
//
// Stores never predict: they read the tag array first and write exactly
// one way in every configuration.
package access

import (
	"fmt"
	"math/bits"

	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/predict"
	"waycache/internal/trace"
)

// DPolicy selects the d-cache load-access policy.
type DPolicy int

// D-cache policies evaluated in the paper.
const (
	DParallel DPolicy = iota
	DSequential
	DWayPredPC
	DWayPredXOR
	DSelDMParallel
	DSelDMWayPred
	DSelDMSequential
	// DWayPredMRU is the related-work baseline of Inoue et al.: predict
	// the MRU way of the accessed set. Its energy and accuracy are
	// modelled; its critical-path liability (the prediction needs the data
	// address) is noted in the paper but not charged here, making it an
	// optimistic comparison point.
	DWayPredMRU
)

// String names the policy the way the paper's figures do.
func (p DPolicy) String() string {
	switch p {
	case DParallel:
		return "parallel"
	case DSequential:
		return "sequential"
	case DWayPredPC:
		return "waypred-pc"
	case DWayPredXOR:
		return "waypred-xor"
	case DSelDMParallel:
		return "seldm+parallel"
	case DSelDMWayPred:
		return "seldm+waypred"
	case DSelDMSequential:
		return "seldm+sequential"
	case DWayPredMRU:
		return "waypred-mru"
	default:
		return fmt.Sprintf("DPolicy(%d)", int(p))
	}
}

// UsesSelDM reports whether the policy isolates non-conflicting accesses.
func (p DPolicy) UsesSelDM() bool {
	return p == DSelDMParallel || p == DSelDMWayPred || p == DSelDMSequential
}

// LoadClass classifies a load for the paper's access-breakdown graphs
// (bottom of Figures 6–8).
type LoadClass int

// Load classes.
const (
	ClassDM       LoadClass = iota // correct direct-mapping probe
	ClassParallel                  // all ways probed
	ClassWayPred                   // correct way-prediction probe
	ClassSeq                       // sequential (tag-then-way) access
	ClassMispred                   // wrong way or wrong mapping: second probe
	ClassMiss                      // L1 miss (any probe type)
	NumLoadClasses
)

// String names the class.
func (c LoadClass) String() string {
	switch c {
	case ClassDM:
		return "direct-mapped"
	case ClassParallel:
		return "parallel"
	case ClassWayPred:
		return "way-predicted"
	case ClassSeq:
		return "sequential"
	case ClassMispred:
		return "mispredicted"
	case ClassMiss:
		return "miss"
	default:
		return fmt.Sprintf("LoadClass(%d)", int(c))
	}
}

// DController is the interface the timing pipeline drives loads and stores
// through. DCache implements it for all of the paper's policies;
// SelectiveWays implements it for the Albonesi comparison baseline.
type DController interface {
	Load(in *trace.Inst) (latency int, class LoadClass)
	Store(in *trace.Inst) (latency int)
	Stats() DStats
	Account() *energy.Account
	CacheStats() cache.Stats
}

// DStats aggregates controller-level d-cache statistics.
type DStats struct {
	Loads    int64
	Stores   int64
	ByClass  [NumLoadClasses]int64
	LoadMiss int64
	// MispredDM counts loads predicted direct-mapped that hit in a
	// set-associative position; MispredWay counts wrong way predictions.
	MispredDM  int64
	MispredWay int64
}

// loadFunc services one load under a specific policy. NewDCache binds the
// policy's implementation once, so the per-load hot path is a single
// indirect call instead of an eight-way switch; the functions are method
// expressions, so binding them allocates nothing and calls stay
// closure-free.
type loadFunc func(d *DCache, in *trace.Inst, way int, hit bool) (latency int, class LoadClass)

// DCache is a d-cache access controller: the L1 array, the hierarchy below
// it, the policy's prediction structures, and the energy account.
type DCache struct {
	Policy DPolicy
	L1     *cache.Cache
	Hier   *cache.Hierarchy
	Acct   *energy.Account

	// BaseLatency is the hit latency of the parallel-access baseline
	// (1 or 2 cycles in the paper). Mispredictions and sequential accesses
	// add cycles on top; techniques never access faster than the baseline
	// (the paper's conservative assumption).
	BaseLatency int

	WayTab  *predict.WayTable // DWayPredPC / DWayPredXOR
	SelDM   *predict.SelDM    // DSelDM*
	Victims *cache.VictimList // DSelDM*

	load  loadFunc
	stats DStats
}

// DConfig assembles a DCache controller.
type DConfig struct {
	Policy      DPolicy
	Cache       cache.Config
	BaseLatency int
	Costs       energy.Costs
	TableSize   int // way-prediction / selective-DM table entries (default 1024)
	VictimSize  int // victim list entries (default 16)
}

// NewDCache builds the controller with the policy's prediction structures.
func NewDCache(cfg DConfig, hier *cache.Hierarchy) *DCache {
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 1
	}
	if cfg.TableSize == 0 {
		cfg.TableSize = predict.DefaultWayEntries
	}
	if cfg.VictimSize == 0 {
		cfg.VictimSize = cache.DefaultVictimEntries
	}
	d := &DCache{
		Policy:      cfg.Policy,
		L1:          cache.New(cfg.Cache),
		Hier:        hier,
		Acct:        &energy.Account{Costs: cfg.Costs},
		BaseLatency: cfg.BaseLatency,
	}
	switch cfg.Policy {
	case DParallel:
		d.load = (*DCache).loadParallel
	case DSequential:
		d.load = (*DCache).loadSequential
	case DWayPredPC:
		d.WayTab = predict.NewWayTable(cfg.TableSize)
		d.load = (*DCache).loadWayPredPC
	case DWayPredXOR:
		// XOR handles approximate block addresses: index at block
		// granularity so one block's offsets share an entry.
		shift := uint(bits.TrailingZeros(uint(cfg.Cache.BlockBytes)))
		d.WayTab = predict.NewWayTableShift(cfg.TableSize, shift)
		d.load = (*DCache).loadWayPredXOR
	case DWayPredMRU:
		d.load = (*DCache).loadMRU
	case DSelDMParallel, DSelDMWayPred, DSelDMSequential:
		d.SelDM = predict.NewSelDM(cfg.TableSize)
		d.Victims = cache.NewVictimList(cfg.VictimSize, cache.DefaultConflictThreshold)
		d.load = (*DCache).loadSelDM
	default:
		panic(fmt.Sprintf("access: unknown d-cache policy %v", cfg.Policy))
	}
	return d
}

// Stats returns a copy of the counters.
func (d *DCache) Stats() DStats { return d.stats }

// Account returns the energy account.
func (d *DCache) Account() *energy.Account { return d.Acct }

// CacheStats returns the L1 array's hit/miss counters.
func (d *DCache) CacheStats() cache.Stats { return d.L1.Stats() }

// Load services a load and returns its total latency in cycles and its
// breakdown class. The policy implementation was bound at construction;
// steady-state loads perform no heap allocation.
//
//wclint:hotpath
func (d *DCache) Load(in *trace.Inst) (latency int, class LoadClass) {
	d.stats.Loads++
	way, hit := d.L1.Probe(in.Addr)
	latency, class = d.load(d, in, way, hit)
	d.stats.ByClass[class]++
	if !hit {
		d.stats.LoadMiss++
	}
	return latency, class
}

//wclint:hotpath
func (d *DCache) loadParallel(in *trace.Inst, way int, hit bool) (int, LoadClass) {
	addr := in.Addr
	d.Acct.AddParallelRead()
	if hit {
		d.L1.Touch(addr, way, false)
		return d.BaseLatency, ClassParallel
	}
	fillLat, _ := d.fill(addr, false)
	return d.BaseLatency + fillLat, ClassMiss
}

//wclint:hotpath
func (d *DCache) loadSequential(in *trace.Inst, way int, hit bool) (int, LoadClass) {
	addr := in.Addr
	if hit {
		// Tag first, then exactly the matching data way: +1 cycle.
		d.Acct.AddOneWayRead()
		d.L1.Touch(addr, way, false)
		return d.BaseLatency + 1, ClassSeq
	}
	// The tag lookup found no match; no data way is read.
	d.Acct.AddTagOnly()
	fillLat, _ := d.fill(addr, false)
	return d.BaseLatency + 1 + fillLat, ClassMiss
}

//wclint:hotpath
func (d *DCache) loadWayPredPC(in *trace.Inst, way int, hit bool) (int, LoadClass) {
	return d.loadWayPred(in, in.PC, way, hit)
}

//wclint:hotpath
func (d *DCache) loadWayPredXOR(in *trace.Inst, way int, hit bool) (int, LoadClass) {
	return d.loadWayPred(in, in.XORHandle(), way, hit)
}

//wclint:hotpath
func (d *DCache) loadWayPred(in *trace.Inst, handle uint64, way int, hit bool) (int, LoadClass) {
	addr := in.Addr
	predWay, _ := d.WayTab.Lookup(handle) // cold entries predict way 0
	d.Acct.AddTable(1)
	if !hit {
		// The predicted way was probed in vain alongside the tag array.
		d.Acct.AddOneWayRead()
		fillLat, fillWay := d.fill(addr, false)
		d.train(handle, fillWay)
		return d.BaseLatency + fillLat, ClassMiss
	}
	d.L1.Touch(addr, way, false)
	d.train(handle, way)
	if predWay == way {
		d.Acct.AddOneWayRead()
		return d.BaseLatency, ClassWayPred
	}
	// Wrong way: second probe of the correct way.
	d.Acct.AddOneWayRead()
	d.Acct.AddSecondProbe()
	d.stats.MispredWay++
	return d.BaseLatency + 1, ClassMispred
}

//wclint:hotpath
func (d *DCache) train(handle uint64, way int) {
	d.WayTab.Update(handle, way)
	d.Acct.AddTable(1)
}

//wclint:hotpath
func (d *DCache) loadSelDM(in *trace.Inst, way int, hit bool) (int, LoadClass) {
	addr := in.Addr
	mapping := d.SelDM.Predict(in.PC)
	d.Acct.AddTable(1)
	dmWay := d.L1.DMWay(addr)

	if !hit {
		lat := d.selDMMissProbe(mapping)
		d.Acct.AddTable(1) // trailing table update below
		fillLat, fillWay := d.fillSelDM(addr, false)
		d.SelDM.Update(in.PC, fillWay == dmWay, fillWay)
		return lat + fillLat, ClassMiss
	}

	d.L1.Touch(addr, way, false)
	hitDM := way == dmWay

	var lat int
	var class LoadClass
	switch {
	case mapping == predict.MapDirect && hitDM:
		d.Acct.AddOneWayRead()
		lat, class = d.BaseLatency, ClassDM
	case mapping == predict.MapDirect:
		// Predicted non-conflicting but the block lives in an SA way.
		d.Acct.AddOneWayRead()
		d.Acct.AddSecondProbe()
		d.stats.MispredDM++
		lat, class = d.BaseLatency+1, ClassMispred
	case d.Policy == DSelDMParallel:
		d.Acct.AddParallelRead()
		lat, class = d.BaseLatency, ClassParallel
	case d.Policy == DSelDMSequential:
		d.Acct.AddOneWayRead()
		lat, class = d.BaseLatency+1, ClassSeq
	default: // DSelDMWayPred, flagged conflicting
		predWay, _ := d.SelDM.PredictWay(in.PC)
		if predWay == way {
			d.Acct.AddOneWayRead()
			lat, class = d.BaseLatency, ClassWayPred
		} else {
			d.Acct.AddOneWayRead()
			d.Acct.AddSecondProbe()
			d.stats.MispredWay++
			lat, class = d.BaseLatency+1, ClassMispred
		}
	}

	// Train the choice predictor after the sub-policy consulted it (the
	// way-predicting variant reads the entry this update overwrites).
	d.SelDM.Update(in.PC, hitDM, way)
	d.Acct.AddTable(1)
	return lat, class
}

// selDMMissProbe charges the probe energy wasted by a miss under the
// predicted handling and returns the pre-fill latency.
//
//wclint:hotpath
func (d *DCache) selDMMissProbe(mapping predict.Mapping) int {
	if mapping == predict.MapDirect {
		d.Acct.AddOneWayRead()
		return d.BaseLatency
	}
	switch d.Policy {
	case DSelDMParallel:
		d.Acct.AddParallelRead()
		return d.BaseLatency
	case DSelDMSequential:
		d.Acct.AddTagOnly()
		return d.BaseLatency + 1
	default:
		d.Acct.AddOneWayRead()
		return d.BaseLatency
	}
}

// Store services a store. Stores probe the tag array first and write only
// the matching way, in every policy; they carry no prediction.
//
//wclint:hotpath
func (d *DCache) Store(in *trace.Inst) (latency int) {
	d.stats.Stores++
	addr := in.Addr
	if way, hit := d.L1.Probe(addr); hit {
		d.L1.Touch(addr, way, true)
		d.Acct.AddWrite()
		return d.BaseLatency
	}
	// Write-allocate miss.
	var fillLat int
	if d.Policy.UsesSelDM() {
		fillLat, _ = d.fillSelDM(addr, true)
	} else {
		fillLat, _ = d.fill(addr, true)
	}
	return d.BaseLatency + fillLat
}

// fill performs a conventional LRU fill and returns the fill latency and
// the way filled, so callers that train predictors on the fill need no
// second Probe.
//
//wclint:hotpath
func (d *DCache) fill(addr uint64, write bool) (latency, way int) {
	ev, way := d.L1.Fill(addr, false, write)
	d.Acct.AddFill()
	if ev.Valid && ev.Dirty {
		d.Hier.Writeback(ev.Addr)
	}
	return d.Hier.FillLatency(d.L1.BlockAddr(addr)), way
}

// fillSelDM performs a selective-DM placement fill: non-conflicting blocks
// (per the victim list) go to their direct-mapping way, conflicting blocks
// to the set-associative (LRU) position. Evictions train the victim list.
//
//wclint:hotpath
func (d *DCache) fillSelDM(addr uint64, write bool) (latency, way int) {
	blockAddr := d.L1.BlockAddr(addr)
	dmPlace := !d.Victims.Conflicting(blockAddr)
	ev, way := d.L1.Fill(addr, dmPlace, write)
	d.Acct.AddFill()
	if ev.Valid {
		d.Victims.RecordEviction(ev.Addr)
		if ev.Dirty {
			d.Hier.Writeback(ev.Addr)
		}
	}
	return d.Hier.FillLatency(blockAddr), way
}
