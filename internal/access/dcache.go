// Package access implements the paper's contribution: L1 cache access
// controllers that decide which data ways to probe for each access, charge
// the corresponding energy, and report the latency the timing model must
// impose.
//
// Every controller probes the full tag array on every access (the paper
// optimizes only the data array). They differ in data-way probing:
//
//	parallel:    all N ways, fastest, most energy
//	sequential:  the matching way only, +1 cycle on every load
//	way-pred:    the predicted way; on a wrong way, a second probe (+1 cycle)
//	selective-DM: the direct-mapping way for loads predicted non-conflicting;
//	             conflicting loads handled by parallel, way-pred, or
//	             sequential per configuration
//
// Stores never predict: they read the tag array first and write exactly
// one way in every configuration.
package access

import (
	"fmt"
	"math/bits"

	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/predict"
	"waycache/internal/trace"
)

// DPolicy selects the d-cache load-access policy.
type DPolicy int

// D-cache policies evaluated in the paper.
const (
	DParallel DPolicy = iota
	DSequential
	DWayPredPC
	DWayPredXOR
	DSelDMParallel
	DSelDMWayPred
	DSelDMSequential
	// DWayPredMRU is the related-work baseline of Inoue et al.: predict
	// the MRU way of the accessed set. Its energy and accuracy are
	// modelled; its critical-path liability (the prediction needs the data
	// address) is noted in the paper but not charged here, making it an
	// optimistic comparison point.
	DWayPredMRU
)

// String names the policy the way the paper's figures do.
func (p DPolicy) String() string {
	switch p {
	case DParallel:
		return "parallel"
	case DSequential:
		return "sequential"
	case DWayPredPC:
		return "waypred-pc"
	case DWayPredXOR:
		return "waypred-xor"
	case DSelDMParallel:
		return "seldm+parallel"
	case DSelDMWayPred:
		return "seldm+waypred"
	case DSelDMSequential:
		return "seldm+sequential"
	case DWayPredMRU:
		return "waypred-mru"
	default:
		return fmt.Sprintf("DPolicy(%d)", int(p))
	}
}

// UsesSelDM reports whether the policy isolates non-conflicting accesses.
func (p DPolicy) UsesSelDM() bool {
	return p == DSelDMParallel || p == DSelDMWayPred || p == DSelDMSequential
}

// LoadClass classifies a load for the paper's access-breakdown graphs
// (bottom of Figures 6–8).
type LoadClass int

// Load classes.
const (
	ClassDM       LoadClass = iota // correct direct-mapping probe
	ClassParallel                  // all ways probed
	ClassWayPred                   // correct way-prediction probe
	ClassSeq                       // sequential (tag-then-way) access
	ClassMispred                   // wrong way or wrong mapping: second probe
	ClassMiss                      // L1 miss (any probe type)
	NumLoadClasses
)

// String names the class.
func (c LoadClass) String() string {
	switch c {
	case ClassDM:
		return "direct-mapped"
	case ClassParallel:
		return "parallel"
	case ClassWayPred:
		return "way-predicted"
	case ClassSeq:
		return "sequential"
	case ClassMispred:
		return "mispredicted"
	case ClassMiss:
		return "miss"
	default:
		return fmt.Sprintf("LoadClass(%d)", int(c))
	}
}

// DController is the interface the timing pipeline drives loads and stores
// through. DCache implements it for all of the paper's policies;
// SelectiveWays implements it for the Albonesi comparison baseline.
type DController interface {
	Load(in *trace.Inst) (latency int, class LoadClass)
	Store(in *trace.Inst) (latency int)
	Stats() DStats
	Account() *energy.Account
	CacheStats() cache.Stats
}

// DStats aggregates controller-level d-cache statistics.
type DStats struct {
	Loads    int64
	Stores   int64
	ByClass  [NumLoadClasses]int64
	LoadMiss int64
	// MispredDM counts loads predicted direct-mapped that hit in a
	// set-associative position; MispredWay counts wrong way predictions.
	MispredDM  int64
	MispredWay int64
}

// DCache is a d-cache access controller: the L1 array, the hierarchy below
// it, the policy's prediction structures, and the energy account.
type DCache struct {
	Policy DPolicy
	L1     *cache.Cache
	Hier   *cache.Hierarchy
	Acct   *energy.Account

	// BaseLatency is the hit latency of the parallel-access baseline
	// (1 or 2 cycles in the paper). Mispredictions and sequential accesses
	// add cycles on top; techniques never access faster than the baseline
	// (the paper's conservative assumption).
	BaseLatency int

	WayTab  *predict.WayTable // DWayPredPC / DWayPredXOR
	SelDM   *predict.SelDM    // DSelDM*
	Victims *cache.VictimList // DSelDM*

	stats DStats
}

// DConfig assembles a DCache controller.
type DConfig struct {
	Policy      DPolicy
	Cache       cache.Config
	BaseLatency int
	Costs       energy.Costs
	TableSize   int // way-prediction / selective-DM table entries (default 1024)
	VictimSize  int // victim list entries (default 16)
}

// NewDCache builds the controller with the policy's prediction structures.
func NewDCache(cfg DConfig, hier *cache.Hierarchy) *DCache {
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 1
	}
	if cfg.TableSize == 0 {
		cfg.TableSize = predict.DefaultWayEntries
	}
	if cfg.VictimSize == 0 {
		cfg.VictimSize = cache.DefaultVictimEntries
	}
	d := &DCache{
		Policy:      cfg.Policy,
		L1:          cache.New(cfg.Cache),
		Hier:        hier,
		Acct:        &energy.Account{Costs: cfg.Costs},
		BaseLatency: cfg.BaseLatency,
	}
	switch cfg.Policy {
	case DWayPredPC:
		d.WayTab = predict.NewWayTable(cfg.TableSize)
	case DWayPredXOR:
		// XOR handles approximate block addresses: index at block
		// granularity so one block's offsets share an entry.
		shift := uint(bits.TrailingZeros(uint(cfg.Cache.BlockBytes)))
		d.WayTab = predict.NewWayTableShift(cfg.TableSize, shift)
	case DSelDMParallel, DSelDMWayPred, DSelDMSequential:
		d.SelDM = predict.NewSelDM(cfg.TableSize)
		d.Victims = cache.NewVictimList(cfg.VictimSize, cache.DefaultConflictThreshold)
	}
	return d
}

// Stats returns a copy of the counters.
func (d *DCache) Stats() DStats { return d.stats }

// Account returns the energy account.
func (d *DCache) Account() *energy.Account { return d.Acct }

// CacheStats returns the L1 array's hit/miss counters.
func (d *DCache) CacheStats() cache.Stats { return d.L1.Stats() }

// Load services a load and returns its total latency in cycles and its
// breakdown class.
func (d *DCache) Load(in *trace.Inst) (latency int, class LoadClass) {
	d.stats.Loads++
	addr := in.Addr
	way, hit := d.L1.Probe(addr)

	switch d.Policy {
	case DParallel:
		latency, class = d.loadParallel(addr, way, hit)
	case DSequential:
		latency, class = d.loadSequential(addr, way, hit)
	case DWayPredPC:
		latency, class = d.loadWayPred(in, in.PC, addr, way, hit)
	case DWayPredXOR:
		latency, class = d.loadWayPred(in, in.XORHandle(), addr, way, hit)
	case DWayPredMRU:
		latency, class = d.loadMRU(addr, way, hit)
	default:
		latency, class = d.loadSelDM(in, addr, way, hit)
	}

	d.stats.ByClass[class]++
	if !hit {
		d.stats.LoadMiss++
	}
	return latency, class
}

func (d *DCache) loadParallel(addr uint64, way int, hit bool) (int, LoadClass) {
	d.Acct.AddParallelRead()
	if hit {
		d.L1.Touch(addr, way, false)
		return d.BaseLatency, ClassParallel
	}
	return d.BaseLatency + d.fill(addr, false), ClassMiss
}

func (d *DCache) loadSequential(addr uint64, way int, hit bool) (int, LoadClass) {
	if hit {
		// Tag first, then exactly the matching data way: +1 cycle.
		d.Acct.AddOneWayRead()
		d.L1.Touch(addr, way, false)
		return d.BaseLatency + 1, ClassSeq
	}
	// The tag lookup found no match; no data way is read.
	d.Acct.AddTagOnly()
	return d.BaseLatency + 1 + d.fill(addr, false), ClassMiss
}

func (d *DCache) loadWayPred(in *trace.Inst, handle, addr uint64, way int, hit bool) (int, LoadClass) {
	predWay, _ := d.WayTab.Lookup(handle) // cold entries predict way 0
	d.Acct.AddTable(1)
	if !hit {
		// The predicted way was probed in vain alongside the tag array.
		d.Acct.AddOneWayRead()
		lat := d.BaseLatency + d.fill(addr, false)
		fillWay, _ := d.L1.Probe(addr)
		d.train(handle, fillWay)
		return lat, ClassMiss
	}
	d.L1.Touch(addr, way, false)
	d.train(handle, way)
	if predWay == way {
		d.Acct.AddOneWayRead()
		return d.BaseLatency, ClassWayPred
	}
	// Wrong way: second probe of the correct way.
	d.Acct.AddOneWayRead()
	d.Acct.AddSecondProbe()
	d.stats.MispredWay++
	return d.BaseLatency + 1, ClassMispred
}

func (d *DCache) train(handle uint64, way int) {
	d.WayTab.Update(handle, way)
	d.Acct.AddTable(1)
}

func (d *DCache) loadSelDM(in *trace.Inst, addr uint64, way int, hit bool) (int, LoadClass) {
	mapping := d.SelDM.Predict(in.PC)
	d.Acct.AddTable(1)
	dmWay := d.L1.DMWay(addr)

	if !hit {
		lat := d.selDMMissProbe(mapping)
		d.Acct.AddTable(1) // trailing table update below
		fillLat, fillWay := d.fillSelDM(addr, false)
		d.SelDM.Update(in.PC, fillWay == dmWay, fillWay)
		return lat + fillLat, ClassMiss
	}

	d.L1.Touch(addr, way, false)
	hitDM := way == dmWay
	defer func() {
		d.SelDM.Update(in.PC, hitDM, way)
		d.Acct.AddTable(1)
	}()

	if mapping == predict.MapDirect {
		if hitDM {
			d.Acct.AddOneWayRead()
			return d.BaseLatency, ClassDM
		}
		// Predicted non-conflicting but the block lives in an SA way.
		d.Acct.AddOneWayRead()
		d.Acct.AddSecondProbe()
		d.stats.MispredDM++
		return d.BaseLatency + 1, ClassMispred
	}

	// Flagged conflicting: handle per sub-policy.
	switch d.Policy {
	case DSelDMParallel:
		d.Acct.AddParallelRead()
		return d.BaseLatency, ClassParallel
	case DSelDMSequential:
		d.Acct.AddOneWayRead()
		return d.BaseLatency + 1, ClassSeq
	default: // DSelDMWayPred
		predWay, _ := d.SelDM.PredictWay(in.PC)
		if predWay == way {
			d.Acct.AddOneWayRead()
			return d.BaseLatency, ClassWayPred
		}
		d.Acct.AddOneWayRead()
		d.Acct.AddSecondProbe()
		d.stats.MispredWay++
		return d.BaseLatency + 1, ClassMispred
	}
}

// selDMMissProbe charges the probe energy wasted by a miss under the
// predicted handling and returns the pre-fill latency.
func (d *DCache) selDMMissProbe(mapping predict.Mapping) int {
	if mapping == predict.MapDirect {
		d.Acct.AddOneWayRead()
		return d.BaseLatency
	}
	switch d.Policy {
	case DSelDMParallel:
		d.Acct.AddParallelRead()
		return d.BaseLatency
	case DSelDMSequential:
		d.Acct.AddTagOnly()
		return d.BaseLatency + 1
	default:
		d.Acct.AddOneWayRead()
		return d.BaseLatency
	}
}

// Store services a store. Stores probe the tag array first and write only
// the matching way, in every policy; they carry no prediction.
func (d *DCache) Store(in *trace.Inst) (latency int) {
	d.stats.Stores++
	addr := in.Addr
	if way, hit := d.L1.Probe(addr); hit {
		d.L1.Touch(addr, way, true)
		d.Acct.AddWrite()
		return d.BaseLatency
	}
	// Write-allocate miss.
	var fillLat int
	if d.Policy.UsesSelDM() {
		fillLat, _ = d.fillSelDM(addr, true)
	} else {
		fillLat = d.fill(addr, true)
	}
	return d.BaseLatency + fillLat
}

// fill performs a conventional LRU fill and returns the fill latency.
func (d *DCache) fill(addr uint64, write bool) int {
	ev, _ := d.L1.Fill(addr, false, write)
	d.Acct.AddFill()
	if ev.Valid && ev.Dirty {
		d.Hier.Writeback(ev.Addr)
	}
	return d.Hier.FillLatency(d.L1.BlockAddr(addr))
}

// fillSelDM performs a selective-DM placement fill: non-conflicting blocks
// (per the victim list) go to their direct-mapping way, conflicting blocks
// to the set-associative (LRU) position. Evictions train the victim list.
func (d *DCache) fillSelDM(addr uint64, write bool) (latency, way int) {
	blockAddr := d.L1.BlockAddr(addr)
	dmPlace := !d.Victims.Conflicting(blockAddr)
	ev, way := d.L1.Fill(addr, dmPlace, write)
	d.Acct.AddFill()
	if ev.Valid {
		d.Victims.RecordEviction(ev.Addr)
		if ev.Dirty {
			d.Hier.Writeback(ev.Addr)
		}
	}
	return d.Hier.FillLatency(blockAddr), way
}
