package access

import (
	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/trace"
)

// This file implements the two comparative baselines the paper discusses
// in its Related Work section:
//
//   - Selective cache ways (Albonesi, MICRO-32): a coarse-grain scheme
//     that statically disables some of the N ways for a whole application,
//     trading capacity (and therefore misses) for per-access energy. The
//     paper contrasts its all-or-nothing, per-application decision with
//     selective-DM's per-access decision.
//
//   - MRU way-prediction (Inoue, Ishihara & Murakami, ISLPED'99): predict
//     the most-recently-used way of the accessed set. Accurate, but the
//     prediction needs the set index — i.e. the data address — so it
//     inserts a table lookup after address generation into the cache
//     critical path; the paper rules it out for L1 timing (Section 2.2.1).
//     We model its energy and accuracy; its timing liability is noted, not
//     charged, which makes it an *optimistic* baseline.

// SelectiveWays is a d-cache controller implementing Albonesi's selective
// cache ways: only ActiveWays of the Ways are enabled. Reads probe the
// enabled ways in parallel; fills allocate only within them. Disabled ways
// hold no data (we model the stable configuration, not transitions).
type SelectiveWays struct {
	L1     *cache.Cache // built with ActiveWays associativity
	Hier   *cache.Hierarchy
	Acct   *energy.Account
	Active int
	Total  int

	BaseLatency int
	stats       DStats
}

// NewSelectiveWays builds the controller. cfg.Cache describes the *full*
// cache; the controller derives the active-ways array from it by shrinking
// associativity (and therefore capacity — disabled ways store nothing).
// Costs must be those of the full geometry so the partial parallel read is
// priced relative to the full parallel baseline.
func NewSelectiveWays(cfg DConfig, active int, hier *cache.Hierarchy) *SelectiveWays {
	if active <= 0 || active > cfg.Cache.Ways {
		panic("access: selective ways needs 1 <= active <= ways")
	}
	shrunk := cfg.Cache
	shrunk.Ways = active
	shrunk.SizeBytes = cfg.Cache.SizeBytes / cfg.Cache.Ways * active
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 1
	}
	return &SelectiveWays{
		L1:     cache.New(shrunk),
		Hier:   hier,
		Acct:   &energy.Account{Costs: cfg.Costs},
		Active: active,
		Total:  cfg.Cache.Ways,

		BaseLatency: cfg.BaseLatency,
	}
}

// Stats returns a copy of the counters.
func (s *SelectiveWays) Stats() DStats { return s.stats }

// Account returns the energy account.
func (s *SelectiveWays) Account() *energy.Account { return s.Acct }

// CacheStats returns the active-ways array's hit/miss counters.
func (s *SelectiveWays) CacheStats() cache.Stats { return s.L1.Stats() }

// Load services a load: a parallel probe of the enabled ways.
func (s *SelectiveWays) Load(in *trace.Inst) (latency int, class LoadClass) {
	s.stats.Loads++
	s.Acct.AddPartialRead(s.Active)
	if way, hit := s.L1.Probe(in.Addr); hit {
		s.L1.Touch(in.Addr, way, false)
		s.stats.ByClass[ClassParallel]++
		return s.BaseLatency, ClassParallel
	}
	s.stats.LoadMiss++
	s.stats.ByClass[ClassMiss]++
	ev, _ := s.L1.Fill(in.Addr, false, false)
	s.Acct.AddFill()
	if ev.Valid && ev.Dirty {
		s.Hier.Writeback(ev.Addr)
	}
	return s.BaseLatency + s.Hier.FillLatency(s.L1.BlockAddr(in.Addr)), ClassMiss
}

// Store services a store (tag probe + one-way write, as always).
func (s *SelectiveWays) Store(in *trace.Inst) (latency int) {
	s.stats.Stores++
	if way, hit := s.L1.Probe(in.Addr); hit {
		s.L1.Touch(in.Addr, way, true)
		s.Acct.AddWrite()
		return s.BaseLatency
	}
	ev, _ := s.L1.Fill(in.Addr, false, true)
	s.Acct.AddFill()
	if ev.Valid && ev.Dirty {
		s.Hier.Writeback(ev.Addr)
	}
	return s.BaseLatency + s.Hier.FillLatency(s.L1.BlockAddr(in.Addr))
}

// loadMRU implements MRU way-prediction inside the standard DCache
// controller: the predicted way is the set's most-recently-used way.
func (d *DCache) loadMRU(in *trace.Inst, way int, hit bool) (int, LoadClass) {
	addr := in.Addr
	predWay := d.L1.MRUWay(addr)
	if !hit {
		d.Acct.AddOneWayRead()
		fillLat, _ := d.fill(addr, false)
		return d.BaseLatency + fillLat, ClassMiss
	}
	d.L1.Touch(addr, way, false)
	if predWay == way {
		d.Acct.AddOneWayRead()
		return d.BaseLatency, ClassWayPred
	}
	d.Acct.AddOneWayRead()
	d.Acct.AddSecondProbe()
	d.stats.MispredWay++
	return d.BaseLatency + 1, ClassMispred
}
