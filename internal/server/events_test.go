package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readStatusEvents consumes an SSE stream to EOF and returns every
// "status" event's decoded JobStatus, in order.
func readStatusEvents(t *testing.T, resp *http.Response) []JobStatus {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	var events []JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // event:/comment/blank lines
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(data), &st); err != nil {
			t.Fatalf("bad event payload %q: %v", data, err)
		}
		events = append(events, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return events
}

// TestJobEventsStreamToDone: the SSE stream carries the job from
// submission to the terminal "done" event and then closes — no polling.
func TestJobEventsStreamToDone(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts.URL, testGridJSON)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readStatusEvents(t, resp)
	if len(events) == 0 {
		t.Fatal("event stream closed without a single status event")
	}
	last := events[len(events)-1]
	if last.State != "done" {
		t.Errorf("final event state = %q, want done", last.State)
	}
	if last.Done != last.Total || last.Total == 0 {
		t.Errorf("final event progress = %d/%d, want full", last.Done, last.Total)
	}
	for _, e := range events {
		if e.ID != st.ID {
			t.Errorf("event for job %q on %q's stream", e.ID, st.ID)
		}
	}

	// A stream opened after the job finished delivers exactly the
	// terminal event and closes.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events = readStatusEvents(t, resp)
	if len(events) != 1 || events[0].State != "done" {
		t.Errorf("stream of finished job = %+v, want one done event", events)
	}
}

// TestJobEventsStreamCancelled: a watcher of a long job sees the
// terminal "cancelled" event when someone cancels it, then EOF.
func TestJobEventsStreamCancelled(t *testing.T) {
	srv := New(Options{Workers: 2, EventHeartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	st := submit(t, ts.URL, bigGridJSON)
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []JobStatus, 1)
	go func() { done <- readStatusEvents(t, resp) }()

	pollRunning(t, ts.URL, st.ID)
	post(t, ts.URL+"/api/v1/jobs/"+st.ID+"/cancel")

	select {
	case events := <-done:
		if len(events) == 0 || events[len(events)-1].State != "cancelled" {
			t.Errorf("cancelled job's stream ended with %+v, want terminal cancelled event", events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not terminate after cancel")
	}
}

// TestJobEventsUnknownJob: streaming a nonexistent job is a plain 404,
// not a hung stream.
func TestJobEventsUnknownJob(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/jobs/job-999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job = %d, want 404", resp.StatusCode)
	}
}
