package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
	"waycache/internal/workload"
)

// newTraceServer starts a server backed by a fresh content-addressed
// trace store.
func newTraceServer(t *testing.T) (*tracestore.Store, *httptest.Server) {
	t.Helper()
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 4, TraceStore: store})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return store, ts
}

// captureBytes captures n instructions of bench and returns the .wct
// bytes with their content hash.
func captureBytes(t *testing.T, bench string, n int64) ([]byte, string) {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), bench+trace.FileExt)
	if err := p.CaptureFile(path, n); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	return body, hex.EncodeToString(sum[:])
}

func putTrace(t *testing.T, base, hash string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/api/v1/traces/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestTraceUploadDownloadRoundTrip(t *testing.T) {
	store, ts := newTraceServer(t)
	body, hash := captureBytes(t, "gcc", 1000)

	if resp := putTrace(t, ts.URL, hash, body); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first PUT status = %d, want 201", resp.StatusCode)
	}
	if !store.Has(hash) {
		t.Fatal("uploaded trace is not in the backing store")
	}
	// Re-uploading the same object is idempotent, not an error.
	if resp := putTrace(t, ts.URL, hash, body); resp.StatusCode != http.StatusOK {
		t.Errorf("repeat PUT status = %d, want 200", resp.StatusCode)
	}

	got, resp := fetch(t, ts.URL+"/api/v1/traces/"+hash)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, body) {
		t.Error("downloaded trace differs from the uploaded bytes")
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Errorf("Content-Length = %q, want %d", cl, len(body))
	}

	// HEAD is the coordinator's presence probe: status and length, no body.
	resp, err := http.Head(ts.URL + "/api/v1/traces/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD status = %d", resp.StatusCode)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(body)) {
		t.Errorf("HEAD Content-Length = %q, want %d", cl, len(body))
	}

	var list struct{ Traces []string }
	getJSON(t, ts.URL+"/api/v1/traces", &list)
	if len(list.Traces) != 1 || list.Traces[0] != hash {
		t.Errorf("trace list = %v, want [%s]", list.Traces, hash)
	}
}

func TestTraceUploadRejectsBadContent(t *testing.T) {
	store, ts := newTraceServer(t)
	body, hash := captureBytes(t, "gcc", 1000)

	// Bytes that do not hash to the URL's name must not be stored.
	lying := strings.Repeat("ab", 32)
	if resp := putTrace(t, ts.URL, lying, body); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched PUT status = %d, want 400", resp.StatusCode)
	}
	if store.Has(lying) || store.Has(hash) {
		t.Error("a rejected upload left an object in the store")
	}

	// Bytes that are not a .wct file are refused even under their true hash.
	junk := []byte("not a trace at all")
	sum := sha256.Sum256(junk)
	if resp := putTrace(t, ts.URL, hex.EncodeToString(sum[:]), junk); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-trace PUT status = %d, want 400", resp.StatusCode)
	}

	if resp := putTrace(t, ts.URL, "nothex", body); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed-hash PUT status = %d, want 400", resp.StatusCode)
	}
	if _, resp := fetch(t, ts.URL+"/api/v1/traces/"+strings.Repeat("cd", 32)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET of absent hash status = %d, want 404", resp.StatusCode)
	}
	if _, resp := fetch(t, ts.URL+"/api/v1/traces/nothex"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET of malformed hash status = %d, want 400", resp.StatusCode)
	}
}

func TestTraceEndpointsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t)
	hash := strings.Repeat("ab", 32)
	if _, resp := fetch(t, ts.URL+"/api/v1/traces/"+hash); resp.StatusCode != http.StatusConflict {
		t.Errorf("GET without a store status = %d, want 409", resp.StatusCode)
	}
	if resp := putTrace(t, ts.URL, hash, []byte("x")); resp.StatusCode != http.StatusConflict {
		t.Errorf("PUT without a store status = %d, want 409", resp.StatusCode)
	}
	if _, resp := fetch(t, ts.URL+"/api/v1/traces"); resp.StatusCode != http.StatusConflict {
		t.Errorf("list without a store status = %d, want 409", resp.StatusCode)
	}
}

// TestSubmitTraceRefJob: a job whose grid maps a benchmark to an
// uploaded trace://<hash> replays it — no fallbacks — and serves records
// byte-identical to the walker job of the same grid.
func TestSubmitTraceRefJob(t *testing.T) {
	_, ts := newTraceServer(t)
	const insts = 5_000
	body, hash := captureBytes(t, "gcc", insts)
	if resp := putTrace(t, ts.URL, hash, body); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	grid := fmt.Sprintf(`{"Benchmarks":["gcc"],"DWays":[2,4],"Insts":%d,"TraceRefs":{"gcc":%q}}`,
		insts, trace.FormatRef(hash))
	st := submit(t, ts.URL, grid)
	st = pollDone(t, ts.URL, st.ID)
	if len(st.TraceFallbacks) != 0 {
		t.Fatalf("trace:// job fell back to the walker: %v", st.TraceFallbacks)
	}
	got, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}

	eng := sweep.New(sweep.Options{Workers: 4})
	sw, err := eng.Run(context.Background(), sweep.Grid{
		Benchmarks: []string{"gcc"}, DWays: []int{2, 4}, Insts: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sw.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("trace:// job records differ from the walker job's records")
	}
}

// TestSubmitTraceRefValidation: malformed references 400 at submission,
// like unknown benchmarks — not minutes later inside the job.
func TestSubmitTraceRefValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, grid := range []string{
		`{"Benchmarks":["gcc"],"TraceRefs":{"gcc":"not-a-ref"}}`,
		`{"Benchmarks":["gcc"],"TraceRefs":{"swim":"` + trace.FormatRef(strings.Repeat("ab", 32)) + `"}}`,
		`{"Benchmarks":["spec-mcf"]}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(grid))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%s) status = %d (%v), want 400", grid, resp.StatusCode, e)
		}
	}
	// An external benchmark WITH a reference is accepted (it 202s and the
	// job later fails only if the hash resolves nowhere).
	grid := `{"Benchmarks":["spec-mcf"],"TraceRefs":{"spec-mcf":"` + trace.FormatRef(strings.Repeat("ab", 32)) + `"},"Insts":1000}`
	st := submit(t, ts.URL, grid)
	if st.State != "queued" {
		t.Errorf("external trace-ref submission state = %q", st.State)
	}
}
