package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"waycache/internal/sweep"
)

func authedGet(t *testing.T, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestParseAuthTokens(t *testing.T) {
	tokens, err := ParseAuthTokens("alice=s3cret, bob=hunter2")
	if err != nil {
		t.Fatal(err)
	}
	if tokens["s3cret"] != "alice" || tokens["hunter2"] != "bob" {
		t.Errorf("parsed tokens = %v", tokens)
	}
	for _, bad := range []string{"", "justatoken", "=nope", "name=", "a=x,b=x"} {
		if _, err := ParseAuthTokens(bad); err == nil {
			t.Errorf("ParseAuthTokens(%q) accepted", bad)
		}
	}
}

// TestBearerAuth: with tokens configured every API endpoint requires a
// known bearer token; /healthz stays open for liveness probes.
func TestBearerAuth(t *testing.T) {
	tokens, err := ParseAuthTokens("alice=s3cret,bob=hunter2")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 2, AuthTokens: tokens})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	if resp := authedGet(t, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz without token = %d, want 200 (liveness must stay open)", resp.StatusCode)
	}
	resp := authedGet(t, ts.URL+"/api/v1/jobs", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token = %d, want 401", resp.StatusCode)
	}
	if h := resp.Header.Get("WWW-Authenticate"); !strings.Contains(h, "Bearer") {
		t.Errorf("401 WWW-Authenticate = %q, want a Bearer challenge", h)
	}
	if resp := authedGet(t, ts.URL+"/api/v1/jobs", "wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown token = %d, want 401", resp.StatusCode)
	}
	for _, token := range []string{"s3cret", "hunter2"} {
		if resp := authedGet(t, ts.URL+"/api/v1/jobs", token); resp.StatusCode != http.StatusOK {
			t.Errorf("token %q = %d, want 200", token, resp.StatusCode)
		}
	}

	// Submissions carry the token too; the job runs under that identity.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs", strings.NewReader(testGridJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer s3cret")
	post, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusAccepted {
		t.Errorf("authed submit = %d, want 202", post.StatusCode)
	}
}

// TestPprofBehindAuth: the /debug/pprof/ routes ride the same wrapper as
// the API — profiles of an authenticated service must not leak openly.
func TestPprofBehindAuth(t *testing.T) {
	tokens, err := ParseAuthTokens("alice=s3cret")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 2, AuthTokens: tokens})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	if resp := authedGet(t, ts.URL+"/debug/pprof/", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("pprof index without token = %d, want 401", resp.StatusCode)
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
		if resp := authedGet(t, ts.URL+path, "s3cret"); resp.StatusCode != http.StatusOK {
			t.Errorf("authed %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestRateLimiter exercises the token bucket directly with synthetic
// clocks: burst, deny, refill, and per-identity isolation.
func TestRateLimiter(t *testing.T) {
	l := newRateLimiter(1, 2) // 1 req/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", now); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.allow("a", now)
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry <= 0 || retry > 2*time.Second {
		t.Errorf("retryAfter = %v, want (0, 2s]", retry)
	}
	// Another identity has its own bucket.
	if ok, _ := l.allow("b", now); !ok {
		t.Error("fresh identity denied by a's exhausted bucket")
	}
	// One second refills one token.
	if ok, _ := l.allow("a", now.Add(time.Second)); !ok {
		t.Error("refilled bucket still denied")
	}
}

// TestRateLimitHTTP: an exhausted client gets 429 with Retry-After while
// other clients keep working, in token mode.
func TestRateLimitHTTP(t *testing.T) {
	tokens, err := ParseAuthTokens("alice=s3cret,bob=hunter2")
	if err != nil {
		t.Fatal(err)
	}
	// Refill so slow the burst is effectively the whole allowance.
	srv := New(Options{Workers: 2, AuthTokens: tokens, RatePerSec: 0.001, RateBurst: 3})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	var got429 *http.Response
	for i := 0; i < 4; i++ {
		resp := authedGet(t, ts.URL+"/api/v1/jobs", "s3cret")
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = resp
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d", i, resp.StatusCode)
		}
	}
	if got429 == nil {
		t.Fatal("burst of 3 never produced a 429 within 4 requests")
	}
	if got429.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if resp := authedGet(t, ts.URL+"/api/v1/jobs", "hunter2"); resp.StatusCode != http.StatusOK {
		t.Errorf("bob throttled by alice's bucket: %d", resp.StatusCode)
	}
	if resp := authedGet(t, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz rate-limited: %d", resp.StatusCode)
	}
}

// TestAdminCompact: the admin endpoint compacts the disk-backed log
// online — reclaimed bytes reported, live results still served — and is
// refused without a disk store.
func TestAdminCompact(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/api/v1/admin/compact")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("compact without disk store = %d, want 409", resp.StatusCode)
	}

	dir := t.TempDir()
	store, db, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 4, Store: store, Compactor: db})
	tsd := httptest.NewServer(srv)
	t.Cleanup(func() { tsd.Close(); srv.Close(); db.Close() })

	st := submit(t, tsd.URL, testGridJSON)
	pollDone(t, tsd.URL, st.ID)
	keys := db.Keys()
	if len(keys) == 0 {
		t.Fatal("disk store empty after a finished job")
	}
	if ok, err := db.Delete(keys[0]); err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	before := db.Garbage()
	if before == 0 {
		t.Fatal("no garbage after delete")
	}

	creq, err := http.NewRequest(http.MethodPost, tsd.URL+"/api/v1/admin/compact", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Live      int   `json:"live"`
		Reclaimed int64 `json:"reclaimedBytes"`
	}
	if err := jsonDecode(cresp, &stats); err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK || stats.Reclaimed != before || stats.Live != len(keys)-1 {
		t.Errorf("compact = %d %+v, want 200 with reclaimed=%d live=%d", cresp.StatusCode, stats, before, len(keys)-1)
	}
	if g := db.Garbage(); g != 0 {
		t.Errorf("garbage after compact = %d, want 0", g)
	}
	// The store still serves every surviving record.
	for _, key := range db.Keys() {
		if _, found, err := db.Get(key); err != nil || !found {
			t.Errorf("post-compact Get(%q): found=%v err=%v", key, found, err)
		}
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
