package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"waycache/internal/sweep"
)

// TestMultiClientStress is the multi-tenant acceptance test: several
// authenticated clients concurrently submit overlapping grids; every job
// completes, each unique configuration is simulated exactly once across
// the whole fleet of jobs (memoization dedupe), no budget waiters leak,
// and every job's output is byte-identical to an offline serial run of
// the same grid.
func TestMultiClientStress(t *testing.T) {
	const clients = 4
	spec := "alice=tok-0,bob=tok-1,carol=tok-2,dave=tok-3"
	tokens, err := ParseAuthTokens(spec)
	if err != nil {
		t.Fatal(err)
	}
	store := sweep.NewStore()
	srv := New(Options{Workers: 4, Store: store, AuthTokens: tokens})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Overlapping but distinct grids: every client shares the gcc and
	// swim cells; each adds one private benchmark. Union of unique
	// configs: (2 shared + 4 private benchmarks) x 2 policies x 2 ways.
	private := []string{"li", "perl", "go", "vortex"}
	grid := func(i int) string {
		return fmt.Sprintf(`{"Benchmarks":["gcc","swim",%q],"DPolicies":["parallel","seldm+waypred"],"DWays":[2,4],"Insts":5000,"name":"client-%d"}`, private[i], i)
	}
	uniqueConfigs := (2 + clients) * 2 * 2

	submitAs := func(token, body string) (JobStatus, error) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs", strings.NewReader(body))
		if err != nil {
			return JobStatus{}, err
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return JobStatus{}, err
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return JobStatus{}, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return st, fmt.Errorf("submit = %d", resp.StatusCode)
		}
		return st, nil
	}
	// The shared helpers in server_test.go are unauthenticated; this
	// server requires tokens, so the test carries its own authed GET.
	getAs := func(token, url string) ([]byte, *http.Response) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("reading %s: %v", url, err)
		}
		return buf.Bytes(), resp
	}
	pollTerminalAs := func(token, id string) JobStatus {
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			body, resp := getAs(token, ts.URL+"/api/v1/jobs/"+id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("poll %s = %d: %s", id, resp.StatusCode, body)
			}
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			switch st.State {
			case "done", "failed", "cancelled":
				return st
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s never reached a terminal state", id)
		return JobStatus{}
	}

	var wg sync.WaitGroup
	ids := make([]string, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := submitAs(fmt.Sprintf("tok-%d", i), grid(i))
			ids[i], errs[i] = st.ID, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, id := range ids {
		if st := pollTerminalAs(fmt.Sprintf("tok-%d", i), id); st.State != "done" {
			t.Fatalf("client %d job %s ended %q (%s), want done", i, id, st.State, st.Error)
		}
	}

	// Memoization dedupe: the overlapping cells were simulated once for
	// the whole fleet, not once per client.
	if got := store.Misses(); got != int64(uniqueConfigs) {
		t.Errorf("store simulated %d configs, want %d (one per unique config)", got, uniqueConfigs)
	}

	// Byte-identical to serial: each job's served output equals a fresh
	// one-worker offline run of its grid, both JSON and CSV.
	for i, id := range ids {
		var g sweep.Grid
		if err := json.Unmarshal([]byte(grid(i)), &g); err != nil {
			t.Fatal(err)
		}
		ng, err := g.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		want, err := sweep.New(sweep.Options{Workers: 1}).Run(t.Context(), ng)
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range []string{"json", "csv"} {
			got, resp := getAs("tok-0", ts.URL+"/api/v1/jobs/"+id+"/results?format="+format)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("results(%s) = %d", format, resp.StatusCode)
			}
			var buf bytes.Buffer
			if format == "json" {
				want.WriteJSON(&buf)
			} else {
				want.WriteCSV(&buf)
			}
			if !bytes.Equal(got, buf.Bytes()) {
				t.Errorf("client %d %s output differs from serial offline run", i, format)
			}
		}
	}

	var stats struct {
		Scheduler struct {
			Waiting int `json:"waiting"`
		} `json:"scheduler"`
	}
	body, _ := getAs("tok-0", ts.URL+"/api/v1/stats")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Scheduler.Waiting != 0 {
		t.Errorf("%d budget waiters leaked after all jobs finished", stats.Scheduler.Waiting)
	}
}

// TestCancelEvictRaces hammers the lifecycle edges the concurrent
// scheduler introduced: double-cancels, cancel racing completion, and
// eviction racing cancellation must all converge — every job terminal,
// every eviction eventually 200, nothing wedged.
func TestCancelEvictRaces(t *testing.T) {
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	const rounds = 12
	for i := 0; i < rounds; i++ {
		// Large enough to usually still be running at cancel time, small
		// enough that the "cancel lost to completion" branch also occurs.
		st := submit(t, ts.URL, fmt.Sprintf(`{"Benchmarks":["gcc"],"DWays":[1,2,4],"Insts":200000,"name":"race-%d"}`, i))

		var wg sync.WaitGroup
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// 200 (we won), 409 (already terminal) and 404 (the racing
				// evict already removed a terminal job) are all legal;
				// anything else is a lifecycle bug.
				resp, _ := post(t, ts.URL+"/api/v1/jobs/"+st.ID+"/cancel")
				switch resp.StatusCode {
				case http.StatusOK, http.StatusConflict, http.StatusNotFound:
				default:
					t.Errorf("racing cancel = %d", resp.StatusCode)
				}
			}()
		}
		// Eviction races the cancels: 409 while live, 200 once terminal.
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(30 * time.Second)
			for {
				resp := del(t, ts.URL+"/api/v1/jobs/"+st.ID)
				switch resp.StatusCode {
				case http.StatusOK:
					return
				case http.StatusConflict:
					if time.Now().After(deadline) {
						t.Error("job never became evictable")
						return
					}
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("racing evict = %d", resp.StatusCode)
					return
				}
			}
		}()
		wg.Wait()

		// The job is gone; the server still answers.
		if _, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID); resp.StatusCode != http.StatusNotFound {
			t.Errorf("round %d: evicted job still present (%d)", i, resp.StatusCode)
		}
	}

	// The scheduler survived: a fresh job runs to completion.
	final := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, final.ID)
}
