package server

import (
	"crypto/subtle"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Authentication and per-client rate limiting.
//
// waycached runs in one of two modes. Open mode (no AuthTokens) accepts
// every request and identifies clients by remote host — the right default
// for a lab machine or a trusted cluster. Token mode requires
// "Authorization: Bearer <token>" on every endpoint except /healthz and
// identifies clients by the token's configured name, which is also the
// identity the fair-share scheduler meters simulation slots under: one
// token, one share.
//
// Rate limiting (when RatePerSec > 0) is a per-identity token bucket,
// refilled continuously and capped at RateBurst. It bounds request
// processing (grid parsing, corpus queries), not simulation work — the
// simulation Budget already meters that — so a chatty poller cannot
// monopolize the HTTP side of the service either. Both modes limit:
// open mode per remote host, token mode per token name.

// ParseAuthTokens parses an -auth-tokens flag value: comma-separated
// name=token pairs, e.g. "alice=s3cret,ci=deadbeef". It returns a
// token -> client name map for Options.AuthTokens. Names and tokens must
// be non-empty; duplicate tokens are an error (the name a request maps
// to would be ambiguous).
func ParseAuthTokens(s string) (map[string]string, error) {
	tokens := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, token, ok := strings.Cut(pair, "=")
		if !ok || name == "" || token == "" {
			return nil, fmt.Errorf("bad auth token entry %q (want name=token)", pair)
		}
		if prev, dup := tokens[token]; dup {
			return nil, fmt.Errorf("token for %q duplicates the one for %q", name, prev)
		}
		tokens[token] = name
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("auth token list is empty")
	}
	return tokens, nil
}

// ParseAuthTokensFile parses a token file for -auth-tokens-file: one
// name=token entry per line, with blank lines and #-comment lines
// ignored. The same duplicate and emptiness rules as ParseAuthTokens
// apply. Operators rotate credentials by rewriting this file and sending
// waycached a SIGHUP (the daemon also polls the file's mtime).
func ParseAuthTokensFile(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	tokens, err := ParseAuthTokens(strings.Join(entries, ","))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tokens, nil
}

// SetAuthTokens atomically replaces the live bearer-token map. Requests
// already past authentication are unaffected, and jobs keep the
// fair-share identity captured at submission: rotating a client's token
// never re-owns or interrupts its in-flight work. Only meaningful on a
// server constructed in token mode (non-empty Options.AuthTokens); the
// replacement map must be non-empty, since an empty one would silently
// flip the server open.
func (s *Server) SetAuthTokens(tokens map[string]string) error {
	if len(s.opts.AuthTokens) == 0 {
		return fmt.Errorf("server was started open (no -auth-tokens); token rotation needs token mode")
	}
	if len(tokens) == 0 {
		return fmt.Errorf("refusing to rotate to an empty token set")
	}
	s.tokens.Store(&tokens)
	return nil
}

// identityKey carries the authenticated client identity in the request
// context, from the auth wrapper to the submit handler (budget owner).
type ctxKey int

const identityKey ctxKey = iota

// clientID returns the request's authenticated identity: the token's
// name in token mode, the remote host in open mode.
func clientID(r *http.Request) string {
	if id, ok := r.Context().Value(identityKey).(string); ok && id != "" {
		return id
	}
	return "anonymous"
}

// authenticate resolves a request to a client identity. In token mode a
// missing or unknown bearer token fails; tokens are compared in constant
// time so the map's contents cannot be probed byte-by-byte.
func (s *Server) authenticate(r *http.Request) (string, bool) {
	if len(s.opts.AuthTokens) == 0 {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if host == "" {
			host = "local"
		}
		return host, true
	}
	bearer, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return "", false
	}
	for token, name := range *s.tokens.Load() {
		if subtle.ConstantTimeCompare([]byte(token), []byte(bearer)) == 1 {
			return name, true
		}
	}
	return "", false
}

// rateLimiter is a per-identity token bucket: rate tokens per second,
// holding at most burst. No dependency beyond the clock.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex //wclint:lockrank 15
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = 16
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow consumes one token for id, reporting how long the client should
// wait before retrying when the bucket is empty.
func (l *rateLimiter) allow(id string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[id]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[id] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}
