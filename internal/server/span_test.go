package server

// Tests for the elastic-coordinator surface of the server: span
// submissions ({"span": "lo-hi"}), the partial-progress export
// watermark, GET export?prefix=N against running and finished jobs, and
// live bearer-token rotation.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waycache/internal/sweep"
)

// TestSpanJobsConcatenateToFullGrid: span submissions run exactly the
// contiguous config ranges they name, and their exports concatenate to
// the full-grid expansion in order — the invariant the coordinator's
// merge rests on.
func TestSpanJobsConcatenateToFullGrid(t *testing.T) {
	_, ts := newTestServer(t)

	cfgs := testGrid().Configs()
	const n = 3
	var allKeys []string
	for i := 0; i < n; i++ {
		lo, hi := sweep.SpanOf(len(cfgs), i, n)
		body := fmt.Sprintf(`{"Benchmarks":["gcc","swim"],"DPolicies":["parallel","seldm+waypred"],"DWays":[2,4],"Insts":5000,"name":"span-%d","span":"%d-%d"}`, i, lo, hi)
		st := submit(t, ts.URL, body)
		if st.Total != hi-lo {
			t.Errorf("span %d-%d total = %d, want %d", lo, hi, st.Total, hi-lo)
		}
		if want := sweep.FormatSpan(lo, hi); st.Span != want {
			t.Errorf("span field = %q, want %q", st.Span, want)
		}
		st = pollDone(t, ts.URL, st.ID)
		if st.Watermark != hi-lo {
			t.Errorf("finished span job watermark = %d, want %d", st.Watermark, hi-lo)
		}

		exp, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("span %d-%d export status = %d", lo, hi, resp.StatusCode)
		}
		for _, e := range decodeExport(t, exp) {
			allKeys = append(allKeys, e.Key)
		}
	}
	if len(allKeys) != len(cfgs) {
		t.Fatalf("span exports hold %d entries, want %d", len(allKeys), len(cfgs))
	}
	for i, key := range allKeys {
		want, _ := cfgs[i].Key()
		if key != want {
			t.Errorf("concatenated export key %d = %q, want %q", i, key, want)
		}
	}

	// Bad spans are submission errors: malformed, inverted, negative,
	// out of grid range, or combined with a shard.
	for _, bad := range []string{
		`"span":"x"`,
		`"span":"5-2"`,
		`"span":"-1-3"`,
		`"span":"0-999"`,
		`"span":"0-2","shard":"0/2"`,
	} {
		body := fmt.Sprintf(`{"Benchmarks":["gcc"],"Insts":5000,%s}`, bad)
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submission with %s -> %d, want 400", bad, resp.StatusCode)
		}
	}
}

func decodeExport(t *testing.T, data []byte) []ExportEntry {
	t.Helper()
	var entries []ExportEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var e ExportEntry
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("decoding export: %v", err)
		}
		if e.Key == "" || len(e.Result) == 0 {
			t.Fatalf("export entry %+v is incomplete", e)
		}
		entries = append(entries, e)
	}
	return entries
}

// TestPartialExportWatermark: a running exportable job's watermark
// grows with its finished prefix, export?prefix=N serves exactly that
// prefix mid-run, and over-asking or malformed prefixes are refused.
func TestPartialExportWatermark(t *testing.T) {
	srv := New(Options{Workers: 1}) // one worker: the prefix finishes strictly in order
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	g := sweep.Grid{Benchmarks: []string{"gcc", "swim"}, DWays: []int{1, 2, 4}, Insts: 3_000_000}
	cfgs := g.Configs()
	st := submit(t, ts.URL, `{"Benchmarks":["gcc","swim"],"DWays":[1,2,4],"Insts":3000000,"name":"wm"}`)
	total := st.Total
	if total != len(cfgs) {
		t.Fatalf("job total = %d, want %d", total, len(cfgs))
	}

	// Catch the job mid-run with a non-empty, non-complete watermark.
	var mid JobStatus
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &mid)
		if mid.State == "running" && mid.Watermark >= 1 && mid.Watermark < total {
			break
		}
		if mid.State == "done" || mid.State == "failed" {
			t.Fatalf("job reached %q before a mid-run watermark was observed", mid.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	w := mid.Watermark
	if w < 1 || w >= total {
		t.Fatalf("never caught a mid-run watermark (last status %+v)", mid)
	}

	// The watermarked prefix is servable right now, mid-run.
	exp, resp := fetch(t, fmt.Sprintf("%s/api/v1/jobs/%s/export?prefix=%d", ts.URL, st.ID, w))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export?prefix=%d of running job = %d, want 200", w, resp.StatusCode)
	}
	entries := decodeExport(t, exp)
	if len(entries) != w {
		t.Fatalf("prefix export holds %d entries, want %d", len(entries), w)
	}
	for i, e := range entries {
		want, _ := cfgs[i].Key()
		if e.Key != want {
			t.Errorf("prefix entry %d key = %q, want %q", i, e.Key, want)
		}
	}

	// Asking beyond what any state could serve is a conflict, and the
	// 409 body carries the job's status so a thief can re-plan.
	body, resp := fetch(t, fmt.Sprintf("%s/api/v1/jobs/%s/export?prefix=%d", ts.URL, st.ID, total+5))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("export?prefix=%d = %d, want 409", total+5, resp.StatusCode)
	}
	var denied JobStatus
	if err := json.Unmarshal(body, &denied); err != nil || denied.ID != st.ID {
		t.Errorf("409 body is not the job's status: %q (err %v)", body, err)
	}

	// Malformed prefixes are client errors.
	for _, bad := range []string{"abc", "-2", "1.5"} {
		_, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export?prefix="+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("export?prefix=%s = %d, want 400", bad, resp.StatusCode)
		}
	}

	// After completion the watermark is the whole job and any prefix of
	// it is servable; the prefix bytes are a prefix of the full export.
	done := pollDone(t, ts.URL, st.ID)
	if done.Watermark != total {
		t.Errorf("done watermark = %d, want %d", done.Watermark, total)
	}
	full, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export")
	if resp.StatusCode != http.StatusOK || len(decodeExport(t, full)) != total {
		t.Fatalf("full export after done: status %d", resp.StatusCode)
	}
	pre, resp := fetch(t, fmt.Sprintf("%s/api/v1/jobs/%s/export?prefix=2", ts.URL, st.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export?prefix=2 after done = %d, want 200", resp.StatusCode)
	}
	if !bytes.HasPrefix(full, pre) || len(decodeExport(t, pre)) != 2 {
		t.Error("prefix export of a done job is not a byte-prefix of its full export")
	}
}

// TestAuthTokenRotation: SetAuthTokens swaps the live credential set
// without a restart — old tokens stop working, new ones start, and jobs
// submitted under the old credential keep running untouched.
func TestAuthTokenRotation(t *testing.T) {
	tokens, err := ParseAuthTokens("alice=old-secret")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 2, AuthTokens: tokens})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	authedJSON := func(method, url, token, body string, out any) *http.Response {
		t.Helper()
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp
	}

	// A long job enters under the old credential.
	var st JobStatus
	if resp := authedJSON(http.MethodPost, ts.URL+"/api/v1/jobs", "old-secret", bigGridJSON, &st); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit under old token = %d, want 202", resp.StatusCode)
	}

	// Rotate: same client name, fresh token.
	newTokens, err := ParseAuthTokens("alice=new-secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetAuthTokens(newTokens); err != nil {
		t.Fatal(err)
	}
	if resp := authedGet(t, ts.URL+"/api/v1/jobs", "old-secret"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("old token after rotation = %d, want 401", resp.StatusCode)
	}
	if resp := authedGet(t, ts.URL+"/api/v1/jobs", "new-secret"); resp.StatusCode != http.StatusOK {
		t.Errorf("new token after rotation = %d, want 200", resp.StatusCode)
	}

	// The in-flight job survived the rotation; the new credential
	// controls it (same fair-share identity).
	var after JobStatus
	authedJSON(http.MethodGet, ts.URL+"/api/v1/jobs/"+st.ID, "new-secret", "", &after)
	if after.ID != st.ID || after.State == "cancelled" || after.State == "failed" {
		t.Errorf("in-flight job after rotation = %+v", after)
	}
	if resp := authedJSON(http.MethodPost, ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "new-secret", "", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("cancel with rotated token = %d, want 200", resp.StatusCode)
	}

	// Guard rails: never rotate to nothing, never "rotate" an open server.
	if err := srv.SetAuthTokens(nil); err == nil {
		t.Error("rotation to an empty token set was accepted")
	}
	open := New(Options{Workers: 1})
	t.Cleanup(open.Close)
	if err := open.SetAuthTokens(newTokens); err == nil {
		t.Error("token rotation on an open server was accepted")
	}
}

// TestParseAuthTokensFile: the token-file format is one name=token per
// line with comments, under the same validity rules as the flag form.
func TestParseAuthTokensFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tokens")
	if err := os.WriteFile(good, []byte("# fleet credentials\n\nalice=s1\nbob=s2\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	tokens, err := ParseAuthTokensFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if tokens["s1"] != "alice" || tokens["s2"] != "bob" || len(tokens) != 2 {
		t.Errorf("parsed token file = %v", tokens)
	}

	for name, content := range map[string]string{
		"dup":     "alice=s1\nbob=s1\n",
		"empty":   "# nothing but comments\n",
		"badline": "alice\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseAuthTokensFile(path); err == nil {
			t.Errorf("token file %q parsed without error", name)
		}
	}
	if _, err := ParseAuthTokensFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing token file parsed without error")
	}
}
