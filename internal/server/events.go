package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// GET /api/v1/jobs/{id}/events streams the job's status as Server-Sent
// Events: one "status" event immediately, one per progress or state
// change, and a final one carrying the terminal state ("done", "failed"
// or "cancelled") after which the stream closes. Comment-line heartbeats
// keep idle proxies from timing the connection out. Clients that cannot
// consume SSE poll GET /api/v1/jobs/{id} instead — the payloads are the
// identical JobStatus JSON.

// defaultHeartbeat is the idle keep-alive interval for event streams.
const defaultHeartbeat = 15 * time.Second

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("response writer cannot stream; poll GET /api/v1/jobs/{id}"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	heartbeat := s.opts.EventHeartbeat
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()

	for {
		// Snapshot status and the change channel together: a change that
		// lands after this snapshot closes the channel, so nothing can
		// slip between "send" and "wait".
		st, changed := j.statusWatch()
		if err := writeSSE(w, fl, st); err != nil {
			return
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			return
		}
	idle:
		for {
			select {
			case <-changed:
				break idle
			case <-ticker.C:
				if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
					return
				}
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	}
}

func writeSSE(w http.ResponseWriter, fl http.Flusher, st JobStatus) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: status\ndata: %s\n\n", data); err != nil {
		return err
	}
	fl.Flush()
	return nil
}
