package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"waycache/internal/access"
	"waycache/internal/sweep"
)

// testGridJSON is the grid every end-to-end test submits: small, two
// benchmarks, a policy and geometry dimension.
const testGridJSON = `{
  "Benchmarks": ["gcc", "swim"],
  "DPolicies": ["parallel", "seldm+waypred"],
  "DWays": [2, 4],
  "Insts": 5000
}`

func testGrid() sweep.Grid {
	return sweep.Grid{
		Benchmarks: []string{"gcc", "swim"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		DWays:      []int{2, 4},
		Insts:      5_000,
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{Workers: 4})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp
}

func submit(t *testing.T, base, body string) JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st
}

func pollDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, base+"/api/v1/jobs/"+id, &st)
		switch st.State {
		case "done":
			if st.Done != st.Total {
				t.Errorf("done job reports done=%d total=%d", st.Done, st.Total)
			}
			return st
		case "failed":
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func fetch(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return buf.Bytes(), resp
}

func TestSubmitPollResultsByteIdentical(t *testing.T) {
	// Acceptance: waycached serves a submitted grid's records
	// byte-identically to the offline CLI path (engine + Sweep writers).
	_, ts := newTestServer(t)

	st := submit(t, ts.URL, testGridJSON)
	if st.State != "queued" || st.Total != testGrid().Size() {
		t.Errorf("submit status = %+v", st)
	}
	pollDone(t, ts.URL, st.ID)

	// Offline reference: same grid through a fresh engine, as cmd/sweep
	// runs it.
	eng := sweep.New(sweep.Options{Workers: 4})
	sw, err := eng.Run(context.Background(), testGrid())
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := sw.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	gotJSON, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	if !bytes.Equal(gotJSON, wantJSON.Bytes()) {
		t.Errorf("served JSON differs from offline sweep output")
	}

	gotCSV, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results?format=csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv results status = %d", resp.StatusCode)
	}
	if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
		t.Errorf("served CSV differs from offline sweep output")
	}
}

func TestJobResultsBeforeDone(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts.URL, testGridJSON)
	// Immediately asking for results may race completion; a 409 carries
	// the job status, a 200 the records. Anything else is a bug.
	_, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Errorf("early results status = %d, want 409 or 200", resp.StatusCode)
	}
	pollDone(t, ts.URL, st.ID)
}

func TestQueryAndAggregate(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, st.ID)

	var recs []sweep.Record
	getJSON(t, ts.URL+"/api/v1/results?benchmark=gcc&dpolicy=seldm%2Bwaypred", &recs)
	if len(recs) != 2 {
		t.Fatalf("filtered query returned %d records, want 2 (dways 2 and 4)", len(recs))
	}
	for _, r := range recs {
		if r.Benchmark != "gcc" || r.DPolicy != "seldm+waypred" {
			t.Errorf("filter leaked record %s/%s", r.Benchmark, r.DPolicy)
		}
	}
	if recs[0].DWays != 2 || recs[1].DWays != 4 {
		t.Errorf("query results not in canonical order: dways %d,%d", recs[0].DWays, recs[1].DWays)
	}

	var empty []sweep.Record
	getJSON(t, ts.URL+"/api/v1/results?dways=16", &empty)
	if len(empty) != 0 {
		t.Errorf("dways=16 matched %d records, want 0", len(empty))
	}

	var stats []sweep.GroupStat
	getJSON(t, ts.URL+"/api/v1/aggregate?by=dPolicy&metric=dCacheEnergy", &stats)
	if len(stats) != 2 {
		t.Fatalf("aggregate returned %d groups, want 2", len(stats))
	}
	// Canonical group order is sorted: "parallel" before "seldm+waypred";
	// way prediction must cost less d-cache energy than parallel probes.
	if stats[0].Group != "parallel" || stats[1].Group != "seldm+waypred" {
		t.Errorf("groups = %s,%s", stats[0].Group, stats[1].Group)
	}
	if !(stats[1].Mean < stats[0].Mean) {
		t.Errorf("seldm+waypred mean energy %.1f not below parallel %.1f", stats[1].Mean, stats[0].Mean)
	}
	for _, g := range stats {
		if g.Count != 4 { // 2 benchmarks x 2 dways
			t.Errorf("group %s count = %d, want 4", g.Group, g.Count)
		}
	}

	_, resp := fetch(t, ts.URL+"/api/v1/aggregate?by=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus dimension status = %d, want 400", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{not json`, http.StatusBadRequest},
		{"unknown field", `{"Wat": 1}`, http.StatusBadRequest},
		{"unknown benchmark", `{"Benchmarks":["nope"]}`, http.StatusBadRequest},
		{"unknown policy", `{"DPolicies":["bogus"]}`, http.StatusBadRequest},
		// 1025 x 1025 values expand past MaxGridSize (1<<20) while the
		// body stays small, so the grid-size limit (not the body cap) is
		// what rejects it.
		{"oversized grid", fmt.Sprintf(`{"DWays":[%s1],"DSizes":[%s1]}`,
			strings.Repeat("1,", 1024), strings.Repeat("1,", 1024)), http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	_, resp := fetch(t, ts.URL+"/api/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	_, resp = fetch(t, ts.URL+"/api/v1/results?dways=x")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad filter status = %d, want 400", resp.StatusCode)
	}
	_, resp = fetch(t, ts.URL+"/api/v1/results?format=xml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status = %d, want 400", resp.StatusCode)
	}
}

func TestJobsShareStore(t *testing.T) {
	// A re-submitted grid must cost memo hits, not simulations.
	srv, ts := newTestServer(t)
	st1 := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, st1.ID)
	misses := srv.store.Misses()

	st2 := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, st2.ID)
	if srv.store.Misses() != misses {
		t.Errorf("re-submitted grid simulated fresh configs: misses %d -> %d", misses, srv.store.Misses())
	}

	var jobs []JobStatus
	getJSON(t, ts.URL+"/api/v1/jobs", &jobs)
	if len(jobs) != 2 || jobs[0].ID != st1.ID || jobs[1].ID != st2.ID {
		t.Errorf("job list = %+v", jobs)
	}

	var stats struct {
		Store struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int   `json:"entries"`
		} `json:"store"`
		Jobs struct {
			Done int `json:"done"`
		} `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/stats", &stats)
	if stats.Jobs.Done != 2 {
		t.Errorf("stats done jobs = %d, want 2", stats.Jobs.Done)
	}
	if stats.Store.Entries == 0 || stats.Store.Hits == 0 || stats.Store.Misses == 0 {
		t.Errorf("stats counters look empty: %+v", stats.Store)
	}
}

func TestDiskBackedServerServesOfflineCorpus(t *testing.T) {
	// Records written by an offline `sweep -store` style run are served by
	// a later waycached process without any simulation.
	dir := t.TempDir()
	store, db, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.New(sweep.Options{Workers: 4, Store: store})
	sw, err := eng.Run(context.Background(), testGrid())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sw.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	store2, db2, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv := New(Options{Store: store2, Workers: 4})
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	got, resp := fetch(t, ts.URL+"/api/v1/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if store2.Misses() != 0 {
		t.Errorf("serving the corpus simulated %d configs", store2.Misses())
	}
	// The corpus query sorts canonically; the offline grid order for this
	// grid happens to coincide (benchmarks and dims were listed sorted),
	// so the bytes must match exactly.
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served corpus differs from offline sweep output")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var h map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, h)
	}
}
