package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// testGridJSON is the grid every end-to-end test submits: small, two
// benchmarks, a policy and geometry dimension.
const testGridJSON = `{
  "Benchmarks": ["gcc", "swim"],
  "DPolicies": ["parallel", "seldm+waypred"],
  "DWays": [2, 4],
  "Insts": 5000
}`

func testGrid() sweep.Grid {
	return sweep.Grid{
		Benchmarks: []string{"gcc", "swim"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		DWays:      []int{2, 4},
		Insts:      5_000,
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{Workers: 4})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp
}

func submit(t *testing.T, base, body string) JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st
}

func pollDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, base+"/api/v1/jobs/"+id, &st)
		switch st.State {
		case "done":
			if st.Done != st.Total {
				t.Errorf("done job reports done=%d total=%d", st.Done, st.Total)
			}
			return st
		case "failed":
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func fetch(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return buf.Bytes(), resp
}

func TestSubmitPollResultsByteIdentical(t *testing.T) {
	// Acceptance: waycached serves a submitted grid's records
	// byte-identically to the offline CLI path (engine + Sweep writers).
	_, ts := newTestServer(t)

	st := submit(t, ts.URL, testGridJSON)
	if st.State != "queued" || st.Total != testGrid().Size() {
		t.Errorf("submit status = %+v", st)
	}
	pollDone(t, ts.URL, st.ID)

	// Offline reference: same grid through a fresh engine, as cmd/sweep
	// runs it.
	eng := sweep.New(sweep.Options{Workers: 4})
	sw, err := eng.Run(context.Background(), testGrid())
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := sw.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	gotJSON, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	if !bytes.Equal(gotJSON, wantJSON.Bytes()) {
		t.Errorf("served JSON differs from offline sweep output")
	}

	gotCSV, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results?format=csv")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv results status = %d", resp.StatusCode)
	}
	if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
		t.Errorf("served CSV differs from offline sweep output")
	}
}

func TestJobResultsBeforeDone(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts.URL, testGridJSON)
	// Immediately asking for results may race completion; a 409 carries
	// the job status, a 200 the records. Anything else is a bug.
	_, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Errorf("early results status = %d, want 409 or 200", resp.StatusCode)
	}
	pollDone(t, ts.URL, st.ID)
}

func TestQueryAndAggregate(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, st.ID)

	var recs []sweep.Record
	getJSON(t, ts.URL+"/api/v1/results?benchmark=gcc&dpolicy=seldm%2Bwaypred", &recs)
	if len(recs) != 2 {
		t.Fatalf("filtered query returned %d records, want 2 (dways 2 and 4)", len(recs))
	}
	for _, r := range recs {
		if r.Benchmark != "gcc" || r.DPolicy != "seldm+waypred" {
			t.Errorf("filter leaked record %s/%s", r.Benchmark, r.DPolicy)
		}
	}
	if recs[0].DWays != 2 || recs[1].DWays != 4 {
		t.Errorf("query results not in canonical order: dways %d,%d", recs[0].DWays, recs[1].DWays)
	}

	var empty []sweep.Record
	getJSON(t, ts.URL+"/api/v1/results?dways=16", &empty)
	if len(empty) != 0 {
		t.Errorf("dways=16 matched %d records, want 0", len(empty))
	}

	var stats []sweep.GroupStat
	getJSON(t, ts.URL+"/api/v1/aggregate?by=dPolicy&metric=dCacheEnergy", &stats)
	if len(stats) != 2 {
		t.Fatalf("aggregate returned %d groups, want 2", len(stats))
	}
	// Canonical group order is sorted: "parallel" before "seldm+waypred";
	// way prediction must cost less d-cache energy than parallel probes.
	if stats[0].Group != "parallel" || stats[1].Group != "seldm+waypred" {
		t.Errorf("groups = %s,%s", stats[0].Group, stats[1].Group)
	}
	if !(stats[1].Mean < stats[0].Mean) {
		t.Errorf("seldm+waypred mean energy %.1f not below parallel %.1f", stats[1].Mean, stats[0].Mean)
	}
	for _, g := range stats {
		if g.Count != 4 { // 2 benchmarks x 2 dways
			t.Errorf("group %s count = %d, want 4", g.Group, g.Count)
		}
	}

	_, resp := fetch(t, ts.URL+"/api/v1/aggregate?by=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus dimension status = %d, want 400", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{not json`, http.StatusBadRequest},
		{"unknown field", `{"Wat": 1}`, http.StatusBadRequest},
		{"unknown benchmark", `{"Benchmarks":["nope"]}`, http.StatusBadRequest},
		{"unknown policy", `{"DPolicies":["bogus"]}`, http.StatusBadRequest},
		// 1025 x 1025 values expand past MaxGridSize (1<<20) while the
		// body stays small, so the grid-size limit (not the body cap) is
		// what rejects it.
		{"oversized grid", fmt.Sprintf(`{"DWays":[%s1],"DSizes":[%s1]}`,
			strings.Repeat("1,", 1024), strings.Repeat("1,", 1024)), http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	_, resp := fetch(t, ts.URL+"/api/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	_, resp = fetch(t, ts.URL+"/api/v1/results?dways=x")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad filter status = %d, want 400", resp.StatusCode)
	}
	_, resp = fetch(t, ts.URL+"/api/v1/results?format=xml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status = %d, want 400", resp.StatusCode)
	}
}

func TestJobsShareStore(t *testing.T) {
	// A re-submitted grid must cost memo hits, not simulations.
	srv, ts := newTestServer(t)
	st1 := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, st1.ID)
	misses := srv.store.Misses()

	st2 := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, st2.ID)
	if srv.store.Misses() != misses {
		t.Errorf("re-submitted grid simulated fresh configs: misses %d -> %d", misses, srv.store.Misses())
	}

	var jobs []JobStatus
	getJSON(t, ts.URL+"/api/v1/jobs", &jobs)
	if len(jobs) != 2 || jobs[0].ID != st1.ID || jobs[1].ID != st2.ID {
		t.Errorf("job list = %+v", jobs)
	}

	var stats struct {
		Store struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int   `json:"entries"`
		} `json:"store"`
		Jobs struct {
			Done int `json:"done"`
		} `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/stats", &stats)
	if stats.Jobs.Done != 2 {
		t.Errorf("stats done jobs = %d, want 2", stats.Jobs.Done)
	}
	if stats.Store.Entries == 0 || stats.Store.Hits == 0 || stats.Store.Misses == 0 {
		t.Errorf("stats counters look empty: %+v", stats.Store)
	}
}

func TestDiskBackedServerServesOfflineCorpus(t *testing.T) {
	// Records written by an offline `sweep -store` style run are served by
	// a later waycached process without any simulation.
	dir := t.TempDir()
	store, db, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.New(sweep.Options{Workers: 4, Store: store})
	sw, err := eng.Run(context.Background(), testGrid())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sw.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	store2, db2, err := sweep.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv := New(Options{Store: store2, Workers: 4})
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	got, resp := fetch(t, ts.URL+"/api/v1/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if store2.Misses() != 0 {
		t.Errorf("serving the corpus simulated %d configs", store2.Misses())
	}
	// The corpus query sorts canonically; the offline grid order for this
	// grid happens to coincide (benchmarks and dims were listed sorted),
	// so the bytes must match exactly.
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served corpus differs from offline sweep output")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var h map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, h)
	}
}

// pollTerminal waits for any terminal state (done, failed, cancelled).
func pollTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, base+"/api/v1/jobs/"+id, &st)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// pollRunning waits for the job to leave the queue.
func pollRunning(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, base+"/api/v1/jobs/"+id, &st)
		if st.State != "queued" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
	return JobStatus{}
}

func post(t *testing.T, url string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return resp, st
}

func del(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

// bigGridJSON runs for seconds — long enough to observe and cancel a
// running job deterministically.
const bigGridJSON = `{
  "Name": "big",
  "Benchmarks": ["gcc", "swim", "li", "perl", "go", "vortex", "mgrid", "applu"],
  "DWays": [1, 2, 4, 8, 16],
  "Insts": 4000000
}`

// TestCancelReachesTerminalStateAndFreesBudget is the job-control
// acceptance test under the concurrent scheduler: two long jobs run at
// the same time under the shared budget, each must be cancellable to the
// terminal "cancelled" state, and cancelled work frees the budget for
// subsequent jobs.
func TestCancelReachesTerminalStateAndFreesBudget(t *testing.T) {
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	a := submit(t, ts.URL, bigGridJSON)
	if a.Name != "big" {
		t.Errorf("submitted name = %q, want big", a.Name)
	}
	b := submit(t, ts.URL, strings.Replace(bigGridJSON, `"big"`, `"big2"`, 1))

	// Both long jobs run concurrently — the sequential runner is gone.
	pollRunning(t, ts.URL, a.ID)
	pollRunning(t, ts.URL, b.ID)

	// Running jobs cannot be evicted or exported.
	if resp := del(t, ts.URL+"/api/v1/jobs/"+a.ID); resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE running job = %d, want 409", resp.StatusCode)
	}
	if _, resp := fetch(t, ts.URL+"/api/v1/jobs/"+a.ID+"/export"); resp.StatusCode != http.StatusConflict {
		t.Errorf("export of unfinished job = %d, want 409", resp.StatusCode)
	}

	// Cancelling running jobs unwinds each to "cancelled".
	for _, id := range []string{b.ID, a.ID} {
		if resp, _ := post(t, ts.URL+"/api/v1/jobs/"+id+"/cancel"); resp.StatusCode != http.StatusOK {
			t.Errorf("cancel running %s = %d, want 200", id, resp.StatusCode)
		}
	}
	for _, id := range []string{b.ID, a.ID} {
		if st := pollTerminal(t, ts.URL, id); st.State != "cancelled" {
			t.Errorf("job %s terminal state = %q, want cancelled", id, st.State)
		}
	}

	// The budget is free again: a new job completes.
	c := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, c.ID)

	// Cancelling terminal jobs conflicts.
	if resp, _ := post(t, ts.URL+"/api/v1/jobs/"+a.ID+"/cancel"); resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel terminal = %d, want 409", resp.StatusCode)
	}

	var stats struct {
		Jobs struct {
			Done      int `json:"done"`
			Cancelled int `json:"cancelled"`
		} `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/stats", &stats)
	if stats.Jobs.Cancelled != 2 || stats.Jobs.Done != 1 {
		t.Errorf("stats jobs = %+v, want 2 cancelled 1 done", stats.Jobs)
	}

	// Terminal jobs evict; evicted jobs are gone.
	for _, id := range []string{a.ID, b.ID} {
		if resp := del(t, ts.URL+"/api/v1/jobs/"+id); resp.StatusCode != http.StatusOK {
			t.Errorf("DELETE terminal %s = %d, want 200", id, resp.StatusCode)
		}
		if _, resp := fetch(t, ts.URL+"/api/v1/jobs/"+id); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET evicted %s = %d, want 404", id, resp.StatusCode)
		}
	}
	var jobs []JobStatus
	getJSON(t, ts.URL+"/api/v1/jobs", &jobs)
	if len(jobs) != 1 || jobs[0].ID != c.ID {
		t.Errorf("job list after eviction = %+v, want just %s", jobs, c.ID)
	}
	if resp := del(t, ts.URL+"/api/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestShardJobsConcatenateToFullGrid: shard submissions run exactly the
// deterministic sweep.Shard slices, and their outputs concatenate (CSV
// bodies; export streams) to the full-grid run byte-for-byte.
func TestShardJobsConcatenateToFullGrid(t *testing.T) {
	_, ts := newTestServer(t)

	full := submit(t, ts.URL, testGridJSON)
	pollDone(t, ts.URL, full.ID)
	fullCSV, _ := fetch(t, ts.URL+"/api/v1/jobs/"+full.ID+"/results?format=csv")

	cfgs := testGrid().Configs()
	const n = 3
	var bodies [][]byte
	var allKeys []string
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"Benchmarks":["gcc","swim"],"DPolicies":["parallel","seldm+waypred"],"DWays":[2,4],"Insts":5000,"name":"part-%d","shard":"%d/%d"}`, i, i, n)
		st := submit(t, ts.URL, body)
		if want := sweep.ShardLen(len(cfgs), i, n); st.Total != want {
			t.Errorf("shard %d total = %d, want %d", i, st.Total, want)
		}
		if want := fmt.Sprintf("%d/%d", i, n); st.Shard != want {
			t.Errorf("shard field = %q, want %q", st.Shard, want)
		}
		st = pollDone(t, ts.URL, st.ID)

		csv, _ := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/results?format=csv")
		parts := bytes.SplitN(csv, []byte("\n"), 2)
		if len(parts) != 2 {
			t.Fatalf("shard %d CSV has no header row", i)
		}
		bodies = append(bodies, parts[1])

		// Export: one NDJSON entry per config, keyed by the submitted
		// config's canonical key, in shard order.
		exp, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d export status = %d", i, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("export Content-Type = %q", ct)
		}
		dec := json.NewDecoder(bytes.NewReader(exp))
		for {
			var e ExportEntry
			if err := dec.Decode(&e); err != nil {
				break
			}
			if len(e.Result) == 0 {
				t.Fatalf("shard %d export entry %q has no result", i, e.Key)
			}
			allKeys = append(allKeys, e.Key)
		}
	}

	fullParts := bytes.SplitN(fullCSV, []byte("\n"), 2)
	if !bytes.Equal(bytes.Join(bodies, nil), fullParts[1]) {
		t.Error("concatenated shard CSV bodies differ from the full-grid CSV body")
	}
	if len(allKeys) != len(cfgs) {
		t.Fatalf("exports hold %d entries, want %d", len(allKeys), len(cfgs))
	}
	for i, key := range allKeys {
		want, _ := cfgs[i].Key()
		if key != want {
			t.Errorf("export key %d = %q, want %q", i, key, want)
		}
	}

	// Bad shard specs are submission errors.
	for _, bad := range []string{"3/3", "x", "-1/2", "1/0"} {
		body := fmt.Sprintf(`{"Benchmarks":["gcc"],"Insts":5000,"shard":"%s"}`, bad)
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("shard %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestNamedSubmissionIdempotent: re-submitting a live job's name returns
// the existing job instead of queueing duplicate work.
func TestNamedSubmissionIdempotent(t *testing.T) {
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// "x" must still be live when its name is re-submitted, and jobs are
	// no longer serialized behind one runner — so "x" is itself a long
	// grid (cancelled at the end), not a quick one parked in a queue.
	longX := strings.Replace(bigGridJSON, `"big"`, `"x"`, 1)
	x1 := submit(t, ts.URL, longX)
	x2 := submit(t, ts.URL, longX)
	if x1.ID != x2.ID {
		t.Errorf("re-submitted name %q got a new job: %s then %s", "x", x1.ID, x2.ID)
	}
	y := submit(t, ts.URL, `{"Benchmarks":["gcc"],"Insts":5000,"name":"y"}`)
	if y.ID == x1.ID {
		t.Error("distinct names shared a job")
	}
	anon1 := submit(t, ts.URL, testGridJSON)
	anon2 := submit(t, ts.URL, testGridJSON)
	if anon1.ID == anon2.ID {
		t.Error("anonymous submissions deduplicated")
	}

	// A live name reused for DIFFERENT work must be refused, not answered
	// with the existing job's (wrong) results.
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"Benchmarks":["swim"],"Insts":9000,"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("name collision over different grid = %d, want 409", resp.StatusCode)
	}
	post(t, ts.URL+"/api/v1/jobs/"+x1.ID+"/cancel")
}

// TestExportRequiresNamedOrShardJob: anonymous whole-grid jobs do not
// retain export payloads; asking for them is a clear conflict, not a
// silent empty stream.
func TestExportRequiresNamedOrShardJob(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts.URL, testGridJSON) // no name, no shard
	pollDone(t, ts.URL, st.ID)
	body, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("anonymous export = %d, want 409", resp.StatusCode)
	}
	if !strings.Contains(string(body), "name") {
		t.Errorf("anonymous export error %q does not explain the name requirement", body)
	}

	named := submit(t, ts.URL, `{"Benchmarks":["gcc"],"Insts":5000,"name":"exp"}`)
	pollDone(t, ts.URL, named.ID)
	exp, resp := fetch(t, ts.URL+"/api/v1/jobs/"+named.ID+"/export")
	if resp.StatusCode != http.StatusOK || len(exp) == 0 {
		t.Errorf("named export = %d with %d bytes, want 200 and a stream", resp.StatusCode, len(exp))
	}
}

// TestServerSurfacesTraceFallbacks: a waycached with a trace directory
// that covers nothing must report the walker fallbacks per job, not hide
// them.
func TestServerSurfacesTraceFallbacks(t *testing.T) {
	srv := New(Options{Workers: 4, TraceDir: t.TempDir()})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	st := submit(t, ts.URL, testGridJSON)
	st = pollDone(t, ts.URL, st.ID)
	if len(st.TraceFallbacks) != 2 {
		t.Fatalf("TraceFallbacks = %v, want gcc and swim", st.TraceFallbacks)
	}
	for _, b := range []string{"gcc", "swim"} {
		if st.TraceFallbacks[b] == "" {
			t.Errorf("benchmark %s has no fallback reason: %v", b, st.TraceFallbacks)
		}
	}
}

// TestExportPortableAcrossTraceHosts: a trace-replaying host must export
// payloads keyed and encoded under the submitted (walker) config — no
// host-local trace path may leak into the canonical bytes, and the
// payload's embedded config must produce exactly the key it is stored
// under, or an importing corpus would hold records that disagree with
// their own keys.
func TestExportPortableAcrossTraceHosts(t *testing.T) {
	dir := t.TempDir()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.CaptureFile(filepath.Join(dir, "gcc"+trace.FileExt), 5_000); err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 2, TraceDir: dir})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	st := submit(t, ts.URL, `{"Benchmarks":["gcc"],"Insts":5000,"name":"portable"}`)
	st = pollDone(t, ts.URL, st.ID)
	if len(st.TraceFallbacks) != 0 {
		t.Fatalf("capture did not replay: %v", st.TraceFallbacks)
	}

	exp, resp := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/export")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	var e ExportEntry
	if err := json.Unmarshal(exp, &e); err != nil {
		t.Fatalf("decoding export entry: %v", err)
	}
	res, err := core.DecodeResult(e.Result)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Trace != "" {
		t.Errorf("host-local trace path %q leaked into the exported payload", res.Config.Trace)
	}
	key, ok := res.Config.Key()
	if !ok || key != e.Key {
		t.Errorf("payload's config keys to %q, stored under %q", key, e.Key)
	}
}
