// Package server is the long-lived HTTP sweep service behind cmd/waycached:
// clients submit design-space grids (the same sweep.Grid JSON the library
// uses), the server runs them asynchronously on the sweep engine over a
// shared — optionally disk-backed — result store, and poll/query/aggregate
// endpoints serve the growing result corpus in the exact bytes the offline
// cmd/sweep CLI emits. Endpoint reference and examples: docs/HTTP_API.md.
//
// Jobs execute one at a time in submission order on a single runner
// goroutine; the engine's worker pool parallelizes within a job. Because
// every simulation flows through one memoized Store, a job re-submitting
// configurations an earlier job (or an earlier process, with a disk store)
// already simulated costs memo lookups, not simulations.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"waycache/internal/core"
	"waycache/internal/sweep"
)

// QueueCap bounds jobs waiting behind the running one; submissions beyond
// it are refused with 503 rather than queued without bound.
const QueueCap = 256

// MaxGridSize bounds a single submission's expanded configuration count.
const MaxGridSize = 1 << 20

// maxBodyBytes bounds a grid submission body.
const maxBodyBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Store is the shared result store (nil means a fresh in-memory one).
	// Open it over resultdb (sweep.OpenDiskStore) to serve — and extend —
	// a persistent corpus.
	Store *sweep.Store
	// Workers bounds concurrent simulations within a job (default:
	// runtime.NumCPU(), via the sweep engine).
	Workers int
	// TraceDir, when non-empty, lets jobs replay captured traces (see
	// sweep.Options.TraceDir).
	TraceDir string
}

// Server implements the HTTP API. Create with New, serve with net/http,
// stop with Close.
type Server struct {
	opts  Options
	store *sweep.Store
	mux   *http.ServeMux

	ctx    context.Context // cancels the running job on Close
	cancel context.CancelFunc
	queue  chan *job
	stopWG sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int

	// Decoded-corpus cache for the query endpoints. The store is
	// append-only, so the cache is valid exactly while the entry count is
	// unchanged; a grown store triggers one rescan on the next query.
	corpusMu  sync.Mutex
	corpus    []sweep.Record
	corpusLen int
}

// New creates a server and starts its job runner.
func New(opts Options) *Server {
	if opts.Store == nil {
		opts.Store = sweep.NewStore()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		store:  opts.Store,
		mux:    http.NewServeMux(),
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *job, QueueCap),
		jobs:   make(map[string]*job),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("GET /api/v1/results", s.handleResults)
	s.mux.HandleFunc("GET /api/v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)

	s.stopWG.Add(1)
	go s.runner()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the runner, cancelling any running job (it finishes as
// "failed" with a cancellation error) and leaving queued jobs queued
// forever. In-store results are unaffected.
func (s *Server) Close() {
	s.cancel()
	s.stopWG.Wait()
}

// runner executes queued jobs sequentially until Close.
func (s *Server) runner() {
	defer s.stopWG.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *job) {
	j.setRunning()
	// A fresh engine per job gives it a private progress feed; the shared
	// store still deduplicates simulations across jobs and processes.
	eng := sweep.New(sweep.Options{
		Workers:  s.opts.Workers,
		Store:    s.store,
		TraceDir: s.opts.TraceDir,
		Progress: j.setProgress,
	})
	sw, err := eng.Run(s.ctx, j.grid)
	j.finish(sw, err)
}

// job is one submitted grid and its lifecycle.
type job struct {
	id    string
	grid  sweep.Grid
	total int

	mu    sync.Mutex
	state string // "queued" -> "running" -> "done" | "failed"
	done  int
	err   string
	sweep *sweep.Sweep
}

// JobStatus is the wire form of a job's state, also returned by the
// submission endpoint.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = "running"
	j.mu.Unlock()
}

func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.done = done
	j.mu.Unlock()
}

func (j *job) finish(sw *sweep.Sweep, err error) {
	j.mu.Lock()
	if err != nil {
		j.state, j.err = "failed", err.Error()
	} else {
		j.state, j.sweep = "done", sw
	}
	j.mu.Unlock()
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state, Done: j.done, Total: j.total, Error: j.err}
}

// results returns the finished sweep, or an explanation of why there is
// none yet.
func (j *job) results() (*sweep.Sweep, JobStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Done: j.done, Total: j.total, Error: j.err}
	return j.sweep, st, j.state == "done"
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var g sweep.Grid
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad grid: %w", err))
		return
	}
	// Validate benchmarks at submission (an unknown name should 400 here,
	// not fail the job minutes later); an omitted list means the full
	// suite, mirroring the CLI's -benchmarks default.
	benches, err := sweep.ParseBenchmarks(strings.Join(g.Benchmarks, ","))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.Benchmarks = benches
	total := g.Size()
	if total > MaxGridSize {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("grid expands to %d configurations (limit %d); shard it", total, MaxGridSize))
		return
	}

	s.mu.Lock()
	s.nextID++
	j := &job{id: fmt.Sprintf("job-%d", s.nextID), grid: g, total: total, state: "queued"}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
	default:
		s.nextID--
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("job queue full (%d queued); retry later", QueueCap))
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	sw, st, done := j.results()
	if !done {
		// Not an error JSON: the status body tells a poller exactly where
		// the job stands (including a failure's message).
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeSweep(w, r, sw)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	recs, err := s.queryRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeSweep(w, r, &sweep.Sweep{Records: recs})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	recs, err := s.queryRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	dim := q.Get("by")
	if dim == "" {
		dim = "benchmark"
	}
	metric := q.Get("metric")
	if metric == "" {
		metric = "procED"
	}
	stats, err := sweep.Aggregate(recs, dim, metric)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format(r) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := sweep.WriteGroupStatsCSV(w, dim, stats); err != nil {
			return // headers sent; nothing safe to add
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		sweep.WriteGroupStatsJSON(w, stats)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or csv)", format(r)))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type jobCounts struct {
		Queued  int `json:"queued"`
		Running int `json:"running"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
	}
	var jc jobCounts
	s.mu.Lock()
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case "queued":
			jc.Queued++
		case "running":
			jc.Running++
		case "done":
			jc.Done++
		case "failed":
			jc.Failed++
		}
	}
	s.mu.Unlock()

	resp := map[string]any{
		"store": map[string]any{
			"hits":    s.store.Hits(),
			"misses":  s.store.Misses(),
			"entries": s.store.Len(),
		},
		"jobs": jc,
	}
	if err := s.store.BackendErr(); err != nil {
		resp["storeError"] = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryRecords returns the request's filtered view of the corpus, in
// canonical order.
func (s *Server) queryRecords(r *http.Request) ([]sweep.Record, error) {
	f, err := parseFilter(r)
	if err != nil {
		return nil, err
	}
	corpus, err := s.corpusRecords()
	if err != nil {
		return nil, err
	}
	return f.Apply(corpus), nil
}

// corpusRecords returns every stored result flattened to a Record, sorted
// canonically, decoded at most once per store growth: while the
// append-only store's entry count is unchanged the cached slice is
// reused, so steady-state queries cost a filter pass, not a disk scan.
// Callers must not mutate the returned slice.
func (s *Server) corpusRecords() ([]sweep.Record, error) {
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	n := s.store.Len()
	if s.corpus != nil && n == s.corpusLen {
		return s.corpus, nil
	}
	var recs []sweep.Record
	err := s.store.Scan(func(key string, res *core.Result) error {
		recs = append(recs, sweep.NewRecord(res))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sweep.SortRecords(recs)
	// A walker run and a trace replay of the same configuration memoize
	// under distinct keys but flatten to the identical record; collapse
	// exact duplicates so they cannot double-count in aggregates.
	recs = dedupe(recs)
	s.corpus, s.corpusLen = recs, n
	return recs, nil
}

// dedupe removes exact-duplicate adjacent records (the slice is sorted,
// so equal records are adjacent).
func dedupe(recs []sweep.Record) []sweep.Record {
	out := recs[:0]
	for _, r := range recs {
		if len(out) == 0 || r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// parseFilter builds a sweep.Filter from query parameters. Every dimension
// takes a comma-separated list; integer dimensions accept k/m suffixes
// like the CLI flags.
func parseFilter(r *http.Request) (sweep.Filter, error) {
	q := r.URL.Query()
	var f sweep.Filter
	f.Benchmarks = splitParam(q.Get("benchmark"))
	f.DPolicies = splitParam(q.Get("dpolicy"))
	f.IPolicies = splitParam(q.Get("ipolicy"))
	for _, dim := range []struct {
		name string
		dst  *[]int
	}{
		{"dsize", &f.DSizes}, {"dways", &f.DWays}, {"dblock", &f.DBlocks},
		{"isize", &f.ISizes}, {"iways", &f.IWays}, {"iblock", &f.IBlocks},
		{"dlatency", &f.DLatencies}, {"tablesize", &f.TableSizes}, {"victimsize", &f.VictimSizes},
		{"selectiveways", &f.SelectiveWays},
	} {
		v, err := sweep.ParseIntList(q.Get(dim.name))
		if err != nil {
			return f, fmt.Errorf("%s: %w", dim.name, err)
		}
		*dim.dst = v
	}
	if v := q.Get("papercosts"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return f, fmt.Errorf("papercosts: %w", err)
		}
		f.UsePaperCosts = &b
	}
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return f, fmt.Errorf("insts: %w", err)
		}
		f.Insts = n
	}
	return f, nil
}

// --- small helpers ---

// writeSweep emits records in the exact bytes cmd/sweep writes for the
// same records: the Sweep writers are the single source of output format.
func writeSweep(w http.ResponseWriter, r *http.Request, sw *sweep.Sweep) {
	switch format(r) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		sw.WriteCSV(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		sw.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or csv)", format(r)))
	}
}

func format(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	return "json"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func splitParam(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
