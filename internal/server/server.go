// Package server is the long-lived HTTP sweep service behind cmd/waycached:
// clients submit design-space grids (the same sweep.Grid JSON the library
// uses), the server runs them asynchronously on the sweep engine over a
// shared — optionally disk-backed — result store, and poll/query/aggregate
// endpoints serve the growing result corpus in the exact bytes the offline
// cmd/sweep CLI emits. Endpoint reference and examples: docs/HTTP_API.md.
//
// Jobs run concurrently, each on its own goroutine, under one shared
// simulation budget (sweep.Budget) sized by Options.Workers: the host
// never runs more simulations at once than the budget holds, and freed
// slots are granted round-robin across clients, so a giant grid from one
// submitter cannot starve a small job from another. Because every
// simulation flows through one memoized Store, overlapping jobs — or a
// job re-submitting configurations an earlier process already simulated,
// with a disk store — cost memo lookups, not simulations, and memo hits
// are never charged against the budget. Per-job output stays
// byte-identical to a sequential run: results are indexed by config
// position, so scheduling order never reaches the output bytes.
//
// Progress streams over GET /api/v1/jobs/{id}/events (Server-Sent
// Events); pollers use GET /api/v1/jobs/{id}. With Options.AuthTokens
// set the server requires bearer tokens and meters fair-share and rate
// limits per token name; unset, it is open and meters per remote host.
//
// A submission may carry a shard spec ("i/n") and a client-supplied name:
// the server expands the grid, runs only the i-th deterministic
// sweep.Shard slice, and exports the shard's results in canonical
// (core.EncodeResult) form — the building blocks the distributed
// coordinator (internal/coord) fans out across hosts and merges
// byte-identically. Every job owns a context: cancellation
// (POST /api/v1/jobs/{id}/cancel) reaches a terminal "cancelled" state
// promptly instead of blocking the runner behind an unwanted grid, and
// terminal jobs can be evicted (DELETE /api/v1/jobs/{id}) to release the
// memory their results pin.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waycache/internal/core"
	"waycache/internal/resultdb"
	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
)

// QueueCap bounds live (non-terminal) jobs; submissions beyond it are
// refused with 503 rather than admitted without bound. Jobs all run
// concurrently under the shared budget, so the cap bounds bookkeeping
// and goroutines, not a waiting line.
const QueueCap = 256

// MaxGridSize bounds a single submission's expanded configuration count.
// Shard submissions are bounded by their full grid too: the server expands
// the whole grid before slicing it.
const MaxGridSize = 1 << 20

// maxBodyBytes bounds a grid submission body.
const maxBodyBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Store is the shared result store (nil means a fresh in-memory one).
	// Open it over resultdb (sweep.OpenDiskStore) to serve — and extend —
	// a persistent corpus.
	Store *sweep.Store
	// Workers is the host's global simulation budget: the maximum
	// simulations running at once across ALL jobs (default:
	// runtime.GOMAXPROCS(0)). Slots are granted fair-share across
	// clients by a shared sweep.Budget.
	Workers int
	// AuthTokens maps bearer token -> client name. Empty means open
	// mode: no authentication, clients identified by remote host. Build
	// from an -auth-tokens flag with ParseAuthTokens.
	AuthTokens map[string]string
	// RatePerSec, when positive, rate-limits each client's requests with
	// a token bucket (burst RateBurst, default 16). Applies to every
	// endpoint except /healthz, in both auth modes.
	RatePerSec float64
	RateBurst  int
	// Compactor, when non-nil, exposes the disk store's log compaction
	// as POST /api/v1/admin/compact (cmd/waycached passes its
	// resultdb.DB). Nil — an in-memory store — refuses the endpoint.
	Compactor Compactor
	// EventHeartbeat overrides the SSE keep-alive interval (default 15s);
	// tests shorten it.
	EventHeartbeat time.Duration
	// TraceDir, when non-empty, lets jobs replay captured traces (see
	// sweep.Options.TraceDir). Benchmarks that fall back to the walker are
	// reported per job (JobStatus.TraceFallbacks), never silently.
	TraceDir string
	// TraceStore, when non-nil, serves and accepts content-addressed
	// traces over /api/v1/traces/{hash} and resolves the trace://<hash>
	// references jobs carry in Grid.TraceRefs. Without it, trace uploads
	// are refused and referencing jobs fall back per benchmark (see
	// sweep.Options.TraceStore).
	TraceStore *tracestore.Store
}

// Compactor is the slice of resultdb.DB the admin compaction endpoint
// needs: trigger a compaction, report reclaimable garbage.
type Compactor interface {
	Compact() (resultdb.CompactStats, error)
	Garbage() int64
}

// Server implements the HTTP API. Create with New, serve with net/http,
// stop with Close.
type Server struct {
	opts    Options
	store   *sweep.Store
	mux     *http.ServeMux
	budget  *sweep.Budget // shared simulation budget across all jobs
	limiter *rateLimiter  // nil when RatePerSec == 0

	// tokens holds the live bearer-token map (token -> client name),
	// swapped atomically by SetAuthTokens so operators can rotate
	// credentials without a restart. Seeded from Options.AuthTokens; the
	// auth mode (open vs token) is fixed at construction — rotation
	// replaces tokens, it never opens or closes the server.
	tokens atomic.Pointer[map[string]string]

	ctx    context.Context // parent of every job context; cancelled on Close
	cancel context.CancelFunc
	stopWG sync.WaitGroup // one count per live job goroutine

	mu     sync.Mutex //wclint:lockrank 10
	jobs   map[string]*job
	order  []string
	nextID int

	// Decoded-corpus cache for the query endpoints. The store is
	// append-only, so the cache is valid exactly while the entry count is
	// unchanged; a grown store triggers one rescan on the next query.
	corpusMu  sync.Mutex //wclint:lockrank 25
	corpus    []sweep.Record
	corpusLen int
}

// New creates a server with its shared simulation budget.
func New(opts Options) *Server {
	if opts.Store == nil {
		opts.Store = sweep.NewStore()
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		store:  opts.Store,
		mux:    http.NewServeMux(),
		budget: sweep.NewBudget(opts.Workers),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}
	s.tokens.Store(&opts.AuthTokens)
	if opts.RatePerSec > 0 {
		s.limiter = newRateLimiter(opts.RatePerSec, opts.RateBurst)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/export", s.handleJobExport)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /api/v1/admin/compact", s.handleAdminCompact)
	s.mux.HandleFunc("GET /api/v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /api/v1/traces/{hash}", s.handleTraceGet)
	s.mux.HandleFunc("PUT /api/v1/traces/{hash}", s.handleTracePut)
	s.mux.HandleFunc("GET /api/v1/results", s.handleResults)
	s.mux.HandleFunc("GET /api/v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)

	// Live profiling of the serving process (go tool pprof against
	// /debug/pprof/profile, /heap, /goroutine, ...). Registered on the
	// service mux, not http.DefaultServeMux, so the routes sit behind the
	// same bearer-auth and rate-limit wrapper as the API: with
	// -auth-tokens set, profiles require a valid token.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return s
}

// ServeHTTP implements http.Handler: authentication and rate limiting
// wrap every route except the /healthz liveness probe.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		s.mux.ServeHTTP(w, r)
		return
	}
	id, ok := s.authenticate(r)
	if !ok {
		w.Header().Set("WWW-Authenticate", `Bearer realm="waycached"`)
		writeError(w, http.StatusUnauthorized, errors.New("missing or unknown bearer token"))
		return
	}
	if s.limiter != nil {
		if ok, retry := s.limiter.allow(id, time.Now()); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)+1))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("client %q exceeded %g requests/sec; retry later", id, s.opts.RatePerSec))
			return
		}
	}
	s.mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), identityKey, id)))
}

// Close cancels every live job (each reaches the terminal "cancelled"
// state) and waits for their goroutines. In-store results are unaffected.
func (s *Server) Close() {
	s.cancel()
	s.stopWG.Wait()
}

// runJob executes one job on its own goroutine. Concurrency across jobs
// is governed by the shared budget, not by job count: every actual
// simulation acquires a slot under the submitting client's identity, so
// admission is fair-share per client no matter how many jobs each one
// has in flight.
func (s *Server) runJob(j *job) {
	// A job cancelled before this goroutine got scheduled is already
	// terminal: skip it without simulating.
	if !j.setRunning() {
		return
	}
	cfgs := j.grid.Configs()
	switch {
	case j.hasSpan:
		cfgs = cfgs[j.spanLo:j.spanHi]
	case j.shardN > 0:
		cfgs = sweep.Shard(cfgs, j.shardI, j.shardN)
	}
	// A fresh engine per job gives it a private progress feed and trace
	// fallback report; the shared store still deduplicates simulations
	// across jobs and processes, and the shared budget meters the ones
	// that actually run.
	o := sweep.Options{
		Workers:    s.opts.Workers,
		Store:      s.store,
		TraceDir:   s.opts.TraceDir,
		TraceStore: s.opts.TraceStore,
		Progress:   j.setProgress,
		Budget:     s.budget,
		Owner:      j.owner,
	}
	if j.exportable {
		// Exportable jobs track per-config completion so a running job
		// can answer partial (watermark-bounded) exports.
		j.beginPartial(cfgs)
		o.OnResult = j.noteResult
	}
	eng := sweep.New(o)
	results, err := eng.RunConfigs(j.ctx, cfgs)
	j.finish(cfgs, results, eng.TraceFallbacks(), err)
}

// job is one submitted grid (or grid shard/span) and its lifecycle.
type job struct {
	id    string
	name  string // optional client-supplied identity
	owner string // authenticated submitter: the fair-share budget identity
	grid  sweep.Grid
	// shardN > 0 selects sweep.Shard(cfgs, shardI, shardN) of the
	// expanded grid.
	shardI, shardN int
	// hasSpan selects cfgs[spanLo:spanHi] of the expanded grid — the
	// range form shard re-splitting produces (a stolen remainder is an
	// arbitrary contiguous range, not an i/n slice).
	spanLo, spanHi int
	hasSpan        bool
	total          int
	// exportable jobs (named, sharded or spanned — the coordinator's)
	// retain their canonical export entries after finishing; anonymous
	// whole grid jobs keep only their Sweep, the pre-distribution
	// footprint.
	exportable bool

	// ctx governs the job's simulations; cancel is safe to call from any
	// state and releases the context once the job is terminal.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex //wclint:lockrank 20
	state     string     // "queued" -> "running" -> "done" | "failed" | "cancelled"
	cancelled bool       // cancellation requested while running
	done      int
	err       string
	fallbacks map[string]string
	exports   []ExportEntry // canonical key+payload per config, job order
	sweep     *sweep.Sweep
	changed   chan struct{} // closed and replaced on every status change

	// Partial-progress export state, tracked only for exportable jobs
	// while running: cfgs is the job's config slice, partial holds each
	// finished result at its config position, and wm is the watermark —
	// the longest finished prefix. The watermark is what lets a
	// coordinator steal a straggler's un-exported remainder: everything
	// before wm is exportable now (GET export?prefix=w), everything from
	// wm on is re-submittable elsewhere. All three are released when the
	// job finishes (the full exports replace them).
	cfgs    []core.Config
	partial []*core.Result
	wm      int
}

// notifyLocked wakes every event stream watching the job. Call with
// j.mu held, after any change a watcher should see.
func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// statusWatch snapshots the status together with the channel that closes
// on the next change, so a watcher that sends the snapshot and then
// waits on the channel cannot miss an update in between.
func (j *job) statusWatch() (JobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), j.changed
}

// JobStatus is the wire form of a job's state, also returned by the
// submission endpoint.
type JobStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// Shard is "i/n" when the job runs one deterministic shard of its
	// grid rather than the whole expansion.
	Shard string `json:"shard,omitempty"`
	// Span is "lo-hi" when the job runs the contiguous config range
	// [lo, hi) of its expanded grid (how a coordinator re-submits a
	// stolen shard remainder).
	Span  string `json:"span,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Watermark is the longest finished prefix of an exportable job's
	// configs: everything before it is servable by GET export?prefix=w
	// right now, even while the job is still running. It reaches Total
	// when the job is done.
	Watermark int    `json:"watermark,omitempty"`
	Error     string `json:"error,omitempty"`
	// TraceFallbacks maps each benchmark that re-simulated from the
	// walker (instead of replaying its capture) to the reason. Empty when
	// every benchmark replayed or the server has no trace directory.
	TraceFallbacks map[string]string `json:"traceFallbacks,omitempty"`
}

// setRunning moves a queued job to running; it reports false when the job
// was cancelled while queued and must not run.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != "queued" {
		return false
	}
	j.state = "running"
	j.notifyLocked()
	return true
}

func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.done = done
	j.notifyLocked()
	j.mu.Unlock()
}

// beginPartial arms partial-export tracking for a starting exportable job.
func (j *job) beginPartial(cfgs []core.Config) {
	j.mu.Lock()
	j.cfgs = cfgs
	j.partial = make([]*core.Result, len(cfgs))
	j.wm = 0
	j.mu.Unlock()
}

// noteResult records one finished config (engine OnResult) and advances
// the watermark over the contiguous finished prefix. Watermark changes
// reach event-stream watchers through the progress notification that
// follows every completion, so no extra wakeup is needed here.
func (j *job) noteResult(i int, res *core.Result) {
	j.mu.Lock()
	if j.partial != nil && i < len(j.partial) {
		j.partial[i] = res
		for j.wm < len(j.partial) && j.partial[j.wm] != nil {
			j.wm++
		}
	}
	j.mu.Unlock()
}

// requestCancel asks the job to stop. Queued jobs become terminal
// immediately; running jobs have their context cancelled and become
// terminal when the engine unwinds. ok is false when the job is already
// terminal.
func (j *job) requestCancel() (JobStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case "queued":
		j.state = "cancelled"
		j.cancel()
		j.notifyLocked()
		return j.statusLocked(), true
	case "running":
		j.cancelled = true
		j.cancel()
		j.notifyLocked()
		return j.statusLocked(), true
	default:
		return j.statusLocked(), false
	}
}

func (j *job) finish(cfgs []core.Config, results []*core.Result, fallbacks map[string]string, err error) {
	var exports []ExportEntry
	if err == nil && j.exportable {
		exports = buildExports(cfgs, results)
	}
	j.mu.Lock()
	j.fallbacks = fallbacks
	// Partial-export tracking ends with the run: a done job serves
	// prefixes from its full exports, and a failed or cancelled job's
	// watermark freezes at whatever prefix had finished (a stealing
	// coordinator exports that prefix *before* cancelling, so the frozen
	// value is only informational).
	j.cfgs, j.partial = nil, nil
	switch {
	case err == nil:
		j.state = "done"
		j.wm = len(results)
		j.sweep = sweep.NewSweep(results)
		// The raw configs and results are not retained: the Sweep holds
		// the records, exports (when built) hold the canonical payloads,
		// and the store holds every simulation either way.
		j.exports = exports
	case j.cancelled || errors.Is(err, context.Canceled):
		// Cancellation (client cancel or server Close) is its own terminal
		// state, not a failure; the state says everything Error would.
		j.state = "cancelled"
	default:
		j.state, j.err = "failed", err.Error()
	}
	j.notifyLocked()
	j.mu.Unlock()
	j.cancel() // release the context; terminal states never simulate again
}

// buildExports flattens finished results into canonical export entries,
// keyed AND encoded under the submitted config — before any trace
// resolution. Replay and walker runs produce identical statistics (the
// repo's core determinism contract), so substituting the submitted config
// makes the payload portable: no host-local trace path leaks into the
// importing corpus, the payload's embedded Config matches the key it is
// stored under, and a trace-enabled host exports the same bytes a
// walker-only host would.
func buildExports(cfgs []core.Config, results []*core.Result) []ExportEntry {
	exports := make([]ExportEntry, 0, len(results))
	for i, res := range results {
		key, ok := cfgs[i].Key()
		if !ok {
			continue // unreachable: JSON submissions cannot carry a Source
		}
		rr := *res
		rr.Config = cfgs[i]
		payload, err := core.EncodeResult(&rr)
		if err != nil {
			continue // unreachable for the same reason
		}
		exports = append(exports, ExportEntry{Key: key, Result: payload})
	}
	return exports
}

// terminal reports whether the job has reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == "done" || j.state == "failed" || j.state == "cancelled"
}

// doomed reports whether the job is terminal or has cancellation pending:
// either way it will never produce results, so it must not satisfy an
// idempotent named re-submission.
func (j *job) doomed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case "done", "failed", "cancelled":
		return true
	}
	return j.cancelled
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Name: j.name, State: j.state,
		Done: j.done, Total: j.total, Watermark: j.wm, Error: j.err,
		TraceFallbacks: j.fallbacks,
	}
	if j.shardN > 0 {
		st.Shard = sweep.FormatShard(j.shardI, j.shardN)
	}
	if j.hasSpan {
		st.Span = sweep.FormatSpan(j.spanLo, j.spanHi)
	}
	return st
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// results returns the finished sweep, or an explanation of why there is
// none yet.
func (j *job) resultsDone() (*sweep.Sweep, JobStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sweep, j.statusLocked(), j.state == "done"
}

// export returns the finished job's canonical export entries.
func (j *job) export() ([]ExportEntry, JobStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.exports, j.statusLocked(), j.state == "done"
}

// exportPrefix returns the job's first n canonical export entries. A done
// job serves any n up to its total; a running job serves any n up to its
// watermark — the partial-progress export a coordinator uses to steal a
// straggler's finished prefix before re-submitting the remainder
// elsewhere. Watermarks only grow, so an n read from a status snapshot
// can never race past the exportable prefix.
func (j *job) exportPrefix(n int) ([]ExportEntry, JobStatus, bool) {
	j.mu.Lock()
	if j.state == "done" {
		defer j.mu.Unlock()
		if n > len(j.exports) {
			return nil, j.statusLocked(), false
		}
		return j.exports[:n], j.statusLocked(), true
	}
	if j.state != "running" || j.partial == nil || n > j.wm {
		defer j.mu.Unlock()
		return nil, j.statusLocked(), false
	}
	st := j.statusLocked()
	// Snapshot under the lock, encode outside it: everything before the
	// watermark is set-once and immutable, so the canonical encode must
	// not serialize against the job's progress callbacks.
	cfgs, partial := j.cfgs[:n], j.partial[:n]
	j.mu.Unlock()
	return buildExports(cfgs, partial), st, true
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// JobRequest is the submission body: a sweep.Grid, optionally narrowed to
// one deterministic shard and tagged with a client-supplied name. It is
// the one wire type both this server and the distributed coordinator
// (internal/coord) marshal, so the two cannot drift.
type JobRequest struct {
	sweep.Grid
	// Name is an optional client identity (e.g. "<sweep>-shard-3").
	// Submitting a name that matches a live (non-terminal) job running
	// the same grid and shard returns that job's status instead of
	// enqueueing a duplicate, so a client that lost a submission response
	// can re-submit idempotently; the same name with different work is
	// refused (409) rather than silently answered with someone else's
	// sweep.
	Name string `json:"name"`
	// Shard is "i/n": run only the i-th of n contiguous shards of the
	// expanded grid (sweep.Shard), whose concatenation in shard order is
	// the full grid.
	Shard string `json:"shard"`
	// Span is "lo-hi": run only the contiguous config range [lo, hi) of
	// the expanded grid. This is the work-unit form the elastic
	// coordinator submits — an initial shard is sweep.SpanOf of the grid,
	// and a remainder stolen from a straggler is whatever range was left.
	// Mutually exclusive with Shard.
	Span string `json:"span"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad grid: %w", err))
		return
	}
	// Normalize at submission (an unknown benchmark or malformed trace
	// reference should 400 here, not fail the job minutes later); an
	// omitted benchmark list means the full suite, mirroring the CLI's
	// -benchmarks default, and every front end normalizes identically —
	// which is what makes the named-job idempotency DeepEqual below
	// compare like with like.
	g, err := req.Grid.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	total := g.Size()
	if total > MaxGridSize {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("grid expands to %d configurations (limit %d); shard it", total, MaxGridSize))
		return
	}
	var shardI, shardN int
	var spanLo, spanHi int
	hasSpan := false
	switch {
	case req.Shard != "" && req.Span != "":
		writeError(w, http.StatusBadRequest, errors.New("a submission carries a shard or a span, not both"))
		return
	case req.Shard != "":
		if shardI, shardN, err = sweep.ParseShard(req.Shard); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		total = sweep.ShardLen(total, shardI, shardN)
	case req.Span != "":
		if spanLo, spanHi, err = sweep.ParseSpan(req.Span); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if spanHi > total {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("span %s exceeds the grid's %d configurations", req.Span, total))
			return
		}
		hasSpan = true
		total = spanHi - spanLo
	}

	s.mu.Lock()
	// Idempotent named submission: a live job with the same name AND the
	// same work gets its status handed back instead of a duplicate in
	// the queue. A name collision over different work is refused — it
	// would otherwise silently answer this client with someone else's
	// sweep.
	if req.Name != "" {
		for _, id := range s.order {
			jj := s.jobs[id]
			// A cancel-pending job is as dead as a terminal one for
			// idempotency purposes: handing it back would chain the new
			// client to doomed work.
			if jj.name != req.Name || jj.doomed() {
				continue
			}
			if !reflect.DeepEqual(jj.grid, g) || jj.shardI != shardI || jj.shardN != shardN ||
				jj.hasSpan != hasSpan || jj.spanLo != spanLo || jj.spanHi != spanHi {
				st := jj.status()
				s.mu.Unlock()
				writeError(w, http.StatusConflict,
					fmt.Errorf("job name %q is live as %s with a different grid or shard", req.Name, st.ID))
				return
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusAccepted, jj.status())
			return
		}
	}
	// Bound live jobs: each costs a goroutine and retained bookkeeping.
	live := 0
	for _, id := range s.order {
		if !s.jobs[id].terminal() {
			live++
		}
	}
	if live >= QueueCap {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("%d jobs live (limit %d); retry later", live, QueueCap))
		return
	}
	s.nextID++
	jctx, jcancel := context.WithCancel(s.ctx)
	j := &job{
		id: fmt.Sprintf("job-%d", s.nextID), name: req.Name,
		owner: clientID(r),
		grid:  g, shardI: shardI, shardN: shardN,
		spanLo: spanLo, spanHi: spanHi, hasSpan: hasSpan,
		total: total, state: "queued",
		exportable: req.Name != "" || shardN > 0 || hasSpan,
		ctx:        jctx, cancel: jcancel,
		changed: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.stopWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.stopWG.Done()
		s.runJob(j)
	}()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	st, ok := j.requestCancel()
	if !ok {
		// Already terminal: cancelling finished work is a conflict, and
		// the status body says which terminal state won the race.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	if !j.terminal() {
		st := j.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, st)
		return
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	// The store keeps every simulated result; eviction only drops the
	// job's bookkeeping (status, retained export results).
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	sw, st, done := j.resultsDone()
	if !done {
		// Not an error JSON: the status body tells a poller exactly where
		// the job stands (including a failure's message).
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeSweep(w, r, sw)
}

// ExportEntry is one line of a job export stream: the canonical memo key
// of a submitted configuration (core.Config.Key of the config as
// submitted, before any trace resolution) and the result in
// core.EncodeResult's canonical byte form. The distributed coordinator
// ingests these lines into a local result store byte-for-byte.
type ExportEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

func (s *Server) handleJobExport(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if !j.exportable {
		// Anonymous whole-grid jobs do not retain export payloads (only
		// their records); exporting is the coordinator workflow, which
		// always names its jobs.
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s was submitted without a name or shard and has no export; use /results", j.id))
		return
	}
	var (
		exports []ExportEntry
		st      JobStatus
		ok      bool
	)
	if p := r.URL.Query().Get("prefix"); p != "" {
		// ?prefix=N serves the first N canonical entries. Against a running
		// job this is the partial-progress export the elastic coordinator
		// uses to bank a straggler's finished prefix before stealing the
		// remainder; N must not exceed the job's watermark.
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad prefix %q: want a non-negative integer", p))
			return
		}
		exports, st, ok = j.exportPrefix(n)
	} else {
		exports, st, ok = j.export()
	}
	if !ok {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range exports {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

// --- trace distribution ---
//
// The /api/v1/traces endpoints make every waycached host a node of the
// content-addressed trace store: the coordinator (internal/coord) pushes
// each referenced trace to the hosts that lack it before submitting
// shard jobs, so a trace://<hash> sweep needs no pre-provisioned trace
// directories anywhere. Objects are immutable and self-verifying — the
// URL names the SHA-256 of the exact bytes — so PUT is idempotent and
// replication can never serve the wrong trace.

// maxTraceBytes bounds one uploaded trace object.
const maxTraceBytes = 1 << 32

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.opts.TraceStore == nil {
		writeError(w, http.StatusConflict, errNoTraceStore)
		return
	}
	hashes, err := s.opts.TraceStore.Hashes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if hashes == nil {
		hashes = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": hashes})
}

// handleTraceGet streams a stored trace object; its GET route also
// answers HEAD, which is how the coordinator probes hosts for a hash
// without transferring bytes.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if s.opts.TraceStore == nil {
		writeError(w, http.StatusConflict, errNoTraceStore)
		return
	}
	if !trace.ValidHash(hash) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace hash %q (want 64 lowercase hex digits)", hash))
		return
	}
	f, size, err := s.opts.TraceStore.Open(hash)
	if err != nil {
		if errors.Is(err, tracestore.ErrNotFound) {
			writeError(w, http.StatusNotFound, fmt.Errorf("trace %s not in the store", trace.ShortHash(hash)))
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	if r.Method != http.MethodHead {
		io.Copy(w, f)
	}
}

// handleTracePut ingests a trace object under its declared hash. The
// store hashes the body as it lands and refuses a mismatch, so a
// corrupted transfer (or a lying client) cannot poison the store; a
// hash already present reads and discards the body but stores nothing,
// making replication pushes idempotent.
func (s *Server) handleTracePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if s.opts.TraceStore == nil {
		writeError(w, http.StatusConflict, errNoTraceStore)
		return
	}
	if !trace.ValidHash(hash) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace hash %q (want 64 lowercase hex digits)", hash))
		return
	}
	created, n, err := s.opts.TraceStore.PutExpected(http.MaxBytesReader(w, r.Body, maxTraceBytes), hash)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{"hash": hash, "bytes": n, "created": created})
}

var errNoTraceStore = errors.New("this host has no trace store (start waycached with -tracestore)")

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	recs, err := s.queryRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeSweep(w, r, &sweep.Sweep{Records: recs})
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	recs, err := s.queryRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	dim := q.Get("by")
	if dim == "" {
		dim = "benchmark"
	}
	metric := q.Get("metric")
	if metric == "" {
		metric = "procED"
	}
	stats, err := sweep.Aggregate(recs, dim, metric)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format(r) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := sweep.WriteGroupStatsCSV(w, dim, stats); err != nil {
			return // headers sent; nothing safe to add
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		sweep.WriteGroupStatsJSON(w, stats)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or csv)", format(r)))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type jobCounts struct {
		Queued    int `json:"queued"`
		Running   int `json:"running"`
		Done      int `json:"done"`
		Failed    int `json:"failed"`
		Cancelled int `json:"cancelled"`
	}
	var jc jobCounts
	s.mu.Lock()
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case "queued":
			jc.Queued++
		case "running":
			jc.Running++
		case "done":
			jc.Done++
		case "failed":
			jc.Failed++
		case "cancelled":
			jc.Cancelled++
		}
	}
	s.mu.Unlock()

	resp := map[string]any{
		"store": map[string]any{
			"hits":    s.store.Hits(),
			"misses":  s.store.Misses(),
			"entries": s.store.Len(),
		},
		"jobs": jc,
		"scheduler": map[string]any{
			"budget":  s.opts.Workers,
			"waiting": s.budget.Waiting(),
		},
	}
	if c := s.opts.Compactor; c != nil {
		resp["garbageBytes"] = c.Garbage()
	}
	if err := s.store.BackendErr(); err != nil {
		resp["storeError"] = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminCompact triggers an online compaction of the disk-backed
// result log (resultdb.Compact): live records are preserved
// byte-for-byte while tombstoned garbage is reclaimed, with the store
// serving reads and writes throughout.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if s.opts.Compactor == nil {
		writeError(w, http.StatusConflict,
			errors.New("this host has no disk store to compact (start waycached with -store)"))
		return
	}
	stats, err := s.opts.Compactor.Compact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// queryRecords returns the request's filtered view of the corpus, in
// canonical order.
func (s *Server) queryRecords(r *http.Request) ([]sweep.Record, error) {
	f, err := parseFilter(r)
	if err != nil {
		return nil, err
	}
	corpus, err := s.corpusRecords()
	if err != nil {
		return nil, err
	}
	return f.Apply(corpus), nil
}

// corpusRecords returns every stored result flattened to a Record, sorted
// canonically, decoded at most once per store growth: while the
// append-only store's entry count is unchanged the cached slice is
// reused, so steady-state queries cost a filter pass, not a disk scan.
// Callers must not mutate the returned slice.
func (s *Server) corpusRecords() ([]sweep.Record, error) {
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	n := s.store.Len()
	if s.corpus != nil && n == s.corpusLen {
		return s.corpus, nil
	}
	var recs []sweep.Record
	err := s.store.Scan(func(key string, res *core.Result) error {
		recs = append(recs, sweep.NewRecord(res))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sweep.SortRecords(recs)
	// A walker run and a trace replay of the same configuration memoize
	// under distinct keys but flatten to the identical record; collapse
	// exact duplicates so they cannot double-count in aggregates.
	recs = dedupe(recs)
	s.corpus, s.corpusLen = recs, n
	return recs, nil
}

// dedupe removes exact-duplicate adjacent records (the slice is sorted,
// so equal records are adjacent).
func dedupe(recs []sweep.Record) []sweep.Record {
	out := recs[:0]
	for _, r := range recs {
		if len(out) == 0 || r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// parseFilter builds a sweep.Filter from query parameters. Every dimension
// takes a comma-separated list; integer dimensions accept k/m suffixes
// like the CLI flags.
func parseFilter(r *http.Request) (sweep.Filter, error) {
	q := r.URL.Query()
	var f sweep.Filter
	f.Benchmarks = splitParam(q.Get("benchmark"))
	f.DPolicies = splitParam(q.Get("dpolicy"))
	f.IPolicies = splitParam(q.Get("ipolicy"))
	for _, dim := range []struct {
		name string
		dst  *[]int
	}{
		{"dsize", &f.DSizes}, {"dways", &f.DWays}, {"dblock", &f.DBlocks},
		{"isize", &f.ISizes}, {"iways", &f.IWays}, {"iblock", &f.IBlocks},
		{"dlatency", &f.DLatencies}, {"tablesize", &f.TableSizes}, {"victimsize", &f.VictimSizes},
		{"selectiveways", &f.SelectiveWays},
	} {
		v, err := sweep.ParseIntList(q.Get(dim.name))
		if err != nil {
			return f, fmt.Errorf("%s: %w", dim.name, err)
		}
		*dim.dst = v
	}
	if v := q.Get("papercosts"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return f, fmt.Errorf("papercosts: %w", err)
		}
		f.UsePaperCosts = &b
	}
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return f, fmt.Errorf("insts: %w", err)
		}
		f.Insts = n
	}
	return f, nil
}

// --- small helpers ---

// writeSweep emits records in the exact bytes cmd/sweep writes for the
// same records: the Sweep writers are the single source of output format.
func writeSweep(w http.ResponseWriter, r *http.Request, sw *sweep.Sweep) {
	switch format(r) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		sw.WriteCSV(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		sw.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or csv)", format(r)))
	}
}

func format(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	return "json"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func splitParam(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
