// Package branch implements the front-end prediction hardware: a 2-level
// hybrid direction predictor, a branch target buffer (BTB), a return
// address stack (RAS), and the Sequential Address Way-Predictor (SAWP)
// table the paper adds for i-cache way prediction.
//
// The BTB and RAS are extended with log2(ways) way-prediction bits exactly
// as Section 2.3 describes, so predicted-taken branches, returns, and
// sequential fetches can each supply an i-cache way prediction along with
// the next fetch address.
package branch

import "waycache/internal/predict"

// TwoLevel is a hybrid (tournament) direction predictor: a gshare
// component with global history, a bimodal component, and a chooser that
// learns per-branch which component to trust — the paper's "2-level
// hybrid" baseline predictor.
type TwoLevel struct {
	history     uint32
	historyBits uint
	gshare      []predict.SatCounter
	bimodal     []predict.SatCounter
	chooser     []predict.SatCounter // high = use gshare

	stats DirStats
}

// DirStats counts direction-prediction outcomes.
type DirStats struct {
	Predictions int64
	Correct     int64
}

// Accuracy returns the fraction of correct direction predictions.
func (s DirStats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predictions)
}

// NewTwoLevel builds the hybrid predictor with 2^historyBits gshare
// entries and the same number of bimodal/chooser entries.
func NewTwoLevel(historyBits uint) *TwoLevel {
	n := 1 << historyBits
	t := &TwoLevel{
		historyBits: historyBits,
		gshare:      make([]predict.SatCounter, n),
		bimodal:     make([]predict.SatCounter, n),
		chooser:     make([]predict.SatCounter, n),
	}
	for i := 0; i < n; i++ {
		t.gshare[i] = predict.NewSat(2, 1)
		t.bimodal[i] = predict.NewSat(2, 1)
		t.chooser[i] = predict.NewSat(2, 2) // slight initial bias to gshare
	}
	return t
}

func (t *TwoLevel) gIndex(pc uint64) int {
	return int((uint32(pc>>2) ^ t.history) & uint32(len(t.gshare)-1))
}

func (t *TwoLevel) bIndex(pc uint64) int {
	return int(uint32(pc>>2) & uint32(len(t.bimodal)-1))
}

// Predict returns the predicted direction for the branch at pc.
func (t *TwoLevel) Predict(pc uint64) bool {
	if t.chooser[t.bIndex(pc)].High() {
		return t.gshare[t.gIndex(pc)].High()
	}
	return t.bimodal[t.bIndex(pc)].High()
}

// Update trains both components and the chooser with the actual outcome
// and shifts the global history. It also records accuracy statistics using
// the prediction the predictor would have made.
func (t *TwoLevel) Update(pc uint64, taken bool) {
	gi, bi := t.gIndex(pc), t.bIndex(pc)
	gPred := t.gshare[gi].High()
	bPred := t.bimodal[bi].High()
	pred := bPred
	if t.chooser[bi].High() {
		pred = gPred
	}
	t.stats.Predictions++
	if pred == taken {
		t.stats.Correct++
	}

	// Chooser trains toward whichever component was right (only when they
	// disagree).
	if gPred != bPred {
		if gPred == taken {
			t.chooser[bi].Inc()
		} else {
			t.chooser[bi].Dec()
		}
	}
	if taken {
		t.gshare[gi].Inc()
		t.bimodal[bi].Inc()
	} else {
		t.gshare[gi].Dec()
		t.bimodal[bi].Dec()
	}
	t.history = (t.history << 1) & uint32(1<<t.historyBits-1)
	if taken {
		t.history |= 1
	}
}

// Stats returns a copy of the accuracy counters.
func (t *TwoLevel) Stats() DirStats { return t.stats }
