package branch

import "fmt"

// BTB is a set-associative branch target buffer whose entries carry the
// paper's extension: the predicted i-cache way of the target, supplied by
// next-line-set-prediction for predicted-taken branches.
type BTB struct {
	sets    int
	ways    int
	entries []btbEntry
	clock   uint64
	stats   BTBStats
}

type btbEntry struct {
	valid    bool
	tag      uint64
	target   uint64
	way      uint8
	wayValid bool
	lru      uint64
}

// BTBStats counts BTB events.
type BTBStats struct {
	Lookups int64
	Hits    int64
	Updates int64
}

// NewBTB builds a BTB with the given geometry; sets must be a power of two.
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic(fmt.Sprintf("branch: bad BTB geometry %dx%d", sets, ways))
	}
	return &BTB{sets: sets, ways: ways, entries: make([]btbEntry, sets*ways)}
}

func (b *BTB) set(pc uint64) []btbEntry {
	idx := int((pc >> 2) & uint64(b.sets-1))
	return b.entries[idx*b.ways : (idx+1)*b.ways]
}

func (b *BTB) tag(pc uint64) uint64 { return pc >> 2 / uint64(b.sets) }

// Lookup returns the predicted target and i-cache way for the branch at pc.
// wayOK is false when the entry has no way prediction yet.
func (b *BTB) Lookup(pc uint64) (target uint64, way int, wayOK, ok bool) {
	b.stats.Lookups++
	set := b.set(pc)
	tag := b.tag(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.clock++
			set[i].lru = b.clock
			b.stats.Hits++
			return set[i].target, int(set[i].way), set[i].wayValid, true
		}
	}
	return 0, 0, false, false
}

// Update installs or refreshes the entry for pc with the branch's taken
// target and, if wayValid, the i-cache way that target was fetched from.
func (b *BTB) Update(pc, target uint64, way int, wayValid bool) {
	b.stats.Updates++
	set := b.set(pc)
	tag := b.tag(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i
			goto fill
		}
	}
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
fill:
	b.clock++
	set[victim] = btbEntry{
		valid: true, tag: tag, target: target,
		way: uint8(way), wayValid: wayValid, lru: b.clock,
	}
}

// Stats returns a copy of the counters.
func (b *BTB) Stats() BTBStats { return b.stats }
