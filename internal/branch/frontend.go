package branch

import "waycache/internal/predict"

// SAWP is the Sequential Address Way-Predictor: a table indexed by the
// current fetch PC that predicts the i-cache way of the *next* sequential
// fetch (not-taken branches and non-branches). The paper's insight is that
// the incremented PC does not necessarily map to the same way as the
// current PC — successive blocks are independent lines — so a dedicated
// table is needed. Structurally it is the same RAM as a d-cache
// way-prediction table.
type SAWP = predict.WayTable

// NewSAWP builds the table with n entries (the paper uses 1024). It is
// indexed by the current fetch block's address, so the index starts above
// the 32-byte block offset.
func NewSAWP(n int) *SAWP { return predict.NewWayTableShift(n, 5) }

// Defaults for the front-end structures.
const (
	DefaultHistoryBits = 12
	DefaultBTBSets     = 512
	DefaultBTBWays     = 4
	DefaultRASDepth    = 16
	DefaultSAWPEntries = 1024
)

// FrontEnd bundles the fetch-prediction hardware. The shaded structures of
// the paper's Figure 3 — way fields in the BTB and RAS, and the SAWP — are
// all here; the fetch unit in the pipeline composes them into next-PC +
// next-way predictions.
//
// Way training is deferred by one fetch group: the structure that predicted
// (or should have predicted) a block's way can only be trained once the
// i-cache reports the true way at the next access. NoteBTB and NoteSAWP
// queue that pending update; TrainWays applies it. At most one of each is
// pending at a time — exactly the handoff the pipeline's fetch unit needs.
type FrontEnd struct {
	Dir  *TwoLevel
	BTB  *BTB
	RAS  *RAS
	SAWP *SAWP

	btbPend struct {
		valid  bool
		pc     uint64
		target uint64
	}
	sawpPend struct {
		valid bool
		block uint64
	}
}

// NoteBTB queues BTB way training for the branch at pc targeting target:
// the entry is installed by TrainWays once the target's true way is known.
func (fe *FrontEnd) NoteBTB(pc, target uint64) {
	fe.btbPend.valid, fe.btbPend.pc, fe.btbPend.target = true, pc, target
}

// NoteSAWP queues SAWP training for the sequential transition out of block.
func (fe *FrontEnd) NoteSAWP(block uint64) {
	fe.sawpPend.valid, fe.sawpPend.block = true, block
}

// TrainWays applies the queued way updates with the true way the i-cache
// just reported for the current fetch group's block.
func (fe *FrontEnd) TrainWays(trueWay int) {
	if fe.btbPend.valid {
		fe.BTB.Update(fe.btbPend.pc, fe.btbPend.target, trueWay, true)
		fe.btbPend.valid = false
	}
	if fe.sawpPend.valid {
		fe.SAWP.Update(fe.sawpPend.block, trueWay)
		fe.sawpPend.valid = false
	}
}

// NewFrontEnd builds the default front end (2-level hybrid predictor,
// 512x4 BTB, 16-deep RAS, 1024-entry SAWP).
func NewFrontEnd() *FrontEnd {
	return &FrontEnd{
		Dir:  NewTwoLevel(DefaultHistoryBits),
		BTB:  NewBTB(DefaultBTBSets, DefaultBTBWays),
		RAS:  NewRAS(DefaultRASDepth),
		SAWP: NewSAWP(DefaultSAWPEntries),
	}
}
