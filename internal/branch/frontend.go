package branch

import "waycache/internal/predict"

// SAWP is the Sequential Address Way-Predictor: a table indexed by the
// current fetch PC that predicts the i-cache way of the *next* sequential
// fetch (not-taken branches and non-branches). The paper's insight is that
// the incremented PC does not necessarily map to the same way as the
// current PC — successive blocks are independent lines — so a dedicated
// table is needed. Structurally it is the same RAM as a d-cache
// way-prediction table.
type SAWP = predict.WayTable

// NewSAWP builds the table with n entries (the paper uses 1024). It is
// indexed by the current fetch block's address, so the index starts above
// the 32-byte block offset.
func NewSAWP(n int) *SAWP { return predict.NewWayTableShift(n, 5) }

// Defaults for the front-end structures.
const (
	DefaultHistoryBits = 12
	DefaultBTBSets     = 512
	DefaultBTBWays     = 4
	DefaultRASDepth    = 16
	DefaultSAWPEntries = 1024
)

// FrontEnd bundles the fetch-prediction hardware. The shaded structures of
// the paper's Figure 3 — way fields in the BTB and RAS, and the SAWP — are
// all here; the fetch unit in the pipeline composes them into next-PC +
// next-way predictions.
type FrontEnd struct {
	Dir  *TwoLevel
	BTB  *BTB
	RAS  *RAS
	SAWP *SAWP
}

// NewFrontEnd builds the default front end (2-level hybrid predictor,
// 512x4 BTB, 16-deep RAS, 1024-entry SAWP).
func NewFrontEnd() *FrontEnd {
	return &FrontEnd{
		Dir:  NewTwoLevel(DefaultHistoryBits),
		BTB:  NewBTB(DefaultBTBSets, DefaultBTBWays),
		RAS:  NewRAS(DefaultRASDepth),
		SAWP: NewSAWP(DefaultSAWPEntries),
	}
}
