package branch

// RAS is a return address stack augmented, per the paper, with the i-cache
// way of each return address so function returns carry a way prediction.
// It is a fixed-depth circular stack: overflow silently wraps (overwriting
// the oldest entry), underflow returns ok=false, both matching hardware.
type RAS struct {
	entries []rasEntry
	top     int // index of next push slot
	depth   int // live entries, capped at len(entries)
	stats   RASStats
}

type rasEntry struct {
	addr     uint64
	way      uint8
	wayValid bool
}

// RASStats counts stack events.
type RASStats struct {
	Pushes     int64
	Pops       int64
	Underflows int64
}

// NewRAS builds a stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("branch: RAS needs at least one entry")
	}
	return &RAS{entries: make([]rasEntry, n)}
}

// Push records a call's return address and the way prediction for it.
func (r *RAS) Push(addr uint64, way int, wayValid bool) {
	r.stats.Pushes++
	r.entries[r.top] = rasEntry{addr: addr, way: uint8(way), wayValid: wayValid}
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop returns the most recent return address and its way prediction.
func (r *RAS) Pop() (addr uint64, way int, wayValid, ok bool) {
	r.stats.Pops++
	if r.depth == 0 {
		r.stats.Underflows++
		return 0, 0, false, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	e := r.entries[r.top]
	return e.addr, int(e.way), e.wayValid, true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Stats returns a copy of the counters.
func (r *RAS) Stats() RASStats { return r.stats }
