package branch

import (
	"testing"

	"waycache/internal/prng"
)

func TestTwoLevelLearnsBias(t *testing.T) {
	p := NewTwoLevel(12)
	pc := uint64(0x400000)
	for i := 0; i < 50; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
	for i := 0; i < 50; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("always-not-taken branch predicted taken after retraining")
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	// A strict alternation is invisible to bimodal but trivial for gshare
	// with global history; the hybrid must converge to high accuracy.
	p := NewTwoLevel(12)
	pc := uint64(0x400010)
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if i > 500 { // after warmup
			if p.Predict(pc) == taken {
				correct++
			}
			total++
		}
		p.Update(pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Fatalf("alternating-pattern accuracy %v, want > 0.95", acc)
	}
}

func TestTwoLevelRandomIsHard(t *testing.T) {
	p := NewTwoLevel(12)
	r := prng.New(77)
	pc := uint64(0x400020)
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		taken := r.Bool(0.5)
		if p.Predict(pc) == taken {
			correct++
		}
		total++
		p.Update(pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.6 {
		t.Fatalf("random branches predicted with accuracy %v — predictor is cheating", acc)
	}
}

func TestTwoLevelStats(t *testing.T) {
	p := NewTwoLevel(10)
	for i := 0; i < 100; i++ {
		p.Update(0x400000, true)
	}
	st := p.Stats()
	if st.Predictions != 100 {
		t.Fatalf("Predictions = %d", st.Predictions)
	}
	if st.Accuracy() < 0.9 {
		t.Fatalf("accuracy on constant branch = %v", st.Accuracy())
	}
}

func TestBTBLookupMissThenHit(t *testing.T) {
	b := NewBTB(512, 4)
	pc, target := uint64(0x400100), uint64(0x400800)
	if _, _, _, ok := b.Lookup(pc); ok {
		t.Fatal("cold BTB hit")
	}
	b.Update(pc, target, 2, true)
	got, way, wayOK, ok := b.Lookup(pc)
	if !ok || got != target || !wayOK || way != 2 {
		t.Fatalf("Lookup = (%#x, %d, %v, %v)", got, way, wayOK, ok)
	}
}

func TestBTBWayFieldOptional(t *testing.T) {
	b := NewBTB(512, 4)
	b.Update(0x400100, 0x400800, 0, false)
	_, _, wayOK, ok := b.Lookup(0x400100)
	if !ok || wayOK {
		t.Fatalf("entry without way prediction: ok=%v wayOK=%v", ok, wayOK)
	}
}

func TestBTBReplacementLRU(t *testing.T) {
	b := NewBTB(1, 2) // single set, 2 ways: easy to force conflict
	b.Update(0x100, 0x1, 0, false)
	b.Update(0x200, 0x2, 0, false)
	b.Lookup(0x100) // make 0x200 LRU
	b.Update(0x300, 0x3, 0, false)
	if _, _, _, ok := b.Lookup(0x200); ok {
		t.Fatal("LRU entry survived replacement")
	}
	if _, _, _, ok := b.Lookup(0x100); !ok {
		t.Fatal("MRU entry was evicted")
	}
}

func TestBTBUpdateExistingEntry(t *testing.T) {
	b := NewBTB(512, 4)
	b.Update(0x400100, 0x1000, 1, true)
	b.Update(0x400100, 0x2000, 3, true)
	target, way, _, ok := b.Lookup(0x400100)
	if !ok || target != 0x2000 || way != 3 {
		t.Fatalf("entry not refreshed in place: (%#x, %d)", target, way)
	}
	// Refresh must not consume a second way.
	b2 := NewBTB(1, 1)
	b2.Update(0x100, 0x1, 0, false)
	b2.Update(0x100, 0x2, 0, false)
	if tgt, _, _, ok := b2.Lookup(0x100); !ok || tgt != 0x2 {
		t.Fatal("in-place update failed in 1-entry BTB")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(16)
	r.Push(0x1000, 1, true)
	r.Push(0x2000, 2, true)
	addr, way, wayOK, ok := r.Pop()
	if !ok || addr != 0x2000 || way != 2 || !wayOK {
		t.Fatalf("first pop = (%#x, %d, %v, %v)", addr, way, wayOK, ok)
	}
	addr, _, _, _ = r.Pop()
	if addr != 0x1000 {
		t.Fatalf("second pop = %#x", addr)
	}
}

func TestRASUnderflow(t *testing.T) {
	r := NewRAS(4)
	if _, _, _, ok := r.Pop(); ok {
		t.Fatal("pop of empty stack succeeded")
	}
	if r.Stats().Underflows != 1 {
		t.Fatal("underflow not counted")
	}
}

func TestRASWraparound(t *testing.T) {
	r := NewRAS(2)
	r.Push(0x1, 0, false)
	r.Push(0x2, 0, false)
	r.Push(0x3, 0, false) // overwrites 0x1
	if r.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", r.Depth())
	}
	a, _, _, _ := r.Pop()
	b, _, _, _ := r.Pop()
	if a != 0x3 || b != 0x2 {
		t.Fatalf("pops = %#x, %#x", a, b)
	}
	if _, _, _, ok := r.Pop(); ok {
		t.Fatal("oldest entry should have been overwritten")
	}
}

func TestFrontEndDefaults(t *testing.T) {
	f := NewFrontEnd()
	if f.Dir == nil || f.BTB == nil || f.RAS == nil || f.SAWP == nil {
		t.Fatal("front end missing components")
	}
	if f.SAWP.Len() != DefaultSAWPEntries {
		t.Fatalf("SAWP size = %d", f.SAWP.Len())
	}
}

func TestSAWPLearnsNextWay(t *testing.T) {
	s := NewSAWP(1024)
	cur := uint64(0x400000)
	s.Update(cur, 3)
	if way, ok := s.Lookup(cur); !ok || way != 3 {
		t.Fatalf("SAWP lookup = (%d, %v)", way, ok)
	}
}
