package resultdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"waycache/internal/core"
)

// snapshotEncoded captures every live key's payload bytes.
func snapshotEncoded(t *testing.T, db *DB) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, key := range db.Keys() {
		payload, found, err := db.GetEncoded(key)
		if err != nil || !found {
			t.Fatalf("GetEncoded(%q): found=%v err=%v", key, found, err)
		}
		out[key] = payload
	}
	return out
}

func logSize(t *testing.T, dir string) int64 {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestDeleteAndReopen: a deleted key stays deleted across reopen, both via
// the index snapshot (Close) and via a full log scan (no snapshot), and
// the key can be Put again afterwards.
func TestDeleteAndReopen(t *testing.T) {
	for _, withIndex := range []bool{true, false} {
		dir := t.TempDir()
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		keys := fill(t, db)
		victim := keys[1]

		if ok, err := db.Delete("no-such-key"); err != nil || ok {
			t.Fatalf("Delete(absent) = %v, %v; want false, nil", ok, err)
		}
		if ok, err := db.Delete(victim); err != nil || !ok {
			t.Fatalf("Delete(%q) = %v, %v; want true, nil", victim, ok, err)
		}
		if db.Garbage() == 0 {
			t.Error("Garbage() = 0 after delete")
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		if !withIndex {
			os.Remove(filepath.Join(dir, IndexName))
		}

		db, err = Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, found, _ := db.Get(victim); found {
			t.Errorf("withIndex=%v: deleted key resurfaced on reopen", withIndex)
		}
		if got := db.Len(); got != len(keys)-1 {
			t.Errorf("withIndex=%v: Len() = %d, want %d", withIndex, got, len(keys)-1)
		}
		// Supersession: the deleted key accepts a fresh record.
		if err := db.Put(victim, results(t)[1]); err != nil {
			t.Fatal(err)
		}
		if _, found, err := db.Get(victim); err != nil || !found {
			t.Fatalf("withIndex=%v: re-Put key not readable: found=%v err=%v", withIndex, found, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactPreservesLiveRecordsByteForByte: after deletes, Compact keeps
// every live payload identical, reclaims the dead bytes on disk, and the
// compacted store survives reopen (fresh index and scan paths both).
func TestCompactPreservesLiveRecordsByteForByte(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, db)
	if ok, err := db.Delete(keys[0]); err != nil || !ok {
		t.Fatal(err)
	}
	want := snapshotEncoded(t, db)
	wantOrder := db.Keys()
	garbage := db.Garbage()
	if garbage == 0 {
		t.Fatal("no garbage to reclaim")
	}
	before := logSize(t, dir)

	stats, err := db.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.Live != len(wantOrder) {
		t.Errorf("stats.Live = %d, want %d", stats.Live, len(wantOrder))
	}
	if stats.Reclaimed != garbage {
		t.Errorf("stats.Reclaimed = %d, want garbage %d", stats.Reclaimed, garbage)
	}
	if after := logSize(t, dir); after != before-garbage {
		t.Errorf("log size %d after compact, want %d", after, before-garbage)
	}
	if g := db.Garbage(); g != 0 {
		t.Errorf("Garbage() = %d after compact, want 0", g)
	}

	check := func(db *DB, when string) {
		t.Helper()
		order := db.Keys()
		if len(order) != len(wantOrder) {
			t.Fatalf("%s: %d keys, want %d", when, len(order), len(wantOrder))
		}
		for i, key := range order {
			if key != wantOrder[i] {
				t.Errorf("%s: key %d = %q, want %q (order changed)", when, i, key, wantOrder[i])
			}
			payload, found, err := db.GetEncoded(key)
			if err != nil || !found {
				t.Fatalf("%s: GetEncoded(%q): found=%v err=%v", when, key, found, err)
			}
			if !bytes.Equal(payload, want[key]) {
				t.Errorf("%s: payload for %q changed across compaction", when, key)
			}
		}
	}
	check(db, "open store")

	// The store stays writable after the swap.
	if err := db.Put(keys[0], results(t)[0]); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.Delete(keys[0]); err != nil || !ok {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, withIndex := range []bool{true, false} {
		if !withIndex {
			os.Remove(filepath.Join(dir, IndexName))
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen (withIndex=%v): %v", withIndex, err)
		}
		check(re, "reopened store")
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactEmptyAndNoGarbage: compacting an empty store and a store with
// zero garbage are both harmless no-ops byte-wise.
func TestCompactEmptyAndNoGarbage(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats, err := db.Compact(); err != nil || stats.Reclaimed != 0 {
		t.Fatalf("empty Compact: stats=%+v err=%v", stats, err)
	}
	fill(t, db)
	before := logSize(t, dir)
	stats, err := db.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.Reclaimed != 0 || logSize(t, dir) != before {
		t.Errorf("garbage-free compact changed the log: stats=%+v size %d -> %d", stats, before, logSize(t, dir))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCompactOnClose: Close compacts when garbage crosses both the
// absolute floor and the log-fraction threshold, and leaves small or
// mostly-live logs alone.
func TestAutoCompactOnClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Bulk records big enough that a few deletes clear the 1 MiB floor.
	payload, err := core.EncodeResult(results(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	pad := bytes.Repeat([]byte(" "), 1<<19) // JSON-legal trailing whitespace
	big := append(append([]byte(nil), payload...), pad...)
	for _, key := range []string{"bulk-a", "bulk-b", "bulk-c", "bulk-d"} {
		if err := db.PutEncoded(key, big); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := db.Delete("bulk-a"); err != nil || !ok {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // ~0.5 MiB garbage: under the floor
		t.Fatal(err)
	}

	db, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Garbage() == 0 {
		t.Fatal("expected garbage to survive a non-compacting Close")
	}
	for _, key := range []string{"bulk-b", "bulk-c"} {
		if ok, err := db.Delete(key); err != nil || !ok {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil { // ~1.5 MiB, >= 1/4 of log: compacts
		t.Fatal(err)
	}
	// After compaction the log holds exactly the header plus the one
	// surviving record.
	want := int64(len(Magic)+1) + recordBytes(len("bulk-d"), int64(len(big)))
	if got := logSize(t, dir); got != want {
		t.Errorf("log size after auto-compact = %d, want %d", got, want)
	}

	db, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Len(); got != 1 {
		t.Errorf("Len() = %d after auto-compact reopen, want 1", got)
	}
	if g := db.Garbage(); g != 0 {
		t.Errorf("Garbage() = %d after auto-compact, want 0", g)
	}
	if _, found, err := db.Get("bulk-d"); err != nil || !found {
		t.Fatalf("surviving key unreadable: found=%v err=%v", found, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
