//go:build !unix

package resultdb

import "os"

// lockLog is a no-op where flock is unavailable; non-unix platforms get
// no concurrent-open protection and must serialize store access
// themselves.
func lockLog(*os.File) error { return nil }
