//go:build unix

package resultdb

import (
	"fmt"
	"os"
	"syscall"
)

// lockLog takes an exclusive advisory flock on the open log file. The
// store directory is single-writer by design (every process tracks its
// own append offset), and the docs encourage sharing one directory across
// sweep/experiments/cachesim/waycached — sequentially. The lock turns a
// concurrent second open from silent log corruption into an immediate
// error, and evaporates with the file descriptor on any exit, clean or
// crashed, so there is no stale-lock recovery to get wrong.
func lockLog(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("resultdb: %s is locked by another process (close it first): %w", f.Name(), err)
	}
	return nil
}
