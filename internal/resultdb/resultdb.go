// Package resultdb is the crash-safe on-disk simulation-result store: an
// append-only log of canonically-encoded core.Result records keyed by
// core.Config.Key, plus a sidecar index that makes reopening large stores
// cheap. It is the durable tier behind sweep's memoization — repeated CLI
// runs and the waycached service recall finished configurations from disk
// instead of re-simulating them.
//
// # On-disk layout
//
// A store is a directory holding two files (byte-level spec in
// docs/HTTP_API.md):
//
//	results.log   append-only record log (the source of truth)
//	results.idx   key -> offset index snapshot (an optimization only)
//
// The log opens with the magic "WCRD" and a one-byte format version, then
// holds zero or more records:
//
//	uvarint keyLen | key | uvarint payloadLen | payload | crc32(key+payload)
//
// where payload is core.EncodeResult's canonical bytes and the CRC-32
// (IEEE, little-endian) closes the record. Records are immutable once
// written; a live key is never written twice. A record with payloadLen 0
// is a tombstone: it marks the key's earlier record dead (Delete), after
// which the key may be written again — supersession is a tombstone
// followed by a fresh record.
//
// # Compaction
//
// Tombstoned and superseded records stay in the log as garbage until
// Compact rewrites the live records — byte-for-byte, in their original
// order — into a fresh log that atomically replaces the old one
// (temp file + fsync + rename, with the new file flock'd before the
// swap). Close compacts automatically when garbage exceeds both an
// absolute floor and a quarter of the log. Garbage is derived, not
// tracked on faith: it is exactly the log size minus the header and the
// live records' sizes, so accounting can never drift from the file.
//
// # Crash safety
//
// Every Put appends one record and the log is never rewritten, so a crash
// can only damage the tail. Open scans forward validating lengths and
// checksums; the first torn or corrupt record marks the end of the valid
// prefix, the file is truncated there, and the store resumes appending —
// losing at most the writes that had not fully reached the log. The index
// file is written atomically (temp file + rename) on Close and merely
// accelerates Open: a missing, stale, or corrupt index triggers a full log
// scan, never data loss.
//
// A store directory is single-writer: Open takes an exclusive advisory
// lock (flock on unix) on the log for the life of the DB, so concurrent
// processes sharing a directory fail fast instead of interleaving
// appends. The lock dies with the process; sequential sharing across
// sweep, experiments, cachesim and waycached needs no cleanup.
package resultdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"waycache/internal/core"
)

// Magic identifies a result log; MagicIndex a sidecar index. Each is
// followed by a one-byte format version, mirroring the .wct trace format.
const (
	Magic      = "WCRD"
	MagicIndex = "WCRI"
)

// FormatVersion is the log and index encoding version this package
// writes. Version 2 added tombstone records (payloadLen 0, previously
// rejected as implausible); version-1 logs are still read — they are a
// strict subset — but version-1 readers refuse version-2 logs outright
// instead of mistaking a tombstone for a torn tail.
const FormatVersion = 2

// LogName and IndexName are the file names inside a store directory.
const (
	LogName   = "results.log"
	IndexName = "results.idx"
)

// keyCap and payloadCap bound record fields so a corrupt length prefix is
// detected instead of driving a huge allocation. Keys are canonical config
// strings (hundreds of bytes); payloads canonical JSON results (a few KB).
const (
	keyCap     = 1 << 16
	payloadCap = 1 << 24
)

// span locates one record's payload inside the log.
type span struct {
	off int64 // payload offset
	n   int64 // payload length
}

// DB is an open result store. It is safe for concurrent use.
type DB struct {
	mu        sync.Mutex //wclint:lockrank 50
	dir       string
	f         *os.File
	size      int64 // end of the validated log == append offset
	index     map[string]span
	keys      []string // insertion (log) order, for deterministic Scan
	liveBytes int64    // total size of live records; garbage = size - header - liveBytes
}

// recordBytes is the encoded size of one record with the given key and
// payload lengths — the unit garbage accounting and compaction both use.
func recordBytes(keyLen int, payloadLen int64) int64 {
	return int64(uvarintLen(uint64(keyLen))) + int64(keyLen) +
		int64(uvarintLen(uint64(payloadLen))) + payloadLen + 4
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Open opens the store in dir, creating the directory and an empty log as
// needed, and recovers from a torn tail by truncating the log to its last
// intact record.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	// One writer at a time: concurrent processes appending with
	// independent offsets would interleave records and corrupt the log.
	if err := lockLog(f); err != nil {
		f.Close()
		return nil, err
	}
	db := &DB{dir: dir, f: f, index: make(map[string]span)}
	if err := db.load(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// load validates the log header, replays the index snapshot when it is
// usable, scans any records beyond it, and truncates a damaged tail.
func (db *DB) load() error {
	st, err := db.f.Stat()
	if err != nil {
		return fmt.Errorf("resultdb: %w", err)
	}
	headerLen := int64(len(Magic) + 1)
	if st.Size() == 0 {
		var hdr []byte
		hdr = append(hdr, Magic...)
		hdr = append(hdr, FormatVersion)
		if _, err := db.f.Write(hdr); err != nil {
			return fmt.Errorf("resultdb: writing log header: %w", err)
		}
		db.size = headerLen
		return nil
	}
	if st.Size() < headerLen {
		return fmt.Errorf("resultdb: %s is not a result log (too short)", LogName)
	}
	hdr := make([]byte, headerLen)
	if _, err := db.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("resultdb: reading log header: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return fmt.Errorf("resultdb: %s has bad magic %q (not a result log)", LogName, hdr[:len(Magic)])
	}
	if v := hdr[len(Magic)]; v != FormatVersion && v != 1 {
		return fmt.Errorf("resultdb: unsupported log format version %d (reader speaks %d)", v, FormatVersion)
	}
	db.size = headerLen

	// Fast path: replay the index snapshot, then scan only the records it
	// does not cover. Any defect in the index falls back to a full scan —
	// the log alone is authoritative.
	if covered, ok := db.loadIndex(st.Size()); ok {
		db.size = covered
	}
	if err := db.scan(st.Size()); err != nil {
		return err
	}
	// A torn tail (or an index describing records past a truncated log's
	// end, which loadIndex rejects) leaves db.size < file size: cut the
	// damage so future appends extend the valid prefix.
	if db.size < st.Size() {
		if err := db.f.Truncate(db.size); err != nil {
			return fmt.Errorf("resultdb: truncating torn log tail: %w", err)
		}
	}
	return nil
}

// scan reads records from db.size to end, extending the index; it stops —
// without error — at the first torn or corrupt record, leaving db.size at
// the end of the valid prefix. Tombstones (payloadLen 0) kill the key's
// live record; a later record under a killed key revives it, which is how
// supersession replays.
func (db *DB) scan(end int64) error {
	base := db.size
	r := io.NewSectionReader(db.f, base, end-base)
	br := &countingReader{r: r}
	for {
		start := base + br.n
		key, sp, err := readRecord(br, start)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn or corrupt tail: everything before this record is intact.
			return nil
		}
		switch old, live := db.index[key]; {
		case sp.n == 0: // tombstone
			if live {
				delete(db.index, key)
				db.removeKeyLocked(key)
				db.liveBytes -= recordBytes(len(key), old.n)
			}
		case !live:
			db.index[key] = sp
			db.keys = append(db.keys, key)
			db.liveBytes += recordBytes(len(key), sp.n)
		}
		db.size = sp.off + sp.n + 4 // payload end + crc = end of this record
	}
}

// removeKeyLocked drops key from the insertion-order slice.
func (db *DB) removeKeyLocked(key string) {
	for i, k := range db.keys {
		if k == key {
			db.keys = append(db.keys[:i], db.keys[i+1:]...)
			return
		}
	}
}

// countingReader tracks how many bytes have been consumed, so record spans
// can be computed from a stream position.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(c, b[:])
	return b[0], err
}

// readRecord decodes one record starting at absolute log offset start.
// io.EOF means a clean end of log; any other error a torn/corrupt record.
func readRecord(br *countingReader, start int64) (key string, sp span, err error) {
	consumedAtStart := br.n
	klen, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return "", span{}, io.EOF
		}
		return "", span{}, fmt.Errorf("resultdb: key length: %w", err)
	}
	if klen == 0 || klen > keyCap {
		return "", span{}, fmt.Errorf("resultdb: implausible key length %d", klen)
	}
	kbuf := make([]byte, klen)
	if _, err := io.ReadFull(br, kbuf); err != nil {
		return "", span{}, fmt.Errorf("resultdb: key: %w", err)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", span{}, fmt.Errorf("resultdb: payload length: %w", err)
	}
	// plen 0 is a tombstone (span.n 0), not corruption.
	if plen > payloadCap {
		return "", span{}, fmt.Errorf("resultdb: implausible payload length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return "", span{}, fmt.Errorf("resultdb: payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return "", span{}, fmt.Errorf("resultdb: checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(kbuf)
	crc.Write(payload)
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc.Sum32() {
		return "", span{}, fmt.Errorf("resultdb: checksum mismatch at offset %d", start)
	}
	payloadOff := start + (br.n - consumedAtStart) - 4 - int64(plen)
	return string(kbuf), span{off: payloadOff, n: int64(plen)}, nil
}

// appendRecord encodes one record's bytes.
func appendRecord(key string, payload []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write(payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	return buf
}

// Get returns the stored result for key, decoding it from the log. found
// is false when the key has never been Put (or was deleted).
func (db *DB) Get(key string) (res *core.Result, found bool, err error) {
	payload, ok, err := db.GetEncoded(key)
	if !ok || err != nil {
		return nil, false, err
	}
	r, err := core.DecodeResult(payload)
	if err != nil {
		return nil, false, fmt.Errorf("resultdb: %w", err)
	}
	return r, true, nil
}

// GetEncoded returns the stored payload for key exactly as written —
// core.EncodeResult's canonical bytes — without decoding. It is what
// compaction round-trip checks compare. The read happens under the lock
// because Compact swaps the log file handle out from under stale spans.
func (db *DB) GetEncoded(key string) (payload []byte, found bool, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sp, ok := db.index[key]
	if !ok {
		return nil, false, nil
	}
	payload = make([]byte, sp.n)
	if _, err := db.f.ReadAt(payload, sp.off); err != nil {
		return nil, false, fmt.Errorf("resultdb: reading record: %w", err)
	}
	return payload, true, nil
}

// Put appends the result for key. Keys are write-once: a key already in
// the store is left untouched (results are deterministic per key, so the
// first record is as good as any rewrite).
func (db *DB) Put(key string, res *core.Result) error {
	payload, err := core.EncodeResult(res)
	if err != nil {
		return err
	}
	return db.putPayload(key, payload)
}

// PutEncoded appends a result that already exists in core.EncodeResult's
// canonical byte form — the bulk-ingest path for shard results computed by
// remote hosts. The payload is validated (it must decode) and then stored
// byte-for-byte as provided, so the log holds exactly what the remote
// computed, with no decode/re-encode round trip. Keys are write-once, as
// with Put.
func (db *DB) PutEncoded(key string, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("resultdb: empty payload for key %q", key)
	}
	if len(payload) > payloadCap {
		return fmt.Errorf("resultdb: payload for key %q is %d bytes (cap %d)", key, len(payload), payloadCap)
	}
	if _, err := core.DecodeResult(payload); err != nil {
		return fmt.Errorf("resultdb: rejecting undecodable payload for key %q: %w", key, err)
	}
	return db.putPayload(key, payload)
}

// putPayload appends one validated record.
func (db *DB) putPayload(key string, payload []byte) error {
	if key == "" {
		return fmt.Errorf("resultdb: empty key")
	}
	if len(key) > keyCap {
		return fmt.Errorf("resultdb: key is %d bytes (cap %d)", len(key), keyCap)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.index[key]; dup {
		return nil
	}
	rec := appendRecord(key, payload)
	if _, err := db.f.WriteAt(rec, db.size); err != nil {
		return fmt.Errorf("resultdb: appending record: %w", err)
	}
	off := db.size + int64(len(rec)) - 4 - int64(len(payload))
	db.size += int64(len(rec))
	db.index[key] = span{off: off, n: int64(len(payload))}
	db.keys = append(db.keys, key)
	db.liveBytes += int64(len(rec))
	return nil
}

// Delete appends a tombstone for key and drops it from the store. It
// returns false — writing nothing — when the key is not present. A
// deleted key may be Put again (supersession); the dead record and its
// tombstone count as garbage until Compact reclaims them.
func (db *DB) Delete(key string) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sp, ok := db.index[key]
	if !ok {
		return false, nil
	}
	rec := appendRecord(key, nil)
	if _, err := db.f.WriteAt(rec, db.size); err != nil {
		return false, fmt.Errorf("resultdb: appending tombstone: %w", err)
	}
	db.size += int64(len(rec))
	delete(db.index, key)
	db.removeKeyLocked(key)
	db.liveBytes -= recordBytes(len(key), sp.n)
	return true, nil
}

// Garbage reports the dead bytes in the log — tombstones, the records
// they killed, and superseded records — i.e. what Compact would reclaim.
func (db *DB) Garbage() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.garbageLocked()
}

func (db *DB) garbageLocked() int64 {
	return db.size - int64(len(Magic)+1) - db.liveBytes
}

// CompactStats reports what one compaction accomplished.
type CompactStats struct {
	Live      int   `json:"live"`           // records carried into the new log
	Before    int64 `json:"beforeBytes"`    // log size before
	After     int64 `json:"afterBytes"`     // log size after
	Reclaimed int64 `json:"reclaimedBytes"` // Before - After
}

// Compact rewrites the live records — byte-for-byte, in log order — into
// a fresh log that atomically replaces the current one, reclaiming all
// garbage. The store stays open and usable throughout; on any failure the
// original log is untouched. The index snapshot is refreshed immediately
// after the swap so a stale sidecar can never describe the new layout.
func (db *DB) Compact() (CompactStats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactLocked()
}

func (db *DB) compactLocked() (CompactStats, error) {
	stats := CompactStats{Live: len(db.keys), Before: db.size}
	tmpPath := filepath.Join(db.dir, LogName+".compact")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return stats, fmt.Errorf("resultdb: compact: %w", err)
	}
	fail := func(err error) (CompactStats, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return stats, err
	}
	// Lock the replacement before it becomes results.log: renaming first
	// would open a window where a concurrent Open could flock the new
	// inode while we still think we are the single writer.
	if err := lockLog(tmp); err != nil {
		return fail(err)
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := w.Write(append([]byte(Magic), FormatVersion)); err != nil {
		return fail(fmt.Errorf("resultdb: compact: %w", err))
	}
	written := int64(len(Magic) + 1)
	newIndex := make(map[string]span, len(db.keys))
	for _, key := range db.keys {
		sp := db.index[key]
		payload := make([]byte, sp.n)
		if _, err := db.f.ReadAt(payload, sp.off); err != nil {
			return fail(fmt.Errorf("resultdb: compact: reading %q: %w", key, err))
		}
		rec := appendRecord(key, payload)
		if _, err := w.Write(rec); err != nil {
			return fail(fmt.Errorf("resultdb: compact: %w", err))
		}
		written += int64(len(rec))
		newIndex[key] = span{off: written - 4 - sp.n, n: sp.n}
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("resultdb: compact: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("resultdb: compact: %w", err))
	}
	if err := os.Rename(tmpPath, filepath.Join(db.dir, LogName)); err != nil {
		return fail(fmt.Errorf("resultdb: compact: installing new log: %w", err))
	}
	db.f.Close() // the old handle (and its lock) die with the old inode
	db.f = tmp
	db.size = written
	db.index = newIndex
	db.liveBytes = written - int64(len(Magic)+1)
	stats.After = db.size
	stats.Reclaimed = stats.Before - stats.After
	return stats, db.writeIndexLocked()
}

// Len returns the number of stored results.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.index)
}

// Keys returns every stored key in log (insertion) order.
func (db *DB) Keys() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, len(db.keys))
	copy(out, db.keys)
	return out
}

// Scan decodes every stored result in log order and calls fn for each; a
// non-nil return from fn stops the scan and is returned.
func (db *DB) Scan(fn func(key string, res *core.Result) error) error {
	for _, key := range db.Keys() {
		res, found, err := db.Get(key)
		if err != nil {
			return err
		}
		if !found {
			continue // unreachable: keys come from the index
		}
		if err := fn(key, res); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the log to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.f.Sync()
}

// autoCompact* gate compaction on Close: a rewrite is worth its IO only
// when the dead bytes are both substantial and a meaningful fraction of
// the log.
const (
	autoCompactMinBytes = 1 << 20
	autoCompactFraction = 4 // garbage >= size/4
)

// Close writes the index snapshot and closes the log, compacting first
// when accumulated garbage crosses the auto-compact threshold. The store
// remains reopenable — and loses nothing — if Close is never called; the
// snapshot only speeds up the next Open.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var err error
	if g := db.garbageLocked(); g >= autoCompactMinBytes && g*autoCompactFraction >= db.size {
		_, err = db.compactLocked()
	}
	if ierr := db.writeIndexLocked(); err == nil {
		err = ierr
	}
	if cerr := db.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Index file format (after "WCRI" + version byte):
//
//	uvarint coveredLogSize | uvarint n | n x (uvarint keyLen | key |
//	    uvarint payloadOff | uvarint payloadLen) | crc32(body)
//
// coveredLogSize is the log length the entries describe; Open scans the
// log from there so an index lagging the log (crash between Put and
// Close) just means a short catch-up scan. The trailing CRC-32 (over
// everything after magic+version) plus the atomic rename keeps a torn
// index from ever being trusted.

func (db *DB) writeIndexLocked() error {
	body := binary.AppendUvarint(nil, uint64(db.size))
	body = binary.AppendUvarint(body, uint64(len(db.keys)))
	for _, key := range db.keys {
		sp := db.index[key]
		body = binary.AppendUvarint(body, uint64(len(key)))
		body = append(body, key...)
		body = binary.AppendUvarint(body, uint64(sp.off))
		body = binary.AppendUvarint(body, uint64(sp.n))
	}
	buf := append([]byte(MagicIndex), FormatVersion)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))

	tmp := filepath.Join(db.dir, IndexName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("resultdb: writing index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, IndexName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultdb: installing index: %w", err)
	}
	return nil
}

// loadIndex replays the index snapshot if it is intact and consistent with
// a log of logSize bytes, returning the log size it covers. ok=false means
// "ignore the index and scan the whole log".
func (db *DB) loadIndex(logSize int64) (covered int64, ok bool) {
	data, err := os.ReadFile(filepath.Join(db.dir, IndexName))
	if err != nil {
		return 0, false
	}
	pre := len(MagicIndex) + 1
	if len(data) < pre+4 || string(data[:len(MagicIndex)]) != MagicIndex || data[len(MagicIndex)] != FormatVersion {
		return 0, false
	}
	body, crcBuf := data[pre:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(crcBuf) != crc32.ChecksumIEEE(body) {
		return 0, false
	}
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, false
		}
		body = body[n:]
		return v, true
	}
	cov, ok1 := next()
	n, ok2 := next()
	// An index claiming to cover more log than exists (the log was
	// truncated behind our back, e.g. by tail recovery on another open)
	// could point entries past EOF; distrust it entirely.
	if !ok1 || !ok2 || int64(cov) > logSize || n > uint64(payloadCap) {
		return 0, false
	}
	index := make(map[string]span, n)
	keys := make([]string, 0, n)
	var live int64
	for i := uint64(0); i < n; i++ {
		klen, ok := next()
		if !ok || klen == 0 || klen > keyCap || uint64(len(body)) < klen {
			return 0, false
		}
		key := string(body[:klen])
		body = body[klen:]
		off, ok1 := next()
		plen, ok2 := next()
		if !ok1 || !ok2 || plen == 0 || plen > payloadCap || int64(off)+int64(plen) > int64(cov) {
			return 0, false
		}
		if _, dup := index[key]; dup {
			return 0, false
		}
		index[key] = span{off: int64(off), n: int64(plen)}
		keys = append(keys, key)
		live += recordBytes(int(klen), int64(plen))
	}
	db.index = index
	db.keys = keys
	db.liveBytes = live
	return int64(cov), true
}
