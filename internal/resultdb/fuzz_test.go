package resultdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzResultDBRecover feeds arbitrary bytes to the crash-recovery scan
// as a pre-existing results.log. Whatever the log holds — valid records,
// tombstones, torn tails, bit flips — Open must either refuse cleanly or
// come up consistent: every indexed key readable, garbage accounting
// non-negative, and the recovered state surviving a full Compact and
// reopen with every live payload byte-identical.
func FuzzResultDBRecover(f *testing.F) {
	seedLog := func(build func(db *DB)) []byte {
		dir := f.TempDir()
		db, err := Open(dir)
		if err != nil {
			f.Fatal(err)
		}
		build(db)
		if err := db.Close(); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, LogName))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	payload := []byte(`{"Config":{"Benchmark":"gcc"},"EPI":0.5}`)
	full := seedLog(func(db *DB) {
		for _, k := range []string{"cfg-a", "cfg-b", "cfg-c"} {
			if err := db.PutEncoded(k, payload); err != nil {
				f.Fatal(err)
			}
		}
		if _, err := db.Delete("cfg-b"); err != nil {
			f.Fatal(err)
		}
		if err := db.PutEncoded("cfg-a", []byte(`{"EPI":0.25}`)); err != nil {
			f.Fatal(err)
		}
	})
	f.Add(full)
	f.Add(full[:len(full)-2]) // torn tail mid-record
	f.Add(seedLog(func(*DB) {}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, log []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LogName), log, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			return // refused cleanly; the only requirement is no panic
		}
		defer db.Close()
		if g := db.Garbage(); g < 0 {
			t.Fatalf("negative garbage %d after recovery", g)
		}
		keys := db.Keys()
		if len(keys) != db.Len() {
			t.Fatalf("Keys() lists %d, Len() = %d", len(keys), db.Len())
		}
		live := make(map[string][]byte, len(keys))
		for _, k := range keys {
			p, found, err := db.GetEncoded(k)
			if err != nil || !found {
				t.Fatalf("recovered index lists %q but GetEncoded: found=%v err=%v", k, found, err)
			}
			live[k] = p
		}

		// The recovered state must survive compaction and a reopen with
		// every live record intact, byte for byte.
		if _, err := db.Compact(); err != nil {
			t.Fatalf("compacting recovered store: %v", err)
		}
		if g := db.Garbage(); g != 0 {
			t.Fatalf("garbage after compact = %d, want 0", g)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("closing compacted store: %v", err)
		}
		db2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopening compacted store: %v", err)
		}
		defer db2.Close()
		if db2.Len() != len(live) {
			t.Fatalf("compacted store reopened with %d records, want %d", db2.Len(), len(live))
		}
		for k, want := range live {
			p, found, err := db2.GetEncoded(k)
			if err != nil || !found {
				t.Fatalf("compacted store lost %q: found=%v err=%v", k, found, err)
			}
			if !bytes.Equal(p, want) {
				t.Fatalf("record %q changed across compact+reopen", k)
			}
		}
	})
}
