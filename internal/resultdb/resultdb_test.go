package resultdb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"waycache/internal/access"
	"waycache/internal/core"
)

// testResults simulates a few tiny distinct runs once for the whole suite.
var testResults []*core.Result

func results(t *testing.T) []*core.Result {
	t.Helper()
	if testResults == nil {
		for _, cfg := range []core.Config{
			{Benchmark: "gcc", Insts: 5_000},
			{Benchmark: "gcc", Insts: 5_000, DPolicy: access.DSelDMWayPred},
			{Benchmark: "swim", Insts: 5_000, DPolicy: access.DSequential},
		} {
			r, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			testResults = append(testResults, r)
		}
	}
	return testResults
}

func keyOf(t *testing.T, r *core.Result) string {
	t.Helper()
	key, ok := r.Config.Key()
	if !ok {
		t.Fatalf("config has no key: %+v", r.Config)
	}
	return key
}

func fill(t *testing.T, db *DB) []string {
	t.Helper()
	var keys []string
	for _, r := range results(t) {
		key := keyOf(t, r)
		if err := db.Put(key, r); err != nil {
			t.Fatalf("Put: %v", err)
		}
		keys = append(keys, key)
	}
	return keys
}

func TestPutGetRoundTrip(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	keys := fill(t, db)
	if db.Len() != len(keys) {
		t.Errorf("Len = %d, want %d", db.Len(), len(keys))
	}
	for i, r := range results(t) {
		got, found, err := db.Get(keys[i])
		if err != nil || !found {
			t.Fatalf("Get(%q): found=%v err=%v", keys[i], found, err)
		}
		want := *r
		want.Config = want.Config.Canonical()
		if !reflect.DeepEqual(got, &want) {
			t.Errorf("Get(%q) differs from stored result", keys[i])
		}
	}
	if _, found, err := db.Get("no-such-key"); found || err != nil {
		t.Errorf("Get(missing) = found=%v err=%v, want false,nil", found, err)
	}
}

func TestReopenWithAndWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	keys := fill(t, db)
	if err := db.Close(); err != nil { // writes the index snapshot
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexName)); err != nil {
		t.Fatalf("Close left no index: %v", err)
	}

	check := func(label string) {
		t.Helper()
		db, err := Open(dir)
		if err != nil {
			t.Fatalf("%s: Open: %v", label, err)
		}
		defer db.Close()
		if db.Len() != len(keys) {
			t.Errorf("%s: Len = %d, want %d", label, db.Len(), len(keys))
		}
		if got := db.Keys(); !reflect.DeepEqual(got, keys) {
			t.Errorf("%s: Keys = %v, want %v", label, got, keys)
		}
		for _, key := range keys {
			if _, found, err := db.Get(key); !found || err != nil {
				t.Errorf("%s: Get(%q): found=%v err=%v", label, key, found, err)
			}
		}
	}

	check("with index")

	// The index is an optimization only: the store must reopen identically
	// from the log alone (crash before Close never wrote one).
	if err := os.Remove(filepath.Join(dir, IndexName)); err != nil {
		t.Fatal(err)
	}
	check("without index")

	// A corrupt index must be ignored, not trusted.
	if err := os.WriteFile(filepath.Join(dir, IndexName), []byte("WCRIgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	check("corrupt index")
}

func TestStaleIndexCatchesUp(t *testing.T) {
	// Crash pattern: index snapshot from an earlier Close, then more Puts,
	// then no Close. Open must replay the snapshot and scan the rest.
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := results(t)[0]
	if err := db.Put(keyOf(t, first), first); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	keys := fill(t, db) // first key deduplicates; two fresh records
	// Simulate a crash: no Close, index still covers only the first record.
	db.f.Close()

	db, err = Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close()
	if db.Len() != len(keys) {
		t.Errorf("Len after stale-index reopen = %d, want %d", db.Len(), len(keys))
	}
	for _, key := range keys {
		if _, found, err := db.Get(key); !found || err != nil {
			t.Errorf("Get(%q) after stale-index reopen: found=%v err=%v", key, found, err)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	keys := fill(t, db)
	db.f.Close() // crash: no index snapshot

	logPath := filepath.Join(dir, LogName)
	intact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
		want int // surviving records
	}{
		// A write torn mid-record loses only that record.
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-7] }, len(keys) - 1},
		// A flipped byte in the last record fails its checksum.
		{"corrupt tail", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-20] ^= 0xff
			return c
		}, len(keys) - 1},
		// Garbage appended after valid records is dropped.
		{"garbage tail", func(b []byte) []byte { return append(append([]byte(nil), b...), "partial"...) }, len(keys)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// A crash writes no index snapshot; drop any left by a previous
			// subtest's clean Close so recovery exercises the log alone.
			os.Remove(filepath.Join(dir, IndexName))
			if err := os.WriteFile(logPath, tc.mut(append([]byte(nil), intact...)), 0o644); err != nil {
				t.Fatal(err)
			}
			db, err := Open(dir)
			if err != nil {
				t.Fatalf("Open after damage: %v", err)
			}
			if db.Len() != tc.want {
				t.Fatalf("recovered %d records, want %d", db.Len(), tc.want)
			}
			for _, key := range keys[:tc.want] {
				if _, found, err := db.Get(key); !found || err != nil {
					t.Errorf("Get(%q): found=%v err=%v", key, found, err)
				}
			}
			// The store must stay writable after recovery: re-put the lost
			// record and read everything back.
			for i, r := range results(t) {
				if err := db.Put(keys[i], r); err != nil {
					t.Fatalf("Put after recovery: %v", err)
				}
			}
			if db.Len() != len(keys) {
				t.Errorf("Len after refill = %d, want %d", db.Len(), len(keys))
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(dir)
			if err != nil {
				t.Fatalf("final reopen: %v", err)
			}
			defer db.Close()
			for _, key := range keys {
				if _, found, err := db.Get(key); !found || err != nil {
					t.Errorf("final Get(%q): found=%v err=%v", key, found, err)
				}
			}
		})
	}
}

func TestPutIsWriteOnce(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	r := results(t)[0]
	key := keyOf(t, r)
	if err := db.Put(key, r); err != nil {
		t.Fatal(err)
	}
	size1 := db.size
	if err := db.Put(key, r); err != nil {
		t.Fatal(err)
	}
	if db.size != size1 {
		t.Errorf("duplicate Put grew the log from %d to %d bytes", size1, db.size)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	if err := db.Put("", r); err == nil {
		t.Errorf("Put with empty key succeeded")
	}
}

func TestScanOrder(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	keys := fill(t, db)
	var got []string
	err = db.Scan(func(key string, res *core.Result) error {
		if res == nil || res.Cycles() == 0 {
			t.Errorf("Scan(%q) delivered an empty result", key)
		}
		got = append(got, key)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !reflect.DeepEqual(got, keys) {
		t.Errorf("Scan order = %v, want insertion order %v", got, keys)
	}
}

// BenchmarkPut measures appending fresh records (distinct keys, one
// shared payload — the write path is key-independent).
func BenchmarkPut(b *testing.B) {
	r, err := core.Run(core.Config{Benchmark: "gcc", Insts: 5_000})
	if err != nil {
		b.Fatal(err)
	}
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(fmt.Sprintf("bench-key-%d", i), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures reading + decoding one record from the log.
func BenchmarkGet(b *testing.B) {
	r, err := core.Run(core.Config{Benchmark: "gcc", Insts: 5_000})
	if err != nil {
		b.Fatal(err)
	}
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.Put("bench-key", r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := db.Get("bench-key"); !found || err != nil {
			b.Fatalf("found=%v err=%v", found, err)
		}
	}
}

func TestOpenIsExclusive(t *testing.T) {
	// The store is single-writer: a second concurrent Open — even from
	// the same process — must fail rather than corrupt the log.
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatalf("second concurrent Open succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing releases the lock; the next Open proceeds.
	db, err = Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	db.Close()
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("not a result log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Errorf("Open accepted a non-log file")
	}

	dir2 := t.TempDir()
	bad := append([]byte(Magic), 99) // future version
	if err := os.WriteFile(filepath.Join(dir2, LogName), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); err == nil {
		t.Errorf("Open accepted an unknown format version")
	}
}

// TestPutEncodedBulkIngest: canonical payloads computed elsewhere (the
// distributed coordinator's export stream) must land in the log
// byte-for-byte and read back as the identical result.
func TestPutEncodedBulkIngest(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	r := results(t)[0]
	key := keyOf(t, r)
	payload, err := core.EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutEncoded(key, payload); err != nil {
		t.Fatalf("PutEncoded: %v", err)
	}
	got, found, err := db.Get(key)
	if err != nil || !found {
		t.Fatalf("Get after PutEncoded: found=%v err=%v", found, err)
	}
	want := *r
	want.Config = want.Config.Canonical()
	if !reflect.DeepEqual(got, &want) {
		t.Error("PutEncoded round trip differs from the source result")
	}
	// The stored bytes are exactly the provided payload: a Put of the
	// same decoded result must be a no-op (same key), and a fresh encode
	// of the read-back result must reproduce the ingested bytes.
	if err := db.Put(key, got); err != nil {
		t.Fatalf("duplicate Put: %v", err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d after duplicate Put, want 1", db.Len())
	}
	re, err := core.EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(payload) {
		t.Error("read-back result re-encodes to different bytes than the ingested payload")
	}

	// Undecodable payloads must be rejected before touching the log.
	if err := db.PutEncoded("bad-key", []byte("{not json")); err == nil {
		t.Error("PutEncoded accepted an undecodable payload")
	}
	if err := db.PutEncoded("empty-key", nil); err == nil {
		t.Error("PutEncoded accepted an empty payload")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d after rejected ingests, want 1", db.Len())
	}

	// Ingested records survive reopen like any Put record.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, found, err := db2.Get(key); err != nil || !found {
		t.Errorf("reopened Get: found=%v err=%v", found, err)
	}
}
