package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"waycache/internal/isa"
)

// arenaInsts builds a small deterministic stream for capture tests.
func arenaInsts(n int) []Inst {
	insts := make([]Inst, n)
	pc := uint64(0x1000)
	for i := range insts {
		addr := uint64(0x8000 + i*32)
		insts[i] = Inst{PC: pc, Kind: isa.KindLoad, Addr: addr, BaseValue: addr - 4, Offset: 4}
		pc += isa.InstBytes
	}
	return insts
}

func writeTrace(t *testing.T, path string, h Header, insts []Inst) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func drain(src Source) []Inst {
	var out []Inst
	var in Inst
	for src.Next(&in) {
		out = append(out, in)
	}
	return out
}

func TestArenaReplayMatchesReader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wct")
	insts := arenaInsts(500)
	writeTrace(t, path, Header{Benchmark: "x", Seed: 7, Insts: 500}, insts)

	a := NewArena(0)
	src, err := a.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if h := src.Header(); h.Benchmark != "x" || h.Seed != 7 || h.Insts != 500 {
		t.Fatalf("header %+v mangled by arena", h)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, want := drain(src), drain(f)
	if len(got) != len(want) {
		t.Fatalf("arena replayed %d records, reader %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: arena %+v != reader %+v", i, got[i], want[i])
		}
	}
	if src.Err() != nil || f.Err() != nil {
		t.Fatalf("clean trace reported errors: arena %v, reader %v", src.Err(), f.Err())
	}
}

func TestArenaDecodesOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wct")
	writeTrace(t, path, Header{Insts: 100}, arenaInsts(100))

	a := NewArena(0)
	s1, err := a.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same backing array, independent cursors.
	if &s1.insts[0] != &s2.insts[0] {
		t.Fatal("second Load decoded a fresh copy instead of sharing the arena slice")
	}
	var in Inst
	s1.Next(&in)
	if s2.Count() != 0 {
		t.Fatal("cursors are shared between MemSources")
	}
	if a.Len() != 1 || a.Resident() != 100 {
		t.Fatalf("arena holds %d files / %d insts, want 1 / 100", a.Len(), a.Resident())
	}
}

func TestArenaInvalidatesOnRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wct")
	writeTrace(t, path, Header{Insts: 50}, arenaInsts(50))

	a := NewArena(0)
	if _, err := a.Load(path); err != nil {
		t.Fatal(err)
	}
	// Re-capture with different contents (and force a distinct mtime for
	// filesystems with coarse timestamps).
	writeTrace(t, path, Header{Insts: 80}, arenaInsts(80))
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	src, err := a.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(src)); got != 80 {
		t.Fatalf("replayed %d records after rewrite, want 80 (stale cache?)", got)
	}
	if a.Resident() != 80 {
		t.Fatalf("resident %d after invalidation, want 80", a.Resident())
	}
}

func TestArenaCorruptTailParity(t *testing.T) {
	// A truncated trace: the reader fails only when consumption reaches
	// the missing suffix; the arena must replay the same good prefix and
	// surface the identical deferred error through MemSource.Err.
	path := filepath.Join(t.TempDir(), "short.wct")
	writeTrace(t, path, Header{Insts: 100}, arenaInsts(100))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wantInsts := drain(f)
	wantErr := f.Err()
	if wantErr == nil {
		t.Fatal("test setup: truncated trace decoded cleanly")
	}

	a := NewArena(0)
	src, err := a.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(src)); got != len(wantInsts) {
		t.Fatalf("arena replayed %d records, reader %d", got, len(wantInsts))
	}
	if src.Err() == nil || src.Err().Error() != wantErr.Error() {
		t.Fatalf("arena error %v, reader error %v", src.Err(), wantErr)
	}
}

func TestArenaMissingFile(t *testing.T) {
	a := NewArena(0)
	if _, err := a.Load(filepath.Join(t.TempDir(), "absent.wct")); !os.IsNotExist(err) {
		t.Fatalf("missing file error %v, want os.IsNotExist", err)
	}
}

func TestArenaEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	a := NewArena(250) // room for two 100-record files, not three
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, string(rune('a'+i))+".wct")
		writeTrace(t, paths[i], Header{Insts: 100}, arenaInsts(100))
	}
	for _, p := range paths {
		if _, err := a.Load(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.Resident() > 250 {
		t.Fatalf("resident %d exceeds capacity 250", a.Resident())
	}
	if a.Len() != 2 {
		t.Fatalf("arena holds %d files, want 2 after LRU eviction", a.Len())
	}
	// The most recently used file must have survived.
	before := a.Len()
	if _, err := a.Load(paths[2]); err != nil {
		t.Fatal(err)
	}
	if a.Len() != before {
		t.Fatal("most-recently-used file was evicted")
	}
}

func TestArenaConcurrentLoadDecodesOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wct")
	writeTrace(t, path, Header{Insts: 200}, arenaInsts(200))

	a := NewArena(0)
	var wg sync.WaitGroup
	srcs := make([]*MemSource, 16)
	for i := range srcs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, err := a.Load(path)
			if err != nil {
				t.Error(err)
				return
			}
			srcs[i] = src
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, s := range srcs[1:] {
		if &s.insts[0] != &srcs[0].insts[0] {
			t.Fatal("concurrent loads decoded independent copies")
		}
	}
	if a.Resident() != 200 {
		t.Fatalf("resident %d after concurrent loads, want 200 (double-counted?)", a.Resident())
	}
}

func TestArenaDoesNotCacheOpenFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wct")
	if err := os.WriteFile(path, []byte("not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewArena(0)
	for i := 0; i < 3; i++ {
		if _, err := a.Load(path); err == nil {
			t.Fatal("bad-magic file loaded successfully")
		}
	}
	if a.Len() != 0 {
		t.Fatalf("arena caches %d failed entries, want 0 (open failures must be retried)", a.Len())
	}
	// The same path becomes loadable once the file is repaired.
	writeTrace(t, path, Header{Insts: 10}, arenaInsts(10))
	if _, err := a.Load(path); err != nil {
		t.Fatalf("repaired file still fails: %v", err)
	}
}

func TestArenaHugeDeclaredCountBounded(t *testing.T) {
	// A corrupt header declaring an absurd instruction count must not
	// drive the preallocation: the file itself bounds it.
	path := filepath.Join(t.TempDir(), "huge.wct")
	writeTrace(t, path, Header{Insts: 0}, arenaInsts(5)) // undeclared count
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode with a huge declared count by writing a fresh header and
	// splicing the original records behind it.
	var hdr bytes.Buffer
	w, err := NewWriter(&hdr, Header{Insts: 1 << 50})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Close() // flushes the header; the declared-count error is expected
	var empty bytes.Buffer
	we, err := NewWriter(&empty, Header{Insts: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := we.Close(); err != nil {
		t.Fatal(err)
	}
	body := raw[empty.Len():]
	if err := os.WriteFile(path, append(hdr.Bytes(), body...), 0o644); err != nil {
		t.Fatal(err)
	}

	a := NewArena(0)
	src, err := a.Load(path) // must not attempt a 2^50-entry allocation
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(src)); got != 5 {
		t.Fatalf("replayed %d records, want 5", got)
	}
	if src.Err() == nil {
		t.Fatal("short file with huge declared count decoded cleanly")
	}
}
