package trace

import (
	"testing"
	"testing/quick"

	"waycache/internal/isa"
)

func TestXORHandleExactWithoutCarries(t *testing.T) {
	// When base + offset produces no carries (offset bits disjoint from
	// base bits), XOR equals ADD, so the handle is the true address.
	in := Inst{Kind: isa.KindLoad, BaseValue: 0x1000_0000, Offset: 0x40}
	in.Addr = in.BaseValue + uint64(int64(in.Offset))
	if in.XORHandle() != in.Addr {
		t.Fatalf("XORHandle = %#x, want %#x", in.XORHandle(), in.Addr)
	}
}

func TestXORHandleDiffersWithCarries(t *testing.T) {
	in := Inst{Kind: isa.KindLoad, BaseValue: 0xFFF8, Offset: 0x10}
	in.Addr = in.BaseValue + uint64(int64(in.Offset))
	if in.XORHandle() == in.Addr {
		t.Fatal("carry case should make XOR approximation differ from the address")
	}
}

func TestXORHandleNegativeOffset(t *testing.T) {
	in := Inst{Kind: isa.KindLoad, BaseValue: 0x2000, Offset: -8}
	in.Addr = in.BaseValue + uint64(int64(in.Offset))
	if in.Addr != 0x1FF8 {
		t.Fatalf("address arithmetic wrong: %#x", in.Addr)
	}
	// Handle is well defined (no panic, deterministic).
	se := uint64(int64(in.Offset))
	if in.XORHandle() != in.BaseValue^se {
		t.Fatal("handle of negative offset mismatch")
	}
}

func TestXORHandleProperty(t *testing.T) {
	// Property: handle equals address iff base AND sign-extended offset
	// share no set bits (no carries in the add).
	f := func(base uint64, off int32) bool {
		in := Inst{BaseValue: base, Offset: off}
		in.Addr = base + uint64(int64(off))
		se := uint64(int64(off))
		noCarry := base&se == 0
		return (in.XORHandle() == in.Addr) == noCarry || !noCarry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPC(t *testing.T) {
	br := Inst{PC: 0x400000, Kind: isa.KindBranch, Taken: true, Target: 0x400100}
	if br.NextPC() != 0x400100 {
		t.Fatalf("taken branch NextPC = %#x", br.NextPC())
	}
	br.Taken = false
	if br.NextPC() != 0x400000+isa.InstBytes {
		t.Fatalf("not-taken branch NextPC = %#x", br.NextPC())
	}
	alu := Inst{PC: 0x400000, Kind: isa.KindIntALU, Taken: true, Target: 0x123}
	if alu.NextPC() != 0x400000+isa.InstBytes {
		t.Fatal("non-control instruction must fall through even if Taken is set")
	}
}

func TestSliceSource(t *testing.T) {
	src := &SliceSource{Insts: []Inst{{PC: 1}, {PC: 2}, {PC: 3}}}
	var got []uint64
	var in Inst
	for src.Next(&in) {
		got = append(got, in.PC)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("SliceSource replay = %v", got)
	}
	if src.Next(&in) {
		t.Fatal("exhausted source returned true")
	}
	src.Reset()
	if !src.Next(&in) || in.PC != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	src := &SliceSource{Insts: make([]Inst, 100)}
	lim := NewLimit(src, 7)
	var in Inst
	n := 0
	for lim.Next(&in) {
		n++
	}
	if n != 7 {
		t.Fatalf("Limit yielded %d instructions, want 7", n)
	}
}

func TestRepeat(t *testing.T) {
	src := &Repeat{Insts: []Inst{{PC: 1}, {PC: 2}}, Times: 3}
	var got []uint64
	var in Inst
	for src.Next(&in) {
		got = append(got, in.PC)
	}
	if len(got) != 6 {
		t.Fatalf("Repeat yielded %d instructions, want 6", len(got))
	}
	if got[0] != 1 || got[5] != 2 {
		t.Fatalf("sequence = %v", got)
	}
}

func TestRepeatForever(t *testing.T) {
	src := &Repeat{Insts: []Inst{{PC: 7}}}
	var in Inst
	for i := 0; i < 10000; i++ {
		if !src.Next(&in) || in.PC != 7 {
			t.Fatal("unbounded Repeat ended early")
		}
	}
}

func TestRepeatEmpty(t *testing.T) {
	src := &Repeat{}
	var in Inst
	if src.Next(&in) {
		t.Fatal("empty Repeat returned an instruction")
	}
}
