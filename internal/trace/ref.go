package trace

// Content-addressed trace references. A trace's identity is the SHA-256
// of its canonical .wct bytes, written "trace://<64 hex digits>". The
// reference is host-independent — the same hash names the same bytes on
// every machine — which is what lets it enter memoization keys durably
// (core.Config.Key) and travel through job submissions without leaking
// host-local paths. internal/tracestore maps hashes to local files;
// Arena.LoadRef replays them with the hash verified against the bytes.

import "strings"

// RefScheme prefixes a content-addressed trace reference.
const RefScheme = "trace://"

// HashHexLen is the length of a lowercase-hex SHA-256 trace hash.
const HashHexLen = 64

// ValidHash reports whether s is a well-formed trace content hash:
// exactly 64 lowercase hex digits. Uppercase is rejected so every hash
// has one spelling and string equality is identity.
func ValidHash(s string) bool {
	if len(s) != HashHexLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseRef extracts the content hash from a "trace://<hash>" reference.
// ok is false for anything else — including file paths, which callers
// treat as ordinary .wct locations.
func ParseRef(s string) (hash string, ok bool) {
	if !strings.HasPrefix(s, RefScheme) {
		return "", false
	}
	h := s[len(RefScheme):]
	if !ValidHash(h) {
		return "", false
	}
	return h, true
}

// FormatRef renders a content hash as a trace:// reference.
func FormatRef(hash string) string { return RefScheme + hash }

// ShortHash abbreviates a content hash for log and error messages.
func ShortHash(hash string) string {
	if len(hash) > 12 {
		return hash[:12] + "…"
	}
	return hash
}
