package trace_test

import (
	"bytes"
	"fmt"
	"log"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

// ExampleWriter captures a three-instruction stream into the on-disk trace
// format and reads it back, demonstrating a lossless round trip.
func ExampleWriter() {
	insts := []trace.Inst{
		{PC: 0x1000, Kind: isa.KindLoad, Dst: 1,
			Addr: 0x60_0008, BaseValue: 0x60_0000, Offset: 8},
		{PC: 0x1004, Kind: isa.KindIntALU, Dst: 2, Src1: 1},
		{PC: 0x1008, Kind: isa.KindBranch, Src1: 2, Taken: true, Target: 0x1000},
	}

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{
		Benchmark: "demo", Seed: 42, Insts: int64(len(insts)),
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		log.Fatal(err)
	}
	h := r.Header()
	fmt.Printf("%s seed=%d insts=%d\n", h.Benchmark, h.Seed, h.Insts)
	var in trace.Inst
	for r.Next(&in) {
		fmt.Printf("%#x %s\n", in.PC, in.Kind)
	}
	if r.Err() != nil {
		log.Fatal(r.Err())
	}
	// Output:
	// demo seed=42 insts=3
	// 0x1000 load
	// 0x1004 ialu
	// 0x1008 br
}

// ExampleReader replays a captured trace as a trace.Source: any consumer
// of the Source interface (the pipeline, core.Run, the sweep engine) runs
// identically from a file or a live generator.
func ExampleReader() {
	// Capture a little stream to a buffer (stand-in for a .wct file).
	var buf bytes.Buffer
	src := &trace.SliceSource{Insts: []trace.Inst{
		{PC: 0x2000, Kind: isa.KindLoad, Dst: 1, Addr: 0x60_0000, BaseValue: 0x60_0000},
		{PC: 0x2004, Kind: isa.KindStore, Src2: 1, Addr: 0x70_0000, BaseValue: 0x70_0000},
	}}
	if _, err := trace.Capture(&buf, trace.Header{Benchmark: "demo", Insts: 2}, src); err != nil {
		log.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		log.Fatal(err)
	}
	var replayed trace.Source = r // a Reader is a Source
	var in trace.Inst
	for replayed.Next(&in) {
		fmt.Printf("%s addr=%#x\n", in.Kind, in.Addr)
	}
	if r.Err() != nil {
		log.Fatal(r.Err())
	}
	// Output:
	// load addr=0x600000
	// store addr=0x700000
}
