// Package trace defines the dynamic instruction record produced by workload
// generators and consumed by the timing pipeline.
//
// A trace is the moral equivalent of a SimpleScalar sim-outorder dynamic
// stream: each record carries the architectural information timing and
// energy models need, and nothing else.
//
// Streams flow through the Source interface, which live workload walkers,
// in-memory test sources, and replayed capture files all implement. The
// on-disk capture format (file.go: Writer, Reader, Capture, Open; spec in
// docs/TRACE_FORMAT.md) is versioned and varint-delta-compressed, so
// sweeps replay recorded workloads byte-identically without re-walking
// the generators. Hot replay paths go through the process-wide Arena
// (arena.go), which decodes each capture once into a shared []Inst and
// replays it by index (MemSource), so an N-config sweep pays one decode
// per file instead of one per simulation.
package trace

import "waycache/internal/isa"

// Inst is one dynamic instruction.
//
// For loads and stores, Addr is the effective data address and BaseValue /
// Offset satisfy Addr == BaseValue + uint64(Offset) (two's complement).
// The XOR-based way predictor forms its approximate handle as
// BaseValue ^ uint64(Offset), exactly as proposed by Austin & Sohi and used
// by Calder, Grunwald & Emer; whether that approximation lands in the same
// predictor entry as the true address is decided by real carry behaviour,
// not by a modelled accuracy constant.
//
// For control transfers, Taken and Target describe the actual outcome, which
// the front end compares against its prediction.
type Inst struct {
	PC   uint64
	Kind isa.Kind

	// Register dependences. Src registers equal to isa.RegZero carry no
	// dependence. Dst equal to isa.RegZero means no register is written.
	Dst  isa.Reg
	Src1 isa.Reg
	Src2 isa.Reg

	// Memory payload (loads and stores).
	Addr      uint64
	BaseValue uint64
	Offset    int32

	// Control payload.
	Taken  bool
	Target uint64
}

// XORHandle returns the approximate-address handle used by XOR-based way
// prediction: the load's base register value XORed with its sign-extended
// immediate offset. For addresses where base+offset generates no carries
// into the index bits this equals the true effective address.
func (in *Inst) XORHandle() uint64 {
	return in.BaseValue ^ uint64(int64(in.Offset))
}

// FallThrough returns the next sequential PC.
func (in *Inst) FallThrough() uint64 { return in.PC + isa.InstBytes }

// NextPC returns the architecturally correct next PC.
func (in *Inst) NextPC() uint64 {
	if in.Kind.IsControl() && in.Taken {
		return in.Target
	}
	return in.FallThrough()
}

// Source produces a dynamic instruction stream.
//
// Next fills *out and returns true, or returns false when the stream is
// exhausted. Implementations must be deterministic for a fixed construction
// seed.
type Source interface {
	Next(out *Inst) bool
}

// WindowSource is an optional Source extension for in-memory streams: the
// consumer may inspect a contiguous prefix of the remaining instructions
// without copying them and consume any leading part of it in one step.
// Batch consumers (the pipeline's front end) read whole fetch strides
// straight out of the window instead of pulling one 72-byte record per
// Next call.
//
// Window returns a non-empty contiguous prefix of the remaining stream, or
// an empty slice when the source is drained; it does not consume anything.
// Advance consumes the first n instructions of the most recent Window.
// The returned slice is valid until the next Window or Next call, and must
// not be modified. Interleaving Next with Window/Advance is allowed; both
// views observe the same position. A WindowSource must yield exactly the
// instruction sequence its Next method would.
type WindowSource interface {
	Source
	Window() []Inst
	Advance(n int)
}

// SliceSource replays a fixed slice of instructions. It is primarily a test
// helper but is also useful for user-supplied traces.
type SliceSource struct {
	Insts []Inst
	pos   int
}

// Next implements Source.
func (s *SliceSource) Next(out *Inst) bool {
	if s.pos >= len(s.Insts) {
		return false
	}
	*out = s.Insts[s.pos]
	s.pos++
	return true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Window implements WindowSource: the unconsumed tail of the slice.
func (s *SliceSource) Window() []Inst {
	if s.pos >= len(s.Insts) {
		return nil
	}
	return s.Insts[s.pos:]
}

// Advance implements WindowSource.
func (s *SliceSource) Advance(n int) { s.pos += n }

// Repeat replays a fixed slice of instructions Times times (0 means
// forever). Because the PCs repeat, caches and predictors warm up after the
// first pass — convenient for timing tests that should not be dominated by
// compulsory misses.
type Repeat struct {
	Insts []Inst
	Times int

	pos  int
	done int
}

// Next implements Source.
func (r *Repeat) Next(out *Inst) bool {
	if len(r.Insts) == 0 {
		return false
	}
	if r.pos >= len(r.Insts) {
		r.pos = 0
		r.done++
		if r.Times > 0 && r.done >= r.Times {
			return false
		}
	}
	*out = r.Insts[r.pos]
	r.pos++
	return true
}

// Window implements WindowSource: the remainder of the current pass. A new
// pass begins — and the Times budget is charged — exactly when Next would
// have wrapped.
func (r *Repeat) Window() []Inst {
	if len(r.Insts) == 0 {
		return nil
	}
	if r.pos >= len(r.Insts) {
		r.pos = 0
		r.done++
		if r.Times > 0 && r.done >= r.Times {
			return nil
		}
	}
	return r.Insts[r.pos:]
}

// Advance implements WindowSource.
func (r *Repeat) Advance(n int) { r.pos += n }

// Buffered adapts a plain Source into a WindowSource by generating ahead
// into a fixed buffer: Window exposes the buffered run, and a drained
// buffer refills with one batch of Next calls. Live generators (workload
// walkers) produce their stream independently of the consumer's timing, so
// buffering ahead yields the identical sequence — it just lets the
// pipeline's batch fetch path read it in place instead of pulling one
// record per call.
type Buffered struct {
	Src Source

	buf []Inst
	pos int
	n   int
}

// NewBuffered wraps src with a window buffer of cap instructions.
func NewBuffered(src Source, cap int) *Buffered {
	return &Buffered{Src: src, buf: make([]Inst, cap)}
}

// Windowed returns a WindowSource view of src: src itself when it already
// exposes windows, otherwise src behind a window buffer of cap
// instructions.
func Windowed(src Source, cap int) WindowSource {
	if ws, ok := src.(WindowSource); ok {
		return ws
	}
	return NewBuffered(src, cap)
}

// Next implements Source.
func (b *Buffered) Next(out *Inst) bool {
	if b.pos >= b.n && !b.refill() {
		return false
	}
	*out = b.buf[b.pos]
	b.pos++
	return true
}

// Window implements WindowSource.
func (b *Buffered) Window() []Inst {
	if b.pos >= b.n && !b.refill() {
		return nil
	}
	return b.buf[b.pos:b.n]
}

// Advance implements WindowSource.
func (b *Buffered) Advance(n int) { b.pos += n }

func (b *Buffered) refill() bool {
	b.pos, b.n = 0, 0
	for b.n < len(b.buf) && b.Src.Next(&b.buf[b.n]) {
		b.n++
	}
	return b.n > 0
}

// Limit wraps a Source and stops after n instructions.
type Limit struct {
	Src Source
	N   int64

	seen int64
}

// NewLimit returns a Source that yields at most n instructions from src.
// When src is a WindowSource the returned limiter is one too, exposing the
// underlying windows truncated to the remaining budget — wrapping an
// in-memory replay in a Limit keeps the batch fetch path intact.
func NewLimit(src Source, n int64) Source {
	if ws, ok := src.(WindowSource); ok {
		return &WindowLimit{Limit: Limit{Src: src, N: n}, ws: ws}
	}
	return &Limit{Src: src, N: n}
}

// Next implements Source.
func (l *Limit) Next(out *Inst) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Src.Next(out) {
		return false
	}
	l.seen++
	return true
}

// WindowLimit is a Limit over a WindowSource: windows come straight from
// the underlying source, cut to the instructions the budget still allows.
// NewLimit constructs it automatically; both views share one position.
type WindowLimit struct {
	Limit
	ws WindowSource
}

// Window implements WindowSource.
func (l *WindowLimit) Window() []Inst {
	if l.seen >= l.N {
		return nil
	}
	w := l.ws.Window()
	if rem := l.N - l.seen; int64(len(w)) > rem {
		w = w[:rem]
	}
	return w
}

// Advance implements WindowSource.
func (l *WindowLimit) Advance(n int) {
	l.ws.Advance(n)
	l.seen += int64(n)
}
