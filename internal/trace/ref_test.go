package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRef(t *testing.T) {
	h := strings.Repeat("ab", 32)
	cases := []struct {
		in   string
		hash string
		ok   bool
	}{
		{RefScheme + h, h, true},
		{h, "", false},                              // bare hash: not a ref
		{"traces/gcc.wct", "", false},               // ordinary path
		{RefScheme + strings.ToUpper(h), "", false}, // one spelling per hash
		{RefScheme + h[:63], "", false},             // short
		{RefScheme + h + "0", "", false},            // long
		{RefScheme + h[:63] + "g", "", false},       // non-hex
		{RefScheme, "", false},
		{"", "", false},
	}
	for _, c := range cases {
		hash, ok := ParseRef(c.in)
		if hash != c.hash || ok != c.ok {
			t.Errorf("ParseRef(%q) = (%q, %v), want (%q, %v)", c.in, hash, ok, c.hash, c.ok)
		}
	}
	if got := FormatRef(h); got != RefScheme+h {
		t.Errorf("FormatRef = %q", got)
	}
	if round, ok := ParseRef(FormatRef(h)); !ok || round != h {
		t.Errorf("FormatRef/ParseRef round trip lost the hash: (%q, %v)", round, ok)
	}
}

func hashFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestArenaLoadRefSharesAcrossPaths(t *testing.T) {
	dir := t.TempDir()
	insts := arenaInsts(120)
	p1 := filepath.Join(dir, "a", "gcc.wct")
	p2 := filepath.Join(dir, "b", "copy.wct")
	for _, p := range []string{p1, p2} {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		writeTrace(t, p, Header{Benchmark: "gcc", Insts: 120}, insts)
	}
	hash := hashFile(t, p1)

	a := NewArena(0)
	s1, err := a.LoadRef(p1, hash)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.LoadRef(p2, hash)
	if err != nil {
		t.Fatal(err)
	}
	if &s1.insts[0] != &s2.insts[0] {
		t.Fatal("same hash at two paths decoded twice; hash key should share the decode")
	}
	if a.Len() != 1 || a.Resident() != 120 {
		t.Fatalf("arena holds %d entries / %d insts, want 1 / 120", a.Len(), a.Resident())
	}
	if got := drain(s1); len(got) != 120 || got[0] != insts[0] {
		t.Fatalf("replay returned %d records", len(got))
	}

	// A path-keyed Load of the same file is a distinct entry: the hash key
	// carries a verification guarantee the path key does not.
	if _, err := a.Load(p1); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("arena holds %d entries after Load+LoadRef, want 2", a.Len())
	}
}

func TestArenaLoadRefRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wct")
	writeTrace(t, path, Header{Insts: 30}, arenaInsts(30))
	wrong := strings.Repeat("00", 32)

	a := NewArena(0)
	if _, err := a.LoadRef(path, wrong); err == nil {
		t.Fatal("LoadRef accepted bytes that do not hash to the reference")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatch error %q does not say so", err)
	}
	if a.Len() != 0 {
		t.Fatal("failed verification left a cached entry")
	}

	// The failure must not be sticky: once the right bytes land at the
	// path, the same hash loads.
	right := hashFile(t, path)
	if _, err := a.LoadRef(path, right); err != nil {
		t.Fatalf("LoadRef after earlier mismatch: %v", err)
	}
}

func TestArenaLoadRefIgnoresStaleOverwrite(t *testing.T) {
	// An overwrite that preserves size and mtime defeats the path key's
	// stat heuristic; under a hash key the first load pinned the verified
	// content, and a *new* hash for the new content reads the new bytes.
	path := filepath.Join(t.TempDir(), "x.wct")
	writeTrace(t, path, Header{Insts: 40}, arenaInsts(40))
	h1 := hashFile(t, path)

	a := NewArena(0)
	s1, err := a.LoadRef(path, h1)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(s1)

	// Overwrite with different content of identical length, restoring mtime.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	alt := arenaInsts(40)
	for i := range alt {
		alt[i].Addr += 8
		alt[i].BaseValue += 8
	}
	writeTrace(t, path, Header{Insts: 40}, alt)
	if err := os.Chtimes(path, fi.ModTime(), fi.ModTime()); err != nil {
		t.Fatal(err)
	}
	h2 := hashFile(t, path)
	if h2 == h1 {
		t.Fatal("test bug: overwrite produced identical bytes")
	}

	s1b, err := a.LoadRef(path, h1)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(s1b); len(got) != len(first) || got[0] != first[0] {
		t.Fatal("hash-keyed entry changed content after an overwrite")
	}
	s2, err := a.LoadRef(path, h2)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(s2); got[0].Addr != first[0].Addr+8 {
		t.Fatal("new hash did not read the new bytes")
	}
	if a.Len() != 2 {
		t.Fatalf("arena holds %d entries, want 2 (one per hash)", a.Len())
	}
}

func TestArenaLoadRefInvalidHash(t *testing.T) {
	a := NewArena(0)
	if _, err := a.LoadRef("whatever.wct", "nothex"); err == nil {
		t.Fatal("LoadRef accepted a malformed hash")
	}
}

func TestShortHash(t *testing.T) {
	h := strings.Repeat("ab", 32)
	if got := ShortHash(h); got != "abababababab…" {
		t.Errorf("ShortHash = %q", got)
	}
	if got := ShortHash("abc"); got != "abc" {
		t.Errorf("ShortHash(short) = %q", got)
	}
}
