package trace

import (
	"bytes"
	"testing"

	"waycache/internal/isa"
)

// FuzzTraceReader throws arbitrary bytes at the .wct decoder. A reader
// fed garbage must fail cleanly (error, never panic); and whenever it
// decodes a stream cleanly, the decoded records must re-encode through
// Writer — the reader's flag validation guarantees every accepted
// record is one the writer could have produced — and decode again to
// the identical instruction sequence.
func FuzzTraceReader(f *testing.F) {
	// Seed: a well-formed capture touching every record class (compute,
	// zero- and nonzero-offset memory, control with and without PC
	// discontinuities) so the fuzzer starts inside the grammar.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Benchmark: "fuzz-seed", Seed: 7, Insts: 5})
	if err != nil {
		f.Fatal(err)
	}
	for _, in := range []Inst{
		{PC: 0x1000, Kind: isa.KindIntALU, Dst: 1, Src1: 2, Src2: 3},
		{PC: 0x1000 + isa.InstBytes, Kind: isa.KindLoad, Addr: 0x2000, BaseValue: 0x2000},
		{PC: 0x1000 + 2*isa.InstBytes, Kind: isa.KindStore, Addr: 0x2040, BaseValue: 0x2038, Offset: 8},
		{PC: 0x1000 + 3*isa.InstBytes, Kind: isa.KindBranch, Taken: true, Target: 0x1000},
		{PC: 0x1000, Kind: isa.KindJump, Taken: true, Target: 0x3000},
	} {
		if err := w.Write(&in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // truncated mid-record
	f.Add([]byte(Magic))      // magic without version or header
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: the only requirement is no panic
		}
		h := r.Header()
		var insts []Inst
		var in Inst
		for r.Next(&in) {
			insts = append(insts, in)
		}
		if r.Err() != nil {
			return // corrupt tail after a valid prefix: clean failure is enough
		}

		var reenc bytes.Buffer
		w, err := NewWriter(&reenc, Header{Benchmark: h.Benchmark, Seed: h.Seed, Insts: int64(len(insts))})
		if err != nil {
			t.Fatal(err)
		}
		for i := range insts {
			if err := w.Write(&insts[i]); err != nil {
				t.Fatalf("record %d decoded from a valid trace was rejected on re-encode: %v", i, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(bytes.NewReader(reenc.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace has an unreadable header: %v", err)
		}
		for i := range insts {
			var got Inst
			if !r2.Next(&got) {
				t.Fatalf("re-encoded trace ends at record %d of %d: %v", i, len(insts), r2.Err())
			}
			if got != insts[i] {
				t.Fatalf("record %d changed across a decode/encode round trip:\n  was %+v\n  got %+v", i, insts[i], got)
			}
		}
	})
}
