package trace

// The trace arena: a process-wide cache of fully decoded trace files.
//
// A design-space sweep replays the same few <benchmark>.wct captures for
// every grid cell, and before the arena each cell paid the full streaming
// decode (varint parsing, per-record validation) again. The arena decodes
// each file once into a shared []Inst and hands every simulation an
// index-replay MemSource over that slice, so an N-config grid decodes each
// capture once instead of N/gridsize times — and replay becomes a pure
// pointer walk with no per-instruction decode on the simulation hot path.
//
// Replay semantics are contractually identical to streaming the file with
// Reader: the same instructions in the same order, and the same errors
// surfaced at the same consumption points (a decode error beyond the range
// a run consumes stays invisible to that run, exactly as it would be to a
// Limit-bounded Reader). The determinism gate and the replay tests hold
// the two paths byte-identical.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// DefaultArenaCap bounds the shared arena's resident instructions
// (~64 bytes each, so the default keeps roughly 1 GB of decoded traces).
// Long-lived processes (waycached) sweep many grids over the same handful
// of captures; least-recently-used files are evicted past the cap.
const DefaultArenaCap = 16 << 20

// Arena caches decoded trace files. Path-keyed entries (Load) are
// invalidated when the file's size or modification time changes, so a
// re-captured trace is re-decoded rather than served stale. Hash-keyed
// entries (LoadRef) are content-addressed: the key IS the content, so the
// same trace fetched to different paths decodes once, and the decode
// verifies the bytes against the hash — an overwrite that preserves size
// and mtime can never serve stale instructions under a hash key. The zero
// value is not usable; use NewArena or the process-wide SharedArena.
type Arena struct {
	mu       sync.Mutex
	entries  map[string]*arenaEntry
	capAt    int64 // maximum resident instructions; <= 0 means unbounded
	resident int64
	tick     int64 // LRU clock
}

type arenaEntry struct {
	once  sync.Once
	size  int64
	mtime time.Time

	h         Header
	insts     []Inst
	openErr   error // open/header failure: the whole load failed
	decodeErr error // record-stream failure after len(insts) good records
	lastUse   int64
}

// NewArena returns an arena bounded to capInsts resident instructions
// (<= 0 means unbounded).
func NewArena(capInsts int64) *Arena {
	return &Arena{entries: make(map[string]*arenaEntry), capAt: capInsts}
}

var shared = NewArena(DefaultArenaCap)

// SharedArena returns the process-wide arena used by core.Config.Trace
// replay.
func SharedArena() *Arena { return shared }

// Load returns a MemSource replaying the decoded contents of the trace
// file at path, decoding it at most once per (path, size, mtime) across
// all concurrent callers. Open and header errors are returned exactly as
// Open would return them; mid-stream decode errors are deferred to the
// MemSource so a run that never reaches the corrupt suffix never sees
// them (matching the streaming Reader).
func (a *Arena) Load(path string) (*MemSource, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	a.mu.Lock()
	e := a.entries[path]
	if e == nil || e.size != fi.Size() || !e.mtime.Equal(fi.ModTime()) {
		if e != nil && e.lastUse != 0 {
			a.resident -= int64(len(e.insts)) // re-captured file: drop the stale decode
		}
		e = &arenaEntry{size: fi.Size(), mtime: fi.ModTime()}
		a.entries[path] = e
	}
	a.mu.Unlock()

	e.once.Do(func() { e.decode(path, "") })
	return a.finish(path, e)
}

// LoadRef returns a MemSource replaying the trace whose canonical bytes
// hash (SHA-256, lowercase hex) to sha256hex, reading them from path on
// first use. The entry is keyed by the content hash, not the path: the
// same trace fetched to different paths on different hosts — or to a
// store object and a scratch copy on one host — decodes exactly once, and
// a later caller naming a different path for the same hash shares the
// decode. The file's bytes are hashed while decoding and a mismatch is an
// error, so content served under a hash is always the content the hash
// names — no (size, mtime) heuristic is involved, and an overwrite that
// preserves both cannot serve stale instructions.
func (a *Arena) LoadRef(path, sha256hex string) (*MemSource, error) {
	if !ValidHash(sha256hex) {
		return nil, fmt.Errorf("trace: invalid content hash %q", sha256hex)
	}
	key := "sha256:" + sha256hex

	a.mu.Lock()
	e := a.entries[key]
	if e == nil {
		e = &arenaEntry{}
		a.entries[key] = e
	}
	a.mu.Unlock()

	e.once.Do(func() { e.decode(path, sha256hex) })
	return a.finish(key, e)
}

// finish applies the shared post-decode bookkeeping for the entry cached
// under key: open failures are uncached (transient errors must not poison
// the key for the life of the process), successful first uses are charged
// to the resident count, and the LRU clock advances.
func (a *Arena) finish(key string, e *arenaEntry) (*MemSource, error) {
	if e.openErr != nil {
		a.mu.Lock()
		if a.entries[key] == e {
			delete(a.entries, key)
		}
		a.mu.Unlock()
		return nil, e.openErr
	}

	a.mu.Lock()
	a.tick++
	// Account the footprint only while the entry is still the mapped one:
	// a re-capture may have replaced it mid-decode, and charging a
	// resident count evictLocked can no longer reach would inflate it
	// forever.
	if a.entries[key] == e {
		if e.lastUse == 0 { // first successful use: account its footprint
			a.resident += int64(len(e.insts))
		}
		e.lastUse = a.tick
		a.evictLocked()
	}
	a.mu.Unlock()

	return &MemSource{insts: e.insts, h: e.h, decodeErr: e.decodeErr}, nil
}

// decode slurps the whole file through the canonical Reader. A non-empty
// wantHash makes the decode content-verified: every byte of the file is
// fed through SHA-256 on the way in, and a final digest that differs from
// wantHash turns the whole load into an open error — nothing is cached or
// served under a hash the bytes do not carry.
func (e *arenaEntry) decode(path, wantHash string) {
	raw, err := os.Open(path)
	if err != nil {
		e.openErr = err
		return
	}
	defer raw.Close()

	sum := sha256.New()
	var src io.Reader = raw
	if wantHash != "" {
		src = io.TeeReader(raw, sum)
	}
	r, err := NewReader(src)
	if err != nil {
		e.openErr = err
		return
	}
	e.h = r.Header()
	// Preallocate from the declared count, but never trust it past what
	// the file could physically hold (records are at least one byte): a
	// corrupt header must not drive a huge allocation.
	size := e.size
	if size == 0 {
		if fi, err := raw.Stat(); err == nil {
			size = fi.Size()
		}
	}
	if n := e.h.Insts; n > 0 {
		if n > size {
			n = size
		}
		e.insts = make([]Inst, 0, n)
	}
	var in Inst
	for r.Next(&in) {
		e.insts = append(e.insts, in)
	}
	e.decodeErr = r.Err()

	if wantHash != "" {
		// The Reader stops at the declared record count; any trailing
		// bytes are still part of the content the hash names, so drain
		// them through the tee before comparing digests.
		if _, err := io.Copy(io.Discard, src); err != nil {
			e.openErr = fmt.Errorf("trace: reading %s for hash verification: %w", path, err)
			e.insts, e.decodeErr = nil, nil
			return
		}
		if got := hex.EncodeToString(sum.Sum(nil)); got != wantHash {
			e.openErr = fmt.Errorf("trace: %s content mismatch: bytes hash to %s, reference names %s",
				path, ShortHash(got), ShortHash(wantHash))
			e.insts, e.decodeErr = nil, nil
			return
		}
	}
}

// evictLocked drops least-recently-used entries until the arena is within
// its capacity. Outstanding MemSources keep their slices alive; eviction
// only forgets the cache mapping.
func (a *Arena) evictLocked() {
	if a.capAt <= 0 {
		return
	}
	for a.resident > a.capAt && len(a.entries) > 1 {
		var oldPath string
		var old *arenaEntry
		for p, e := range a.entries {
			if e.lastUse == 0 {
				continue // still decoding or failed: no footprint yet
			}
			if old == nil || e.lastUse < old.lastUse {
				oldPath, old = p, e
			}
		}
		if old == nil || old.lastUse == a.tick {
			return // nothing evictable but the entry just used
		}
		a.resident -= int64(len(old.insts))
		delete(a.entries, oldPath)
	}
}

// Len returns the number of cached files (testing/inspection).
func (a *Arena) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}

// Resident returns the number of resident decoded instructions.
func (a *Arena) Resident() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resident
}

// MemSource replays a decoded instruction slice by index: the Source the
// arena hands each simulation. Next is a bounds check and a struct copy —
// no I/O, no decoding, no allocation.
type MemSource struct {
	insts     []Inst
	pos       int
	h         Header
	decodeErr error
}

// NewMemSource returns a MemSource over insts with header h (primarily for
// tests; arena Load is the production constructor).
func NewMemSource(insts []Inst, h Header) *MemSource {
	return &MemSource{insts: insts, h: h}
}

// Next implements Source.
//
//wclint:hotpath
func (m *MemSource) Next(out *Inst) bool {
	if m.pos >= len(m.insts) {
		return false
	}
	*out = m.insts[m.pos]
	m.pos++
	return true
}

// Window implements WindowSource: the entire unconsumed remainder of the
// decoded trace, straight out of the shared arena slice — the batch fetch
// path reads fetch strides from it without any per-instruction copy.
//
//wclint:hotpath
func (m *MemSource) Window() []Inst {
	if m.pos >= len(m.insts) {
		return nil
	}
	return m.insts[m.pos:]
}

// Advance implements WindowSource.
//
//wclint:hotpath
func (m *MemSource) Advance(n int) { m.pos += n }

// Header returns the file header of the backing trace.
func (m *MemSource) Header() Header { return m.h }

// Count returns the number of records replayed so far.
func (m *MemSource) Count() int64 { return int64(m.pos) }

// Remaining returns the number of records left to replay.
func (m *MemSource) Remaining() int64 { return int64(len(m.insts) - m.pos) }

// Err returns the decode error the backing file carries beyond the records
// Next can reach, or nil for a clean trace. A consumer that drained fewer
// records than it needed must consult Err to distinguish a short trace
// from a corrupt one — the same contract as Reader.Err after Next returns
// false.
func (m *MemSource) Err() error { return m.decodeErr }

// Reset rewinds the source to the beginning.
func (m *MemSource) Reset() { m.pos = 0 }
