package trace

// Trace files: a versioned, varint-delta-compressed binary encoding of
// Inst streams, so sweeps and experiments can replay captured workloads
// instead of re-walking the synthetic generators (and so external tools
// can feed the simulator recorded streams of their own). The byte-level
// format is specified in docs/TRACE_FORMAT.md; Writer and Reader are the
// canonical implementations of that spec.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"waycache/internal/isa"
)

// Magic identifies a waycache trace file. It is followed by a one-byte
// format version.
const Magic = "WCTR"

// FormatVersion is the record-encoding version this package writes.
// Readers accept exactly this version: the version byte governs the
// record encoding, while header fields are tagged and length-prefixed so
// adding header fields does not require a version bump (old readers skip
// tags they do not know).
const FormatVersion = 1

// FileExt is the conventional extension for captured trace files. The
// sweep engine resolves benchmark names against <dir>/<benchmark>.wct.
const FileExt = ".wct"

// Header describes a captured trace. It is written after the magic and
// version and returned by Reader.Header.
type Header struct {
	// Benchmark names the workload the trace was captured from (empty or
	// "custom" for non-suite sources).
	Benchmark string
	// Seed is the workload seed the capture ran with. Replay consumers
	// compare it against the generator's current seed to verify a trace
	// still mirrors the workload it claims to.
	Seed uint64
	// Insts is the number of records in the file; 0 means unknown (the
	// reader then consumes records until EOF).
	Insts int64
}

// Header field tags. Each field is a uvarint tag, a uvarint payload
// length, and the payload, so readers skip tags they do not understand.
const (
	tagBenchmark = 1 // payload: UTF-8 name
	tagSeed      = 2 // payload: uvarint
	tagInsts     = 3 // payload: uvarint
)

// Record opcode layout (one byte): the low nibble is the isa.Kind, the
// high bits flag optional fields. Flag bits that are meaningless for a
// record's kind must be zero; readers reject records that set them, which
// turns most corruption into a clean error instead of a silently skewed
// simulation.
const (
	opKindMask  = 0x0f
	opPCDelta   = 0x10 // PC differs from the previous record's fall-through
	opTaken     = 0x20 // control transfer taken (control kinds only)
	opRegs      = 0x40 // Dst/Src1/Src2 bytes follow
	opBaseValue = 0x80 // explicit BaseValue delta follows (memory kinds only)
)

// headerFieldCap bounds header field payloads (and the field count) so a
// corrupt length prefix cannot drive a huge allocation.
const headerFieldCap = 1 << 20

func zigzagEncode(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func zigzagDecode(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams Inst records into the trace file format. Records are
// delta-compressed against decoder-reconstructible state (previous PC
// fall-through, previous memory address), so a well-formed stream costs a
// few bytes per instruction.
type Writer struct {
	w        *bufio.Writer
	h        Header
	written  int64
	nextPC   uint64 // expected PC of the next record
	prevAddr uint64
	buf      []byte // per-record scratch, reused across Write calls
	err      error
	closed   bool
}

// NewWriter writes the magic, version and header for h to w and returns a
// Writer appending records to it. If h.Insts is positive, Close verifies
// exactly that many records were written.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Insts < 0 {
		return nil, fmt.Errorf("trace: negative instruction count %d", h.Insts)
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, h); err != nil {
		return nil, err
	}
	return &Writer{w: bw, h: h}, nil
}

func writeHeader(bw *bufio.Writer, h Header) error {
	fields := []struct {
		tag     uint64
		payload []byte
	}{
		{tagBenchmark, []byte(h.Benchmark)},
		{tagSeed, binary.AppendUvarint(nil, h.Seed)},
		{tagInsts, binary.AppendUvarint(nil, uint64(h.Insts))},
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, Magic...)
	buf = append(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(fields)))
	for _, f := range fields {
		buf = binary.AppendUvarint(buf, f.tag)
		buf = binary.AppendUvarint(buf, uint64(len(f.payload)))
		buf = append(buf, f.payload...)
	}
	_, err := bw.Write(buf)
	return err
}

// Write appends one instruction record.
func (w *Writer) Write(in *Inst) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	if int(in.Kind) >= isa.NumKinds {
		w.err = fmt.Errorf("trace: invalid instruction kind %d", in.Kind)
		return w.err
	}
	// The format only persists the payload fields meaningful for the
	// record's kind; reject records carrying anything it would drop, so a
	// successful capture is guaranteed to round-trip losslessly.
	switch {
	case in.Kind.IsMem():
		if in.Taken || in.Target != 0 {
			w.err = fmt.Errorf("trace: memory record %d (%s) carries control payload", w.written, in.Kind)
			return w.err
		}
	case in.Kind.IsControl():
		if in.Addr != 0 || in.BaseValue != 0 || in.Offset != 0 {
			w.err = fmt.Errorf("trace: control record %d (%s) carries memory payload", w.written, in.Kind)
			return w.err
		}
	default:
		if in.Taken || in.Target != 0 || in.Addr != 0 || in.BaseValue != 0 || in.Offset != 0 {
			w.err = fmt.Errorf("trace: compute record %d (%s) carries memory or control payload", w.written, in.Kind)
			return w.err
		}
	}
	op := byte(in.Kind)
	b := append(w.buf[:0], 0) // opcode placeholder
	if in.PC != w.nextPC {
		op |= opPCDelta
		b = binary.AppendUvarint(b, zigzagEncode(int64(in.PC-w.nextPC)))
	}
	if in.Dst != isa.RegZero || in.Src1 != isa.RegZero || in.Src2 != isa.RegZero {
		op |= opRegs
		b = append(b, byte(in.Dst), byte(in.Src1), byte(in.Src2))
	}
	switch {
	case in.Kind.IsMem():
		b = binary.AppendUvarint(b, zigzagEncode(int64(in.Addr-w.prevAddr)))
		b = binary.AppendUvarint(b, zigzagEncode(int64(in.Offset)))
		// BaseValue normally satisfies Addr == BaseValue + offset and
		// costs nothing; streams that break the invariant store it
		// explicitly so the round trip stays lossless.
		if in.Addr-uint64(int64(in.Offset)) != in.BaseValue {
			op |= opBaseValue
			b = binary.AppendUvarint(b, zigzagEncode(int64(in.BaseValue-in.Addr)))
		}
		w.prevAddr = in.Addr
	case in.Kind.IsControl():
		if in.Taken {
			op |= opTaken
		}
		b = binary.AppendUvarint(b, zigzagEncode(int64(in.Target-in.PC)))
	}
	b[0] = op
	w.buf = b
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return err
	}
	w.nextPC = in.PC + isa.InstBytes
	w.written++
	return nil
}

// Written returns the number of records written so far.
func (w *Writer) Written() int64 { return w.written }

// Close flushes buffered records and verifies the declared instruction
// count. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if ferr := w.w.Flush(); w.err == nil {
		w.err = ferr
	}
	if w.err == nil && w.h.Insts > 0 && w.written != w.h.Insts {
		w.err = fmt.Errorf("trace: header declares %d instructions, wrote %d", w.h.Insts, w.written)
	}
	return w.err
}

// Reader decodes a trace file and implements Source. After Next returns
// false, Err distinguishes clean end-of-trace (nil) from corruption or a
// truncated file.
type Reader struct {
	r        *bufio.Reader
	h        Header
	read     int64
	nextPC   uint64
	prevAddr uint64
	err      error
}

// NewReader validates the magic and version and decodes the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, h: h}, nil
}

func readHeader(br *bufio.Reader) (Header, error) {
	var h Header
	prefix := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(br, prefix); err != nil {
		return h, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(prefix[:len(Magic)]) != Magic {
		return h, fmt.Errorf("trace: bad magic %q (not a trace file)", prefix[:len(Magic)])
	}
	if v := prefix[len(Magic)]; v != FormatVersion {
		return h, fmt.Errorf("trace: unsupported format version %d (reader speaks %d)", v, FormatVersion)
	}
	nfields, err := binary.ReadUvarint(br)
	if err != nil || nfields > headerFieldCap {
		return h, fmt.Errorf("trace: corrupt header field count")
	}
	for i := uint64(0); i < nfields; i++ {
		tag, err := binary.ReadUvarint(br)
		if err != nil {
			return h, fmt.Errorf("trace: corrupt header field tag: %w", err)
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil || plen > headerFieldCap {
			return h, fmt.Errorf("trace: corrupt header field length")
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return h, fmt.Errorf("trace: truncated header field: %w", err)
		}
		switch tag {
		case tagBenchmark:
			h.Benchmark = string(payload)
		case tagSeed:
			v, n := binary.Uvarint(payload)
			if n <= 0 {
				return h, fmt.Errorf("trace: corrupt seed field")
			}
			h.Seed = v
		case tagInsts:
			v, n := binary.Uvarint(payload)
			if n <= 0 || v > math.MaxInt64 {
				return h, fmt.Errorf("trace: corrupt instruction-count field")
			}
			h.Insts = int64(v)
		default:
			// Unknown field from a newer writer: skipped by construction.
		}
	}
	return h, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.h }

// Count returns the number of records decoded so far.
func (r *Reader) Count() int64 { return r.read }

// Err returns the first decode error, or nil if the trace ended cleanly.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) bool {
	r.err = fmt.Errorf("trace: record %d: %s", r.read, fmt.Sprintf(format, args...))
	return false
}

func (r *Reader) varint() (int64, error) {
	u, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return zigzagDecode(u), err
}

// Next implements Source: it decodes the next record into *out, returning
// false at end of trace or on error (see Err).
func (r *Reader) Next(out *Inst) bool {
	if r.err != nil {
		return false
	}
	if r.h.Insts > 0 && r.read >= r.h.Insts {
		return false
	}
	op, err := r.r.ReadByte()
	if err == io.EOF {
		if r.h.Insts > 0 {
			return r.fail("file ends after %d of %d declared records", r.read, r.h.Insts)
		}
		return false
	}
	if err != nil {
		r.err = err
		return false
	}
	kind := isa.Kind(op & opKindMask)
	if int(kind) >= isa.NumKinds {
		return r.fail("invalid kind %d", kind)
	}
	*out = Inst{Kind: kind}
	pc := r.nextPC
	if op&opPCDelta != 0 {
		d, err := r.varint()
		if err != nil {
			return r.fail("pc delta: %v", err)
		}
		pc += uint64(d)
	}
	out.PC = pc
	if op&opRegs != 0 {
		var regs [3]byte
		if _, err := io.ReadFull(r.r, regs[:]); err != nil {
			return r.fail("registers: %v", err)
		}
		out.Dst, out.Src1, out.Src2 = isa.Reg(regs[0]), isa.Reg(regs[1]), isa.Reg(regs[2])
	}
	switch {
	case kind.IsMem():
		if op&opTaken != 0 {
			return r.fail("taken flag on memory kind %s", kind)
		}
		ad, err := r.varint()
		if err != nil {
			return r.fail("address delta: %v", err)
		}
		off, err := r.varint()
		if err != nil {
			return r.fail("offset: %v", err)
		}
		if off < math.MinInt32 || off > math.MaxInt32 {
			return r.fail("offset %d outside int32", off)
		}
		addr := r.prevAddr + uint64(ad)
		out.Addr = addr
		out.Offset = int32(off)
		out.BaseValue = addr - uint64(off)
		if op&opBaseValue != 0 {
			bd, err := r.varint()
			if err != nil {
				return r.fail("base value delta: %v", err)
			}
			out.BaseValue = addr + uint64(bd)
		}
		r.prevAddr = addr
	case kind.IsControl():
		if op&opBaseValue != 0 {
			return r.fail("base-value flag on control kind %s", kind)
		}
		td, err := r.varint()
		if err != nil {
			return r.fail("target delta: %v", err)
		}
		out.Target = pc + uint64(td)
		out.Taken = op&opTaken != 0
	default:
		if op&(opTaken|opBaseValue) != 0 {
			return r.fail("payload flags %#x on compute kind %s", op&(opTaken|opBaseValue), kind)
		}
	}
	r.nextPC = pc + isa.InstBytes
	r.read++
	return true
}

// File is an open trace file: a Reader over the file plus its handle.
type File struct {
	Reader
	f *os.File
}

// Open opens a captured trace file for replay.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{Reader: *r, f: f}, nil
}

// Close closes the underlying file.
func (f *File) Close() error { return f.f.Close() }

// Capture streams instructions from src into the trace format on w: h.Insts
// of them when positive (erroring if src runs dry first, via the Writer's
// declared-count check), or all of src when h.Insts is 0. It returns the
// number of records written. Sources like the workload walkers are
// infinite, so captures from them must declare a count.
func Capture(w io.Writer, h Header, src Source) (int64, error) {
	tw, err := NewWriter(w, h)
	if err != nil {
		return 0, err
	}
	var in Inst
	for h.Insts == 0 || tw.Written() < h.Insts {
		if !src.Next(&in) {
			break
		}
		if err := tw.Write(&in); err != nil {
			return tw.Written(), err
		}
	}
	return tw.Written(), tw.Close()
}

// CaptureFile captures to a file at path, creating or truncating it. On
// error the partial file is removed.
func CaptureFile(path string, h Header, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := Capture(f, h, src); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}
