package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"waycache/internal/isa"
)

// wellFormed is a hand-built stream exercising every encoding path: PC
// discontinuities, register presence/absence, negative offsets, memory
// records violating the Addr == BaseValue+Offset invariant, taken and
// not-taken control flow, and backward/forward targets.
func wellFormed() []Inst {
	return []Inst{
		{PC: 0x40_0000, Kind: isa.KindIntALU, Dst: 3, Src1: 1, Src2: 2},
		{PC: 0x40_0004, Kind: isa.KindLoad, Dst: 4, Src1: 3,
			Addr: 0x60_0040, BaseValue: 0x60_0000, Offset: 0x40},
		{PC: 0x40_0008, Kind: isa.KindLoad, Dst: 5,
			Addr: 0x60_0038, BaseValue: 0x60_0040, Offset: -8},
		// Invariant violation: BaseValue unrelated to Addr-Offset.
		{PC: 0x40_000c, Kind: isa.KindStore, Src1: 4, Src2: 5,
			Addr: 0x7fff_0000, BaseValue: 0x1234_5678, Offset: 16},
		{PC: 0x40_0010, Kind: isa.KindBranch, Src1: 5, Taken: true, Target: 0x40_0000},
		// PC discontinuity (the branch above jumped backwards).
		{PC: 0x40_0000, Kind: isa.KindNop},
		{PC: 0x40_0004, Kind: isa.KindBranch, Taken: false, Target: 0x40_0100},
		{PC: 0x40_0008, Kind: isa.KindCall, Taken: true, Target: 0x41_0000},
		{PC: 0x41_0000, Kind: isa.KindFPDiv, Dst: isa.FP(1), Src1: isa.FP(2), Src2: isa.FP(3)},
		{PC: 0x41_0004, Kind: isa.KindReturn, Taken: true, Target: 0x40_000c},
		{PC: 0x40_000c, Kind: isa.KindJump, Taken: true, Target: 0x40_0000},
		{PC: 0x40_0000, Kind: isa.KindStore, Addr: 8, BaseValue: 0, Offset: 8},
	}
}

func roundTrip(t *testing.T, h Header, insts []Inst) []Inst {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatalf("Write[%d]: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got := r.Header(); got != h {
		t.Fatalf("header round trip: got %+v, want %+v", got, h)
	}
	var out []Inst
	var in Inst
	for r.Next(&in) {
		out = append(out, in)
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	return out
}

func TestRoundTripLossless(t *testing.T) {
	insts := wellFormed()
	h := Header{Benchmark: "synthetic", Seed: 0xdeadbeef, Insts: int64(len(insts))}
	got := roundTrip(t, h, insts)
	if !reflect.DeepEqual(got, insts) {
		t.Fatalf("decoded stream differs:\n got %+v\nwant %+v", got, insts)
	}
}

func TestRoundTripUnknownCount(t *testing.T) {
	insts := wellFormed()
	got := roundTrip(t, Header{Benchmark: "streaming"}, insts)
	if !reflect.DeepEqual(got, insts) {
		t.Fatal("unknown-count stream did not round trip")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	if got := roundTrip(t, Header{}, nil); len(got) != 0 {
		t.Fatalf("empty trace decoded %d records", len(got))
	}
}

func TestDeclaredCountStopsBeforeTrailingBytes(t *testing.T) {
	insts := wellFormed()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Insts: int64(len(insts))})
	for i := range insts {
		w.Write(&insts[i])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Trailing garbage after the declared records must be ignored: it is
	// room for future trailer sections.
	buf.WriteString("future trailer, not records")
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var in Inst
	for r.Next(&in) {
		n++
	}
	if n != len(insts) || r.Err() != nil {
		t.Fatalf("decoded %d records (err %v), want %d and nil", n, r.Err(), len(insts))
	}
}

func TestWriterDeclaredCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Insts: 5})
	in := Inst{Kind: isa.KindNop}
	w.Write(&in)
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted 1 written record against 5 declared")
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{})
	in := Inst{Kind: isa.Kind(isa.NumKinds)}
	if err := w.Write(&in); err == nil {
		t.Fatal("Write accepted out-of-range kind")
	}
}

func TestWriterRejectsKindForeignPayload(t *testing.T) {
	// Fields the format would not persist for the record's kind must fail
	// the write, not silently decode differently: a successful capture is
	// the losslessness guarantee.
	cases := map[string]Inst{
		"taken store":         {Kind: isa.KindStore, Addr: 8, BaseValue: 8, Taken: true},
		"load with target":    {Kind: isa.KindLoad, Addr: 8, BaseValue: 8, Target: 0x40},
		"branch with address": {Kind: isa.KindBranch, Taken: true, Addr: 8},
		"jump with offset":    {Kind: isa.KindJump, Offset: 8},
		"alu with address":    {Kind: isa.KindIntALU, Addr: 8},
		"taken nop":           {Kind: isa.KindNop, Taken: true},
		"fp op with base":     {Kind: isa.KindFPMul, BaseValue: 1},
		"compute with target": {Kind: isa.KindFPALU, Target: 0x40},
	}
	for name, in := range cases {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, Header{})
		if err := w.Write(&in); err == nil {
			t.Errorf("%s: Write accepted a record the format cannot represent", name)
		}
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPEx....")); err == nil {
		t.Fatal("reader accepted bad magic")
	}
}

func TestReaderRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{})
	w.Close()
	b := buf.Bytes()
	b[len(Magic)] = FormatVersion + 1
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Fatal("reader accepted a future format version")
	}
}

func TestReaderSkipsUnknownHeaderFields(t *testing.T) {
	// A future writer may add header fields; an old reader must skip them
	// and still decode everything else. Build the header by hand: magic,
	// version, 2 fields (unknown tag 99, then benchmark).
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(FormatVersion)
	var tmp []byte
	tmp = binary.AppendUvarint(tmp, 2) // field count
	tmp = binary.AppendUvarint(tmp, 99)
	tmp = binary.AppendUvarint(tmp, 4)
	tmp = append(tmp, "wxyz"...)
	tmp = binary.AppendUvarint(tmp, tagBenchmark)
	tmp = binary.AppendUvarint(tmp, 3)
	tmp = append(tmp, "gcc"...)
	buf.Write(tmp)
	buf.WriteByte(byte(isa.KindNop)) // one record
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("reader choked on unknown header field: %v", err)
	}
	if r.Header().Benchmark != "gcc" {
		t.Fatalf("benchmark = %q after skipping unknown field", r.Header().Benchmark)
	}
	var in Inst
	if !r.Next(&in) || in.Kind != isa.KindNop || r.Err() != nil {
		t.Fatalf("record after unknown field: %+v err %v", in, r.Err())
	}
}

func TestReaderReportsTruncation(t *testing.T) {
	insts := wellFormed()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Insts: int64(len(insts))})
	for i := range insts {
		w.Write(&insts[i])
	}
	w.Close()
	full := buf.Bytes()
	// Chop inside the record section: every prefix must either decode
	// cleanly short (never here, count is declared) or set Err.
	r, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var in Inst
	for r.Next(&in) {
	}
	if r.Err() == nil {
		t.Fatal("truncated declared-count trace decoded without error")
	}
}

func TestReaderRejectsCorruptFlags(t *testing.T) {
	cases := map[string]byte{
		"taken flag on memory kind":        byte(isa.KindLoad) | opTaken,
		"base flag on control kind":        byte(isa.KindJump) | opBaseValue,
		"payload flags on compute kind":    byte(isa.KindIntALU) | opTaken,
		"base payload flag on compute":     byte(isa.KindIntALU) | opBaseValue,
		"invalid kind nibble (12 of 0-11)": byte(isa.NumKinds),
	}
	for name, op := range cases {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, Header{})
		w.Close()
		buf.WriteByte(op)
		// Give varint-hungry paths bytes to chew so the flag check is
		// what trips, not EOF.
		buf.Write([]byte{0, 0, 0, 0, 0})
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var in Inst
		for r.Next(&in) {
		}
		if r.Err() == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestCaptureStopsAtDeclaredCount(t *testing.T) {
	// An "infinite" source: Capture must stop at Header.Insts.
	src := &Repeat{Insts: wellFormed()}
	var buf bytes.Buffer
	n, err := Capture(&buf, Header{Benchmark: "rep", Insts: 100}, src)
	if err != nil || n != 100 {
		t.Fatalf("Capture = %d, %v; want 100, nil", n, err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var in Inst
	count := 0
	for r.Next(&in) {
		count++
	}
	if count != 100 || r.Err() != nil {
		t.Fatalf("replayed %d records, err %v", count, r.Err())
	}
}

func TestCaptureShortSourceFails(t *testing.T) {
	src := &SliceSource{Insts: wellFormed()}
	var buf bytes.Buffer
	if _, err := Capture(&buf, Header{Insts: 10_000}, src); err == nil {
		t.Fatal("Capture of a too-short source succeeded")
	}
}

func TestCaptureFileAndOpen(t *testing.T) {
	insts := wellFormed()
	path := filepath.Join(t.TempDir(), "synthetic"+FileExt)
	h := Header{Benchmark: "synthetic", Seed: 7, Insts: int64(len(insts))}
	if err := CaptureFile(path, h, &SliceSource{Insts: insts}); err != nil {
		t.Fatalf("CaptureFile: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Header() != h {
		t.Fatalf("header = %+v, want %+v", f.Header(), h)
	}
	var got []Inst
	var in Inst
	for f.Next(&in) {
		got = append(got, in)
	}
	if f.Err() != nil || !reflect.DeepEqual(got, insts) {
		t.Fatalf("file round trip failed: err %v", f.Err())
	}
}

func TestCaptureFileRemovesPartialOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad"+FileExt)
	err := CaptureFile(path, Header{Insts: 99}, &SliceSource{Insts: wellFormed()})
	if err == nil {
		t.Fatal("CaptureFile of a short source succeeded")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("partial capture left on disk: %v", serr)
	}
}

func TestVarintHelpers(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := zigzagDecode(zigzagEncode(v)); got != v {
			t.Fatalf("zigzag(%d) round trip = %d", v, got)
		}
	}
}

func TestReaderIsASource(t *testing.T) {
	var _ Source = (*Reader)(nil)
	var _ Source = (*File)(nil)
	var _ io.Closer = (*File)(nil)
}
