package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 1000 draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	s := New(7)
	d1 := s.Derive(1)
	d2 := s.Derive(2)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different labels start identically")
	}
	// Deriving must not disturb the parent stream.
	s2 := New(7)
	s2.Derive(1)
	s2.Derive(2)
	a, b := New(7), s2
	_ = a.Derive(9)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive perturbed the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v outside [0.28, 0.32]", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(9)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 9 {
		t.Fatalf("Geometric(8) mean %v outside [7, 9]", mean)
	}
	if g := s.Geometric(0.5); g != 1 {
		t.Fatalf("Geometric(<1) = %d, want 1", g)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	out := make([]int, 64)
	s.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish check over 16 buckets.
	s := New(123)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[s.Uint64()%16]++
	}
	for i, b := range buckets {
		if b < n/16-n/160 || b > n/16+n/160 {
			t.Fatalf("bucket %d count %d deviates more than 10%% from uniform", i, b)
		}
	}
}

func TestFromSeedDeterminism(t *testing.T) {
	a := FromSeed(42, "walker", "gcc")
	b := FromSeed(42, "walker", "gcc")
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same (seed, labels) diverged: %#x vs %#x", i, av, bv)
		}
	}
}

func TestFromSeedLabelsDecorrelate(t *testing.T) {
	// Distinct label paths — and distinct seeds under the same path — must
	// give streams that disagree immediately and do not collide pairwise.
	streams := []*Source{
		FromSeed(42),
		FromSeed(42, "walker"),
		FromSeed(42, "walker", "gcc"),
		FromSeed(42, "walker", "perl"),
		FromSeed(42, "dataref", "gcc"),
		FromSeed(43, "walker", "gcc"),
	}
	seen := make(map[uint64]int)
	for i, s := range streams {
		v := s.Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d emitted the same first value %#x", i, j, v)
		}
		seen[v] = i
	}
}

func TestFromSeedNoLabelsMatchesNew(t *testing.T) {
	a := FromSeed(7)
	b := New(7)
	for i := 0; i < 10; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: FromSeed(7) != New(7): %#x vs %#x", i, av, bv)
		}
	}
}
