// Package prng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// The simulator must be exactly reproducible across runs and platforms, so
// nothing in the code base uses math/rand's global state — wclint's
// determinism analyzer rejects the import outright in contract-bearing
// packages. Every stochastic component (workload walkers, data-reference
// streams, tie-breaking) owns a Source seeded from a (benchmark, purpose)
// pair: build one with New when you already hold a numeric seed, or with
// FromSeed when the purpose is naturally named by strings.
package prng

// Source is a SplitMix64 generator. It has a 64-bit state, passes BigCrush
// when used as a stream, and is trivially seedable: every seed gives an
// independent-looking sequence. The zero value is a valid generator seeded
// with 0.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// FromSeed returns the Source for one named purpose of a seeded run. The
// stream is fully determined by (seed, labels...) and decorrelated from
// every other label path, so components can take independent streams
// without coordinating numeric sub-seeds:
//
//	walk := prng.FromSeed(cfg.Seed, "walker", benchmark)
//
// A re-run with the same seed and labels replays the stream exactly; this
// is the sanctioned replacement for math/rand in deterministic packages.
func FromSeed(seed uint64, labels ...string) *Source {
	s := New(seed)
	for _, label := range labels {
		h := uint64(14695981039346656037) // FNV-64a offset basis
		for i := 0; i < len(label); i++ {
			h ^= uint64(label[i])
			h *= 1099511628211
		}
		s = s.Derive(h)
	}
	return s
}

// Derive returns a new Source whose stream is decorrelated from s but fully
// determined by (s's current state, label). It is used to hand independent
// streams to sub-components without sharing state.
func (s *Source) Derive(label uint64) *Source {
	return New(mix(s.state ^ rotl(label, 31) ^ 0x9e3779b97f4a7c15))
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// Uint32 returns the high 32 bits of the next value.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric-ish distribution with mean
// approximately mean (minimum 1). It is used for run lengths such as loop
// trip counts and basic-block repeat counts.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for !s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Perm fills out with a pseudo-random permutation of [0, len(out)).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}
