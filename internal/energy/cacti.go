package energy

import (
	"fmt"
	"math/bits"
)

// Cacti is a first-order analytical SRAM-array energy model in the spirit
// of CACTI (Wilton & Jouppi, WRL TR 93/5), reduced to what the paper's
// evaluation needs: relative energies of tag reads, parallel data reads,
// single-way data reads, writes and small prediction tables, as a function
// of cache geometry.
//
// Energies are sums of switched capacitance in arbitrary units (absolute
// scale cancels: all results are normalized to the parallel read of the
// geometry under study). Components:
//
//   - row decoder:   predecode gates grow with log2(rows); the word-select
//     wire grows with physical row count.
//   - wordline:      proportional to the driven width (columns).
//   - bitlines:      each column swings a capacitance proportional to the
//     number of rows; reads use a reduced sensing swing,
//     writes a full swing.
//   - sense amps:    per sensed column.
//   - comparators:   per tag bit per way.
//   - output drive:  per delivered output bit.
//
// A parallel read activates every way's subarray; a way-known access
// activates one subarray with gated precharge and sense enable
// (SoloGating), which is how CACTI makes a one-way read of the paper's
// reference cache cost 0.21 rather than tag + (1 - tag)/4.
//
// First-order component models cannot reproduce a full CACTI run exactly
// (CACTI folds arrays, shares drivers and models second-order parasitics),
// so the model is *calibrated*: Calibrate solves per-component fit factors
// such that a chosen reference geometry reproduces a chosen Costs vector
// (by default, the paper's Table 3). The fit factors are then applied at
// every other geometry, so cross-geometry *scaling* — the part the paper's
// size/associativity sweeps depend on — still comes from the physical
// terms.
type Cacti struct {
	// Per-unit switched capacitances (arbitrary units).
	CellCap    float64 // bitline cap contributed by one cell (drain + wire)
	ReadSwing  float64 // fraction of full swing during a read
	WriteSwing float64 // fraction of full swing during a write
	WordCap    float64 // wordline cap per column
	SenseCap   float64 // sense-amp energy per sensed column
	CmpCap     float64 // comparator energy per tag bit
	OutCap     float64 // output-driver energy per bit
	DecodeCap  float64 // decoder energy per address bit decoded
	DriveCap   float64 // word-select wire energy per row of array height

	// SoloGating scales the data-way read energy when the way is known in
	// advance (selective precharge and sense enable).
	SoloGating float64

	// FoldRows is the maximum physical subarray height. Arrays with more
	// sets fold into multiple subarrays (CACTI's Ndbl); only one subarray
	// per way is activated per access, so bitline energy stops growing
	// with capacity while global routing (RouteCap per subarray) grows.
	// This is what makes the fixed components "increase slightly as a
	// proportion of total cache energy" for larger caches, as the paper
	// observes in its 32 KB experiment.
	FoldRows int
	RouteCap float64

	// TableSubbanks models the subbanking of small prediction tables: only
	// 1/TableSubbanks of the array's bitlines swing per access.
	TableSubbanks int

	// AddressBits sets the physical address width for tag sizing.
	AddressBits int
	// StatusBits are per-line non-tag bits (valid, dirty, placement).
	StatusBits int
	// OutputBits is the width delivered to the load/store unit.
	OutputBits int

	// Calibration fit factors (1.0 = uncalibrated). See Calibrate.
	FitTag   float64
	FitSolo  float64
	FitWrite float64
	FitTable float64
}

// ReferenceGeometry is the paper's L1: 16 KB, 4-way, 32 B blocks.
var ReferenceGeometry = Geometry{SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32}

// DefaultCacti returns the model calibrated so that ReferenceGeometry
// reproduces Table 3 exactly: parallel read 1.00, one-way read 0.21,
// write 0.24, tag 0.06, 1024 x 4-bit table 0.007.
func DefaultCacti() Cacti {
	c := Cacti{
		CellCap:       1.0,
		ReadSwing:     0.18,
		WriteSwing:    0.70,
		WordCap:       1.8,
		SenseCap:      5.5,
		CmpCap:        3.0,
		OutCap:        9.0,
		DecodeCap:     40.0,
		DriveCap:      0.6,
		SoloGating:    0.60,
		FoldRows:      128,
		RouteCap:      260.0,
		TableSubbanks: 4,
		AddressBits:   32,
		StatusBits:    2,
		OutputBits:    64,
		FitTag:        1, FitSolo: 1, FitWrite: 1, FitTable: 1,
	}
	c.Calibrate(ReferenceGeometry, PaperCosts())
	return c
}

// Geometry describes the array whose energies are wanted.
type Geometry struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.BlockBytes <= 0 {
		return fmt.Errorf("energy: non-positive geometry %+v", g)
	}
	if g.SizeBytes%(g.BlockBytes*g.Ways) != 0 {
		return fmt.Errorf("energy: size %d not divisible by ways*block", g.SizeBytes)
	}
	sets := g.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("energy: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (g Geometry) Sets() int { return g.SizeBytes / (g.BlockBytes * g.Ways) }

// TagBits returns the tag width for the model's address size.
func (c Cacti) TagBits(g Geometry) int {
	offset := bits.TrailingZeros(uint(g.BlockBytes))
	index := bits.TrailingZeros(uint(g.Sets()))
	tb := c.AddressBits - offset - index
	if tb < 1 {
		tb = 1
	}
	return tb
}

// raw holds un-normalized component energies for one geometry.
type raw struct {
	tag   float64 // full tag array read + comparators
	way   float64 // one data way read, parallel context
	dec   float64 // shared decoder
	out   float64 // output drivers
	solo  float64 // one data way read, way known in advance (incl dec, out)
	write float64 // one data way write (store word)
	table float64 // 1024 x 4-bit prediction table access
}

func (c Cacti) raws(g Geometry) raw {
	sets := g.Sets()
	physRows := sets
	subarrays := 1
	if c.FoldRows > 0 && sets > c.FoldRows {
		physRows = c.FoldRows
		subarrays = sets / c.FoldRows
	}
	rows := float64(physRows)
	dataCols := float64(g.BlockBytes * 8)
	tagCols := float64((c.TagBits(g) + c.StatusBits) * g.Ways)

	dec := c.DecodeCap*float64(bits.Len(uint(sets-1))) + c.DriveCap*rows +
		c.RouteCap*float64(subarrays)
	way := c.WordCap*dataCols + dataCols*rows*c.CellCap*c.ReadSwing + c.SenseCap*dataCols
	tag := c.WordCap*tagCols + tagCols*rows*c.CellCap*c.ReadSwing + c.SenseCap*tagCols +
		c.CmpCap*float64(c.TagBits(g)*g.Ways)
	out := c.OutCap * float64(c.OutputBits)
	solo := c.SoloGating*(way+dec) + out
	write := c.WordCap*dataCols + float64(c.OutputBits)*rows*c.CellCap*c.WriteSwing + dec

	tableBits := 1024 * 4
	tCols, tRows := 32.0, 128.0
	tBit := float64(tableBits) * c.CellCap * c.ReadSwing / float64(c.TableSubbanks)
	table := c.WordCap*tCols + tBit + c.SenseCap*4 +
		c.DecodeCap*float64(bits.Len(uint(tRows-1)))/float64(c.TableSubbanks) + c.DriveCap*tRows/float64(c.TableSubbanks)

	return raw{tag: tag, way: way, dec: dec, out: out, solo: solo, write: write, table: table}
}

// Calibrate solves fit factors so that CostsFor(ref) equals target (up to
// the normalization identity ParallelRead() == 1). It modifies c in place.
func (c *Cacti) Calibrate(ref Geometry, target Costs) {
	c.FitTag, c.FitSolo, c.FitWrite, c.FitTable = 1, 1, 1, 1
	r := c.raws(ref)
	ways := float64(ref.Ways)

	// With tag' = fTag * tag: choose fTag so tag'/(tag' + A) = target.Tag,
	// where A = ways*way + dec + out is untouched by calibration.
	a := ways*r.way + r.dec + r.out
	wantTagShare := target.Tag
	tagPrime := wantTagShare / (1 - wantTagShare) * a
	c.FitTag = tagPrime / r.tag

	parallel := tagPrime + a
	soloPrime := target.OneWayRead()*parallel - tagPrime
	c.FitSolo = soloPrime / r.solo
	writePrime := target.Write()*parallel - tagPrime
	c.FitWrite = writePrime / r.write
	c.FitTable = target.Table * parallel / r.table
}

// CostsFor derives the relative per-event Costs of geometry g, normalized
// so that g's own parallel read equals 1.0 (this is how every figure in
// the paper normalizes: "relative to a parallel access cache of the same
// size and associativity").
func (c Cacti) CostsFor(g Geometry) (Costs, error) {
	if err := g.Validate(); err != nil {
		return Costs{}, err
	}
	r := c.raws(g)
	tag := r.tag * c.FitTag
	solo := r.solo * c.FitSolo
	write := r.write * c.FitWrite
	table := r.table * c.FitTable

	parallel := tag + float64(g.Ways)*r.way + r.dec + r.out
	n := parallel
	return Costs{
		Ways:        g.Ways,
		Tag:         tag / n,
		WayParallel: (r.way + (r.dec+r.out)/float64(g.Ways)) / n,
		WaySolo:     solo / n,
		WriteWay:    write / n,
		Table:       table / n,
	}, nil
}

// MustCostsFor is CostsFor that panics on invalid geometry.
func (c Cacti) MustCostsFor(g Geometry) Costs {
	costs, err := c.CostsFor(g)
	if err != nil {
		panic(err)
	}
	return costs
}
