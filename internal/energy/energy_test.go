package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}

func TestPaperCostsMatchTable3(t *testing.T) {
	c := PaperCosts()
	if !approx(c.ParallelRead(), 1.00, 1e-12) {
		t.Errorf("parallel read = %v, want 1.00", c.ParallelRead())
	}
	if !approx(c.OneWayRead(), 0.21, 1e-12) {
		t.Errorf("one-way read = %v, want 0.21", c.OneWayRead())
	}
	if !approx(c.Write(), 0.24, 1e-12) {
		t.Errorf("write = %v, want 0.24", c.Write())
	}
	if !approx(c.Tag, 0.06, 1e-12) {
		t.Errorf("tag = %v, want 0.06", c.Tag)
	}
	if !approx(c.Table, 0.007, 1e-12) {
		t.Errorf("table = %v, want 0.007", c.Table)
	}
}

func TestMispredictionAddsOneWay(t *testing.T) {
	c := PaperCosts()
	// "the second probe increases the energy by (1 data way energy)"
	if !approx(c.MispredictedRead(), c.OneWayRead()+c.WaySolo, 1e-12) {
		t.Error("mispredicted read != one-way read + one data way")
	}
	if c.MispredictedRead() >= c.ParallelRead() {
		t.Error("for 4 ways, a misprediction must still beat a parallel read")
	}
}

func TestCactiReproducesTable3(t *testing.T) {
	cs := DefaultCacti().MustCostsFor(ReferenceGeometry)
	if !approx(cs.ParallelRead(), 1.00, 1e-9) {
		t.Errorf("parallel = %v", cs.ParallelRead())
	}
	if !approx(cs.OneWayRead(), 0.21, 0.005) {
		t.Errorf("one-way = %v, want ~0.21", cs.OneWayRead())
	}
	if !approx(cs.Write(), 0.24, 0.005) {
		t.Errorf("write = %v, want ~0.24", cs.Write())
	}
	if !approx(cs.Tag, 0.06, 0.005) {
		t.Errorf("tag = %v, want ~0.06", cs.Tag)
	}
	if !approx(cs.Table, 0.007, 0.0015) {
		t.Errorf("table = %v, want ~0.007", cs.Table)
	}
}

func TestCactiAssociativityTrend(t *testing.T) {
	// The energy-saving opportunity (1 - oneWay/parallel) must grow with
	// associativity: an N-way parallel cache wastes N-1 ways.
	c := DefaultCacti()
	prev := 0.0
	for _, ways := range []int{2, 4, 8} {
		cs := c.MustCostsFor(Geometry{SizeBytes: 16 << 10, Ways: ways, BlockBytes: 32})
		saving := 1 - cs.OneWayRead()
		if saving <= prev {
			t.Fatalf("%d-way saving %v not greater than previous %v", ways, saving, prev)
		}
		prev = saving
	}
}

func TestCactiSizeTrend(t *testing.T) {
	// Fixed components grow slightly as a proportion for larger caches, so
	// the one-way read share at 32K must not be lower than at 16K by more
	// than noise, and should not collapse.
	c := DefaultCacti()
	c16 := c.MustCostsFor(Geometry{SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32})
	c32 := c.MustCostsFor(Geometry{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32})
	if c32.OneWayRead() < c16.OneWayRead()-0.001 {
		t.Fatalf("32K one-way share %v below 16K %v: savings should shrink with size",
			c32.OneWayRead(), c16.OneWayRead())
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{},
		{SizeBytes: 10000, Ways: 4, BlockBytes: 32},
		{SizeBytes: 24 << 10, Ways: 4, BlockBytes: 32}, // 192 sets: not pow2
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
	if err := ReferenceGeometry.Validate(); err != nil {
		t.Errorf("reference geometry rejected: %v", err)
	}
}

func TestTagBits(t *testing.T) {
	c := DefaultCacti()
	// 32-bit address, 16K 4-way 32B: 32 - 7 index - 5 offset = 20.
	if got := c.TagBits(ReferenceGeometry); got != 20 {
		t.Fatalf("TagBits = %d, want 20", got)
	}
}

func TestAccountTotals(t *testing.T) {
	a := Account{Costs: PaperCosts()}
	a.AddParallelRead()
	a.AddOneWayRead()
	a.AddSecondProbe()
	a.AddWrite()
	a.AddFill()
	a.AddTable(2)
	want := 1.00 + 0.21 + PaperCosts().WaySolo + 0.24 + 0.24 + 2*0.007
	if !approx(a.Total(), want, 1e-12) {
		t.Fatalf("Total = %v, want %v", a.Total(), want)
	}
}

func TestAccountMonotonic(t *testing.T) {
	// Property: adding any event never decreases total energy.
	f := func(pr, ow, sp, w, fl, tb uint8) bool {
		a := Account{Costs: PaperCosts()}
		prev := 0.0
		add := []func(){a.AddParallelRead, a.AddOneWayRead, a.AddSecondProbe, a.AddWrite, a.AddFill, func() { a.AddTable(1) }}
		counts := []uint8{pr, ow, sp, w, fl, tb}
		for i, n := range counts {
			for j := uint8(0); j < n%8; j++ {
				add[i]()
				if a.Total() < prev {
					return false
				}
				prev = a.Total()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizationIdentity(t *testing.T) {
	// For every geometry, ParallelRead() of CostsFor(g) must be exactly 1:
	// figures are normalized to the same-geometry parallel cache.
	c := DefaultCacti()
	for _, g := range []Geometry{
		{16 << 10, 2, 32}, {16 << 10, 4, 32}, {16 << 10, 8, 32},
		{32 << 10, 4, 32}, {8 << 10, 4, 32}, {64 << 10, 4, 64},
	} {
		cs := c.MustCostsFor(g)
		if !approx(cs.ParallelRead(), 1.0, 1e-9) {
			t.Errorf("geometry %+v: parallel read = %v", g, cs.ParallelRead())
		}
	}
}
