// Package energy models the dynamic energy of cache accesses.
//
// The paper takes per-access energies from CACTI scaled for a 0.25 µm
// process; its Table 3 reports them relative to a parallel 4-way read of
// the 16 KB L1 (= 1.00): a sequential / way-predicted / direct-mapped
// access reading one data way costs 0.21, a cache write 0.24, the tag
// array 0.06, and a 1024 x 4-bit prediction-table access 0.007.
//
// Two models are provided:
//
//   - Costs / PaperCosts: the published constants, exactly.
//   - Cacti (cacti.go): a first-order analytical array model that derives
//     Costs for arbitrary geometries; at the paper's reference geometry it
//     reproduces Table 3 within a few percent, and experiments that sweep
//     size and associativity use it so tag/decoder shares scale the way the
//     paper describes.
package energy

// Costs holds the per-event energies of one cache in normalized units
// (1.0 = a full parallel read of the paper's reference 16 KB 4-way L1
// unless stated otherwise).
//
// The asymmetry between WayParallel and WaySolo is deliberate and follows
// CACTI: in a parallel read every way's bitlines are precharged, sensed and
// driven to the select mux, while an access that knows its way in advance
// activates only that way's subarray with gated precharge and sense enable.
// The paper's own numbers require it: 1.00 = tag + 4 x WayParallel but
// 0.21 = tag + WaySolo.
type Costs struct {
	Ways int // associativity these costs were derived for

	Tag         float64 // full tag-array read (all ways' tags + comparators)
	WayParallel float64 // per-way cost within a parallel all-ways read
	WaySolo     float64 // cost of reading a single, pre-identified data way
	WriteWay    float64 // data-array cost of writing one way (store hit/fill)
	Table       float64 // one prediction-table read or write (1024 x 4 bit)
}

// PaperCosts returns the exact Table 3 constants for the reference 16 KB
// 4-way 32 B-block cache.
func PaperCosts() Costs {
	return Costs{
		Ways:        4,
		Tag:         0.06,
		WayParallel: (1.00 - 0.06) / 4, // 0.235: parallel read = tag + 4 ways
		WaySolo:     0.21 - 0.06,       // 0.15: one-way read = tag + solo way
		WriteWay:    0.24 - 0.06,       // 0.18: write = tag + one-way write
		Table:       0.007,
	}
}

// ParallelRead returns the energy of a conventional read probing all ways.
func (c Costs) ParallelRead() float64 {
	return c.Tag + float64(c.Ways)*c.WayParallel
}

// OneWayRead returns the energy of a read that probes exactly one data way
// (sequential access, correct way-prediction, correct direct-mapping).
func (c Costs) OneWayRead() float64 {
	return c.Tag + c.WaySolo
}

// MispredictedRead returns the energy of a read whose first probe chose the
// wrong way: the second probe adds one data-way read.
func (c Costs) MispredictedRead() float64 {
	return c.Tag + 2*c.WaySolo
}

// Write returns the energy of a store: tag check plus one data-way write.
// Stores never read multiple ways, in any configuration.
func (c Costs) Write() float64 {
	return c.Tag + c.WriteWay
}

// FillWrite returns the energy of installing a block after a miss. Like a
// store it writes exactly one way.
func (c Costs) FillWrite() float64 {
	return c.Tag + c.WriteWay
}

// Account accumulates L1 energy event counts for one cache and prices them
// with a Costs model. The access policies report events; relative
// energy-delay is computed from totals.
type Account struct {
	Costs Costs

	ParallelReads int64 // all-ways probes
	OneWayReads   int64 // single-way probes that were correct
	TagOnlyReads  int64 // tag-array lookups with no data way (sequential miss)
	SecondProbes  int64 // extra probes after a way/mapping misprediction
	Writes        int64 // store writes
	Fills         int64 // miss fills
	TableAccesses int64 // prediction-table reads + updates
	// PartialWays counts individual data-way reads of partial parallel
	// probes (selective cache ways reading only the enabled ways); each
	// partial probe also records one TagOnlyReads for its tag access.
	PartialWays int64
}

// AddParallelRead records a conventional read.
func (a *Account) AddParallelRead() { a.ParallelReads++ }

// AddOneWayRead records a single-way read (first probe).
func (a *Account) AddOneWayRead() { a.OneWayReads++ }

// AddTagOnly records a tag-array lookup that read no data way: a
// sequential-access miss learns from the tags alone that no way matches.
func (a *Account) AddTagOnly() { a.TagOnlyReads++ }

// AddSecondProbe records the corrective probe after a misprediction.
func (a *Account) AddSecondProbe() { a.SecondProbes++ }

// AddWrite records a store write.
func (a *Account) AddWrite() { a.Writes++ }

// AddFill records a miss fill write.
func (a *Account) AddFill() { a.Fills++ }

// AddTable records n prediction-structure accesses.
func (a *Account) AddTable(n int64) { a.TableAccesses += n }

// AddPartialRead records a parallel probe of only `ways` enabled data ways
// (selective cache ways): one tag read plus ways x the per-way parallel
// read energy.
func (a *Account) AddPartialRead(ways int) {
	a.TagOnlyReads++
	a.PartialWays += int64(ways)
}

// Total returns the accumulated energy in normalized units.
func (a *Account) Total() float64 {
	return float64(a.ParallelReads)*a.Costs.ParallelRead() +
		float64(a.OneWayReads)*a.Costs.OneWayRead() +
		float64(a.TagOnlyReads)*a.Costs.Tag +
		float64(a.SecondProbes)*a.Costs.WaySolo +
		float64(a.Writes)*a.Costs.Write() +
		float64(a.Fills)*a.Costs.FillWrite() +
		float64(a.TableAccesses)*a.Costs.Table +
		float64(a.PartialWays)*a.Costs.WayParallel
}
