package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"waycache/internal/core"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
	"waycache/internal/workload"
)

func coreCfg(bench, tr string) core.Config {
	return core.Config{Benchmark: bench, Trace: tr, Insts: 1000}
}

// storeWithCapture captures n instructions of bench into a fresh content
// store and returns the store and the capture's trace:// reference.
func storeWithCapture(t *testing.T, bench string, n int64) (*tracestore.Store, string) {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), bench+trace.FileExt)
	if err := p.CaptureFile(path, n); err != nil {
		t.Fatal(err)
	}
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, _, err := store.PutFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return store, trace.FormatRef(hash)
}

// TestTraceRefSweepMatchesWalker is the sweep-level determinism property
// behind the distributed trace leg: a grid whose benchmark replays via a
// trace:// reference writes byte-identical records to the walker sweep —
// so a fleet resolving hashes and a laptop walking generators agree.
func TestTraceRefSweepMatchesWalker(t *testing.T) {
	const bench, insts = "gcc", 20_000
	store, ref := storeWithCapture(t, bench, insts)

	walkGrid := Grid{Benchmarks: []string{bench}, DWays: []int{2, 4}, Insts: insts}
	walk, err := New(Options{Workers: 2}).Run(context.Background(), walkGrid)
	if err != nil {
		t.Fatal(err)
	}

	refGrid := walkGrid
	refGrid.TraceRefs = map[string]string{bench: ref}
	refGrid, err = refGrid.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Workers: 2, TraceStore: store})
	replay, err := eng.Run(context.Background(), refGrid)
	if err != nil {
		t.Fatal(err)
	}
	if fb := eng.TraceFallbacks(); len(fb) != 0 {
		t.Fatalf("replay run fell back to the walker: %v", fb)
	}

	var a, b bytes.Buffer
	if err := walk.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := replay.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace:// sweep output differs from walker sweep output")
	}
}

func TestTraceRefFallbackReasons(t *testing.T) {
	missing := trace.FormatRef(strings.Repeat("ab", 32))

	t.Run("no-store", func(t *testing.T) {
		// A resolver with only a trace dir still explains ref failures.
		r := newTraceResolver(t.TempDir(), nil)
		cfg := r.resolve(coreCfg("gcc", missing))
		if cfg.Trace != "" {
			t.Fatalf("suite benchmark did not fall back to the walker: %+v", cfg)
		}
		why := r.fallbackReport()["gcc"]
		if !strings.Contains(why, "no trace store configured") || !strings.Contains(why, "abababababab") {
			t.Fatalf("reason %q must name the hash and the missing store", why)
		}
	})

	t.Run("not-in-store", func(t *testing.T) {
		store, err := tracestore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		r := newTraceResolver("", store)
		cfg := r.resolve(coreCfg("gcc", missing))
		if cfg.Trace != "" {
			t.Fatal("suite benchmark did not fall back to the walker")
		}
		why := r.fallbackReport()["gcc"]
		if !strings.Contains(why, "not in the trace store") || !strings.Contains(why, "abababababab") {
			t.Fatalf("reason %q must say the hash is absent, naming it", why)
		}
	})

	t.Run("fetch-failed", func(t *testing.T) {
		store, ref := storeWithCapture(t, "gcc", 1000)
		hash, _ := trace.ParseRef(ref)
		path, err := store.Path(hash)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt the stored object so it no longer opens.
		if err := os.WriteFile(path, []byte("xx"), 0o644); err != nil {
			t.Fatal(err)
		}
		r := newTraceResolver("", store)
		cfg := r.resolve(coreCfg("gcc", ref))
		if cfg.Trace != "" {
			t.Fatal("suite benchmark did not fall back to the walker")
		}
		why := r.fallbackReport()["gcc"]
		if !strings.Contains(why, "fetch failed") {
			t.Fatalf("reason %q must distinguish an unreadable object (fetch failed)", why)
		}
	})

	t.Run("external-benchmark-keeps-failing-ref", func(t *testing.T) {
		store, err := tracestore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		r := newTraceResolver("", store)
		cfg := r.resolve(coreCfg("spec-gcc-ref", missing))
		if cfg.Trace != missing {
			t.Fatalf("external workload must keep its reference (no walker exists), got %+v", cfg)
		}
		// The run itself then fails with the resolution error.
		eng := New(Options{TraceStore: store})
		if _, err := eng.Result(cfg); err == nil {
			t.Fatal("Result succeeded for a reference that resolves nowhere")
		}
	})

	t.Run("short-capture", func(t *testing.T) {
		store, ref := storeWithCapture(t, "gcc", 100)
		r := newTraceResolver("", store)
		cfg := coreCfg("gcc", ref)
		cfg.Insts = 5000
		out := r.resolve(cfg)
		if out.Trace != "" {
			t.Fatal("too-short capture was not rejected")
		}
		if why := r.fallbackReport()["gcc"]; !strings.Contains(why, "run needs 5000") {
			t.Fatalf("reason %q must explain the shortfall", why)
		}
	})
}

func TestGridNormalize(t *testing.T) {
	ref := trace.FormatRef(strings.Repeat("cd", 32))

	g, err := Grid{Benchmarks: []string{"all"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Benchmarks) != len(workload.Names()) {
		t.Fatalf("all expanded to %d benchmarks, want the %d-suite", len(g.Benchmarks), len(workload.Names()))
	}

	if _, err := (Grid{Benchmarks: []string{"no-such-bench"}}).Normalize(); err == nil {
		t.Fatal("unknown benchmark without a trace ref must be rejected")
	}

	g, err = Grid{
		Benchmarks: []string{"gcc", "spec-mcf"},
		TraceRefs:  map[string]string{"spec-mcf": ref},
	}.Normalize()
	if err != nil {
		t.Fatalf("external benchmark with a trace ref must normalize: %v", err)
	}
	cfgs := g.Configs()
	foundExt := false
	for _, c := range cfgs {
		if c.Benchmark == "spec-mcf" {
			foundExt = true
			if c.Trace != ref {
				t.Fatalf("external benchmark config carries trace %q, want %q", c.Trace, ref)
			}
		} else if c.Trace != "" {
			t.Fatalf("unmapped benchmark %q gained trace %q", c.Benchmark, c.Trace)
		}
	}
	if !foundExt {
		t.Fatal("external benchmark missing from expanded configs")
	}

	if _, err := (Grid{Benchmarks: []string{"gcc"}, TraceRefs: map[string]string{"gcc": "not-a-ref"}}).Normalize(); err == nil {
		t.Fatal("malformed trace reference must be rejected")
	}
	if _, err := (Grid{Benchmarks: []string{"gcc"}, TraceRefs: map[string]string{"swim": ref}}).Normalize(); err == nil {
		t.Fatal("trace ref for an unlisted benchmark must be rejected")
	}
}

func TestParseTraceRefs(t *testing.T) {
	ref := trace.FormatRef(strings.Repeat("ef", 32))
	m, err := ParseTraceRefs("gcc=" + ref + ", swim=" + ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["gcc"] != ref || m["swim"] != ref {
		t.Fatalf("parsed %v", m)
	}
	if m, err := ParseTraceRefs(""); err != nil || m != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", m, err)
	}
	for _, bad := range []string{"gcc", "gcc=not-a-ref", "=" + ref} {
		if _, err := ParseTraceRefs(bad); err == nil {
			t.Fatalf("ParseTraceRefs(%q) accepted", bad)
		}
	}
}
