package sweep

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"waycache/internal/access"
	"waycache/internal/core"
)

// failingConfig returns a config with a valid canonical key whose
// simulation always fails: it replays a trace file that does not exist.
func failingConfig() core.Config {
	return core.Config{Trace: "testdata/no-such-trace.wct", Insts: 1000}
}

func TestStoreErrorMemoizedOnce(t *testing.T) {
	// Satellite: many goroutines racing one failing config must all
	// observe the identical error after exactly one simulation attempt.
	store := NewStore()
	cfg := failingConfig()

	const racers = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		errs  [racers]error
	)
	start.Add(racers)
	done.Add(racers)
	for i := 0; i < racers; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate // maximize overlap: everyone queries at once
			res, err := store.Result(cfg)
			if res != nil {
				t.Errorf("racer %d got a result from a failing config", i)
			}
			errs[i] = err
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	if errs[0] == nil {
		t.Fatalf("failing config produced no error")
	}
	for i, err := range errs {
		// Identical means the same error value, not merely the same text:
		// every caller must share the single attempt's outcome.
		if err != errs[0] {
			t.Errorf("racer %d error %v is not the memoized error %v", i, err, errs[0])
		}
	}
	if got := store.Misses(); got != 1 {
		t.Errorf("Misses = %d, want exactly 1 simulation attempt", got)
	}
	if got := store.Hits(); got != racers-1 {
		t.Errorf("Hits = %d, want %d (every other racer joins the memo)", got, racers-1)
	}

	// Sequential retries after the failure stay memoized too.
	if _, err := store.Result(cfg); err != errs[0] {
		t.Errorf("post-race lookup error %v is not the memoized error", err)
	}
	if got := store.Misses(); got != 1 {
		t.Errorf("Misses after retry = %d, want 1", got)
	}

	// Failures must never reach the backend: only results persist.
	if got := store.Len(); got != 0 {
		t.Errorf("Len = %d after a failure, want 0 (errors are memory-only)", got)
	}
}

func TestDiskStoreIncrementalRuns(t *testing.T) {
	// Acceptance: a second identical run over a disk-backed store performs
	// zero fresh simulations and emits byte-identical output.
	dir := t.TempDir()
	g := Grid{
		Benchmarks: []string{"gcc", "swim"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		DWays:      []int{2, 4},
		Insts:      5_000,
	}

	runOnce := func() (json, csv []byte, misses int64, hits int64) {
		t.Helper()
		store, db, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatalf("OpenDiskStore: %v", err)
		}
		defer db.Close()
		eng := New(Options{Workers: 4, Store: store})
		sw, err := eng.Run(context.Background(), g)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var jb, cb bytes.Buffer
		if err := sw.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := store.BackendErr(); err != nil {
			t.Fatalf("backend error: %v", err)
		}
		return jb.Bytes(), cb.Bytes(), store.Misses(), store.Hits()
	}

	json1, csv1, misses1, _ := runOnce()
	if misses1 != int64(g.Size()) {
		t.Errorf("first run simulated %d configs, want %d", misses1, g.Size())
	}

	json2, csv2, misses2, hits2 := runOnce()
	if misses2 != 0 {
		t.Errorf("second run simulated %d configs, want 0 (all disk hits)", misses2)
	}
	if hits2 != int64(g.Size()) {
		t.Errorf("second run hits = %d, want %d", hits2, g.Size())
	}
	if !bytes.Equal(json1, json2) {
		t.Errorf("JSON output differs between fresh and disk-replayed runs")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("CSV output differs between fresh and disk-replayed runs")
	}
}

func TestTieredPromotesDiskHits(t *testing.T) {
	front, back := NewMemory(), NewMemory()
	tiered := Tiered{Front: front, Back: back}
	res := &core.Result{Benchmark: "x"}
	if err := back.Put("k", res); err != nil {
		t.Fatal(err)
	}
	got, found, err := tiered.Get("k")
	if err != nil || !found || got != res {
		t.Fatalf("Get through tier: %v %v %v", got, found, err)
	}
	if _, found, _ := front.Get("k"); !found {
		t.Errorf("back-tier hit was not promoted into the front")
	}
	if tiered.Len() != 1 {
		t.Errorf("Len = %d, want 1", tiered.Len())
	}
}

// progressLog records every progress event for assertion.
type progressLog struct {
	mu     sync.Mutex
	events [][2]int
}

func (p *progressLog) fn() Progress {
	return func(done, total int) {
		p.mu.Lock()
		p.events = append(p.events, [2]int{done, total})
		p.mu.Unlock()
	}
}

// check asserts the canonical progress shape: exactly total events,
// monotonically counting 1..total over a constant total.
func (p *progressLog) check(t *testing.T, total int) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.events) != total {
		t.Fatalf("got %d progress events, want %d: %v", len(p.events), total, p.events)
	}
	for i, ev := range p.events {
		if ev[0] != i+1 || ev[1] != total {
			t.Fatalf("event %d = %v, want [%d %d]", i, ev, i+1, total)
		}
	}
}

func TestProgressTerminalOnError(t *testing.T) {
	// A failing cell cancels the sweep, but progress still counts every
	// job to a final done == total event.
	var pl progressLog
	eng := New(Options{Workers: 2, Progress: pl.fn()})
	cfgs := []core.Config{
		{Benchmark: "gcc", Insts: 2_000},
		failingConfig(),
		{Benchmark: "swim", Insts: 2_000},
		{Benchmark: "gcc", Insts: 2_000, DPolicy: access.DSequential},
	}
	if _, err := eng.RunConfigs(context.Background(), cfgs); err == nil {
		t.Fatalf("RunConfigs with a failing cell returned nil error")
	}
	pl.check(t, len(cfgs))
}

func TestProgressTerminalOnCancel(t *testing.T) {
	var pl progressLog
	eng := New(Options{Workers: 2, Progress: pl.fn()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep even starts
	cfgs := testGrid().Configs()
	if _, err := eng.RunConfigs(ctx, cfgs); err == nil {
		t.Fatalf("RunConfigs on a cancelled context returned nil error")
	}
	pl.check(t, len(cfgs))
}

func TestProgressCountsMemoHits(t *testing.T) {
	// A fully memoized re-run reports the same terminal progress shape as
	// the run that simulated.
	store := NewStore()
	cfgs := []core.Config{
		{Benchmark: "gcc", Insts: 2_000},
		{Benchmark: "swim", Insts: 2_000},
	}
	warm := New(Options{Workers: 2, Store: store})
	if _, err := warm.RunConfigs(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}

	var pl progressLog
	eng := New(Options{Workers: 2, Store: store, Progress: pl.fn()})
	if _, err := eng.RunConfigs(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	pl.check(t, len(cfgs))
	if store.Misses() != int64(len(cfgs)) {
		t.Errorf("re-run simulated fresh configs: misses = %d", store.Misses())
	}
}
