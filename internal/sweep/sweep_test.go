package sweep

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"waycache/internal/access"
	"waycache/internal/core"
)

// testGrid is small enough for fast tests but has several dimensions and a
// shared implicit baseline.
func testGrid() Grid {
	return Grid{
		Benchmarks: []string{"gcc", "swim"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DWayPredPC},
		DWays:      []int{2, 4},
		Insts:      20_000,
	}
}

func TestGridExpansion(t *testing.T) {
	g := testGrid()
	cfgs := g.Configs()
	if len(cfgs) != g.Size() || len(cfgs) != 8 {
		t.Fatalf("got %d configs, Size()=%d, want 8", len(cfgs), g.Size())
	}
	// Row-major: benchmark slowest, so the first half is all gcc.
	for i, cfg := range cfgs {
		want := "gcc"
		if i >= 4 {
			want = "swim"
		}
		if cfg.Benchmark != want {
			t.Errorf("cfgs[%d].Benchmark = %q, want %q", i, cfg.Benchmark, want)
		}
		if cfg.Insts != 20_000 {
			t.Errorf("cfgs[%d].Insts = %d, want 20000", i, cfg.Insts)
		}
	}
	// Fastest-varying listed dimension is DWays.
	if cfgs[0].DWays != 2 || cfgs[1].DWays != 4 {
		t.Errorf("DWays order = %d,%d, want 2,4", cfgs[0].DWays, cfgs[1].DWays)
	}
}

func TestGridEmptyDims(t *testing.T) {
	// The zero grid expands to exactly one all-defaults cell.
	var g Grid
	if g.Size() != 1 {
		t.Fatalf("zero grid Size() = %d, want 1", g.Size())
	}
	cfgs := g.Configs()
	if len(cfgs) != 1 {
		t.Fatalf("zero grid expands to %d configs, want 1", len(cfgs))
	}
	if cfgs[0] != (core.Config{}) {
		t.Errorf("zero grid cell = %+v, want zero config", cfgs[0])
	}

	// A single-cell grid pins exactly what it lists.
	one := Grid{Benchmarks: []string{"gcc"}, DWays: []int{8}}
	if one.Size() != 1 {
		t.Fatalf("single-cell Size() = %d, want 1", one.Size())
	}
	cfg := one.Configs()[0]
	if cfg.Benchmark != "gcc" || cfg.DWays != 8 {
		t.Errorf("single cell = %+v", cfg)
	}
}

func TestShard(t *testing.T) {
	cfgs := testGrid().Configs() // 8 configs
	for _, n := range []int{1, 2, 3, 5, 8, 11} {
		var merged []core.Config
		for i := 0; i < n; i++ {
			merged = append(merged, Shard(cfgs, i, n)...)
		}
		if len(merged) != len(cfgs) {
			t.Fatalf("n=%d: merged %d configs, want %d", n, len(merged), len(cfgs))
		}
		for i := range merged {
			if merged[i] != cfgs[i] {
				t.Fatalf("n=%d: shards reorder configs at %d", n, i)
			}
		}
	}
	if got := Shard(cfgs, 10, 11); len(got) != 0 {
		t.Errorf("shard beyond config count has %d configs, want 0", len(got))
	}
	if got := Shard(cfgs, -1, 4); got != nil {
		t.Errorf("negative shard index returned %d configs", len(got))
	}
	if got := Shard(cfgs, 0, 0); got != nil {
		t.Errorf("zero shard count returned %d configs", len(got))
	}
}

func TestParsePolicies(t *testing.T) {
	dp, err := ParseDPolicies("parallel, seldm+waypred")
	if err != nil {
		t.Fatal(err)
	}
	if len(dp) != 2 || dp[0] != access.DParallel || dp[1] != access.DSelDMWayPred {
		t.Errorf("parsed %v", dp)
	}
	if dp, _ = ParseDPolicies("all"); len(dp) != 8 {
		t.Errorf("all d-policies = %d, want 8", len(dp))
	}
	if _, err = ParseDPolicies("bogus"); err == nil {
		t.Error("bogus d-policy accepted")
	}
	ip, err := ParseIPolicies("waypred")
	if err != nil || len(ip) != 1 || ip[0] != access.IWayPred {
		t.Errorf("parsed %v, %v", ip, err)
	}
	if _, err = ParseIPolicies("bogus"); err == nil {
		t.Error("bogus i-policy accepted")
	}
}

// TestWorkerCountIndependence is the core determinism guarantee: the same
// grid swept with 1 worker and with 8 produces byte-identical JSON and CSV.
func TestWorkerCountIndependence(t *testing.T) {
	g := testGrid()
	var outs [2]struct{ jsonB, csvB bytes.Buffer }
	for i, workers := range []int{1, 8} {
		eng := New(Options{Workers: workers})
		sw, err := eng.Run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteJSON(&outs[i].jsonB); err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteCSV(&outs[i].csvB); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].jsonB.Bytes(), outs[1].jsonB.Bytes()) {
		t.Error("JSON differs between workers=1 and workers=8")
	}
	if !bytes.Equal(outs[0].csvB.Bytes(), outs[1].csvB.Bytes()) {
		t.Error("CSV differs between workers=1 and workers=8")
	}
	if outs[0].jsonB.Len() == 0 || outs[0].csvB.Len() == 0 {
		t.Error("empty sweep output")
	}
}

func TestMemoization(t *testing.T) {
	eng := New(Options{Workers: 4})
	cfgs := testGrid().Configs()
	// Duplicate the whole list in one call: singleflight must simulate
	// each unique config once.
	doubled := append(append([]core.Config{}, cfgs...), cfgs...)
	if _, err := eng.RunConfigs(context.Background(), doubled); err != nil {
		t.Fatal(err)
	}
	if got := eng.Store().Misses(); got != int64(len(cfgs)) {
		t.Errorf("misses = %d, want %d (one per unique config)", got, len(cfgs))
	}
	if got := eng.Store().Hits(); got != int64(len(cfgs)) {
		t.Errorf("hits = %d, want %d (one per duplicate)", got, len(cfgs))
	}
	if got := eng.Store().Len(); got != len(cfgs) {
		t.Errorf("store holds %d entries, want %d", got, len(cfgs))
	}
	// A second pass is all hits, no new simulations.
	if _, err := eng.RunConfigs(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if got := eng.Store().Misses(); got != int64(len(cfgs)) {
		t.Errorf("misses after re-run = %d, want %d", got, len(cfgs))
	}
	if got := eng.Store().Hits(); got != int64(2*len(cfgs)) {
		t.Errorf("hits after re-run = %d, want %d", got, 2*len(cfgs))
	}
}

func TestStoreSingleflightConcurrent(t *testing.T) {
	s := NewStore()
	cfg := core.Config{Benchmark: "gcc", Insts: 20_000}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Result(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if s.Misses() != 1 {
		t.Errorf("misses = %d, want 1", s.Misses())
	}
	if s.Hits() != 15 {
		t.Errorf("hits = %d, want 15", s.Hits())
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	eng := New(Options{
		Workers: 2,
		// Cancel as soon as the first job completes: the sweep must stop
		// and report the cancellation instead of running the whole grid.
		Progress: func(done, total int) { once.Do(cancel) },
	})
	g := Grid{
		Benchmarks: []string{"gcc", "swim", "fpppp"},
		DPolicies:  AllDPolicies(),
		Insts:      20_000,
	}
	_, err := eng.Run(ctx, g)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := eng.Store().Misses(); n >= int64(g.Size()) {
		t.Errorf("cancellation did not stop the sweep: %d of %d cells simulated", n, g.Size())
	}

	// A pre-cancelled context runs nothing.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	eng2 := New(Options{Workers: 2})
	if _, err := eng2.RunConfigs(pre, g.Configs()); err != context.Canceled {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if n := eng2.Store().Misses(); n != 0 {
		t.Errorf("pre-cancelled sweep simulated %d configs", n)
	}
}

func TestRunError(t *testing.T) {
	eng := New(Options{Workers: 2})
	g := Grid{Benchmarks: []string{"gcc", "no-such-benchmark"}, Insts: 20_000}
	if _, err := eng.Run(context.Background(), g); err == nil {
		t.Fatal("unknown benchmark did not fail the sweep")
	}
	// The error is memoized: retrying fails the same way without panicking.
	if _, err := eng.Result(core.Config{Benchmark: "no-such-benchmark", Insts: 20_000}); err == nil {
		t.Fatal("memoized error lookup succeeded")
	}
}

func TestRecordFields(t *testing.T) {
	eng := New(Options{Workers: 1})
	sw, err := eng.Run(context.Background(), Grid{Benchmarks: []string{"gcc"}, Insts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	r := sw.Records[0]
	if r.Benchmark != "gcc" || r.DPolicy != "parallel" || r.IPolicy != "parallel" {
		t.Errorf("record identity: %+v", r)
	}
	// Canonical defaults must be materialized, not left at zero.
	if r.DSize != 16<<10 || r.DWays != 4 || r.DLatency != 1 || r.Insts != 20_000 {
		t.Errorf("record geometry not canonical: %+v", r)
	}
	if r.Cycles <= 0 || r.IPC <= 0 || r.DCacheEnergy <= 0 || r.ProcEnergy <= 0 {
		t.Errorf("record stats empty: %+v", r)
	}
	var csvB bytes.Buffer
	if err := sw.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvB.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header+1", len(lines))
	}
	if got := len(strings.Split(lines[0], ",")); got != len(csvHeader) {
		t.Errorf("CSV header has %d columns, want %d", got, len(csvHeader))
	}
}
