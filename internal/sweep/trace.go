package sweep

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"waycache/internal/core"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// traceResolver maps benchmark names to captured trace files under a
// directory, so the engine can replay recorded streams instead of
// re-walking the synthetic generators on every sweep. Resolution is
// conservative: a trace is used only when its header proves it mirrors the
// requested run (right benchmark, the workload's current seed, enough
// instructions); anything else falls back to the walker, which is always
// correct, just slower. Fallbacks are never silent: every benchmark that
// reverted to the walker is recorded with its reason (see fallbacks), so
// a -trace run that quietly re-simulated can be surfaced to the caller.
type traceResolver struct {
	dir string

	mu        sync.Mutex
	probes    map[string]traceProbe // benchmark -> probe result, cached per engine
	fallbacks map[string]string     // benchmark -> why the walker ran instead
}

type traceProbe struct {
	path   string
	h      trace.Header
	ok     bool   // file exists, parses, and matches the benchmark's generator
	reason string // when !ok: why the capture is unusable
}

func newTraceResolver(dir string) *traceResolver {
	if dir == "" {
		return nil
	}
	return &traceResolver{
		dir:       dir,
		probes:    make(map[string]traceProbe),
		fallbacks: make(map[string]string),
	}
}

// resolve returns cfg pointed at a captured trace when one covers the run,
// or cfg unchanged. A nil resolver resolves nothing.
func (r *traceResolver) resolve(cfg core.Config) core.Config {
	if r == nil || cfg.Source != nil || cfg.Trace != "" || cfg.Benchmark == "" {
		return cfg
	}
	p := r.probe(cfg.Benchmark)
	if !p.ok {
		r.noteFallback(cfg.Benchmark, p.reason)
		return cfg
	}
	// Insts == 0 headers are rejected here even though core could replay
	// them: without a declared count we cannot know up front that the file
	// covers the run, and a mid-sweep fallback would not be possible.
	if p.h.Insts <= 0 {
		r.noteFallback(cfg.Benchmark, "capture declares no instruction count")
		return cfg
	}
	if p.h.Insts < cfg.Canonical().Insts {
		r.noteFallback(cfg.Benchmark, fmt.Sprintf("capture holds %d instructions, run needs %d",
			p.h.Insts, cfg.Canonical().Insts))
		return cfg
	}
	cfg.Trace = p.path
	return cfg
}

// probe inspects <dir>/<benchmark>.wct once per engine and caches the
// verdict; concurrent workers share the cached header.
func (r *traceResolver) probe(bench string) traceProbe {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.probes[bench]; ok {
		return p
	}
	p := traceProbe{path: filepath.Join(r.dir, bench+trace.FileExt)}
	f, err := trace.Open(p.path)
	if err != nil {
		p.reason = err.Error()
	} else {
		p.h = f.Header()
		f.Close()
		switch prof, err := workload.ByName(bench); {
		case err != nil:
			p.reason = err.Error()
		case p.h.Benchmark != bench:
			p.reason = fmt.Sprintf("capture is of benchmark %q, not %q", p.h.Benchmark, bench)
		case p.h.Seed != prof.Seed:
			// The seed check catches stale captures: a trace recorded
			// before a profile's seed (and thus its stream) changed no
			// longer mirrors the walker and must not stand in for it.
			p.reason = fmt.Sprintf("capture seed %d is stale (workload seed is now %d)", p.h.Seed, prof.Seed)
		default:
			p.ok = true
		}
	}
	r.probes[bench] = p
	return p
}

// noteFallback records that bench ran from the walker and why. Per-config
// reasons (a too-short capture under a larger Insts) overwrite earlier
// ones; one reason per benchmark is what a summary needs.
func (r *traceResolver) noteFallback(bench, reason string) {
	r.mu.Lock()
	r.fallbacks[bench] = reason
	r.mu.Unlock()
}

// fallbackReport returns a copy of every benchmark that reverted to the
// walker, with its reason. Nil resolver (no trace dir) reports nothing.
func (r *traceResolver) fallbackReport() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.fallbacks) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.fallbacks))
	for b, why := range r.fallbacks {
		out[b] = why
	}
	return out
}

// FormatFallbacks renders a fallback report (see Engine.TraceFallbacks)
// as one "benchmark: reason" line per entry, sorted by benchmark, for CLI
// and log summaries.
func FormatFallbacks(fb map[string]string) []string {
	if len(fb) == 0 {
		return nil
	}
	benches := make([]string, 0, len(fb))
	for b := range fb {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	lines := make([]string, len(benches))
	for i, b := range benches {
		lines[i] = fmt.Sprintf("%s: %s", b, fb[b])
	}
	return lines
}
