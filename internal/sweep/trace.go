package sweep

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"waycache/internal/core"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
	"waycache/internal/workload"
)

// traceResolver resolves configs onto captured traces, from two sources:
// a trace directory mapping benchmark names to <dir>/<benchmark>.wct
// files, and a content-addressed store serving trace://<hash> references
// carried by the configs themselves. Resolution is conservative: a trace
// is used only when it provably covers the requested run (right
// benchmark, enough instructions — and, for directory captures, the
// workload's current seed); anything else falls back to the walker,
// which is always correct, just slower. Fallbacks are never silent:
// every benchmark that reverted to the walker is recorded with its
// reason (see fallbacks), so a run that quietly re-simulated can be
// surfaced to the caller. A reference with no walker to fall back to
// (an imported external workload) is left in place instead, so the run
// fails with the resolver's reason rather than silently computing
// something else.
type traceResolver struct {
	dir   string
	store *tracestore.Store

	mu        sync.Mutex            //wclint:lockrank 38
	probes    map[string]traceProbe // benchmark or trace:// ref -> cached probe
	fallbacks map[string]string     // benchmark (or short hash) -> why the walker ran instead
}

type traceProbe struct {
	path   string
	h      trace.Header
	ok     bool   // capture exists, parses, and is trustworthy
	reason string // when !ok: why the capture is unusable
}

func newTraceResolver(dir string, store *tracestore.Store) *traceResolver {
	if dir == "" && store == nil {
		return nil
	}
	return &traceResolver{
		dir:       dir,
		store:     store,
		probes:    make(map[string]traceProbe),
		fallbacks: make(map[string]string),
	}
}

// resolve returns cfg pointed at a captured trace when one covers the
// run, or cfg unchanged. A nil resolver resolves nothing — except that
// trace:// references still need a store, so they fail in core with a
// clear error rather than silently walking.
func (r *traceResolver) resolve(cfg core.Config) core.Config {
	if cfg.Source != nil {
		return cfg
	}
	if hash, ok := trace.ParseRef(cfg.Trace); ok {
		if r == nil {
			return cfg
		}
		return r.resolveRef(cfg, hash)
	}
	if r == nil || r.dir == "" || cfg.Trace != "" || cfg.Benchmark == "" {
		return cfg
	}
	p := r.probe(cfg.Benchmark)
	if !p.ok {
		r.noteFallback(cfg.Benchmark, p.reason)
		return cfg
	}
	// Insts == 0 headers are rejected here even though core could replay
	// them: without a declared count we cannot know up front that the file
	// covers the run, and a mid-sweep fallback would not be possible.
	if p.h.Insts <= 0 {
		r.noteFallback(cfg.Benchmark, "capture declares no instruction count")
		return cfg
	}
	if p.h.Insts < cfg.Canonical().Insts {
		r.noteFallback(cfg.Benchmark, fmt.Sprintf("capture holds %d instructions, run needs %d",
			p.h.Insts, cfg.Canonical().Insts))
		return cfg
	}
	cfg.Trace = p.path
	return cfg
}

// resolveRef resolves a trace://<hash> config through the content store.
// A usable object keeps the reference and gains the store; an unusable
// one falls back to the walker only when the benchmark actually has one
// (suite benchmarks), with the reason — which names the hash and
// distinguishes a missing object from an unreadable one — recorded
// either way.
func (r *traceResolver) resolveRef(cfg core.Config, hash string) core.Config {
	p := r.probeRef(cfg.Trace, hash)
	reason := p.reason
	if p.ok {
		switch {
		case p.h.Insts > 0 && p.h.Insts < cfg.Canonical().Insts:
			reason = fmt.Sprintf("trace %s holds %d instructions, run needs %d",
				trace.ShortHash(hash), p.h.Insts, cfg.Canonical().Insts)
		case cfg.Benchmark != "" && p.h.Benchmark != "" && p.h.Benchmark != cfg.Benchmark:
			reason = fmt.Sprintf("trace %s was imported as %q, not %q",
				trace.ShortHash(hash), p.h.Benchmark, cfg.Benchmark)
		default:
			cfg.TraceStore = r.store
			return cfg
		}
	}

	key := cfg.Benchmark
	if key == "" {
		key = trace.ShortHash(hash)
	}
	r.noteFallback(key, reason)
	if cfg.Benchmark != "" {
		if _, err := workload.ByName(cfg.Benchmark); err == nil {
			// The benchmark has a synthetic walker: run it, exactly like a
			// directory-capture fallback.
			cfg.Trace = ""
			cfg.TraceStore = nil
			return cfg
		}
	}
	// No walker exists for this workload. Keep the reference (and the
	// store, which may still be nil) so the run fails with the real
	// resolution error instead of computing something else.
	cfg.TraceStore = r.store
	return cfg
}

// probeRef inspects the store object behind a trace:// reference once
// and caches the verdict. The reasons deliberately split the three
// failure classes a distributed operator must tell apart: no store
// configured, hash not in the store (fetch/push it), and object present
// but unreadable (corrupt fetch or disk fault).
func (r *traceResolver) probeRef(ref, hash string) traceProbe {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.probes[ref]; ok {
		return p
	}
	var p traceProbe
	if r.store == nil {
		p.reason = fmt.Sprintf("trace %s: no trace store configured (-tracestore)", trace.ShortHash(hash))
	} else if path, err := r.store.Path(hash); err != nil {
		if errors.Is(err, tracestore.ErrNotFound) {
			p.reason = fmt.Sprintf("trace %s: not in the trace store", trace.ShortHash(hash))
		} else {
			p.reason = fmt.Sprintf("trace %s: %v", trace.ShortHash(hash), err)
		}
	} else if f, err := trace.Open(path); err != nil {
		p.reason = fmt.Sprintf("trace %s: fetch failed: %v", trace.ShortHash(hash), err)
	} else {
		p.path = path
		p.h = f.Header()
		f.Close()
		p.ok = true
	}
	r.probes[ref] = p
	return p
}

// probe inspects <dir>/<benchmark>.wct once per engine and caches the
// verdict; concurrent workers share the cached header.
func (r *traceResolver) probe(bench string) traceProbe {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.probes[bench]; ok {
		return p
	}
	p := traceProbe{path: filepath.Join(r.dir, bench+trace.FileExt)}
	f, err := trace.Open(p.path)
	if err != nil {
		p.reason = err.Error()
	} else {
		p.h = f.Header()
		f.Close()
		switch prof, err := workload.ByName(bench); {
		case err != nil:
			p.reason = err.Error()
		case p.h.Benchmark != bench:
			p.reason = fmt.Sprintf("capture is of benchmark %q, not %q", p.h.Benchmark, bench)
		case p.h.Seed != prof.Seed:
			// The seed check catches stale captures: a trace recorded
			// before a profile's seed (and thus its stream) changed no
			// longer mirrors the walker and must not stand in for it.
			p.reason = fmt.Sprintf("capture seed %d is stale (workload seed is now %d)", p.h.Seed, prof.Seed)
		default:
			p.ok = true
		}
	}
	r.probes[bench] = p
	return p
}

// noteFallback records that bench ran from the walker and why. Per-config
// reasons (a too-short capture under a larger Insts) overwrite earlier
// ones; one reason per benchmark is what a summary needs.
func (r *traceResolver) noteFallback(bench, reason string) {
	r.mu.Lock()
	r.fallbacks[bench] = reason
	r.mu.Unlock()
}

// fallbackReport returns a copy of every benchmark that reverted to the
// walker, with its reason. Nil resolver (no trace dir or store) reports
// nothing.
func (r *traceResolver) fallbackReport() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.fallbacks) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.fallbacks))
	for b, why := range r.fallbacks {
		out[b] = why
	}
	return out
}

// FormatFallbacks renders a fallback report (see Engine.TraceFallbacks)
// as one "benchmark: reason" line per entry, sorted by benchmark, for CLI
// and log summaries.
func FormatFallbacks(fb map[string]string) []string {
	if len(fb) == 0 {
		return nil
	}
	benches := make([]string, 0, len(fb))
	for b := range fb {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	lines := make([]string, len(benches))
	for i, b := range benches {
		lines[i] = fmt.Sprintf("%s: %s", b, fb[b])
	}
	return lines
}
