package sweep

import (
	"path/filepath"
	"sync"

	"waycache/internal/core"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// traceResolver maps benchmark names to captured trace files under a
// directory, so the engine can replay recorded streams instead of
// re-walking the synthetic generators on every sweep. Resolution is
// conservative: a trace is used only when its header proves it mirrors the
// requested run (right benchmark, the workload's current seed, enough
// instructions); anything else silently falls back to the walker, which is
// always correct, just slower.
type traceResolver struct {
	dir string

	mu     sync.Mutex
	probes map[string]traceProbe // benchmark -> probe result, cached per engine
}

type traceProbe struct {
	path string
	h    trace.Header
	ok   bool // file exists, parses, and matches the benchmark's generator
}

func newTraceResolver(dir string) *traceResolver {
	if dir == "" {
		return nil
	}
	return &traceResolver{dir: dir, probes: make(map[string]traceProbe)}
}

// resolve returns cfg pointed at a captured trace when one covers the run,
// or cfg unchanged. A nil resolver resolves nothing.
func (r *traceResolver) resolve(cfg core.Config) core.Config {
	if r == nil || cfg.Source != nil || cfg.Trace != "" || cfg.Benchmark == "" {
		return cfg
	}
	p := r.probe(cfg.Benchmark)
	// Insts == 0 headers are rejected here even though core could replay
	// them: without a declared count we cannot know up front that the file
	// covers the run, and a mid-sweep fallback would not be possible.
	if !p.ok || p.h.Insts <= 0 || p.h.Insts < cfg.Canonical().Insts {
		return cfg
	}
	cfg.Trace = p.path
	return cfg
}

// probe inspects <dir>/<benchmark>.wct once per engine and caches the
// verdict; concurrent workers share the cached header.
func (r *traceResolver) probe(bench string) traceProbe {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.probes[bench]; ok {
		return p
	}
	p := traceProbe{path: filepath.Join(r.dir, bench+trace.FileExt)}
	if f, err := trace.Open(p.path); err == nil {
		p.h = f.Header()
		f.Close()
		if prof, err := workload.ByName(bench); err == nil {
			// The seed check catches stale captures: a trace recorded
			// before a profile's seed (and thus its stream) changed no
			// longer mirrors the walker and must not stand in for it.
			p.ok = p.h.Benchmark == bench && p.h.Seed == prof.Seed
		}
	}
	r.probes[bench] = p
	return p
}
