package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// acquireAsync queues one acquisition and reports its grant through got.
func acquireAsync(t *testing.T, b *Budget, owner string, got chan<- string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		if err := b.Acquire(ctx, owner); err == nil {
			got <- owner
		}
	}()
	return cancel
}

func waitWaiting(t *testing.T, b *Budget, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Waiting() != n {
		if time.Now().After(deadline) {
			t.Fatalf("budget never reached %d waiters (have %d)", n, b.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBudgetRoundRobinAcrossOwners: with one slot and a deep queue from a
// greedy owner, grants must alternate owners — the no-head-of-line
// starvation property the concurrent scheduler is built on.
func TestBudgetRoundRobinAcrossOwners(t *testing.T) {
	b := NewBudget(1)
	if err := b.Acquire(context.Background(), "seed"); err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 16)
	// Owner A queues 6 waiters before B queues 2: strict FIFO would make
	// B wait behind all of A.
	for i := 0; i < 6; i++ {
		defer acquireAsync(t, b, "A", got)()
	}
	waitWaiting(t, b, 6)
	for i := 0; i < 2; i++ {
		defer acquireAsync(t, b, "B", got)()
	}
	waitWaiting(t, b, 8)

	var order []string
	for i := 0; i < 8; i++ {
		b.Release() // returns the previous grant's slot
		select {
		case o := <-got:
			order = append(order, o)
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d never arrived (order so far %v)", i, order)
		}
	}
	// Round-robin over {A, B}: B's two waiters are served within the
	// first four grants, not behind A's six.
	bSeen := 0
	for i, o := range order[:4] {
		_ = i
		if o == "B" {
			bSeen++
		}
	}
	if bSeen != 2 {
		t.Errorf("owner B got %d of the first 4 grants, want 2 (order %v)", bSeen, order)
	}
}

// TestBudgetCancelledWaiterDoesNotLeakSlot: cancelling a queued waiter
// must neither consume a slot nor wedge the ring; a grant racing the
// cancellation is handed back.
func TestBudgetCancelledWaiterDoesNotLeakSlot(t *testing.T) {
	b := NewBudget(1)
	if err := b.Acquire(context.Background(), "hold"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.Acquire(ctx, "victim") }()
	waitWaiting(t, b, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire returned %v, want context.Canceled", err)
	}
	waitWaiting(t, b, 0)

	// The held slot releases into thin air (no waiters) and is then
	// immediately acquirable.
	b.Release()
	done := make(chan error, 1)
	go func() { done <- b.Acquire(context.Background(), "next") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slot leaked: post-cancel Acquire blocked")
	}
	b.Release()
}

// TestBudgetCapsConcurrency: under heavy concurrent load from several
// owners, in-flight holders never exceed capacity and every acquisition
// completes.
func TestBudgetCapsConcurrency(t *testing.T) {
	const cap, owners, each = 3, 4, 25
	b := NewBudget(cap)
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for o := 0; o < owners; o++ {
		owner := string(rune('A' + o))
		for i := 0; i < each; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := b.Acquire(context.Background(), owner); err != nil {
					t.Error(err)
					return
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inflight.Add(-1)
				b.Release()
			}()
		}
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Errorf("peak concurrency %d exceeded budget %d", p, cap)
	}
	if w := b.Waiting(); w != 0 {
		t.Errorf("%d waiters left after drain", w)
	}
}

// TestEngineSharedBudgetIsDeterministic: two engines racing overlapping
// grids under one tight budget produce results identical to unbudgeted
// serial runs, and the shared store still simulates each unique config
// once.
func TestEngineSharedBudgetIsDeterministic(t *testing.T) {
	grid := Grid{
		Benchmarks: []string{"gcc", "swim"},
		DWays:      []int{1, 2, 4},
		Insts:      2_000,
	}
	cfgs := grid.Configs()

	budget := NewBudget(2)
	store := NewStore()
	var wg sync.WaitGroup
	sweeps := make([]*Sweep, 2)
	errs := make([]error, 2)
	for i := range sweeps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := New(Options{Workers: 4, Store: store, Budget: budget, Owner: string(rune('A' + i))})
			sweeps[i], errs[i] = eng.Run(context.Background(), grid)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}

	ref := New(Options{Workers: 1})
	want, err := ref.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, sw := range sweeps {
		if len(sw.Records) != len(want.Records) {
			t.Fatalf("engine %d: %d records, want %d", i, len(sw.Records), len(want.Records))
		}
		for k := range sw.Records {
			if sw.Records[k] != want.Records[k] {
				t.Errorf("engine %d record %d differs from serial run", i, k)
			}
		}
	}
	if got := store.Misses(); got != int64(len(cfgs)) {
		t.Errorf("shared store simulated %d configs, want %d (one per unique config)", got, len(cfgs))
	}
	if w := budget.Waiting(); w != 0 {
		t.Errorf("%d budget waiters left after both sweeps", w)
	}
}
