package sweep

import (
	"sync"

	"waycache/internal/core"
)

// Backend is pluggable storage for completed simulation results, keyed by
// core.Config.Key's canonical string. The Store layers in-flight
// deduplication and error memoization on top of any Backend; Memory is the
// trivial in-process implementation, resultdb.DB the durable on-disk one,
// and Tiered composes the two so memory fronts disk.
//
// Implementations must be safe for concurrent use. Results flowing through
// a Backend are treated as immutable: Get may return a pointer shared with
// other callers.
type Backend interface {
	// Get returns the stored result for key; found is false when the key
	// has never been stored. err reports storage failures (I/O, decode),
	// never absence.
	Get(key string) (res *core.Result, found bool, err error)
	// Put stores the result for key. Keys are write-once: storing an
	// already-present key is a no-op, not an error.
	Put(key string, res *core.Result) error
	// Len returns the number of stored results.
	Len() int
}

// Scanner is the optional Backend extension for enumerating stored
// results in a deterministic (insertion) order; the query endpoints of the
// HTTP service are built on it.
type Scanner interface {
	Scan(fn func(key string, res *core.Result) error) error
}

// EncodedPutter is the optional Backend extension for bulk-ingesting
// results that already exist in core.EncodeResult's canonical byte form —
// the shape remote waycached hosts export shards in. Implementations
// (resultdb.DB) validate and append the provided bytes directly, skipping
// the decode/re-encode round trip; the stored payload is then exactly
// what the remote computed.
type EncodedPutter interface {
	PutEncoded(key string, payload []byte) error
}

// PutEncoded stores one canonically-encoded result into b, using the
// backend's native encoded path when it has one and decoding otherwise.
// Like Put, keys are write-once: an already-present key is a no-op.
func PutEncoded(b Backend, key string, payload []byte) error {
	if ep, ok := b.(EncodedPutter); ok {
		return ep.PutEncoded(key, payload)
	}
	res, err := core.DecodeResult(payload)
	if err != nil {
		return err
	}
	return b.Put(key, res)
}

// Memory is the in-memory Backend: a map guarded by a mutex. It never
// returns an error.
type Memory struct {
	mu   sync.RWMutex //wclint:lockrank 45
	m    map[string]*core.Result
	keys []string // insertion order, for deterministic Scan
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]*core.Result)}
}

// Get implements Backend.
func (b *Memory) Get(key string) (*core.Result, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	res, found := b.m[key]
	return res, found, nil
}

// Put implements Backend.
func (b *Memory) Put(key string, res *core.Result) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.m[key]; dup {
		return nil
	}
	b.m[key] = res
	b.keys = append(b.keys, key)
	return nil
}

// Len implements Backend.
func (b *Memory) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.m)
}

// Scan implements Scanner: results are visited in insertion order.
func (b *Memory) Scan(fn func(key string, res *core.Result) error) error {
	b.mu.RLock()
	keys := make([]string, len(b.keys))
	copy(keys, b.keys)
	b.mu.RUnlock()
	for _, key := range keys {
		res, found, _ := b.Get(key)
		if !found {
			continue
		}
		if err := fn(key, res); err != nil {
			return err
		}
	}
	return nil
}

// Tiered layers a fast front backend over a durable back one — typically
// Memory over resultdb.DB, so repeated lookups in one process never touch
// disk while every fresh result still lands in the log.
type Tiered struct {
	Front, Back Backend
}

// Get checks the front tier first, then the back, promoting back-tier hits
// into the front so the next lookup is served from memory.
func (t Tiered) Get(key string) (*core.Result, bool, error) {
	if res, found, err := t.Front.Get(key); found || err != nil {
		return res, found, err
	}
	res, found, err := t.Back.Get(key)
	if err != nil || !found {
		return nil, false, err
	}
	// Best-effort promotion: the result is good either way; a front-tier
	// (cache) failure only costs the next lookup a disk read.
	_ = t.Front.Put(key, res)
	return res, true, nil
}

// Put stores to the durable back tier first, then the front; the back
// tier's error, if any, is the one that matters and is returned.
func (t Tiered) Put(key string, res *core.Result) error {
	err := t.Back.Put(key, res)
	if ferr := t.Front.Put(key, res); err == nil && ferr != nil {
		err = ferr
	}
	return err
}

// PutEncoded stores canonical bytes to the durable back tier natively and
// decodes them for the front, mirroring Put's back-then-front order.
func (t Tiered) PutEncoded(key string, payload []byte) error {
	err := PutEncoded(t.Back, key, payload)
	res, derr := core.DecodeResult(payload)
	if derr != nil {
		if err == nil {
			err = derr
		}
		return err
	}
	if ferr := t.Front.Put(key, res); err == nil && ferr != nil {
		err = ferr
	}
	return err
}

// Len reports the larger tier: the back normally holds a superset of the
// front (Put writes both, promotions copy upward).
func (t Tiered) Len() int {
	f, b := t.Front.Len(), t.Back.Len()
	if f > b {
		return f
	}
	return b
}

// Scan enumerates the back (durable, superset) tier when it supports
// scanning, the front otherwise.
func (t Tiered) Scan(fn func(key string, res *core.Result) error) error {
	if s, ok := t.Back.(Scanner); ok {
		return s.Scan(fn)
	}
	if s, ok := t.Front.(Scanner); ok {
		return s.Scan(fn)
	}
	return nil
}
