package sweep

import (
	"fmt"
	"io"
	"os"
)

// WriteOutput writes the sweep to path ("-" for stdout) in the named
// format ("json" or "csv") — the one output path both sweep CLIs
// (cmd/sweep, cmd/sweepctl) share, so their bytes and failure handling
// cannot drift. Close and flush errors are surfaced: a truncated output
// file must never look like success.
func (s *Sweep) WriteOutput(path, format string) error {
	var w io.Writer = os.Stdout
	var f *os.File
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		w = f
	}
	var err error
	switch format {
	case "json":
		err = s.WriteJSON(w)
	case "csv":
		err = s.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q (want json or csv)", format)
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
