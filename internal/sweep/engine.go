// Package sweep is the design-space sweep engine: it expands declarative
// parameter grids (benchmarks x policies x geometries x latencies) into
// simulation jobs, executes them on a bounded worker pool, and merges the
// results in deterministic job order regardless of worker count.
//
// The engine memoizes results by canonical configuration (core.Config.Key)
// in a Store that can be shared across sweeps and experiments, so common
// baselines are simulated exactly once even when several experiments need
// them concurrently. Results flatten into Records with JSON and CSV
// emitters whose bytes depend only on the grid — a sweep run with one
// worker and with eight produces identical output.
//
//	eng := sweep.New(sweep.Options{Workers: 8})
//	sw, err := eng.Run(ctx, sweep.Grid{
//	    Benchmarks: workload.Names(),
//	    DPolicies:  sweep.AllDPolicies(),
//	    DWays:      []int{1, 2, 4, 8, 16},
//	})
//	sw.WriteJSON(os.Stdout)
package sweep

import (
	"context"
	"runtime"
	"sync"

	"waycache/internal/core"
	"waycache/internal/tracestore"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent simulations (default: runtime.NumCPU()).
	Workers int
	// Store shares memoized results across engines; nil means a private
	// fresh store.
	Store *Store
	// Progress, when non-nil, receives a completion event per finished
	// job. Calls are serialized by the engine.
	Progress Progress
	// OnResult, when non-nil, receives every successfully completed
	// configuration as (input index, result) the moment it finishes —
	// simulated or recalled from memo alike. Calls are serialized by the
	// engine but arrive in completion order, not input order; callers that
	// need the longest finished prefix (the HTTP service's partial-export
	// watermark) track it themselves.
	OnResult func(index int, res *core.Result)
	// TraceDir, when non-empty, resolves benchmark names to captured
	// trace files (<dir>/<benchmark>.wct, written by tracegen -capture):
	// jobs whose benchmark has a valid capture covering the run replay it
	// instead of re-walking the generator, which skips all generation
	// cost while producing identical results. Benchmarks without a usable
	// capture fall back to the walker.
	TraceDir string
	// TraceStore, when non-nil, resolves content-addressed trace
	// references (core.Config.Trace = "trace://<hash>", typically set by
	// Grid.TraceRefs) to local files, verified against their hash on
	// decode. References whose object is missing or unreadable fall back
	// to the walker when the benchmark has one, with the reason reported
	// through TraceFallbacks.
	TraceStore *tracestore.Store
	// Budget, when non-nil, is a shared simulation-admission budget:
	// every actual simulation (never a memo hit or disk recall) acquires
	// one slot under Owner before running. Several engines sharing one
	// Budget — the waycached concurrent scheduler — collectively respect
	// its capacity with per-owner fair-share scheduling; Workers then
	// only bounds this engine's concurrency ceiling.
	Budget *Budget
	// Owner is the fair-share identity slots are acquired under (e.g.
	// the submitting client). Meaningful only with Budget.
	Owner string
}

// Engine executes sweeps on a bounded worker pool.
type Engine struct {
	workers  int
	store    *Store
	progress Progress
	onResult func(int, *core.Result)
	progMu   sync.Mutex //wclint:lockrank 35
	traces   *traceResolver
	budget   *Budget
	owner    string
}

// New creates an engine.
func New(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Store == nil {
		o.Store = NewStore()
	}
	return &Engine{
		workers: o.Workers, store: o.Store, progress: o.Progress,
		onResult: o.OnResult,
		traces:   newTraceResolver(o.TraceDir, o.TraceStore),
		budget:   o.Budget, owner: o.Owner,
	}
}

// Store returns the engine's result store (for memo-hit accounting and
// sharing with other engines).
func (e *Engine) Store() *Store { return e.store }

// TraceFallbacks reports every benchmark that a TraceDir-enabled engine
// re-simulated from the walker instead of replaying its capture, mapped to
// the reason (missing file, stale seed, too few instructions, ...). Empty
// when every resolved benchmark replayed, and nil when the engine has no
// trace directory. Callers surface this so a -trace run that quietly
// re-simulated is visible in summaries, not silent.
func (e *Engine) TraceFallbacks() map[string]string { return e.traces.fallbackReport() }

// Result simulates (or recalls) a single configuration through the store,
// replaying a captured trace when the engine's trace directory has one.
func (e *Engine) Result(cfg core.Config) (*core.Result, error) {
	return e.result(context.Background(), cfg)
}

// result is the budget-aware lookup every worker uses: without a budget
// it is a plain store lookup; with one, an actual simulation first
// acquires a slot under the engine's owner, waiting its fair-share turn.
// Cancelling ctx abandons the wait (the store treats the denial as
// never-happened for other callers).
func (e *Engine) result(ctx context.Context, cfg core.Config) (*core.Result, error) {
	cfg = e.traces.resolve(cfg)
	if e.budget == nil {
		return e.store.Result(cfg)
	}
	return e.store.ResultGated(cfg, func() (func(), error) {
		if err := e.budget.Acquire(ctx, e.owner); err != nil {
			return nil, err
		}
		return e.budget.Release, nil
	})
}

// RunConfigs simulates every config on the worker pool and returns results
// in input order — position i holds cfgs[i]'s result — regardless of how
// many workers ran them. Cancelling ctx stops simulating promptly; the
// first simulation error cancels the remaining work. On error the returned
// slice holds the results completed so far (nil elsewhere).
//
// Progress accounting counts every job exactly once whatever its fate —
// simulated, served from memo, failed, or skipped because the run was
// already cancelled — so a Progress callback always observes a terminal
// done == total event, for successful, failing and cancelled runs alike.
func (e *Engine) RunConfigs(ctx context.Context, cfgs []core.Config) ([]*core.Result, error) {
	results := make([]*core.Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.workers
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	jobs := make(chan int)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
		done    int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// After cancellation jobs drain without simulating, but
				// still count toward the terminal progress event.
				if runCtx.Err() == nil {
					res, err := e.result(runCtx, cfgs[i])
					if err != nil {
						errOnce.Do(func() { runErr = err; cancel() })
					} else {
						results[i] = res
						if e.onResult != nil {
							e.progMu.Lock()
							e.onResult(i, res)
							e.progMu.Unlock()
						}
					}
				}
				if e.progress != nil {
					e.progMu.Lock()
					done++
					e.progress(done, len(cfgs))
					e.progMu.Unlock()
				}
			}
		}()
	}

	// Every job is fed unconditionally: cancelled runs drain the queue at
	// memo speed rather than abandoning it, which is what guarantees the
	// final done == total progress event.
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if runErr != nil {
		return results, runErr
	}
	return results, ctx.Err()
}

// Run expands the grid, simulates every cell, and returns the flattened
// records in grid order.
func (e *Engine) Run(ctx context.Context, g Grid) (*Sweep, error) {
	results, err := e.RunConfigs(ctx, g.Configs())
	if err != nil {
		return nil, err
	}
	return NewSweep(results), nil
}
