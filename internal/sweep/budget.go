package sweep

import (
	"context"
	"fmt"
	"sync"
)

// Budget is a shared simulation-worker budget with per-owner fair-share
// scheduling. It hands out up to its capacity in concurrent slots; when
// the budget is exhausted, waiters queue per owner and freed slots are
// granted round-robin across owners (FIFO within an owner). One Budget
// shared by every job on a host is what turns a pile of independent
// sweeps into a multi-tenant service: a giant grid can queue thousands
// of simulations without starving a two-cell job from another client,
// because each released slot visits every waiting owner in turn.
//
// The budget deliberately meters simulations, not lookups: the Store's
// gated path (ResultGated) acquires a slot only when it is about to run
// core.Run, so memo hits, in-flight joins and disk recalls cost nothing
// against the budget and overlapping grids dedupe at full speed.
type Budget struct {
	mu     sync.Mutex //wclint:lockrank 40
	free   int
	queues map[string][]chan struct{} // per-owner FIFO of waiters
	ring   []string                   // owners with waiters, round-robin order
	next   int                        // ring cursor: next owner to grant to
}

// NewBudget returns a budget of n concurrent slots. n must be positive.
func NewBudget(n int) *Budget {
	if n <= 0 {
		panic(fmt.Sprintf("sweep: budget capacity %d, want > 0", n))
	}
	return &Budget{free: n, queues: make(map[string][]chan struct{})}
}

// Acquire obtains one slot for owner, blocking while the budget is
// exhausted. It returns ctx.Err() — without a slot — when ctx is
// cancelled first. Every successful Acquire must be paired with exactly
// one Release.
func (b *Budget) Acquire(ctx context.Context, owner string) error {
	b.mu.Lock()
	if b.free > 0 {
		b.free--
		b.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	if len(b.queues[owner]) == 0 {
		b.ring = append(b.ring, owner)
	}
	b.queues[owner] = append(b.queues[owner], w)
	b.mu.Unlock()

	select {
	case <-w:
		return nil
	case <-ctx.Done():
		b.mu.Lock()
		select {
		case <-w:
			// The grant raced the cancellation and the slot is already
			// ours; hand it straight back so it is not leaked.
			b.releaseLocked()
		default:
			b.removeWaiterLocked(owner, w)
		}
		b.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a slot, granting it to the next waiter in fair-share
// order (or freeing it when no one waits).
func (b *Budget) Release() {
	b.mu.Lock()
	b.releaseLocked()
	b.mu.Unlock()
}

func (b *Budget) releaseLocked() {
	if len(b.ring) == 0 {
		b.free++
		return
	}
	if b.next >= len(b.ring) {
		b.next = 0
	}
	owner := b.ring[b.next]
	q := b.queues[owner]
	w := q[0]
	if len(q) == 1 {
		// Owner's queue drained: drop it from the ring. The cursor stays
		// put — the element that shifts into this position is the next
		// owner in ring order, so fairness is preserved.
		delete(b.queues, owner)
		b.ring = append(b.ring[:b.next], b.ring[b.next+1:]...)
	} else {
		b.queues[owner] = q[1:]
		b.next++
	}
	close(w) // the slot transfers directly to the waiter
}

// removeWaiterLocked drops an abandoned (cancelled) waiter from its
// owner's queue, pruning the owner from the ring when the queue empties.
func (b *Budget) removeWaiterLocked(owner string, w chan struct{}) {
	q := b.queues[owner]
	for i, cand := range q {
		if cand == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) > 0 {
		b.queues[owner] = q
		return
	}
	delete(b.queues, owner)
	for i, o := range b.ring {
		if o == owner {
			b.ring = append(b.ring[:i], b.ring[i+1:]...)
			if b.next > i {
				b.next--
			}
			break
		}
	}
}

// Waiting reports how many acquisitions are currently queued (all
// owners). Intended for stats endpoints and tests.
func (b *Budget) Waiting() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, q := range b.queues {
		n += len(q)
	}
	return n
}
