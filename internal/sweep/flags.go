package sweep

import "flag"

// GridFlags registers the design-space dimension flags shared by the sweep
// CLIs (cmd/sweep, cmd/sweepctl) on a FlagSet and assembles the Grid they
// describe, so every front end parses dimensions — and reports errors —
// identically.
type GridFlags struct {
	benches, dpols, ipols  *string
	dsizes, dways, dblocks *string
	isizes, iways, iblocks *string
	dlats, tsizes, vsizes  *string
	traces                 *string
	insts                  *int64
	paperCosts             *bool
}

// RegisterGridFlags defines the grid dimension flags on fs (use
// flag.CommandLine for a process's top-level flags) with the CLI-wide
// defaults: all benchmarks, the parallel baseline policies, Table 1
// geometry, 400k instructions.
func RegisterGridFlags(fs *flag.FlagSet) *GridFlags {
	return &GridFlags{
		benches: fs.String("benchmarks", "all", "comma-separated benchmarks, or 'all'"),
		dpols:   fs.String("dpolicies", "parallel", "d-cache policies (paper names, e.g. parallel,waypred-pc,seldm+waypred) or 'all'"),
		ipols:   fs.String("ipolicies", "parallel", "i-cache policies (parallel, waypred) or 'all'"),
		dsizes:  fs.String("dsizes", "", "d-cache sizes in bytes (k/m suffixes ok), e.g. 8k,16k,32k"),
		dways:   fs.String("dways", "", "d-cache associativities, e.g. 1,2,4,8,16"),
		dblocks: fs.String("dblocks", "", "d-cache block sizes in bytes"),
		isizes:  fs.String("isizes", "", "i-cache sizes in bytes (k/m suffixes ok)"),
		iways:   fs.String("iways", "", "i-cache associativities"),
		iblocks: fs.String("iblocks", "", "i-cache block sizes in bytes"),
		dlats:   fs.String("dlatencies", "", "base d-cache hit latencies in cycles, e.g. 1,2"),
		tsizes:  fs.String("tablesizes", "", "prediction-table sizes, e.g. 512,1024,2048"),
		vsizes:  fs.String("victimsizes", "", "victim-list sizes, e.g. 4,16,64"),
		traces: fs.String("traces", "",
			"content-addressed traces per benchmark, e.g. gcc=trace://<sha256> (needs a trace store)"),
		insts: fs.Int64("insts", 400_000, "instructions per configuration"),
		paperCosts: fs.Bool("papercosts", false,
			"use the paper's Table 3 energy constants instead of mini-CACTI"),
	}
}

// Grid assembles the parsed flag values into a normalized Grid,
// validating benchmark and policy names (a benchmark outside the
// synthetic suite is accepted when -traces maps it to a trace
// reference). Call after fs.Parse.
func (gf *GridFlags) Grid() (Grid, error) {
	g := Grid{Insts: *gf.insts, UsePaperCosts: *gf.paperCosts}
	g.Benchmarks = splitList(*gf.benches)
	var err error
	if g.TraceRefs, err = ParseTraceRefs(*gf.traces); err != nil {
		return g, err
	}
	if g.DPolicies, err = ParseDPolicies(*gf.dpols); err != nil {
		return g, err
	}
	if g.IPolicies, err = ParseIPolicies(*gf.ipols); err != nil {
		return g, err
	}
	for _, dim := range []struct {
		val string
		dst *[]int
	}{
		{*gf.dsizes, &g.DSizes}, {*gf.dways, &g.DWays}, {*gf.dblocks, &g.DBlocks},
		{*gf.isizes, &g.ISizes}, {*gf.iways, &g.IWays}, {*gf.iblocks, &g.IBlocks},
		{*gf.dlats, &g.DLatencies}, {*gf.tsizes, &g.TableSizes}, {*gf.vsizes, &g.VictimSizes},
	} {
		if *dim.dst, err = ParseIntList(dim.val); err != nil {
			return g, err
		}
	}
	return g.Normalize()
}
