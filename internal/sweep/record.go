package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"waycache/internal/core"
)

// Record is one simulated configuration flattened for machine consumption:
// the canonical configuration alongside its timing, cache and energy
// results. Every field is derived from the simulation alone (no wall-clock
// or host state), so serialized records are byte-identical across runs and
// worker counts.
type Record struct {
	Benchmark string `json:"benchmark"`
	DPolicy   string `json:"dPolicy"`
	IPolicy   string `json:"iPolicy"`

	DSize  int `json:"dSize"`
	DWays  int `json:"dWays"`
	DBlock int `json:"dBlock"`
	ISize  int `json:"iSize"`
	IWays  int `json:"iWays"`
	IBlock int `json:"iBlock"`

	DLatency   int `json:"dLatency"`
	TableSize  int `json:"tableSize"`
	VictimSize int `json:"victimSize"`
	// SelectiveWays (the Albonesi related-work baseline) and
	// UsePaperCosts (Table 3 constants instead of mini-CACTI) are part of
	// the memo key, so they must be part of the record too: without them,
	// a corpus holding those runs would show conflicting rows with
	// identical columns.
	SelectiveWays int   `json:"selectiveWays"`
	UsePaperCosts bool  `json:"usePaperCosts"`
	Insts         int64 `json:"insts"`

	Cycles int64   `json:"cycles"`
	IPC    float64 `json:"ipc"`

	DMissRate       float64 `json:"dMissRate"`
	IMissRate       float64 `json:"iMissRate"`
	WayPredAccuracy float64 `json:"wayPredAccuracy"`
	IWayAccuracy    float64 `json:"iWayAccuracy"`

	DCacheEnergy float64 `json:"dCacheEnergy"`
	ICacheEnergy float64 `json:"iCacheEnergy"`
	ProcEnergy   float64 `json:"procEnergy"`
	// DCacheED and ProcED are energy x cycles, the quantity the paper's
	// relative figures are ratios of.
	DCacheED float64 `json:"dCacheED"`
	ProcED   float64 `json:"procED"`
}

// NewRecord flattens one simulation result.
func NewRecord(r *core.Result) Record {
	cfg := r.Config.Canonical()
	rec := Record{
		Benchmark: r.Benchmark,
		DPolicy:   cfg.DPolicy.String(),
		IPolicy:   cfg.IPolicy.String(),
		DSize:     cfg.DSize, DWays: cfg.DWays, DBlock: cfg.DBlock,
		ISize: cfg.ISize, IWays: cfg.IWays, IBlock: cfg.IBlock,
		DLatency:      cfg.DLatency,
		TableSize:     cfg.TableSize,
		VictimSize:    cfg.VictimSize,
		SelectiveWays: cfg.SelectiveWays,
		UsePaperCosts: cfg.UsePaperCosts,
		Insts:         cfg.Insts,

		Cycles:          r.Cycles(),
		DMissRate:       r.DMissRate(),
		IMissRate:       r.IL1.MissRate(),
		WayPredAccuracy: r.WayPredAccuracy(),
		IWayAccuracy:    r.IWayAccuracy(),

		DCacheEnergy: r.DCacheEnergy(),
		ICacheEnergy: r.ICacheEnergy(),
		ProcEnergy:   r.ProcessorEnergy(),
	}
	if rec.Cycles > 0 {
		rec.IPC = float64(r.Pipeline.Committed) / float64(rec.Cycles)
	}
	rec.DCacheED = rec.DCacheEnergy * float64(rec.Cycles)
	rec.ProcED = rec.ProcEnergy * float64(rec.Cycles)
	return rec
}

// Sweep is the merged output of one grid run, records in grid order.
type Sweep struct {
	Records []Record `json:"records"`
}

// NewSweep flattens simulation results (in their existing order) into a
// Sweep, one record per result.
func NewSweep(results []*core.Result) *Sweep {
	sw := &Sweep{Records: make([]Record, len(results))}
	for i, r := range results {
		sw.Records[i] = NewRecord(r)
	}
	return sw
}

// WriteJSON emits the records as an indented JSON array. Output bytes
// depend only on the records, making worker-count-independence testable
// with a byte compare.
func (s *Sweep) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Records)
}

// csvHeader lists the CSV columns, in Record field order.
var csvHeader = []string{
	"benchmark", "dPolicy", "iPolicy",
	"dSize", "dWays", "dBlock", "iSize", "iWays", "iBlock",
	"dLatency", "tableSize", "victimSize", "selectiveWays", "usePaperCosts", "insts",
	"cycles", "ipc",
	"dMissRate", "iMissRate", "wayPredAccuracy", "iWayAccuracy",
	"dCacheEnergy", "iCacheEnergy", "procEnergy", "dCacheED", "procED",
}

// WriteCSV emits the records as CSV with a header row.
func (s *Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	for _, r := range s.Records {
		row := []string{
			r.Benchmark, r.DPolicy, r.IPolicy,
			d(r.DSize), d(r.DWays), d(r.DBlock), d(r.ISize), d(r.IWays), d(r.IBlock),
			d(r.DLatency), d(r.TableSize), d(r.VictimSize),
			d(r.SelectiveWays), strconv.FormatBool(r.UsePaperCosts),
			strconv.FormatInt(r.Insts, 10),
			strconv.FormatInt(r.Cycles, 10), f(r.IPC),
			f(r.DMissRate), f(r.IMissRate), f(r.WayPredAccuracy), f(r.IWayAccuracy),
			f(r.DCacheEnergy), f(r.ICacheEnergy), f(r.ProcEnergy), f(r.DCacheED), f(r.ProcED),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
