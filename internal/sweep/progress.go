package sweep

import (
	"fmt"
	"io"
	"time"
)

// Progress receives one event per completed sweep job: done jobs out of
// total. The engine serializes calls, so implementations need no locking.
type Progress func(done, total int)

// TextProgress returns a Progress that renders a live single-line counter
// to w (intended for stderr), with throughput and, when store is non-nil,
// memoization accounting. Wall-clock appears only here, never in records,
// so progress output cannot perturb result determinism.
func TextProgress(w io.Writer, store *Store) Progress {
	var start, last time.Time
	return func(done, total int) {
		now := time.Now() //wclint:nondeterministic-ok throughput display on stderr only; wall-clock never reaches records (see doc comment)
		if start.IsZero() {
			start = now
		}
		// Throttle redraws; always draw the final state.
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		rate := 0.0
		if el := now.Sub(start).Seconds(); el > 0 {
			rate = float64(done) / el
		}
		line := fmt.Sprintf("\rsweep: %d/%d configs, %.1f configs/s", done, total, rate)
		if store != nil {
			line += fmt.Sprintf(" (%d simulated, %d memo hits)", store.Misses(), store.Hits())
		}
		fmt.Fprint(w, line)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}
