package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

func captureBench(t *testing.T, dir, bench string, n int64) string {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, bench+trace.FileExt)
	if err := p.CaptureFile(path, n); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceDirSweepByteIdentical is the acceptance property: a sweep run
// from captured traces emits byte-identical JSON and CSV to the same sweep
// run from the live walkers.
func TestTraceDirSweepByteIdentical(t *testing.T) {
	const insts = 20_000
	dir := t.TempDir()
	captureBench(t, dir, "gcc", insts)
	captureBench(t, dir, "swim", insts)

	g := Grid{
		Benchmarks: []string{"gcc", "swim"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		Insts:      insts,
	}
	ctx := context.Background()

	walkEng := New(Options{Workers: 4})
	walkSweep, err := walkEng.Run(ctx, g)
	if err != nil {
		t.Fatal(err)
	}

	traceEng := New(Options{Workers: 4, TraceDir: dir})
	results, err := traceEng.RunConfigs(ctx, g.Configs())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Config.Trace == "" {
			t.Fatalf("config %d did not resolve to a captured trace", i)
		}
	}
	traceSweep := NewSweep(results)

	var wantJSON, gotJSON, wantCSV, gotCSV bytes.Buffer
	if err := walkSweep.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := traceSweep.WriteJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Fatal("trace-replayed sweep JSON differs from walker sweep JSON")
	}
	if err := walkSweep.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if err := traceSweep.WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantCSV.Bytes(), gotCSV.Bytes()) {
		t.Fatal("trace-replayed sweep CSV differs from walker sweep CSV")
	}
}

// TestTraceDirFallsBackToWalker: benchmarks without a usable capture must
// simulate from the generator — and say so in the fallback report, so the
// reversion is never silent.
func TestTraceDirFallsBackToWalker(t *testing.T) {
	const insts = 5_000
	dir := t.TempDir()
	captureBench(t, dir, "gcc", insts)

	eng := New(Options{Workers: 2, TraceDir: dir})
	ctx := context.Background()
	cfgs := []core.Config{
		{Benchmark: "gcc", Insts: insts},  // has a capture
		{Benchmark: "swim", Insts: insts}, // no capture on disk
	}
	results, err := eng.RunConfigs(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Config.Trace == "" {
		t.Fatal("gcc did not replay its capture")
	}
	if results[1].Config.Trace != "" {
		t.Fatal("swim resolved a trace that does not exist")
	}
	if results[1].Benchmark != "swim" || results[1].Cycles() == 0 {
		t.Fatal("walker fallback did not simulate")
	}

	fb := eng.TraceFallbacks()
	if len(fb) != 1 {
		t.Fatalf("TraceFallbacks = %v, want exactly swim", fb)
	}
	if fb["swim"] == "" {
		t.Fatalf("swim fallback has no reason: %v", fb)
	}
	if _, leaked := fb["gcc"]; leaked {
		t.Fatalf("gcc replayed but appears in the fallback report: %v", fb)
	}
	lines := FormatFallbacks(fb)
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "swim: ") {
		t.Fatalf("FormatFallbacks = %q", lines)
	}
}

// TestTraceFallbackReasons: each rejection class must report a reason that
// names the actual defect.
func TestTraceFallbackReasons(t *testing.T) {
	const insts = int64(2_000)

	t.Run("short capture", func(t *testing.T) {
		dir := t.TempDir()
		captureBench(t, dir, "gcc", 1_000)
		eng := New(Options{TraceDir: dir})
		if _, err := eng.Result(core.Config{Benchmark: "gcc", Insts: 50_000}); err != nil {
			t.Fatal(err)
		}
		if why := eng.TraceFallbacks()["gcc"]; !strings.Contains(why, "1000") || !strings.Contains(why, "50000") {
			t.Errorf("short-capture reason %q does not name the counts", why)
		}
	})

	t.Run("stale seed", func(t *testing.T) {
		dir := t.TempDir()
		p, err := workload.ByName("gcc")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "gcc"+trace.FileExt)
		h := trace.Header{Benchmark: "gcc", Seed: p.Seed + 1, Insts: insts}
		if err := trace.CaptureFile(path, h, p.NewWalker()); err != nil {
			t.Fatal(err)
		}
		eng := New(Options{TraceDir: dir})
		if _, err := eng.Result(core.Config{Benchmark: "gcc", Insts: insts}); err != nil {
			t.Fatal(err)
		}
		if why := eng.TraceFallbacks()["gcc"]; !strings.Contains(why, "stale") {
			t.Errorf("stale-seed reason %q does not say stale", why)
		}
	})

	t.Run("corrupt file", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "gcc"+trace.FileExt)
		if err := os.WriteFile(path, []byte("not a trace file"), 0o644); err != nil {
			t.Fatal(err)
		}
		eng := New(Options{TraceDir: dir})
		if _, err := eng.Result(core.Config{Benchmark: "gcc", Insts: insts}); err != nil {
			t.Fatal(err)
		}
		if why := eng.TraceFallbacks()["gcc"]; why == "" {
			t.Error("corrupt capture produced no fallback reason")
		}
	})

	t.Run("no trace dir", func(t *testing.T) {
		eng := New(Options{})
		if _, err := eng.Result(core.Config{Benchmark: "gcc", Insts: insts}); err != nil {
			t.Fatal(err)
		}
		if fb := eng.TraceFallbacks(); fb != nil {
			t.Errorf("engine without TraceDir reports fallbacks: %v", fb)
		}
	})

	t.Run("clean replay", func(t *testing.T) {
		dir := t.TempDir()
		captureBench(t, dir, "gcc", insts)
		eng := New(Options{TraceDir: dir})
		if _, err := eng.Result(core.Config{Benchmark: "gcc", Insts: insts}); err != nil {
			t.Fatal(err)
		}
		if fb := eng.TraceFallbacks(); len(fb) != 0 {
			t.Errorf("clean replay reports fallbacks: %v", fb)
		}
	})
}

func TestTraceDirRejectsShortCapture(t *testing.T) {
	dir := t.TempDir()
	captureBench(t, dir, "gcc", 1_000)
	eng := New(Options{TraceDir: dir})
	res, err := eng.Result(core.Config{Benchmark: "gcc", Insts: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Trace != "" {
		t.Fatal("a 1k-instruction capture was used for a 50k-instruction run")
	}
}

func TestTraceDirRejectsStaleSeed(t *testing.T) {
	const insts = int64(2_000)
	dir := t.TempDir()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	// A capture whose header seed no longer matches the profile models a
	// stale file from before a generator change: it must be ignored.
	path := filepath.Join(dir, "gcc"+trace.FileExt)
	h := trace.Header{Benchmark: "gcc", Seed: p.Seed + 1, Insts: insts}
	if err := trace.CaptureFile(path, h, p.NewWalker()); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{TraceDir: dir})
	res, err := eng.Result(core.Config{Benchmark: "gcc", Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Trace != "" {
		t.Fatal("stale-seed capture was replayed")
	}
}

func TestTraceDirIgnoresCorruptFile(t *testing.T) {
	const insts = int64(2_000)
	dir := t.TempDir()
	path := filepath.Join(dir, "gcc"+trace.FileExt)
	if err := os.WriteFile(path, []byte("not a trace file"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{TraceDir: dir})
	res, err := eng.Result(core.Config{Benchmark: "gcc", Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Trace != "" {
		t.Fatal("corrupt file was treated as a trace")
	}
}
