package sweep

// Query layer over flattened Records: dimension filters, a canonical sort
// order, and grouped aggregation. The HTTP service (internal/server) is
// built on these, but they are plain slice transforms usable by any
// consumer of a result corpus.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Filter selects records by exact-match dimension values. Empty (nil or
// zero) fields match everything, so the zero Filter selects every record.
type Filter struct {
	Benchmarks []string
	DPolicies  []string // paper names, as Record carries them
	IPolicies  []string

	DSizes, DWays, DBlocks []int
	ISizes, IWays, IBlocks []int
	DLatencies             []int
	TableSizes             []int
	VictimSizes            []int
	SelectiveWays          []int

	// UsePaperCosts: nil matches both cost models, otherwise exact.
	UsePaperCosts *bool

	Insts int64 // 0 matches any instruction count
}

func matchString(allowed []string, v string) bool {
	if len(allowed) == 0 {
		return true
	}
	for _, a := range allowed {
		if a == v {
			return true
		}
	}
	return false
}

func matchInt(allowed []int, v int) bool {
	if len(allowed) == 0 {
		return true
	}
	for _, a := range allowed {
		if a == v {
			return true
		}
	}
	return false
}

// Match reports whether r satisfies every populated dimension of f.
func (f Filter) Match(r Record) bool {
	return matchString(f.Benchmarks, r.Benchmark) &&
		matchString(f.DPolicies, r.DPolicy) &&
		matchString(f.IPolicies, r.IPolicy) &&
		matchInt(f.DSizes, r.DSize) &&
		matchInt(f.DWays, r.DWays) &&
		matchInt(f.DBlocks, r.DBlock) &&
		matchInt(f.ISizes, r.ISize) &&
		matchInt(f.IWays, r.IWays) &&
		matchInt(f.IBlocks, r.IBlock) &&
		matchInt(f.DLatencies, r.DLatency) &&
		matchInt(f.TableSizes, r.TableSize) &&
		matchInt(f.VictimSizes, r.VictimSize) &&
		matchInt(f.SelectiveWays, r.SelectiveWays) &&
		(f.UsePaperCosts == nil || *f.UsePaperCosts == r.UsePaperCosts) &&
		(f.Insts == 0 || f.Insts == r.Insts)
}

// Apply returns the records matching f, in their incoming order.
func (f Filter) Apply(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

// CompareRecords orders records by their configuration columns in the grid
// expansion order (benchmark slowest, victim-list size fastest), so a
// sorted record set from any source — a log scan, a merge of shards —
// reads like one deterministic grid.
func CompareRecords(a, b Record) int {
	if c := strings.Compare(a.Benchmark, b.Benchmark); c != 0 {
		return c
	}
	if c := strings.Compare(a.DPolicy, b.DPolicy); c != 0 {
		return c
	}
	if c := strings.Compare(a.IPolicy, b.IPolicy); c != 0 {
		return c
	}
	boolInt := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	ints := [][2]int{
		{a.DSize, b.DSize}, {a.DWays, b.DWays}, {a.DBlock, b.DBlock},
		{a.ISize, b.ISize}, {a.IWays, b.IWays}, {a.IBlock, b.IBlock},
		{a.DLatency, b.DLatency}, {a.TableSize, b.TableSize}, {a.VictimSize, b.VictimSize},
		{a.SelectiveWays, b.SelectiveWays},
		{boolInt(a.UsePaperCosts), boolInt(b.UsePaperCosts)},
	}
	for _, p := range ints {
		if p[0] != p[1] {
			if p[0] < p[1] {
				return -1
			}
			return 1
		}
	}
	switch {
	case a.Insts < b.Insts:
		return -1
	case a.Insts > b.Insts:
		return 1
	}
	return 0
}

// SortRecords sorts records canonically (see CompareRecords), in place.
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return CompareRecords(recs[i], recs[j]) < 0 })
}

// Dimensions lists the group-by dimension names Aggregate accepts — the
// Record configuration columns, spelled like the JSON/CSV headers.
func Dimensions() []string {
	return []string{
		"benchmark", "dPolicy", "iPolicy",
		"dSize", "dWays", "dBlock", "iSize", "iWays", "iBlock",
		"dLatency", "tableSize", "victimSize", "selectiveWays", "usePaperCosts",
	}
}

// Metrics lists the metric names Aggregate accepts — the Record result
// columns, spelled like the JSON/CSV headers.
func Metrics() []string {
	return []string{
		"cycles", "ipc",
		"dMissRate", "iMissRate", "wayPredAccuracy", "iWayAccuracy",
		"dCacheEnergy", "iCacheEnergy", "procEnergy", "dCacheED", "procED",
	}
}

// dimValue renders one configuration column of r as its group label.
func dimValue(r Record, dim string) (string, error) {
	switch dim {
	case "benchmark":
		return r.Benchmark, nil
	case "dPolicy":
		return r.DPolicy, nil
	case "iPolicy":
		return r.IPolicy, nil
	case "dSize":
		return strconv.Itoa(r.DSize), nil
	case "dWays":
		return strconv.Itoa(r.DWays), nil
	case "dBlock":
		return strconv.Itoa(r.DBlock), nil
	case "iSize":
		return strconv.Itoa(r.ISize), nil
	case "iWays":
		return strconv.Itoa(r.IWays), nil
	case "iBlock":
		return strconv.Itoa(r.IBlock), nil
	case "dLatency":
		return strconv.Itoa(r.DLatency), nil
	case "tableSize":
		return strconv.Itoa(r.TableSize), nil
	case "victimSize":
		return strconv.Itoa(r.VictimSize), nil
	case "selectiveWays":
		return strconv.Itoa(r.SelectiveWays), nil
	case "usePaperCosts":
		return strconv.FormatBool(r.UsePaperCosts), nil
	}
	return "", fmt.Errorf("sweep: unknown dimension %q (have %s)", dim, strings.Join(Dimensions(), ", "))
}

// metricValue extracts one result column of r.
func metricValue(r Record, metric string) (float64, error) {
	switch metric {
	case "cycles":
		return float64(r.Cycles), nil
	case "ipc":
		return r.IPC, nil
	case "dMissRate":
		return r.DMissRate, nil
	case "iMissRate":
		return r.IMissRate, nil
	case "wayPredAccuracy":
		return r.WayPredAccuracy, nil
	case "iWayAccuracy":
		return r.IWayAccuracy, nil
	case "dCacheEnergy":
		return r.DCacheEnergy, nil
	case "iCacheEnergy":
		return r.ICacheEnergy, nil
	case "procEnergy":
		return r.ProcEnergy, nil
	case "dCacheED":
		return r.DCacheED, nil
	case "procED":
		return r.ProcED, nil
	}
	return 0, fmt.Errorf("sweep: unknown metric %q (have %s)", metric, strings.Join(Metrics(), ", "))
}

// GroupStat summarizes one group's metric values.
type GroupStat struct {
	Group string  `json:"group"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Aggregate groups records by one configuration dimension and summarizes
// one metric per group (count, mean, min, max). Groups appear in the
// canonical sorted order of their records, so the output bytes depend only
// on the record set, never on map iteration or arrival order.
func Aggregate(recs []Record, dim, metric string) ([]GroupStat, error) {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	SortRecords(sorted)

	var (
		order []string
		acc   = make(map[string]*GroupStat)
	)
	for _, r := range sorted {
		label, err := dimValue(r, dim)
		if err != nil {
			return nil, err
		}
		v, err := metricValue(r, metric)
		if err != nil {
			return nil, err
		}
		g, ok := acc[label]
		if !ok {
			g = &GroupStat{Group: label, Min: v, Max: v}
			acc[label] = g
			order = append(order, label)
		}
		g.Count++
		g.Mean += v // sum for now; divided below
		if v < g.Min {
			g.Min = v
		}
		if v > g.Max {
			g.Max = v
		}
	}
	out := make([]GroupStat, len(order))
	for i, label := range order {
		g := acc[label]
		g.Mean /= float64(g.Count)
		out[i] = *g
	}
	return out, nil
}

// WriteGroupStatsJSON emits aggregation output as an indented JSON array,
// styled like Sweep.WriteJSON.
func WriteGroupStatsJSON(w io.Writer, stats []GroupStat) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(stats)
}

// WriteGroupStatsCSV emits aggregation output as CSV; the first column is
// named after the group-by dimension.
func WriteGroupStatsCSV(w io.Writer, dim string, stats []GroupStat) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{dim, "count", "mean", "min", "max"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, g := range stats {
		if err := cw.Write([]string{g.Group, strconv.Itoa(g.Count), f(g.Mean), f(g.Min), f(g.Max)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
