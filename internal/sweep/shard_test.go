package sweep

import (
	"testing"

	"waycache/internal/access"
	"waycache/internal/core"
)

// syntheticConfigs returns n pairwise-distinct configs (Insts encodes the
// index), so slicing mistakes show up as value mismatches, not just
// length mismatches.
func syntheticConfigs(n int) []core.Config {
	cfgs := make([]core.Config, n)
	for i := range cfgs {
		cfgs[i] = core.Config{Benchmark: "gcc", Insts: int64(i + 1)}
	}
	return cfgs
}

// TestShardPartitionProperty is the contract the distributed coordinator's
// merge determinism rests on: for every total and every shard count —
// including n that does not divide the total and n larger than the total —
// concatenating Shard(cfgs, i, n) for i = 0..n-1 reproduces cfgs exactly,
// shard sizes are contiguous and near-equal (leading shards take the
// remainder), and ShardLen predicts every length without expansion.
func TestShardPartitionProperty(t *testing.T) {
	for _, total := range []int{0, 1, 2, 3, 5, 7, 8, 16, 17, 31} {
		cfgs := syntheticConfigs(total)
		for n := 1; n <= total+5; n++ {
			var concat []core.Config
			prevSize := -1
			for i := 0; i < n; i++ {
				shard := Shard(cfgs, i, n)
				if got, want := len(shard), ShardLen(total, i, n); got != want {
					t.Fatalf("total=%d n=%d i=%d: len(Shard)=%d, ShardLen=%d", total, n, i, got, want)
				}
				// Leading shards absorb the remainder: sizes are
				// non-increasing and differ by at most one.
				if prevSize >= 0 {
					if len(shard) > prevSize {
						t.Fatalf("total=%d n=%d i=%d: shard grew from %d to %d", total, n, i, prevSize, len(shard))
					}
					if prevSize-len(shard) > 1 {
						t.Fatalf("total=%d n=%d i=%d: shard sizes %d and %d differ by more than 1",
							total, n, i, prevSize, len(shard))
					}
				}
				prevSize = len(shard)
				concat = append(concat, shard...)
			}
			if len(concat) != total {
				t.Fatalf("total=%d n=%d: concatenated length %d", total, n, len(concat))
			}
			for i := range concat {
				if concat[i] != cfgs[i] {
					t.Fatalf("total=%d n=%d: concat[%d] = %+v, want %+v", total, n, i, concat[i], cfgs[i])
				}
			}
		}
	}
}

// TestShardMoreShardsThanConfigs: with n > len(cfgs) the trailing shards
// must be empty, never out of range, and the non-empty ones singletons.
func TestShardMoreShardsThanConfigs(t *testing.T) {
	cfgs := syntheticConfigs(3)
	const n = 7
	for i := 0; i < n; i++ {
		shard := Shard(cfgs, i, n)
		want := 0
		if i < len(cfgs) {
			want = 1
		}
		if len(shard) != want {
			t.Errorf("Shard(3 cfgs, %d, %d) has %d configs, want %d", i, n, len(shard), want)
		}
	}
}

func TestShardInvalidArgs(t *testing.T) {
	cfgs := syntheticConfigs(4)
	for _, tc := range []struct{ i, n int }{
		{0, 0}, {0, -1}, {-1, 2}, {2, 2}, {5, 2},
	} {
		if got := Shard(cfgs, tc.i, tc.n); got != nil {
			t.Errorf("Shard(cfgs, %d, %d) = %d configs, want nil", tc.i, tc.n, len(got))
		}
		if got := ShardLen(len(cfgs), tc.i, tc.n); got != 0 {
			t.Errorf("ShardLen(4, %d, %d) = %d, want 0", tc.i, tc.n, got)
		}
	}
	if got := ShardLen(-1, 0, 1); got != 0 {
		t.Errorf("ShardLen(-1, 0, 1) = %d, want 0", got)
	}
}

// TestShardGridExpansion runs the property on a real grid expansion, the
// thing the coordinator actually slices.
func TestShardGridExpansion(t *testing.T) {
	g := Grid{
		Benchmarks: []string{"gcc", "swim", "li"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		DWays:      []int{1, 2, 4},
		Insts:      1000,
	}
	cfgs := g.Configs()
	if len(cfgs) != g.Size() {
		t.Fatalf("Configs len %d != Size %d", len(cfgs), g.Size())
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7, len(cfgs), len(cfgs) + 3} {
		var concat []core.Config
		for i := 0; i < n; i++ {
			concat = append(concat, Shard(cfgs, i, n)...)
		}
		if len(concat) != len(cfgs) {
			t.Fatalf("n=%d: concat %d configs, want %d", n, len(concat), len(cfgs))
		}
		for i := range concat {
			k1, _ := concat[i].Key()
			k2, _ := cfgs[i].Key()
			if k1 != k2 {
				t.Fatalf("n=%d: concat[%d] key %q != %q", n, i, k1, k2)
			}
		}
	}
}

func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("2/5")
	if err != nil || i != 2 || n != 5 {
		t.Errorf("ParseShard(2/5) = %d,%d,%v", i, n, err)
	}
	if got := FormatShard(2, 5); got != "2/5" {
		t.Errorf("FormatShard(2,5) = %q", got)
	}
	for _, bad := range []string{"", "x", "1", "5/2", "2/2", "-1/2", "1/0", "1/-3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) did not error", bad)
		}
	}
}
