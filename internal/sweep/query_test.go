package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"waycache/internal/access"
)

// rec builds a minimal record for query tests.
func rec(bench, dpol string, dways int, procED float64) Record {
	return Record{
		Benchmark: bench, DPolicy: dpol, IPolicy: "parallel",
		DSize: 16 << 10, DWays: dways, DBlock: 32,
		ISize: 16 << 10, IWays: 4, IBlock: 32,
		DLatency: 1, TableSize: 1024, VictimSize: 16, Insts: 1000,
		ProcED: procED,
	}
}

func queryRecords() []Record {
	return []Record{
		rec("swim", "parallel", 4, 40),
		rec("gcc", "seldm+waypred", 2, 10),
		rec("gcc", "parallel", 4, 30),
		rec("gcc", "parallel", 2, 20),
	}
}

func TestFilterMatch(t *testing.T) {
	recs := queryRecords()
	for _, tc := range []struct {
		name string
		f    Filter
		want int
	}{
		{"zero filter matches all", Filter{}, 4},
		{"benchmark", Filter{Benchmarks: []string{"gcc"}}, 3},
		{"policy", Filter{DPolicies: []string{"seldm+waypred"}}, 1},
		{"geometry", Filter{DWays: []int{2}}, 2},
		{"conjunction", Filter{Benchmarks: []string{"gcc"}, DPolicies: []string{"parallel"}, DWays: []int{4}}, 1},
		{"insts", Filter{Insts: 999}, 0},
		{"no match", Filter{Benchmarks: []string{"mcf"}}, 0},
	} {
		if got := len(tc.f.Apply(recs)); got != tc.want {
			t.Errorf("%s: matched %d records, want %d", tc.name, got, tc.want)
		}
	}
}

func TestSortRecordsCanonical(t *testing.T) {
	recs := queryRecords()
	SortRecords(recs)
	var got []string
	for _, r := range recs {
		got = append(got, r.Benchmark+"/"+r.DPolicy+"/"+itoa(r.DWays))
	}
	want := []string{
		"gcc/parallel/2", "gcc/parallel/4", "gcc/seldm+waypred/2", "swim/parallel/4",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sorted order = %v, want %v", got, want)
	}
}

func itoa(v int) string {
	return string(rune('0' + v))
}

func TestAggregate(t *testing.T) {
	stats, err := Aggregate(queryRecords(), "benchmark", "procED")
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	want := []GroupStat{
		{Group: "gcc", Count: 3, Mean: 20, Min: 10, Max: 30},
		{Group: "swim", Count: 1, Mean: 40, Min: 40, Max: 40},
	}
	if !reflect.DeepEqual(stats, want) {
		t.Errorf("Aggregate = %+v, want %+v", stats, want)
	}

	if _, err := Aggregate(queryRecords(), "nope", "procED"); err == nil {
		t.Errorf("Aggregate accepted an unknown dimension")
	}
	if _, err := Aggregate(queryRecords(), "benchmark", "nope"); err == nil {
		t.Errorf("Aggregate accepted an unknown metric")
	}

	// Every advertised dimension and metric must resolve.
	for _, dim := range Dimensions() {
		if _, err := Aggregate(queryRecords(), dim, "cycles"); err != nil {
			t.Errorf("dimension %q: %v", dim, err)
		}
	}
	for _, m := range Metrics() {
		if _, err := Aggregate(queryRecords(), "benchmark", m); err != nil {
			t.Errorf("metric %q: %v", m, err)
		}
	}
}

func TestGroupStatWriters(t *testing.T) {
	stats, err := Aggregate(queryRecords(), "dPolicy", "procED")
	if err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	if err := WriteGroupStatsJSON(&jb, stats); err != nil {
		t.Fatal(err)
	}
	var decoded []GroupStat
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if !reflect.DeepEqual(decoded, stats) {
		t.Errorf("JSON round trip differs")
	}

	var cb bytes.Buffer
	if err := WriteGroupStatsCSV(&cb, "dPolicy", stats); err != nil {
		t.Fatal(err)
	}
	wantHeader := "dPolicy,count,mean,min,max\n"
	if !bytes.HasPrefix(cb.Bytes(), []byte(wantHeader)) {
		t.Errorf("CSV header = %q, want prefix %q", cb.String(), wantHeader)
	}
}

func TestGridSizeSaturates(t *testing.T) {
	// A grid whose cartesian product would overflow must saturate at
	// SizeCap, not wrap: size limits (like the HTTP service's per-job
	// bound) compare against Size and would otherwise be bypassed.
	big := make([]int, 1024)
	g := Grid{DSizes: big, DWays: big, DBlocks: big, ISizes: big, IWays: big, IBlocks: big}
	if got := g.Size(); got != SizeCap {
		t.Errorf("overflowing grid Size() = %d, want SizeCap %d", got, SizeCap)
	}
	small := Grid{DWays: []int{1, 2, 4}}
	if got := small.Size(); got != 3 {
		t.Errorf("small grid Size() = %d, want 3", got)
	}
}

func TestGridJSONPolicyNames(t *testing.T) {
	// Grid submissions (the HTTP API body) accept policy names...
	var g Grid
	body := `{"Benchmarks":["gcc"],"DPolicies":["parallel","seldm+waypred"],"IPolicies":["waypred"],"DWays":[2,4]}`
	if err := json.Unmarshal([]byte(body), &g); err != nil {
		t.Fatalf("unmarshal named policies: %v", err)
	}
	if !reflect.DeepEqual(g.DPolicies, []access.DPolicy{access.DParallel, access.DSelDMWayPred}) {
		t.Errorf("DPolicies = %v", g.DPolicies)
	}
	if !reflect.DeepEqual(g.IPolicies, []access.IPolicy{access.IWayPred}) {
		t.Errorf("IPolicies = %v", g.IPolicies)
	}

	// ...and legacy integer enum values.
	if err := json.Unmarshal([]byte(`{"DPolicies":[0,5]}`), &g); err != nil {
		t.Fatalf("unmarshal integer policies: %v", err)
	}
	if !reflect.DeepEqual(g.DPolicies, []access.DPolicy{access.DParallel, access.DSelDMWayPred}) {
		t.Errorf("integer DPolicies = %v", g.DPolicies)
	}

	// Unknown names are rejected, not zeroed.
	if err := json.Unmarshal([]byte(`{"DPolicies":["bogus"]}`), &g); err == nil {
		t.Errorf("unmarshal accepted an unknown policy name")
	}

	// Marshal emits names, keeping submitted grids human-readable in job
	// listings.
	data, err := json.Marshal(Grid{DPolicies: []access.DPolicy{access.DSelDMWayPred}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"seldm+waypred"`)) {
		t.Errorf("marshaled grid %s does not name its policy", data)
	}
}
