package sweep

import (
	"sync"

	"waycache/internal/core"
)

// Store memoizes simulation results by canonical config key. It is safe
// for concurrent use and deduplicates in-flight work: when several workers
// ask for the same configuration at once, exactly one simulates it and the
// rest block on its completion (errors are memoized alongside results, so
// a bad configuration fails every caller identically). One Store shared
// across experiments gives cross-experiment memoization of common
// baselines.
type Store struct {
	mu      sync.Mutex
	entries map[string]*entry
	hits    int64
	misses  int64
}

type entry struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// NewStore returns an empty result store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*entry)}
}

// Result returns the memoized result for cfg, simulating it at most once
// across all concurrent callers. Configs driving a custom trace Source
// have no canonical key and bypass the store entirely.
func (s *Store) Result(cfg core.Config) (*core.Result, error) {
	key, ok := cfg.Key()
	if !ok {
		return core.Run(cfg)
	}
	s.mu.Lock()
	if e, found := s.entries[key]; found {
		s.hits++
		s.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	s.entries[key] = e
	s.misses++
	s.mu.Unlock()

	e.res, e.err = core.Run(cfg)
	close(e.done)
	return e.res, e.err
}

// Hits returns how many lookups were served from memo (including lookups
// that joined an in-flight simulation).
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses returns how many lookups started a fresh simulation.
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Len returns the number of memoized configurations.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
