package sweep

import (
	"sync"

	"waycache/internal/core"
)

// Store memoizes simulation results by canonical config key. Completed
// results live in a pluggable Backend (in-memory by default, optionally
// tiered over the on-disk resultdb); the Store itself contributes what no
// backend can: in-flight deduplication — when several workers ask for the
// same configuration at once, exactly one simulates it and the rest block
// on its completion — and error memoization, so a bad configuration fails
// every caller with the identical error after a single attempt. Errors are
// memoized in memory only, never persisted: a config that failed this
// process (bad trace file, impossible geometry) is retried by the next
// one. One Store shared across experiments gives cross-experiment
// memoization of common baselines.
type Store struct {
	backend Backend

	mu       sync.Mutex //wclint:lockrank 30
	inflight map[string]*entry
	errs     map[string]error
	hits     int64
	misses   int64
	bErr     error
}

type entry struct {
	done    chan struct{}
	res     *core.Result
	err     error
	gateErr error // admission denied: entry is void, waiters must retry
}

// NewStore returns a store memoizing into a fresh in-memory backend.
func NewStore() *Store { return NewStoreOn(NewMemory()) }

// NewStoreOn returns a store memoizing into b. Layer backends with Tiered
// to front a durable tier with a fast one (see OpenDiskStore).
func NewStoreOn(b Backend) *Store {
	return &Store{
		backend:  b,
		inflight: make(map[string]*entry),
		errs:     make(map[string]error),
	}
}

// Result returns the memoized result for cfg, simulating it at most once
// across all concurrent callers. Configs driving a custom trace Source
// have no canonical key and bypass the store entirely.
func (s *Store) Result(cfg core.Config) (*core.Result, error) {
	return s.ResultGated(cfg, nil)
}

// Gate admits one simulation: it blocks until the caller may run (e.g.
// acquiring a slot from a shared Budget) and returns the paired release.
// A gate error means the caller was denied — typically cancelled while
// waiting — and no simulation happened.
type Gate func() (release func(), err error)

// ResultGated is Result with simulation admission control: gate is
// invoked only when the store is actually about to simulate — memo hits,
// in-flight joins and backend recalls bypass it entirely, so a shared
// Budget meters real simulation work, not lookups. A gate denial is
// returned to the caller but never memoized (it says nothing about the
// config), and concurrent callers that were waiting on the denied
// attempt retry under their own gate rather than inheriting the denial.
func (s *Store) ResultGated(cfg core.Config, gate Gate) (*core.Result, error) {
	key, ok := cfg.Key()
	if !ok {
		return core.Run(cfg)
	}
	for {
		s.mu.Lock()
		if err, found := s.errs[key]; found {
			s.hits++
			s.mu.Unlock()
			return nil, err
		}
		if e, found := s.inflight[key]; found {
			s.mu.Unlock()
			<-e.done
			if e.gateErr != nil {
				// The worker this caller joined was denied admission
				// (its job was cancelled mid-wait); that denial is not
				// ours to inherit. Retry from scratch under our gate.
				continue
			}
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return e.res, e.err
		}
		e := &entry{done: make(chan struct{})}
		s.inflight[key] = e
		s.mu.Unlock()

		// The backend lookup happens inside the in-flight window, so a slow
		// disk read is also deduplicated across racing callers.
		res, found, berr := s.backend.Get(key)
		if berr != nil {
			s.noteBackendErr(berr)
		}
		switch {
		case found:
			e.res = res
		case gate != nil:
			release, gerr := gate()
			if gerr != nil {
				e.gateErr = gerr
			} else {
				e.res, e.err = s.simulate(cfg, key)
				release()
			}
		default:
			e.res, e.err = s.simulate(cfg, key)
		}
		close(e.done)

		s.mu.Lock()
		delete(s.inflight, key)
		switch {
		case e.gateErr != nil:
			// Nothing ran and nothing was learned: no accounting.
		case e.err != nil:
			s.errs[key] = e.err
			s.misses++
		case found:
			s.hits++
		default:
			s.misses++
		}
		s.mu.Unlock()
		if e.gateErr != nil {
			return nil, e.gateErr
		}
		return e.res, e.err
	}
}

// simulate runs cfg and persists a successful result to the backend.
func (s *Store) simulate(cfg core.Config, key string) (*core.Result, error) {
	res, err := core.Run(cfg)
	if err == nil {
		if perr := s.backend.Put(key, res); perr != nil {
			// The simulation is good; losing the write costs future
			// processes a re-simulation, not this caller its result.
			s.noteBackendErr(perr)
		}
	}
	return res, err
}

func (s *Store) noteBackendErr(err error) {
	s.mu.Lock()
	if s.bErr == nil {
		s.bErr = err
	}
	s.mu.Unlock()
}

// Hits returns how many lookups were served from memo: backend hits plus
// lookups that joined an in-flight simulation or a memoized error.
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses returns how many lookups ran a fresh simulation (including ones
// that failed).
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Len returns the number of memoized results in the backend.
func (s *Store) Len() int { return s.backend.Len() }

// BackendErr returns the first storage failure the store swallowed while
// serving results (a failed disk read falls back to simulation; a failed
// write loses only durability). CLIs surface it as a warning: results are
// still correct, but the on-disk store may be lagging.
func (s *Store) BackendErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bErr
}

// Scan enumerates the backend's completed results in its deterministic
// order, when the backend supports enumeration (Memory, resultdb and
// Tiered all do).
func (s *Store) Scan(fn func(key string, res *core.Result) error) error {
	if sc, ok := s.backend.(Scanner); ok {
		return sc.Scan(fn)
	}
	return nil
}
