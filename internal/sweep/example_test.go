package sweep_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"waycache/internal/access"
	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// ExampleEngine_replay captures a benchmark's instruction stream to a
// trace file, then runs the same sweep twice — once walking the live
// generator, once replaying the capture via Options.TraceDir — and shows
// the two produce byte-identical records.
func ExampleEngine_replay() {
	const bench = "gcc"
	const insts = 20_000

	// Capture: what `tracegen -bench gcc -n 20000 -capture` does.
	dir, err := os.MkdirTemp("", "traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	p, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, bench+trace.FileExt)
	if err := p.CaptureFile(path, insts); err != nil {
		log.Fatal(err)
	}

	g := sweep.Grid{
		Benchmarks: []string{bench},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		Insts:      insts,
	}
	ctx := context.Background()

	walked, err := sweep.New(sweep.Options{Workers: 2}).Run(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := sweep.New(sweep.Options{Workers: 2, TraceDir: dir}).Run(ctx, g)
	if err != nil {
		log.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := walked.WriteJSON(&a); err != nil {
		log.Fatal(err)
	}
	if err := replayed.WriteJSON(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records: %d\n", len(replayed.Records))
	fmt.Printf("replayed sweep matches walker sweep: %v\n", bytes.Equal(a.Bytes(), b.Bytes()))
	// Output:
	// records: 2
	// replayed sweep matches walker sweep: true
}
