package sweep

import (
	"waycache/internal/resultdb"
)

// OpenDiskStore opens (creating as needed) the on-disk result database in
// dir and returns a Store whose in-memory tier fronts it: lookups hit
// memory first, then the log; fresh simulations append to the log as they
// finish. Close the returned DB when done — it writes the index snapshot
// that makes the next open cheap (results are durable either way).
func OpenDiskStore(dir string) (*Store, *resultdb.DB, error) {
	db, err := resultdb.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	return NewStoreOn(Tiered{Front: NewMemory(), Back: db}), db, nil
}

// Backend conformance: the on-disk database plugs in wherever Memory does,
// and both it and Tiered take the bulk encoded-ingest fast path.
var _ Backend = (*resultdb.DB)(nil)
var _ Scanner = (*resultdb.DB)(nil)
var _ EncodedPutter = (*resultdb.DB)(nil)
var _ interface {
	Backend
	Scanner
	EncodedPutter
} = Tiered{}
var _ Scanner = (*Memory)(nil)
