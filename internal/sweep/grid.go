package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// Grid declares a rectangular design-space sweep: the cartesian product of
// every listed dimension. An empty dimension contributes a single zero
// value, which core.Config resolves to the paper's Table 1 default, so the
// zero Grid expands to exactly one all-defaults configuration.
type Grid struct {
	Benchmarks []string

	DPolicies []access.DPolicy
	IPolicies []access.IPolicy

	DSizes, DWays, DBlocks []int
	ISizes, IWays, IBlocks []int

	// DLatencies sweeps the base d-cache hit latency (1 or 2 in the paper).
	DLatencies []int

	TableSizes  []int
	VictimSizes []int

	// Insts applies to every cell (0 means the core default of 1,000,000).
	Insts int64

	// UsePaperCosts switches every cell to the paper's Table 3 energy
	// constants instead of the mini-CACTI model.
	UsePaperCosts bool

	// TraceRefs maps benchmark names to content-addressed trace
	// references ("trace://<sha256>", typically printed by traceconv).
	// Every cell of a mapped benchmark replays the referenced capture
	// instead of a walker — which is also how externally imported
	// workloads, with no synthetic generator to fall back to, enter a
	// sweep. Keys must appear in Benchmarks (see Normalize).
	TraceRefs map[string]string
}

// Normalize expands and validates the grid's workload axis: "all" (or an
// empty benchmark list) becomes the full synthetic suite, every other
// name must be a suite benchmark or carry a TraceRefs entry, every
// TraceRefs value must be a well-formed trace:// reference, and every
// TraceRefs key must be a listed benchmark. Submission front ends (CLI
// flags, the HTTP service, the coordinator) all normalize through here,
// so a grid means the same cells everywhere — which is also what makes
// named-job idempotency checks compare like with like.
func (g Grid) Normalize() (Grid, error) {
	var names []string
	if len(g.Benchmarks) == 0 {
		names = workload.Names()
	} else {
		for _, b := range g.Benchmarks {
			b = strings.TrimSpace(b)
			switch {
			case b == "":
				continue
			case b == "all":
				names = append(names, workload.Names()...)
			default:
				names = append(names, b)
			}
		}
		if len(names) == 0 {
			names = workload.Names()
		}
	}
	for _, b := range names {
		if _, ok := g.TraceRefs[b]; ok {
			continue
		}
		if _, err := workload.ByName(b); err != nil {
			return g, fmt.Errorf("sweep: benchmark %q is not in the suite and has no trace reference", b)
		}
	}
	// Validate references in sorted benchmark order: with several bad
	// entries, which error surfaces must not depend on map iteration
	// order (the error string reaches job status and CLI output).
	refBenches := make([]string, 0, len(g.TraceRefs))
	for b := range g.TraceRefs {
		refBenches = append(refBenches, b)
	}
	sort.Strings(refBenches)
	for _, b := range refBenches {
		ref := g.TraceRefs[b]
		if _, ok := trace.ParseRef(ref); !ok {
			return g, fmt.Errorf("sweep: benchmark %q: malformed trace reference %q (want trace://<64 hex digits>)", b, ref)
		}
		found := false
		for _, n := range names {
			if n == b {
				found = true
				break
			}
		}
		if !found {
			return g, fmt.Errorf("sweep: trace reference for %q, which is not a listed benchmark", b)
		}
	}
	g.Benchmarks = names
	return g, nil
}

// orStrings returns dim, or the single zero value when the dim is empty.
func orStrings(dim []string) []string {
	if len(dim) == 0 {
		return []string{""}
	}
	return dim
}

func orInts(dim []int) []int {
	if len(dim) == 0 {
		return []int{0}
	}
	return dim
}

func orDPolicies(dim []access.DPolicy) []access.DPolicy {
	if len(dim) == 0 {
		return []access.DPolicy{access.DParallel}
	}
	return dim
}

func orIPolicies(dim []access.IPolicy) []access.IPolicy {
	if len(dim) == 0 {
		return []access.IPolicy{access.IParallel}
	}
	return dim
}

// SizeCap is the saturation bound of Size: grids whose cartesian product
// reaches it report exactly SizeCap. Capping keeps the product arithmetic
// overflow-free (no dimension can push a capped product past an int64), so
// size limits checked against Size — like the HTTP service's per-job
// bound — cannot be bypassed by a grid large enough to wrap.
const SizeCap = 1 << 40

// Size returns the number of configurations Configs will produce,
// saturating at SizeCap.
func (g Grid) Size() int {
	n := len(orStrings(g.Benchmarks))
	for _, l := range []int{
		len(orDPolicies(g.DPolicies)), len(orIPolicies(g.IPolicies)),
		len(orInts(g.DSizes)), len(orInts(g.DWays)), len(orInts(g.DBlocks)),
		len(orInts(g.ISizes)), len(orInts(g.IWays)), len(orInts(g.IBlocks)),
		len(orInts(g.DLatencies)), len(orInts(g.TableSizes)), len(orInts(g.VictimSizes)),
	} {
		if n >= SizeCap {
			return SizeCap
		}
		n *= l
	}
	if n >= SizeCap {
		return SizeCap
	}
	return n
}

// Configs expands the grid into the full cartesian product in a fixed
// row-major order (benchmark slowest, victim-list size fastest). The order
// depends only on the grid, never on who executes the jobs, so merged
// sweep output is deterministic regardless of worker count.
func (g Grid) Configs() []core.Config {
	cfgs := make([]core.Config, 0, g.Size())
	for _, bench := range orStrings(g.Benchmarks) {
		for _, dpol := range orDPolicies(g.DPolicies) {
			for _, ipol := range orIPolicies(g.IPolicies) {
				for _, dsize := range orInts(g.DSizes) {
					for _, dways := range orInts(g.DWays) {
						for _, dblock := range orInts(g.DBlocks) {
							for _, isize := range orInts(g.ISizes) {
								for _, iways := range orInts(g.IWays) {
									for _, iblock := range orInts(g.IBlocks) {
										for _, dlat := range orInts(g.DLatencies) {
											for _, tsize := range orInts(g.TableSizes) {
												for _, vsize := range orInts(g.VictimSizes) {
													cfgs = append(cfgs, core.Config{
														Benchmark: bench,
														Trace:     g.TraceRefs[bench],
														DPolicy:   dpol, IPolicy: ipol,
														DSize: dsize, DWays: dways, DBlock: dblock,
														ISize: isize, IWays: iways, IBlock: iblock,
														DLatency:  dlat,
														TableSize: tsize, VictimSize: vsize,
														Insts:         g.Insts,
														UsePaperCosts: g.UsePaperCosts,
													})
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cfgs
}

// Shard returns the i-th of n contiguous, near-equal slices of cfgs
// (extra configs go to the leading shards). Concatenating the shards in
// order reproduces cfgs exactly, so distributed runs can merge their
// outputs deterministically. Shards beyond the config count are empty.
func Shard(cfgs []core.Config, i, n int) []core.Config {
	if n <= 0 || i < 0 || i >= n {
		return nil
	}
	size, rem := len(cfgs)/n, len(cfgs)%n
	lo := i*size + min(i, rem)
	hi := lo + size
	if i < rem {
		hi++
	}
	return cfgs[lo:hi]
}

// ShardLen returns len(Shard(cfgs, i, n)) for any cfgs of length total,
// without materializing the slice — how the coordinator and the HTTP
// service size a shard job before (or without) expanding the grid.
func ShardLen(total, i, n int) int {
	if n <= 0 || i < 0 || i >= n || total < 0 {
		return 0
	}
	size, rem := total/n, total%n
	if i < rem {
		size++
	}
	return size
}

// SpanOf returns the [lo, hi) config-index range of Shard(cfgs, i, n)
// over any cfgs of length total — the range form of the same contiguous
// partition, which is what makes a shard re-splittable: a partially done
// shard [lo, hi) with w leading configs finished splits into an exported
// prefix [lo, lo+w) and a remainder [lo+w, hi) that is itself a valid
// work unit.
func SpanOf(total, i, n int) (lo, hi int) {
	if n <= 0 || i < 0 || i >= n || total < 0 {
		return 0, 0
	}
	size, rem := total/n, total%n
	lo = i*size + min(i, rem)
	hi = lo + size
	if i < rem {
		hi++
	}
	return lo, hi
}

// ParseSpan parses a span spec "lo-hi": the contiguous half-open config
// range [lo, hi) of the expanded grid, validating 0 <= lo < hi. Callers
// bound hi against the grid size themselves.
func ParseSpan(s string) (lo, hi int, err error) {
	if _, err := fmt.Sscanf(s, "%d-%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("sweep: bad span %q (want lo-hi, e.g. 128-256)", s)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("sweep: bad span %q: need 0 <= lo < hi", s)
	}
	return lo, hi, nil
}

// FormatSpan renders a span spec in the form ParseSpan accepts.
func FormatSpan(lo, hi int) string { return fmt.Sprintf("%d-%d", lo, hi) }

// ParseShard parses a shard spec "i/n" (e.g. "0/4" is the first of four
// contiguous grid shards), validating 0 <= i < n.
func ParseShard(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("sweep: bad shard %q (want i/n, e.g. 0/4)", s)
	}
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("sweep: bad shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}

// FormatShard renders a shard spec in the form ParseShard accepts.
func FormatShard(i, n int) string { return fmt.Sprintf("%d/%d", i, n) }

// AllDPolicies lists every d-cache policy the simulator implements, in
// enum order.
func AllDPolicies() []access.DPolicy {
	return []access.DPolicy{
		access.DParallel, access.DSequential,
		access.DWayPredPC, access.DWayPredXOR,
		access.DSelDMParallel, access.DSelDMWayPred, access.DSelDMSequential,
		access.DWayPredMRU,
	}
}

// AllIPolicies lists every i-cache policy.
func AllIPolicies() []access.IPolicy {
	return []access.IPolicy{access.IParallel, access.IWayPred}
}

// ParseDPolicies parses a comma-separated list of d-cache policy names
// (the names the paper's figures use, e.g. "parallel,seldm+waypred"), or
// "all" for every policy.
func ParseDPolicies(s string) ([]access.DPolicy, error) {
	if strings.TrimSpace(s) == "all" {
		return AllDPolicies(), nil
	}
	var pols []access.DPolicy
	for _, name := range splitList(s) {
		found := false
		for _, p := range AllDPolicies() {
			if p.String() == name {
				pols = append(pols, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: unknown d-cache policy %q (have %s or all)", name, policyNames())
		}
	}
	return pols, nil
}

// ParseIPolicies parses a comma-separated list of i-cache policy names
// ("parallel", "waypred"), or "all".
func ParseIPolicies(s string) ([]access.IPolicy, error) {
	if strings.TrimSpace(s) == "all" {
		return AllIPolicies(), nil
	}
	var pols []access.IPolicy
	for _, name := range splitList(s) {
		found := false
		for _, p := range AllIPolicies() {
			if p.String() == name {
				pols = append(pols, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sweep: unknown i-cache policy %q (have parallel, waypred or all)", name)
		}
	}
	return pols, nil
}

// ParseBenchmarks resolves "all" (or "") to the full workload suite, or a
// comma-separated list of names validated against it.
func ParseBenchmarks(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "all" || s == "" {
		return workload.Names(), nil
	}
	var names []string
	for _, n := range splitList(s) {
		if _, err := workload.ByName(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	return names, nil
}

// ParseTraceRefs parses a comma-separated "bench=trace://<hash>" list
// into a Grid.TraceRefs map. The empty string parses to nil.
func ParseTraceRefs(s string) (map[string]string, error) {
	var out map[string]string
	for _, f := range splitList(s) {
		bench, ref, ok := strings.Cut(f, "=")
		bench, ref = strings.TrimSpace(bench), strings.TrimSpace(ref)
		if !ok || bench == "" {
			return nil, fmt.Errorf("sweep: bad trace mapping %q (want bench=trace://<hash>)", f)
		}
		if _, refOK := trace.ParseRef(ref); !refOK {
			return nil, fmt.Errorf("sweep: benchmark %q: malformed trace reference %q (want trace://<64 hex digits>)", bench, ref)
		}
		if out == nil {
			out = make(map[string]string)
		}
		if prev, dup := out[bench]; dup && prev != ref {
			return nil, fmt.Errorf("sweep: benchmark %q mapped to two different traces", bench)
		}
		out[bench] = ref
	}
	return out, nil
}

// ParseIntList parses a comma-separated int list; values may carry k/m
// (binary) suffixes, so "16k" is 16384. The empty string parses to nil —
// an unconstrained grid dimension.
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		mult := 1
		switch {
		case strings.HasSuffix(strings.ToLower(f), "k"):
			mult, f = 1<<10, f[:len(f)-1]
		case strings.HasSuffix(strings.ToLower(f), "m"):
			mult, f = 1<<20, f[:len(f)-1]
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad dimension value %q", f)
		}
		out = append(out, v*mult)
	}
	return out, nil
}

func policyNames() string {
	var names []string
	for _, p := range AllDPolicies() {
		names = append(names, p.String())
	}
	return strings.Join(names, ", ")
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
