package isa

import "testing"

func TestKindClassification(t *testing.T) {
	memKinds := map[Kind]bool{KindLoad: true, KindStore: true}
	ctlKinds := map[Kind]bool{KindBranch: true, KindJump: true, KindCall: true, KindReturn: true}
	for k := KindNop; k < Kind(NumKinds); k++ {
		if got := k.IsMem(); got != memKinds[k] {
			t.Errorf("%v.IsMem() = %v", k, got)
		}
		if got := k.IsControl(); got != ctlKinds[k] {
			t.Errorf("%v.IsControl() = %v", k, got)
		}
	}
}

func TestKindStringsUnique(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindNop; k < Kind(NumKinds); k++ {
		s := k.String()
		if s == "" {
			t.Errorf("kind %d has empty mnemonic", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %v and %v share mnemonic %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestLatenciesPositive(t *testing.T) {
	for k := KindNop; k < Kind(NumKinds); k++ {
		if k.Latency() <= 0 {
			t.Errorf("%v.Latency() = %d, want positive", k, k.Latency())
		}
	}
	if KindIntMul.Latency() <= KindIntALU.Latency() {
		t.Error("integer multiply should be slower than ALU op")
	}
	if KindFPDiv.Latency() <= KindFPMul.Latency() {
		t.Error("FP divide should be slower than FP multiply")
	}
}

func TestRegisterHelpers(t *testing.T) {
	if !RegZero.IsZero() {
		t.Error("RegZero.IsZero() = false")
	}
	for i := 0; i < 100; i++ {
		r := Int(i)
		if r.IsZero() {
			t.Errorf("Int(%d) returned the zero register", i)
		}
		if int(r) >= NumIntRegs {
			t.Errorf("Int(%d) = %d outside integer register file", i, r)
		}
		f := FP(i)
		if int(f) < NumIntRegs || int(f) >= NumRegs {
			t.Errorf("FP(%d) = %d outside FP register file", i, f)
		}
	}
}
