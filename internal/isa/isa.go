// Package isa defines the abstract RISC micro-op ISA executed by the
// simulator.
//
// The paper simulates the Alpha ISA on SimpleScalar. We substitute an
// abstract load/store RISC ISA that captures everything the evaluated
// mechanisms can observe: opcode class, register dependences, effective
// addresses, and (for loads) the base-register value and immediate offset
// that the XOR-based way predictor approximates the address from.
package isa

import "fmt"

// Kind classifies a dynamic instruction.
type Kind uint8

// Instruction kinds. Memory and control kinds carry extra payload in
// trace.Inst; compute kinds differ only in functional-unit latency.
const (
	KindNop Kind = iota
	KindIntALU
	KindIntMul
	KindFPALU
	KindFPMul
	KindFPDiv
	KindLoad
	KindStore
	KindBranch // conditional branch
	KindJump   // unconditional direct jump
	KindCall   // direct call (pushes return address)
	KindReturn // return (pops return address)
	numKinds
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = int(numKinds)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindNop:
		return "nop"
	case KindIntALU:
		return "ialu"
	case KindIntMul:
		return "imul"
	case KindFPALU:
		return "falu"
	case KindFPMul:
		return "fmul"
	case KindFPDiv:
		return "fdiv"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "br"
	case KindJump:
		return "jmp"
	case KindCall:
		return "call"
	case KindReturn:
		return "ret"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsMem reports whether the kind accesses data memory.
func (k Kind) IsMem() bool { return k == KindLoad || k == KindStore }

// IsControl reports whether the kind redirects the PC.
func (k Kind) IsControl() bool {
	switch k {
	case KindBranch, KindJump, KindCall, KindReturn:
		return true
	}
	return false
}

// Reg identifies an architectural register. Register 0 is hard-wired to
// zero (no dependence), registers 1..NumIntRegs-1 are general purpose,
// and NumIntRegs..NumIntRegs+NumFPRegs-1 are floating point.
type Reg uint8

// Register-file dimensions.
const (
	RegZero    Reg = 0
	NumIntRegs     = 32
	NumFPRegs      = 32
	NumRegs        = NumIntRegs + NumFPRegs
)

// IsZero reports whether r is the hard-wired zero register.
func (r Reg) IsZero() bool { return r == RegZero }

// FP returns the i'th floating-point register.
func FP(i int) Reg { return Reg(NumIntRegs + i%NumFPRegs) }

// Int returns the i'th integer register, skipping the zero register.
func Int(i int) Reg { return Reg(1 + i%(NumIntRegs-1)) }

// InstBytes is the fixed encoding size of one instruction. PCs advance by
// InstBytes; instruction cache blocks therefore hold BlockBytes/InstBytes
// instructions.
const InstBytes = 4

// Latency returns the functional-unit execution latency of the kind in
// cycles, excluding memory time for loads and stores.
func (k Kind) Latency() int {
	switch k {
	case KindIntALU, KindNop, KindBranch, KindJump, KindCall, KindReturn:
		return 1
	case KindIntMul:
		return 3
	case KindFPALU:
		return 2
	case KindFPMul:
		return 4
	case KindFPDiv:
		return 12
	case KindLoad, KindStore:
		return 1 // address generation; cache time is added by the pipeline
	default:
		return 1
	}
}
