// Package program models static synthetic programs: control-flow graphs of
// functions, basic blocks and instruction templates, plus the data-reference
// streams their memory instructions draw addresses from.
//
// A Walker (walker.go) executes the CFG to produce the dynamic instruction
// trace the pipeline consumes. The paper runs SPEC95 binaries; we substitute
// programs whose *observable* behaviour — per-PC block locality, conflict
// patterns, branch predictability, code footprint — is shaped by a handful
// of knobs calibrated per benchmark in internal/workload.
package program

import (
	"fmt"

	"waycache/internal/isa"
)

// CodeBase is where function layout starts, mimicking a conventional text
// segment address.
const CodeBase uint64 = 0x0040_0000

// TermKind is the control transfer ending a basic block.
type TermKind uint8

// Terminator kinds.
const (
	TermFall   TermKind = iota // fall through to the next block (no instruction)
	TermBranch                 // conditional branch to Target
	TermJump                   // unconditional jump to Target
	TermCall                   // call Callee, continue at next block on return
	TermReturn                 // return to caller (or restart main)
)

// BranchPattern chooses how a conditional branch's direction behaves.
type BranchPattern uint8

// Branch behaviour patterns.
const (
	PatLoop   BranchPattern = iota // back-edge taken Trip-1 times out of Trip
	PatBiased                      // taken with probability Prob
	PatAlt                         // strict alternation
	PatRandom                      // 50/50, unpredictable
)

// Terminator describes a block's ending control transfer.
type Terminator struct {
	Kind    TermKind
	Target  int // block index within the function (TermBranch/TermJump)
	Callee  int // function index (TermCall)
	Pattern BranchPattern
	Prob    float64 // PatBiased: probability taken
	Trip    float64 // PatLoop: mean trip count
	Fixed   bool    // PatLoop: trip count is exactly Trip (predictable)
}

// InstTemplate is one static (non-control) instruction.
type InstTemplate struct {
	Kind isa.Kind
	Dst  isa.Reg
	Src1 isa.Reg
	Src2 isa.Reg

	// Memory instructions only: the stream supplying the base value and
	// the immediate offset added to it.
	Stream int // index into Program.Streams, -1 for non-memory
	Offset int32
}

// Block is a basic block: straight-line body plus a terminator.
type Block struct {
	Body []InstTemplate
	Term Terminator

	// Addr is assigned by Layout: the PC of Body[0].
	Addr uint64
}

// Insts returns the number of instructions the block occupies, including
// the terminator's instruction if it has one.
func (b *Block) Insts() int {
	n := len(b.Body)
	if b.Term.Kind != TermFall {
		n++
	}
	return n
}

// TermPC returns the PC of the terminator instruction. Only meaningful for
// blocks with a non-fallthrough terminator.
func (b *Block) TermPC() uint64 {
	return b.Addr + uint64(len(b.Body))*isa.InstBytes
}

// End returns the first PC after the block.
func (b *Block) End() uint64 {
	return b.Addr + uint64(b.Insts())*isa.InstBytes
}

// Func is a function: its blocks in layout order. Block 0 is the entry.
type Func struct {
	Name   string
	Blocks []*Block
}

// StreamKind chooses how a data stream generates base values.
type StreamKind uint8

// Stream kinds.
const (
	StreamGlobal StreamKind = iota // fixed address (loop-invariant global)
	StreamSeq                      // sequential walk: Base..Base+Length by Stride
	StreamRandom                   // uniform random within [Base, Base+Length)
	StreamChase                    // pseudo-random pointer chase within region
	StreamStack                    // frame-local: StackBase - depth*FrameBytes
	StreamCyclic                   // round-robin over NWays fixed conflicting blocks
)

// Stream describes one data object / reference pattern.
type Stream struct {
	Name   string
	Kind   StreamKind
	Base   uint64
	Length uint64 // region size in bytes (Seq/Random/Chase/Cyclic span)
	Stride int64  // Seq step per advance

	// AdvanceEvery: the stream steps after this many accesses through it,
	// letting several loads (struct fields) share one base value.
	AdvanceEvery int

	// Align forces generated base values to a multiple (element size).
	Align uint64

	// NWays: StreamCyclic only — number of distinct blocks cycled through,
	// each CycleStride bytes apart (use the cache way-span to force set
	// conflicts, as swim's pathological pattern needs).
	NWays       int
	CycleStride uint64
}

// Program is a complete synthetic program.
type Program struct {
	Name    string
	Funcs   []*Func
	Entry   int // index of the function execution starts in
	Streams []Stream
}

// Layout assigns addresses to every block: functions in order from
// CodeBase, blocks contiguous within a function, functions padded to a
// 32-byte boundary so i-cache mappings are stable and realistic.
func (p *Program) Layout() {
	addr := CodeBase
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Addr = addr
			addr = b.End()
		}
		// Pad to the next 32-byte boundary between functions.
		if rem := addr % 32; rem != 0 {
			addr += 32 - rem
		}
	}
}

// CodeBytes returns the total laid-out code size.
func (p *Program) CodeBytes() uint64 {
	if len(p.Funcs) == 0 {
		return 0
	}
	last := p.Funcs[len(p.Funcs)-1]
	if len(last.Blocks) == 0 {
		return 0
	}
	return last.Blocks[len(last.Blocks)-1].End() - CodeBase
}

// Validate checks structural sanity: entry exists, block targets in range,
// callees in range, call graph acyclic (so the walker cannot recurse
// unboundedly), stream indices valid.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("program %s: entry %d out of range", p.Name, p.Entry)
	}
	for fi, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("program %s: function %s has no blocks", p.Name, f.Name)
		}
		for bi, b := range f.Blocks {
			t := b.Term
			switch t.Kind {
			case TermBranch, TermJump:
				if t.Target < 0 || t.Target >= len(f.Blocks) {
					return fmt.Errorf("%s/%s block %d: target %d out of range", p.Name, f.Name, bi, t.Target)
				}
			case TermCall:
				if t.Callee < 0 || t.Callee >= len(p.Funcs) {
					return fmt.Errorf("%s/%s block %d: callee %d out of range", p.Name, f.Name, bi, t.Callee)
				}
				if t.Callee <= fi {
					return fmt.Errorf("%s/%s block %d: call to %d not forward (call graph must be a DAG)", p.Name, f.Name, bi, t.Callee)
				}
				if bi == len(f.Blocks)-1 {
					return fmt.Errorf("%s/%s block %d: call in final block has no return-to block", p.Name, f.Name, bi)
				}
			case TermFall:
				if bi == len(f.Blocks)-1 {
					return fmt.Errorf("%s/%s: final block falls through off the function", p.Name, f.Name)
				}
			}
			for ii, in := range b.Body {
				if in.Kind.IsControl() {
					return fmt.Errorf("%s/%s block %d inst %d: control kind in body", p.Name, f.Name, bi, ii)
				}
				if in.Kind.IsMem() {
					if in.Stream < 0 || in.Stream >= len(p.Streams) {
						return fmt.Errorf("%s/%s block %d inst %d: stream %d out of range", p.Name, f.Name, bi, ii, in.Stream)
					}
				}
			}
		}
	}
	return nil
}
