package program

import (
	"fmt"

	"waycache/internal/isa"
	"waycache/internal/prng"
	"waycache/internal/trace"
)

// StackBase is where the simulated call stack lives (grows down), well
// away from code and data regions.
const StackBase uint64 = 0x7fff_0000

// Walker executes a Program's CFG and produces its dynamic instruction
// stream. It is an infinite trace.Source: when the entry function returns,
// the program restarts with data-stream state intact (modelling the outer
// iteration loop of a benchmark). Wrap it in trace.Limit to bound runs.
type Walker struct {
	prog *Program
	rng  *prng.Source

	fn  int // current function
	blk int // current block
	idx int // next body instruction index

	callStack []frame
	loops     map[edgeKey]int  // remaining iterations of active loops
	altState  map[edgeKey]bool // PatAlt toggles
	streams   []streamState

	emitted int64
}

type frame struct {
	fn, blk int // resume position after return
}

type edgeKey struct{ fn, blk int }

type streamState struct {
	pos   uint64 // current base value
	count int    // accesses since last advance
	chase uint64 // chase/random walk state
	cyc   int    // cyclic index
	rng   *prng.Source
}

// NewWalker builds a walker over p. The program must be laid out and valid;
// NewWalker panics otherwise, since programs are constructed by code.
func NewWalker(p *Program, seed uint64) *Walker {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if len(p.Funcs[p.Entry].Blocks) == 0 || p.Funcs[p.Entry].Blocks[0].Addr == 0 {
		p.Layout()
	}
	root := prng.New(seed)
	w := &Walker{
		prog:     p,
		rng:      root.Derive(1),
		fn:       p.Entry,
		loops:    make(map[edgeKey]int),
		altState: make(map[edgeKey]bool),
		streams:  make([]streamState, len(p.Streams)),
	}
	for i := range w.streams {
		s := &p.Streams[i]
		w.streams[i] = streamState{
			pos:   s.Base,
			chase: root.Derive(uint64(100 + i)).Uint64(),
			rng:   root.Derive(uint64(200 + i)),
		}
	}
	return w
}

// Emitted returns the number of instructions produced so far.
func (w *Walker) Emitted() int64 { return w.emitted }

// Next implements trace.Source. It always returns true: synthetic programs
// run forever.
func (w *Walker) Next(out *trace.Inst) bool {
	for {
		f := w.prog.Funcs[w.fn]
		b := f.Blocks[w.blk]
		if w.idx < len(b.Body) {
			w.emitBody(out, b, w.idx)
			w.idx++
			w.emitted++
			return true
		}
		// Terminator.
		switch b.Term.Kind {
		case TermFall:
			w.blk++
			w.idx = 0
			continue
		case TermBranch:
			w.emitBranch(out, f, b)
		case TermJump:
			target := f.Blocks[b.Term.Target]
			*out = trace.Inst{PC: b.TermPC(), Kind: isa.KindJump, Taken: true, Target: target.Addr}
			w.blk = b.Term.Target
			w.idx = 0
		case TermCall:
			callee := w.prog.Funcs[b.Term.Callee]
			*out = trace.Inst{PC: b.TermPC(), Kind: isa.KindCall, Taken: true, Target: callee.Blocks[0].Addr}
			w.callStack = append(w.callStack, frame{fn: w.fn, blk: w.blk + 1})
			w.fn = b.Term.Callee
			w.blk, w.idx = 0, 0
		case TermReturn:
			if n := len(w.callStack); n > 0 {
				fr := w.callStack[n-1]
				w.callStack = w.callStack[:n-1]
				retPC := w.prog.Funcs[fr.fn].Blocks[fr.blk].Addr
				w.fn, w.blk, w.idx = fr.fn, fr.blk, 0
				*out = trace.Inst{PC: b.TermPC(), Kind: isa.KindReturn, Taken: true, Target: retPC}
			} else {
				// Entry function finished: restart the program. Emitting a
				// jump (not a return) keeps the RAS balanced — the restart
				// is a simulation artifact standing in for the benchmark's
				// outer loop, not a real underflowing return.
				entry := w.prog.Funcs[w.prog.Entry].Blocks[0].Addr
				w.fn, w.blk, w.idx = w.prog.Entry, 0, 0
				*out = trace.Inst{PC: b.TermPC(), Kind: isa.KindJump, Taken: true, Target: entry}
			}
		default:
			panic(fmt.Sprintf("program: unknown terminator %d", b.Term.Kind))
		}
		w.emitted++
		return true
	}
}

func (w *Walker) emitBody(out *trace.Inst, b *Block, i int) {
	t := &b.Body[i]
	*out = trace.Inst{
		PC:   b.Addr + uint64(i)*isa.InstBytes,
		Kind: t.Kind,
		Dst:  t.Dst, Src1: t.Src1, Src2: t.Src2,
	}
	if t.Kind.IsMem() {
		base := w.streamBase(t.Stream)
		out.BaseValue = base
		out.Offset = t.Offset
		out.Addr = base + uint64(int64(t.Offset))
		w.streamAdvance(t.Stream)
	}
}

func (w *Walker) emitBranch(out *trace.Inst, f *Func, b *Block) {
	t := b.Term
	key := edgeKey{fn: w.fn, blk: w.blk}
	var taken bool
	switch t.Pattern {
	case PatLoop:
		rem, active := w.loops[key]
		if !active {
			if t.Fixed {
				rem = int(t.Trip + 0.5)
			} else {
				rem = w.rng.Geometric(t.Trip)
			}
			if rem < 1 {
				rem = 1
			}
		}
		rem--
		taken = rem > 0
		if taken {
			w.loops[key] = rem
		} else {
			delete(w.loops, key)
		}
	case PatBiased:
		taken = w.rng.Bool(t.Prob)
	case PatAlt:
		taken = !w.altState[key]
		w.altState[key] = taken
	default: // PatRandom
		taken = w.rng.Bool(0.5)
	}

	target := f.Blocks[t.Target]
	cond := isa.RegZero
	if len(b.Body) > 0 {
		cond = b.Body[len(b.Body)-1].Dst
	}
	*out = trace.Inst{
		PC: b.TermPC(), Kind: isa.KindBranch,
		Src1: cond, Taken: taken, Target: target.Addr,
	}
	if taken {
		w.blk = t.Target
	} else {
		w.blk++
	}
	w.idx = 0
}

// streamBase returns the current base value of stream si without advancing.
func (w *Walker) streamBase(si int) uint64 {
	s := &w.prog.Streams[si]
	st := &w.streams[si]
	switch s.Kind {
	case StreamGlobal:
		return s.Base
	case StreamStack:
		// Base is the stack base; Stride the frame size.
		depth := uint64(len(w.callStack))
		return s.Base - depth*uint64(s.Stride)
	case StreamCyclic:
		return s.Base + uint64(st.cyc)*s.CycleStride
	default:
		return st.pos
	}
}

// streamAdvance steps the stream state after an access, honouring
// AdvanceEvery so several instructions can share one base value.
func (w *Walker) streamAdvance(si int) {
	s := &w.prog.Streams[si]
	st := &w.streams[si]
	every := s.AdvanceEvery
	if every <= 0 {
		every = 1
	}
	st.count++
	if st.count < every {
		return
	}
	st.count = 0

	align := s.Align
	if align == 0 {
		align = 8
	}
	switch s.Kind {
	case StreamSeq:
		next := st.pos + uint64(s.Stride)
		if next >= s.Base+s.Length || next < s.Base {
			next = s.Base
		}
		st.pos = next
	case StreamRandom:
		if s.Length > 0 {
			off := st.rng.Uint64n(s.Length) &^ (align - 1)
			st.pos = s.Base + off
		}
	case StreamChase:
		// Deterministic pseudo-random cycle within the region: the same
		// chain of "pointers" is followed on every pass, giving chase-like
		// temporal reuse.
		st.chase = st.chase*6364136223846793005 + 1442695040888963407
		if s.Length > 0 {
			off := (st.chase >> 16) % s.Length &^ (align - 1)
			st.pos = s.Base + off
		}
	case StreamCyclic:
		if s.NWays > 0 {
			st.cyc = (st.cyc + 1) % s.NWays
		}
	}
}
