package program

import (
	"testing"

	"waycache/internal/isa"
	"waycache/internal/trace"
)

// twoBlockLoop builds a minimal program: entry block loops on itself N
// times (fixed), then returns.
func twoBlockLoop(trip float64) *Program {
	p := &Program{
		Name: "loop",
		Funcs: []*Func{{
			Name: "main",
			Blocks: []*Block{
				{
					Body: []InstTemplate{
						{Kind: isa.KindIntALU, Dst: isa.Int(1), Stream: -1},
						{Kind: isa.KindLoad, Dst: isa.Int(2), Stream: 0},
					},
					Term: Terminator{Kind: TermBranch, Target: 0, Pattern: PatLoop, Trip: trip, Fixed: true},
				},
				{Term: Terminator{Kind: TermReturn}},
			},
		}},
		Streams: []Stream{{Name: "g", Kind: StreamGlobal, Base: 0x600000}},
	}
	p.Layout()
	return p
}

func TestLayoutAssignsContiguousPCs(t *testing.T) {
	p := twoBlockLoop(3)
	b0, b1 := p.Funcs[0].Blocks[0], p.Funcs[0].Blocks[1]
	if b0.Addr != CodeBase {
		t.Fatalf("entry block at %#x, want %#x", b0.Addr, CodeBase)
	}
	if b0.Insts() != 3 { // 2 body + branch
		t.Fatalf("block 0 insts = %d", b0.Insts())
	}
	if b1.Addr != b0.End() {
		t.Fatalf("block 1 at %#x, want %#x", b1.Addr, b0.End())
	}
	if p.CodeBytes() == 0 {
		t.Fatal("CodeBytes = 0")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []func(*Program){
		func(p *Program) { p.Entry = 5 },
		func(p *Program) { p.Funcs[0].Blocks[0].Term.Target = 9 },
		func(p *Program) { p.Funcs[0].Blocks[0].Body[1].Stream = 3 },
		func(p *Program) { p.Funcs[0].Blocks[1].Term = Terminator{Kind: TermFall} },
		func(p *Program) {
			p.Funcs[0].Blocks[0].Body[0] = InstTemplate{Kind: isa.KindBranch}
		},
		func(p *Program) {
			// Backward call breaks the DAG requirement.
			p.Funcs = append(p.Funcs, &Func{Name: "f1", Blocks: []*Block{
				{Term: Terminator{Kind: TermCall, Callee: 0}},
				{Term: Terminator{Kind: TermReturn}},
			}})
		},
	}
	for i, breakIt := range cases {
		p := twoBlockLoop(3)
		breakIt(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: broken program validated", i)
		}
	}
}

func TestWalkerFixedLoopTrips(t *testing.T) {
	p := twoBlockLoop(4)
	w := NewWalker(p, 1)
	// One program iteration: block0 body(2) + branch, repeated 4 times,
	// then block1 return. Count branch outcomes.
	taken, notTaken := 0, 0
	var in traceInst
	for i := 0; i < 4*3+1; i++ {
		in = next(t, w)
		if in.Kind == isa.KindBranch {
			if in.Taken {
				taken++
			} else {
				notTaken++
			}
		}
		if in.Kind == isa.KindReturn {
			break
		}
	}
	if taken != 3 || notTaken != 1 {
		t.Fatalf("fixed trip-4 loop: taken=%d notTaken=%d, want 3/1", taken, notTaken)
	}
}

func TestWalkerRestartsAfterMainReturns(t *testing.T) {
	p := twoBlockLoop(1)
	w := NewWalker(p, 1)
	sawRestart := false
	for i := 0; i < 100; i++ {
		in := next(t, w)
		// The entry function's return is emitted as a jump back to the
		// entry (keeping the RAS balanced across program restarts).
		if in.Kind == isa.KindJump {
			sawRestart = true
			if in.Target != CodeBase {
				t.Fatalf("restart should target entry %#x, got %#x", CodeBase, in.Target)
			}
			nxt := next(t, w)
			if nxt.PC != CodeBase {
				t.Fatalf("after restart, PC = %#x", nxt.PC)
			}
			break
		}
		if in.Kind == isa.KindReturn {
			t.Fatal("entry-function return must not underflow the RAS")
		}
	}
	if !sawRestart {
		t.Fatal("program never restarted")
	}
}

func TestWalkerCallReturnMatching(t *testing.T) {
	p := &Program{
		Name: "callret",
		Funcs: []*Func{
			{Name: "main", Blocks: []*Block{
				{Term: Terminator{Kind: TermCall, Callee: 1}},
				{Term: Terminator{Kind: TermReturn}},
			}},
			{Name: "leaf", Blocks: []*Block{
				{Body: []InstTemplate{{Kind: isa.KindIntALU, Dst: isa.Int(1), Stream: -1}},
					Term: Terminator{Kind: TermReturn}},
			}},
		},
		Streams: []Stream{},
	}
	p.Layout()
	w := NewWalker(p, 2)

	call := next(t, w)
	if call.Kind != isa.KindCall {
		t.Fatalf("first inst = %v", call.Kind)
	}
	if call.Target != p.Funcs[1].Blocks[0].Addr {
		t.Fatalf("call target %#x", call.Target)
	}
	body := next(t, w)
	if body.PC != p.Funcs[1].Blocks[0].Addr {
		t.Fatalf("callee body at %#x", body.PC)
	}
	ret := next(t, w)
	if ret.Kind != isa.KindReturn {
		t.Fatalf("expected return, got %v", ret.Kind)
	}
	if want := p.Funcs[0].Blocks[1].Addr; ret.Target != want {
		t.Fatalf("return target %#x, want %#x", ret.Target, want)
	}
}

func TestWalkerDeterminism(t *testing.T) {
	p1 := twoBlockLoop(8)
	p2 := twoBlockLoop(8)
	w1, w2 := NewWalker(p1, 42), NewWalker(p2, 42)
	for i := 0; i < 5000; i++ {
		a, b := next(t, w1), next(t, w2)
		if a != b {
			t.Fatalf("walkers diverged at instruction %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestStreamSeqWrapsAndAligns(t *testing.T) {
	p := twoBlockLoop(1000)
	p.Streams[0] = Stream{Name: "arr", Kind: StreamSeq, Base: 0x800000, Length: 64, Stride: 8, AdvanceEvery: 1, Align: 8}
	w := NewWalker(p, 3)
	var addrs []uint64
	for len(addrs) < 20 {
		in := next(t, w)
		if in.Kind == isa.KindLoad {
			addrs = append(addrs, in.Addr)
		}
	}
	for i, a := range addrs {
		want := uint64(0x800000) + uint64(i%8)*8
		if a != want {
			t.Fatalf("access %d at %#x, want %#x (wrap at 64 bytes)", i, a, want)
		}
	}
}

func TestStreamAdvanceEvery(t *testing.T) {
	p := twoBlockLoop(1000)
	p.Streams[0] = Stream{Name: "arr", Kind: StreamSeq, Base: 0x800000, Length: 1 << 20, Stride: 8, AdvanceEvery: 3, Align: 8}
	w := NewWalker(p, 3)
	var addrs []uint64
	for len(addrs) < 9 {
		in := next(t, w)
		if in.Kind == isa.KindLoad {
			addrs = append(addrs, in.Addr)
		}
	}
	// Three accesses per base value.
	for i := 0; i < 9; i += 3 {
		if addrs[i] != addrs[i+1] || addrs[i+1] != addrs[i+2] {
			t.Fatalf("AdvanceEvery=3 violated: %v", addrs[:9])
		}
	}
	if addrs[0] == addrs[3] {
		t.Fatal("stream never advanced")
	}
}

func TestStreamCyclic(t *testing.T) {
	p := twoBlockLoop(1000)
	p.Streams[0] = Stream{Name: "cyc", Kind: StreamCyclic, Base: 0x600000, NWays: 3, CycleStride: 0x4000, AdvanceEvery: 1}
	w := NewWalker(p, 3)
	var addrs []uint64
	for len(addrs) < 6 {
		in := next(t, w)
		if in.Kind == isa.KindLoad {
			addrs = append(addrs, in.Addr)
		}
	}
	for i, a := range addrs {
		want := uint64(0x600000) + uint64(i%3)*0x4000
		if a != want {
			t.Fatalf("cyclic access %d = %#x, want %#x", i, a, want)
		}
	}
}

func TestStreamStackDepth(t *testing.T) {
	// main calls leaf; stack stream addresses must differ by frame size
	// between depth 0 and depth 1.
	p := &Program{
		Name: "stack",
		Funcs: []*Func{
			{Name: "main", Blocks: []*Block{
				{Body: []InstTemplate{{Kind: isa.KindLoad, Dst: isa.Int(1), Stream: 0}},
					Term: Terminator{Kind: TermCall, Callee: 1}},
				{Term: Terminator{Kind: TermReturn}},
			}},
			{Name: "leaf", Blocks: []*Block{
				{Body: []InstTemplate{{Kind: isa.KindLoad, Dst: isa.Int(2), Stream: 0}},
					Term: Terminator{Kind: TermReturn}},
			}},
		},
		Streams: []Stream{{Name: "stack", Kind: StreamStack, Base: StackBase, Stride: 128}},
	}
	p.Layout()
	w := NewWalker(p, 4)
	ld0 := next(t, w) // load at depth 0
	next(t, w)        // call
	ld1 := next(t, w) // load at depth 1
	if ld0.Kind != isa.KindLoad || ld1.Kind != isa.KindLoad {
		t.Fatalf("unexpected kinds %v %v", ld0.Kind, ld1.Kind)
	}
	if ld0.Addr-ld1.Addr != 128 {
		t.Fatalf("stack depth addressing: %#x vs %#x", ld0.Addr, ld1.Addr)
	}
}

func TestXORPayloadConsistency(t *testing.T) {
	p := twoBlockLoop(50)
	p.Funcs[0].Blocks[0].Body[1].Offset = 16
	w := NewWalker(p, 5)
	for i := 0; i < 1000; i++ {
		in := next(t, w)
		if in.Kind == isa.KindLoad {
			if in.Addr != in.BaseValue+uint64(int64(in.Offset)) {
				t.Fatalf("Addr != BaseValue + Offset: %+v", in)
			}
			if in.Offset != 16 {
				t.Fatalf("offset not propagated: %d", in.Offset)
			}
		}
	}
}

// Helpers.

type instAlias = trace.Inst
type traceInst = instAlias

func next(t *testing.T, w *Walker) instAlias {
	t.Helper()
	var in instAlias
	if !w.Next(&in) {
		t.Fatal("walker stream ended")
	}
	return in
}
