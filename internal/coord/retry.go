package coord

// One retry/timeout/backoff policy for every coordinator request.
//
// Before this file existed each request site rolled its own handling:
// submit retried immediately on any error, export stretched its timeout
// ad hoc, trace distribution gave up on the first failure. Every remote
// call now flows through retrier.do, which classifies the failure —
// deterministic job failures and auth/validation errors abort, transport
// faults and 5xx/429/408 retry — and sleeps a capped exponential backoff
// between attempts. Jitter is deterministic: it is derived from a
// splitmix64 hash of (seed, operation, attempt), so a seeded run retries
// at reproducible instants — the property the chaos tests lean on.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"
)

// RetryPolicy shapes the shared backoff schedule.
type RetryPolicy struct {
	// MaxAttempts bounds tries per request (default 4). The first try
	// counts: MaxAttempts 1 means no retries.
	MaxAttempts int
	// BaseDelay is the sleep after the first failure (default 100ms);
	// each further failure doubles it up to MaxDelay (default 5s). Up to
	// half the delay is replaced by deterministic jitter.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// delay returns the backoff before attempt n+1 (n is the just-failed
// attempt, 0-based): capped exponential with the top half jittered by a
// hash of (seed, op, n) so distinct operations desynchronize without
// nondeterminism.
func (p RetryPolicy) delay(seed uint64, op string, n int) time.Duration {
	d := p.BaseDelay << n
	if d <= 0 || d > p.MaxDelay { // <= 0 catches shift overflow
		d = p.MaxDelay
	}
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return time.Duration(half + jitterHash(seed, op, n)%half + 1)
}

// jitterHash mixes (seed, op, attempt) through fnv64 + splitmix64. Pure
// function of its inputs: a re-run with the same seed backs off on the
// same schedule.
func jitterHash(seed uint64, op string, n int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, op, n)
	return splitmix64(h.Sum64())
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// httpStatusError is a non-2xx response, classified for retry by code.
type httpStatusError struct {
	status int
	msg    string
}

func (e *httpStatusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("http %d: %s", e.status, e.msg)
	}
	return fmt.Sprintf("http %d", e.status)
}

// retriable classifies an error: true means another attempt could
// plausibly succeed (transport fault, 5xx, throttling, timeout); false
// means the failure is a property of the request itself (deterministic
// job failure, auth, validation) and retrying anywhere is wasted work.
func retriable(err error) bool {
	var jf *jobFailedError
	if errors.As(err, &jf) {
		// The simulation itself failed; determinism means it fails the
		// same way on every host.
		return false
	}
	var hs *httpStatusError
	if errors.As(err, &hs) {
		switch {
		case hs.status >= 500:
			return true
		case hs.status == http.StatusTooManyRequests, hs.status == http.StatusRequestTimeout:
			return true
		default:
			return false // 4xx: auth, bad request, gone — a retry changes nothing
		}
	}
	// Everything else is transport-level (refused, reset, truncated body,
	// deadline): the canonical retriable class.
	return true
}

// retrier runs requests under one policy with seeded jitter.
type retrier struct {
	policy RetryPolicy
	seed   uint64
	sleep  func(context.Context, time.Duration) error // test seam
}

func newRetrier(p RetryPolicy, seed uint64) *retrier {
	return &retrier{policy: p.withDefaults(), seed: seed, sleep: sleepCtx}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs fn under the retry policy. op names the operation for jitter
// derivation and error text ("submit host=a span=0-12"). fn sees the
// attempt number (0-based); its error is returned unwrapped when
// permanent or when attempts run out. Context cancellation between
// attempts stops immediately with the context's error.
//
//wclint:retry-core
func (r *retrier) do(ctx context.Context, op string, fn func(attempt int) error) error {
	var last error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		err := fn(attempt)
		if err == nil {
			return nil
		}
		last = err
		if !retriable(err) || errors.Is(err, context.Canceled) {
			return err
		}
		if attempt == r.policy.MaxAttempts-1 {
			break
		}
		if serr := r.sleep(ctx, r.policy.delay(r.seed, op, attempt)); serr != nil {
			return last
		}
	}
	return fmt.Errorf("%s: giving up after %d attempts: %w", op, r.policy.MaxAttempts, last)
}
