package coord

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
)

// Trace distribution: before any span job is submitted, every
// trace://<hash> the grid references must be present on every host that
// will run cells of it — work lands on whichever host is free, so a
// trace that exists on only one host would make the others fall back to
// the walker (observable, but slower and, for imported external
// workloads, a hard failure). The coordinator closes the gap itself:
// it probes each (host, hash) pair with a HEAD, fetches any hash it
// lacks locally from a host that has it (hash-verified on receipt,
// like every store ingest), and pushes each missing object over
// PUT /api/v1/traces/{hash}. Hosts that cannot be brought up to date —
// no -tracestore, probe errors, failed pushes — are dropped from the
// run before workers start, exactly like hosts that die mid-run; a
// hash that exists neither locally nor on any host aborts the run,
// since no host could replay it. The distributor then stays alive for
// the whole run: hosts joining mid-sweep through the hosts file get the
// same treatment (ensureHost) before their worker starts. Every
// transfer runs under the run's shared retry policy. The result: spans
// may land anywhere at any time, and no host needs a pre-provisioned
// trace directory.

// newDistributor builds the run's trace distributor. When the grid
// references no traces it is inert (init and ensureHost are no-ops).
// A nil local store is replaced by an ephemeral one that lives until
// cleanup is called — it must survive the whole run so late joiners can
// be supplied.
func newDistributor(g sweep.Grid, client *http.Client, reqTimeout time.Duration,
	local *tracestore.Store, token string, retry *retrier, logf func(string, ...any)) (*distributor, func(), error) {
	d := &distributor{
		client: client, reqTimeout: reqTimeout, store: local,
		token: token, retry: retry, logf: logf,
		hashes: referencedHashes(g),
	}
	cleanup := func() {}
	if len(d.hashes) > 0 && d.store == nil {
		// No local store: relay donor-host objects through a temp store,
		// which hash-verifies them exactly like a durable one would.
		dir, err := os.MkdirTemp("", "waycache-coord-traces-")
		if err != nil {
			return nil, nil, fmt.Errorf("coord: %w", err)
		}
		store, err := tracestore.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		d.store = store
		cleanup = func() { os.RemoveAll(dir) }
	}
	return d, cleanup, nil
}

// referencedHashes returns the grid's distinct trace hashes, sorted so
// distribution order (and its logs) is deterministic.
func referencedHashes(g sweep.Grid) []string {
	seen := make(map[string]bool)
	var hashes []string
	for _, ref := range g.TraceRefs {
		if hash, ok := trace.ParseRef(ref); ok && !seen[hash] {
			seen[hash] = true
			hashes = append(hashes, hash)
		}
	}
	sort.Strings(hashes)
	return hashes
}

type distributor struct {
	client     *http.Client
	reqTimeout time.Duration
	store      *tracestore.Store
	token      string
	retry      *retrier
	logf       func(string, ...any)
	hashes     []string
}

// init brings every starting host up to date on every referenced hash
// and returns the hosts still eligible for the run, preserving order.
func (d *distributor) init(ctx context.Context, hosts []string) ([]string, error) {
	live := hosts
	for _, hash := range d.hashes {
		var err error
		if live, err = d.distribute(ctx, hash, live); err != nil {
			return nil, err
		}
	}
	return live, nil
}

// ensureHost brings one late-joining host up to date on every referenced
// hash, fetching from donors (current active hosts) anything the local
// store lacks. An error means the host must not join the run.
func (d *distributor) ensureHost(ctx context.Context, host string, donors []string) error {
	for _, hash := range d.hashes {
		ok, err := d.has(ctx, host, hash)
		if err != nil {
			return fmt.Errorf("probing trace %s: %w", trace.ShortHash(hash), err)
		}
		if ok {
			continue
		}
		if !d.store.Has(hash) {
			if err := d.fetchFromAny(ctx, hash, donors); err != nil {
				return err
			}
		}
		if err := d.push(ctx, host, hash); err != nil {
			return fmt.Errorf("pushing trace %s: %w", trace.ShortHash(hash), err)
		}
		d.logf("coord: pushed trace %s -> %s", trace.ShortHash(hash), host)
	}
	return nil
}

// newRequest builds one trace-API request, attaching the fleet's bearer
// token when it is authenticated.
func (d *distributor) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if d.token != "" {
		req.Header.Set("Authorization", "Bearer "+d.token)
	}
	return req, nil
}

// distribute brings every reachable host up to date on one hash and
// returns the hosts still eligible for the run, preserving order.
func (d *distributor) distribute(ctx context.Context, hash string, hosts []string) ([]string, error) {
	have := make(map[string]bool, len(hosts))
	var live []string
	for _, h := range hosts {
		ok, err := d.has(ctx, h, hash)
		if err != nil {
			// A 409 here means the host runs without -tracestore: it could
			// never replay the reference, so it leaves the run with the
			// unreachable hosts.
			d.logf("coord: dropping host %s: probing trace %s: %v", h, trace.ShortHash(hash), err)
			continue
		}
		have[h] = ok
		live = append(live, h)
	}
	if err := d.ensureLocal(ctx, hash, live, have); err != nil {
		return nil, err
	}
	var out []string
	for _, h := range live {
		if !have[h] {
			if err := d.push(ctx, h, hash); err != nil {
				d.logf("coord: dropping host %s: pushing trace %s: %v", h, trace.ShortHash(hash), err)
				continue
			}
			d.logf("coord: pushed trace %s -> %s", trace.ShortHash(hash), h)
		}
		out = append(out, h)
	}
	return out, nil
}

// ensureLocal guarantees the coordinator's store holds hash, fetching it
// from a donor host when it does not. A hash that exists nowhere aborts
// the run: no amount of reassignment could replay it.
func (d *distributor) ensureLocal(ctx context.Context, hash string, hosts []string, have map[string]bool) error {
	if d.store != nil && d.store.Has(hash) {
		return nil
	}
	for _, h := range hosts {
		if !have[h] {
			continue
		}
		if err := d.fetch(ctx, h, hash); err != nil {
			d.logf("coord: fetching trace %s from %s: %v", trace.ShortHash(hash), h, err)
			continue
		}
		return nil
	}
	return fmt.Errorf("coord: trace %s is in no local store (-tracestore) and on no host; import it with traceconv and upload it somewhere first",
		trace.ShortHash(hash))
}

// fetchFromAny pulls hash from the first donor that has it.
func (d *distributor) fetchFromAny(ctx context.Context, hash string, donors []string) error {
	for _, h := range donors {
		ok, err := d.has(ctx, h, hash)
		if err != nil || !ok {
			continue
		}
		if err := d.fetch(ctx, h, hash); err != nil {
			d.logf("coord: fetching trace %s from %s: %v", trace.ShortHash(hash), h, err)
			continue
		}
		return nil
	}
	return fmt.Errorf("trace %s is no longer available from any active host", trace.ShortHash(hash))
}

// has probes one host for one hash without transferring bytes, retrying
// transport faults under the shared policy.
func (d *distributor) has(ctx context.Context, host, hash string) (bool, error) {
	var found bool
	err := d.retry.do(ctx, "trace-probe "+trace.ShortHash(hash), func(int) error {
		rctx, cancel := context.WithTimeout(ctx, d.reqTimeout)
		defer cancel()
		req, err := d.newRequest(rctx, http.MethodHead, host+"/api/v1/traces/"+hash, nil)
		if err != nil {
			return err
		}
		resp, err := d.client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			found = true
			return nil
		case http.StatusNotFound:
			found = false
			return nil
		default:
			return &httpStatusError{status: resp.StatusCode}
		}
	})
	return found, err
}

// fetch pulls hash's bytes from a donor host into the local store, which
// verifies them against the hash before committing — a corrupt transfer
// is rejected here, never relayed onward. The whole transfer retries
// under the policy; PutExpected makes a torn retry harmless.
func (d *distributor) fetch(ctx context.Context, host, hash string) error {
	return d.retry.do(ctx, "trace-fetch "+trace.ShortHash(hash), func(int) error {
		rctx, cancel := context.WithTimeout(ctx, 10*d.reqTimeout)
		defer cancel()
		req, err := d.newRequest(rctx, http.MethodGet, host+"/api/v1/traces/"+hash, nil)
		if err != nil {
			return err
		}
		resp, err := d.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return &httpStatusError{status: resp.StatusCode}
		}
		_, _, err = d.store.PutExpected(resp.Body, hash)
		return err
	})
}

// push uploads the local copy of hash to one host. PUT against a
// content-addressed object is idempotent, so retries are safe.
func (d *distributor) push(ctx context.Context, host, hash string) error {
	return d.retry.do(ctx, "trace-push "+trace.ShortHash(hash), func(int) error {
		f, size, err := d.store.Open(hash)
		if err != nil {
			return err
		}
		defer f.Close()
		rctx, cancel := context.WithTimeout(ctx, 10*d.reqTimeout)
		defer cancel()
		req, err := d.newRequest(rctx, http.MethodPut, host+"/api/v1/traces/"+hash, f)
		if err != nil {
			return err
		}
		req.ContentLength = size
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := d.client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			return &httpStatusError{status: resp.StatusCode}
		}
		return nil
	})
}
