package coord

// Chaos tests for the elastic coordinator: seeded fault injection
// (drops, truncated responses, 5xx bursts, latency spikes, frozen
// hosts), work stealing from stragglers, tail speculation, and mid-run
// membership changes through the hosts file. Every test's acceptance
// bar is the same as the clean-path tests': the merged output must be
// byte-identical to a single-host run of the same grid.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"waycache/internal/core"
	"waycache/internal/faultinject"
	"waycache/internal/server"
	"waycache/internal/sweep"
)

// canonicalEntries computes the exact export entries a real waycached
// host would serve for configs [lo, hi) of the normalized grid — what a
// scripted stub host hands a stealing coordinator.
func canonicalEntries(t *testing.T, g sweep.Grid, lo, hi int) []server.ExportEntry {
	t.Helper()
	eng := sweep.New(sweep.Options{Workers: 2})
	cfgs := g.Configs()[lo:hi]
	entries := make([]server.ExportEntry, 0, len(cfgs))
	for _, cfg := range cfgs {
		res, err := eng.Result(cfg)
		if err != nil {
			t.Fatalf("computing canonical result: %v", err)
		}
		key, _ := cfg.Key()
		payload, err := core.EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, server.ExportEntry{Key: key, Result: payload})
	}
	return entries
}

// stubStraggler speaks just enough of the waycached job API to play a
// straggler: it accepts exactly one span submission, then reports the
// job running forever with a watermark frozen at wm finished configs.
// Its partial export serves real canonical payloads (computed locally),
// so a steal banks bytes indistinguishable from a live host's. Further
// submissions are refused — the host is "too wedged to take more work".
type stubStraggler struct {
	t  *testing.T
	g  sweep.Grid // normalized: Configs() order matches the hosts'
	wm int        // watermark the stub claims, forever

	mu        sync.Mutex
	submits   int
	cancels   int
	cancelled bool
	name      string
	lo, hi    int
}

func (s *stubStraggler) status() server.JobStatus {
	st := server.JobStatus{
		ID: "stub-job", Name: s.name, State: "running",
		Span:      sweep.FormatSpan(s.lo, s.hi),
		Done:      s.wm,
		Total:     s.hi - s.lo,
		Watermark: s.wm,
	}
	if s.cancelled {
		st.State = "cancelled"
	}
	return st
}

func (s *stubStraggler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := r.URL.Path
	switch {
	case r.Method == http.MethodPost && strings.HasSuffix(path, "/jobs"):
		if s.submits > 0 {
			http.Error(w, "stub: refusing further work", http.StatusServiceUnavailable)
			return
		}
		var req server.JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		lo, hi, err := sweep.ParseSpan(req.Span)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.submits++
		s.name, s.lo, s.hi = req.Name, lo, hi
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(s.status())
	case strings.HasSuffix(path, "/events"):
		http.Error(w, "stub has no streams", http.StatusNotFound)
	case strings.HasSuffix(path, "/cancel"):
		s.cancels++
		s.cancelled = true
		json.NewEncoder(w).Encode(s.status())
	case strings.HasSuffix(path, "/export"):
		n, err := strconv.Atoi(r.URL.Query().Get("prefix"))
		if err != nil || n < 0 || n > s.wm {
			http.Error(w, "stub: bad prefix", http.StatusConflict)
			return
		}
		entries := canonicalEntries(s.t, s.g, s.lo, s.lo+n)
		enc := json.NewEncoder(w)
		for _, e := range entries {
			enc.Encode(e)
		}
	case r.Method == http.MethodDelete:
		w.WriteHeader(http.StatusOK)
	case r.Method == http.MethodGet && strings.HasSuffix(path, "/jobs"):
		json.NewEncoder(w).Encode([]server.JobStatus{s.status()})
	default:
		json.NewEncoder(w).Encode(s.status())
	}
}

// chaosHost wraps a fresh waycached instance in a seeded fault proxy.
func chaosHost(t *testing.T, seed uint64, rules ...faultinject.Rule) (string, *faultinject.Proxy) {
	t.Helper()
	srv := server.New(server.Options{Workers: 2})
	proxy := faultinject.New(srv, seed, rules...)
	ts := httptest.NewServer(proxy)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL, proxy
}

// TestChaosFaultsStillByteIdentical is the seeded-chaos acceptance
// test: three hosts perturbed by dropped connections, 5xx bursts,
// latency spikes, and a truncated export stream must still merge into
// JSON and CSV byte-identical to a single-host run.
func TestChaosFaultsStillByteIdentical(t *testing.T) {
	g := testGrid()
	hostA, proxyA := chaosHost(t, 11,
		faultinject.Rule{Kind: faultinject.Drop, After: 2, Every: 3, Count: 3})
	hostB, proxyB := chaosHost(t, 22,
		faultinject.Rule{Kind: faultinject.Status, Code: 503, Every: 4, Count: 3},
		faultinject.Rule{Kind: faultinject.Delay, Delay: 40 * time.Millisecond, After: 1, Every: 5, Count: 2})
	hostC, proxyC := chaosHost(t, 33,
		faultinject.Rule{Path: "/export", Kind: faultinject.Truncate, Bytes: 120, Count: 1})

	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{hostA, hostB, hostC},
		Shards:       6,
		PollInterval: 15 * time.Millisecond,
		Retry:        RetryPolicy{MaxAttempts: 4, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
		Seed:         7,
		Name:         "t-chaos",
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, wantCSV := singleHostBytes(t, g)
	gotJSON, gotCSV := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("chaos merge differs from single-host sweep JSON")
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("chaos merge differs from single-host sweep CSV")
	}
	for name, p := range map[string]*faultinject.Proxy{"A": proxyA, "B": proxyB, "C": proxyC} {
		fired := 0
		for _, n := range p.Faults() {
			fired += n
		}
		if fired == 0 {
			t.Errorf("host %s's fault schedule never fired — the test exercised nothing there", name)
		}
		t.Logf("host %s faults: %v", name, p.Faults())
	}
}

// TestStealsFromStraggler is the straggler acceptance test: a host that
// finishes part of its span and then wedges (watermark frozen, job
// running forever) must not gate the sweep on its full shard. An idle
// host steals the finished prefix through the partial export, the
// remainder is requeued, and the merge is still byte-identical.
func TestStealsFromStraggler(t *testing.T) {
	g := testGrid()
	ng, err := g.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubStraggler{t: t, g: ng, wm: 2}
	stubTS := httptest.NewServer(stub)
	t.Cleanup(stubTS.Close)
	realURL := newHost(t)

	res, err := Run(context.Background(), g, Options{
		Hosts:          []string{stubTS.URL, realURL},
		Shards:         2,
		PollInterval:   20 * time.Millisecond,
		StallAfter:     300 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: 30 * time.Millisecond},
		NoSpeculate:    true,
		MaxAttempts:    3,
		Name:           "t-steal",
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, wantCSV := singleHostBytes(t, g)
	gotJSON, gotCSV := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("post-steal merge differs from single-host sweep JSON")
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("post-steal merge differs from single-host sweep CSV")
	}

	stolen := 0
	for _, sh := range res.Shards {
		if !sh.Stolen {
			continue
		}
		stolen++
		if sh.Host != stubTS.URL {
			t.Errorf("stolen piece credits %s, want the straggler %s", sh.Host, stubTS.URL)
		}
		if sh.Configs != stub.wm {
			t.Errorf("stolen piece holds %d configs, want the straggler's watermark %d", sh.Configs, stub.wm)
		}
	}
	if stolen != 1 {
		t.Fatalf("%d stolen pieces in the merge, want exactly 1", stolen)
	}
	stub.mu.Lock()
	cancels := stub.cancels
	stub.mu.Unlock()
	if cancels == 0 {
		t.Error("the straggler's job was never cancelled after the steal")
	}
	for _, h := range res.Hosts {
		if h.Host == realURL && h.Steals == 0 {
			t.Errorf("surviving host reports no steals: %+v", h)
		}
	}
}

// TestSpeculationRescuesFrozenHost: a host that freezes solid right
// after accepting a span (no watermark, nothing to steal) is rescued by
// tail speculation — an idle host duplicates the span outright and its
// full export wins.
func TestSpeculationRescuesFrozenHost(t *testing.T) {
	g := testGrid()
	srvA := server.New(server.Options{Workers: 2})
	proxyA := faultinject.New(srvA, 1)
	frozenA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		proxyA.ServeHTTP(w, r)
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/jobs") {
			proxyA.Freeze() // wedge the host the moment it takes work
		}
	}))
	t.Cleanup(func() { frozenA.Close(); proxyA.Unfreeze(); srvA.Close() })
	hostB := newHost(t)

	res, err := Run(context.Background(), g, Options{
		Hosts:          []string{frozenA.URL, hostB},
		Shards:         2,
		PollInterval:   20 * time.Millisecond,
		StallAfter:     250 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: 30 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		MaxAttempts:    3,
		Name:           "t-spec",
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("post-speculation merge differs from single-host sweep JSON")
	}
	speculative := 0
	for _, sh := range res.Shards {
		if sh.Speculative {
			speculative++
			if sh.Host != hostB {
				t.Errorf("speculative piece credits %s, want the rescuer %s", sh.Host, hostB)
			}
		}
	}
	if speculative == 0 {
		t.Error("no speculative piece in the merge — the frozen host's span was recovered another way (or not at all)")
	}
	for _, h := range res.Hosts {
		if h.Host == hostB && h.Speculations == 0 {
			t.Errorf("rescuer reports no speculations: %+v", h)
		}
	}
}

// writeHostsFile (re)writes a hosts file the coordinator is watching.
func writeHostsFile(t *testing.T, path string, hosts ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("# chaos test fleet\n"+strings.Join(hosts, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHostsFileLateJoinCompletesRun: the run starts with only a host
// that never makes progress; a real host appended to the hosts file
// mid-run must join, receive a duplicated span, and finish the sweep.
func TestHostsFileLateJoinCompletesRun(t *testing.T) {
	g := testGrid()
	ng, err := g.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubStraggler{t: t, g: ng, wm: 0} // running forever, zero progress
	stubTS := httptest.NewServer(stub)
	t.Cleanup(stubTS.Close)
	realURL := newHost(t)

	hostsFile := filepath.Join(t.TempDir(), "hosts")
	writeHostsFile(t, hostsFile, stubTS.URL)

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(context.Background(), g, Options{
			HostsFile:      hostsFile,
			PollInterval:   25 * time.Millisecond,
			StallAfter:     200 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: 30 * time.Millisecond},
			Name:           "t-late-join",
			Logf:           t.Logf,
		})
		done <- outcome{res, err}
	}()

	time.Sleep(250 * time.Millisecond)
	writeHostsFile(t, hostsFile, stubTS.URL, realURL)

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish after the rescuing host joined")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}

	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, out.res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("late-join merge differs from single-host sweep JSON")
	}
	joined := false
	for _, h := range out.res.Hosts {
		if h.Host == realURL {
			joined = h.Joined
			if h.Configs != g.Size() {
				t.Errorf("joiner banked %d configs, want the whole grid (%d)", h.Configs, g.Size())
			}
		}
	}
	if !joined {
		t.Error("the rescuing host is not reported as a mid-run joiner")
	}
}

// TestHostsFileDrainRemovesHost: removing a host from the hosts file
// mid-run drains it — it finishes its current span, takes no more work,
// and the rest of the sweep lands on the remaining host.
func TestHostsFileDrainRemovesHost(t *testing.T) {
	g := testGrid()
	hostA := newHost(t)
	// Host B's events stream answers only after a delay, so its first
	// flight reliably outlives the drain signal.
	hostB, _ := chaosHost(t, 1,
		faultinject.Rule{Path: "/events", Kind: faultinject.Delay, Delay: 600 * time.Millisecond})

	hostsFile := filepath.Join(t.TempDir(), "hosts")
	writeHostsFile(t, hostsFile, hostA, hostB)

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(context.Background(), g, Options{
			HostsFile:      hostsFile,
			Shards:         4,
			PollInterval:   25 * time.Millisecond,
			RequestTimeout: 5 * time.Second,
			Name:           "t-drain",
			Logf:           t.Logf,
		})
		done <- outcome{res, err}
	}()

	time.Sleep(150 * time.Millisecond)
	writeHostsFile(t, hostsFile, hostA) // B is gone from the fleet listing

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish after the drain")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}

	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, out.res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("post-drain merge differs from single-host sweep JSON")
	}
	for _, h := range out.res.Hosts {
		switch h.Host {
		case hostB:
			if h.State != hostDrained {
				t.Errorf("removed host state = %q, want %q", h.State, hostDrained)
			}
			if h.Flights != 1 {
				t.Errorf("removed host flew %d spans, want exactly the 1 it held when drained", h.Flights)
			}
		case hostA:
			if h.Flights != 3 {
				t.Errorf("surviving host flew %d spans, want the other 3", h.Flights)
			}
		}
	}
}

// TestStreamTruncationFallsBackToPoll: an SSE events stream cut off
// mid-payload must route the flight to the status poll loop without
// burning one of the span's attempts.
func TestStreamTruncationFallsBackToPoll(t *testing.T) {
	g := testGrid()
	host, proxy := chaosHost(t, 1,
		faultinject.Rule{Path: "/events", Kind: faultinject.Truncate, Bytes: 60, Count: 1})

	fellBack := 0
	res, err := Run(context.Background(), g, Options{
		Hosts:          []string{host},
		PollInterval:   15 * time.Millisecond,
		RequestTimeout: time.Second,
		Name:           "t-truncated-stream",
		Logf: func(f string, args ...any) {
			if strings.Contains(f, "polling instead") {
				fellBack++
			}
			t.Logf(f, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("truncated-stream merge differs from single-host sweep JSON")
	}
	if fellBack == 0 {
		t.Error("run never logged a poll fallback — the truncated stream was not exercised")
	}
	if n := proxy.Faults()["truncate  /events"]; n != 1 {
		t.Errorf("truncation fired %d times, want 1 (faults: %v)", n, proxy.Faults())
	}
	for _, sh := range res.Shards {
		if sh.Attempts != 1 {
			t.Errorf("span %s burned %d attempts on a broken stream, want 1 (polling is not a failure)",
				sweep.FormatSpan(sh.Lo, sh.Hi), sh.Attempts)
		}
	}
}

// TestWatchdogExpiryOnSilentStream: an events endpoint that accepts the
// connection and then never answers (no headers, no bytes — a wedged
// proxy) must trip the inactivity watchdog and fall back to polling,
// again without burning an attempt.
func TestWatchdogExpiryOnSilentStream(t *testing.T) {
	g := testGrid()
	srv := server.New(server.Options{Workers: 2})
	silent := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			<-r.Context().Done() // hold the stream open, send nothing, ever
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { silent.Close(); srv.Close() })

	fellBack := 0
	start := time.Now()
	res, err := Run(context.Background(), g, Options{
		Hosts:          []string{silent.URL},
		PollInterval:   15 * time.Millisecond,
		RequestTimeout: 300 * time.Millisecond,
		Name:           "t-watchdog",
		Logf: func(f string, args ...any) {
			if strings.Contains(f, "polling instead") {
				fellBack++
			}
			t.Logf(f, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("watchdog-fallback merge differs from single-host sweep JSON")
	}
	if fellBack == 0 {
		t.Error("the silent stream never tripped the watchdog into a poll fallback")
	}
	for _, sh := range res.Shards {
		if sh.Attempts != 1 {
			t.Errorf("span %s burned %d attempts on a silent stream, want 1", sweep.FormatSpan(sh.Lo, sh.Hi), sh.Attempts)
		}
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Errorf("run took %v — the watchdog did not bound the silent stream", d)
	}
}
