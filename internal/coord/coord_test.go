package coord

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waycache/internal/access"
	"waycache/internal/resultdb"
	"waycache/internal/server"
	"waycache/internal/sweep"
	"waycache/internal/workload"
)

func testGrid() sweep.Grid {
	return sweep.Grid{
		Benchmarks: []string{"gcc", "swim"},
		DPolicies:  []access.DPolicy{access.DParallel, access.DSelDMWayPred},
		DWays:      []int{2, 4},
		Insts:      5_000,
	}
}

// newHost starts one waycached instance (its own store) and returns its
// base URL.
func newHost(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Options{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL
}

// singleHostBytes runs the grid through one local engine — exactly what
// cmd/sweep does — and returns the JSON and CSV bytes.
func singleHostBytes(t *testing.T, g sweep.Grid) ([]byte, []byte) {
	t.Helper()
	eng := sweep.New(sweep.Options{Workers: 4})
	sw, err := eng.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var j, c bytes.Buffer
	if err := sw.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes()
}

func coordBytes(t *testing.T, res *Result) ([]byte, []byte) {
	t.Helper()
	var j, c bytes.Buffer
	if err := res.Sweep.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := res.Sweep.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes()
}

// TestTwoHostRunByteIdenticalToSingleHost is the tentpole acceptance
// test: a grid split over two waycached instances merges into output
// byte-identical to a single-host run, and every remotely-computed result
// bulk-ingests into a local resultdb under its canonical key.
func TestTwoHostRunByteIdenticalToSingleHost(t *testing.T) {
	g := testGrid()
	hosts := []string{newHost(t), newHost(t)}
	db, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var progMu sync.Mutex
	var lastDone, lastTotal int
	res, err := Run(context.Background(), g, Options{
		Hosts:        hosts,
		PollInterval: 10 * time.Millisecond,
		Backend:      db,
		Progress: func(done, total int) {
			progMu.Lock()
			lastDone, lastTotal = done, total
			progMu.Unlock()
		},
		Name: "t-two-host",
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, wantCSV := singleHostBytes(t, g)
	gotJSON, gotCSV := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("merged JSON differs from single-host sweep JSON")
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("merged CSV differs from single-host sweep CSV")
	}

	cfgs := g.Configs()
	if res.Ingested != len(cfgs) || db.Len() != len(cfgs) {
		t.Errorf("ingested %d results into a store of %d, want %d", res.Ingested, db.Len(), len(cfgs))
	}
	for _, cfg := range cfgs {
		key, _ := cfg.Key()
		if _, found, err := db.Get(key); err != nil || !found {
			t.Errorf("ingested store missing key %q (found=%v err=%v)", key, found, err)
		}
	}

	if len(res.Shards) != 2 {
		t.Fatalf("got %d shard reports, want 2", len(res.Shards))
	}
	for i, sh := range res.Shards {
		if sh.Index != i || sh.Attempts != 1 || sh.Host == "" || sh.JobID == "" {
			t.Errorf("shard report %d = %+v", i, sh)
		}
		if want := sweep.ShardLen(len(cfgs), i, 2); sh.Configs != want {
			t.Errorf("shard %d ran %d configs, want %d", i, sh.Configs, want)
		}
	}
	progMu.Lock()
	defer progMu.Unlock()
	if lastDone != len(cfgs) || lastTotal != len(cfgs) {
		t.Errorf("final progress %d/%d, want %d/%d", lastDone, lastTotal, len(cfgs), len(cfgs))
	}
}

// TestMoreShardsThanHosts: an uneven split (8 configs into 3 shards over
// 2 hosts) must still merge byte-identically.
func TestMoreShardsThanHosts(t *testing.T) {
	g := testGrid()
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{newHost(t), newHost(t)},
		Shards:       3,
		PollInterval: 10 * time.Millisecond,
		Name:         "t-three-shards",
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("3-shard merge differs from single-host sweep JSON")
	}
	sizes := []int{res.Shards[0].Configs, res.Shards[1].Configs, res.Shards[2].Configs}
	if sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 2 {
		t.Errorf("shard sizes = %v, want [3 3 2]", sizes)
	}
}

// flakyHost proxies one waycached instance and fails hard (502 on every
// request) immediately after serving its first successful job
// submission — a host that accepts a shard and then dies mid-run.
type flakyHost struct {
	inner  http.Handler
	killed atomic.Bool
}

func (f *flakyHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.killed.Load() {
		http.Error(w, "host down", http.StatusBadGateway)
		return
	}
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/jobs") {
		f.inner.ServeHTTP(w, r)
		f.killed.Store(true)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestHostDeathReassignsShard forces a mid-shard host failure: the flaky
// host accepts its shard submission and then answers nothing but 502, so
// the coordinator must retire it, reassign the shard to the surviving
// host, and still merge byte-identical output.
func TestHostDeathReassignsShard(t *testing.T) {
	g := testGrid()

	badSrv := server.New(server.Options{Workers: 2})
	flaky := &flakyHost{inner: badSrv}
	badTS := httptest.NewServer(flaky)
	t.Cleanup(func() { badTS.Close(); badSrv.Close() })
	goodURL := newHost(t)

	// Gate the good host's first request until the flaky host has taken a
	// shard, so exactly one shard deterministically lands on the dying
	// host no matter how the workers race.
	gate := make(chan struct{})
	target, err := url.Parse(goodURL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	proxyGood := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-gate
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(proxyGood.Close)
	go func() {
		// Open the gate once the flaky host is dead (its submission was
		// served), or after a generous timeout as a failsafe.
		deadline := time.Now().Add(30 * time.Second)
		for !flaky.killed.Load() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(gate)
	}()

	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{badTS.URL, proxyGood.URL},
		PollInterval: 10 * time.Millisecond,
		MaxAttempts:  3,
		Name:         "t-host-death",
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, wantCSV := singleHostBytes(t, g)
	gotJSON, gotCSV := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("post-failure merge differs from single-host sweep JSON")
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("post-failure merge differs from single-host sweep CSV")
	}

	retried := 0
	for _, sh := range res.Shards {
		if sh.Host == badTS.URL {
			t.Errorf("shard %d reports the dead host as its source", sh.Index)
		}
		if sh.Attempts > 1 {
			retried++
		}
	}
	if retried != 1 {
		t.Errorf("%d shards were retried, want exactly 1 (the dead host's)", retried)
	}
}

// TestPollFallbackWhenStreamUnavailable: a host whose events endpoint is
// missing (an older waycached, a proxy that rejects streams) must still
// complete its shards through the status poll loop, byte-identically.
func TestPollFallbackWhenStreamUnavailable(t *testing.T) {
	g := testGrid()
	srv := server.New(server.Options{Workers: 2})
	noStream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			http.Error(w, "no such endpoint", http.StatusNotFound)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { noStream.Close(); srv.Close() })

	streamFailures := 0
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{noStream.URL},
		PollInterval: 10 * time.Millisecond,
		Name:         "t-poll-fallback",
		Logf: func(f string, args ...any) {
			if strings.Contains(f, "events stream") {
				streamFailures++
			}
			t.Logf(f, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("poll-fallback merge differs from single-host sweep JSON")
	}
	if streamFailures == 0 {
		t.Error("run never logged a stream fallback — the 404ing events endpoint was not exercised")
	}
}

// TestAuthenticatedFleet: with hosts requiring bearer tokens, a run
// carrying Options.Token succeeds and one without it fails fast.
func TestAuthenticatedFleet(t *testing.T) {
	tokens, err := server.ParseAuthTokens("coordinator=fleet-secret")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Workers: 2, AuthTokens: tokens})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	g := sweep.Grid{Benchmarks: []string{"gcc"}, Insts: 2_000}
	if _, err := Run(context.Background(), g, Options{
		Hosts:        []string{ts.URL},
		PollInterval: 10 * time.Millisecond,
		MaxAttempts:  1,
		Name:         "t-auth-missing",
	}); err == nil {
		t.Fatal("tokenless run against an authenticated host succeeded")
	}

	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{ts.URL},
		PollInterval: 10 * time.Millisecond,
		Name:         "t-auth-ok",
		Token:        "fleet-secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := singleHostBytes(t, g)
	gotJSON, _ := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("authenticated merge differs from single-host sweep JSON")
	}
}

// TestAllHostsDeadFailsRun: with no live host the run must error out, not
// hang.
func TestAllHostsDeadFailsRun(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	t.Cleanup(dead.Close)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := Run(ctx, testGrid(), Options{
		Hosts:        []string{dead.URL},
		PollInterval: 10 * time.Millisecond,
		MaxAttempts:  2,
		Name:         "t-all-dead",
	})
	if err == nil {
		t.Fatal("run with only a dead host succeeded")
	}
}

// TestDeterministicJobFailureAborts: a grid that fails in simulation
// (impossible geometry) must abort the run with the remote error instead
// of burning reassignment attempts on other hosts.
func TestDeterministicJobFailureAborts(t *testing.T) {
	g := sweep.Grid{Benchmarks: []string{"gcc"}, DBlocks: []int{3}, Insts: 1_000}
	_, err := Run(context.Background(), g, Options{
		Hosts:        []string{newHost(t), newHost(t)},
		PollInterval: 10 * time.Millisecond,
		Name:         "t-failing-grid",
	})
	if err == nil {
		t.Fatal("failing grid reported success")
	}
	if !strings.Contains(err.Error(), "deterministically") {
		t.Errorf("error %q does not mark the failure deterministic", err)
	}
}

// TestNoHosts: an empty host list is a configuration error.
func TestNoHosts(t *testing.T) {
	if _, err := Run(context.Background(), testGrid(), Options{}); err == nil {
		t.Fatal("no-host run succeeded")
	}
}

// TestMergeSatisfiesMemoKeys: decoded export payloads must carry the
// canonical config, so records rebuilt at the coordinator equal records
// built host-side.
func TestMergeSatisfiesMemoKeys(t *testing.T) {
	g := sweep.Grid{Benchmarks: []string{"gcc"}, Insts: 2_000}
	backend := sweep.NewMemory()
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{newHost(t)},
		PollInterval: 10 * time.Millisecond,
		Backend:      backend,
		Name:         "t-memo-keys",
	})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := g.Configs()[0].Key()
	stored, found, err := backend.Get(key)
	if err != nil || !found {
		t.Fatalf("backend missing %q: found=%v err=%v", key, found, err)
	}
	if rec := sweep.NewRecord(stored); rec != res.Sweep.Records[0] {
		t.Error("record rebuilt from ingested result differs from merged record")
	}
}

// TestEmptyBenchmarksMeansFullSuite: the coordinator must normalize an
// omitted benchmark list exactly as the hosts do (full suite), or its
// shard-size accounting would reject every export.
func TestEmptyBenchmarksMeansFullSuite(t *testing.T) {
	g := sweep.Grid{Insts: 2_000}
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{newHost(t)},
		PollInterval: 10 * time.Millisecond,
		Name:         "t-empty-bench",
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workload.Names()); len(res.Sweep.Records) != want {
		t.Errorf("empty-benchmarks run merged %d records, want the full suite (%d)", len(res.Sweep.Records), want)
	}
}
