package coord

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRetryDelayDeterministicAndBounded: the backoff schedule is a pure
// function of (seed, op, attempt), sits inside (raw/2, raw], and caps
// at MaxDelay.
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	d1 := p.delay(42, "submit x", 1)
	if d2 := p.delay(42, "submit x", 1); d2 != d1 {
		t.Errorf("same (seed, op, attempt) gave %v then %v", d1, d2)
	}
	if d3 := p.delay(42, "poll y", 1); d3 == d1 {
		t.Errorf("distinct ops share the identical jitter %v", d1)
	}
	raw := p.BaseDelay << 1 // attempt 1
	if d1 <= raw/2 || d1 > raw {
		t.Errorf("attempt-1 delay %v outside jitter window (%v, %v]", d1, raw/2, raw)
	}
	for n := 0; n < 64; n++ {
		if d := p.delay(1, "op", n); d > p.MaxDelay {
			t.Fatalf("attempt-%d delay %v exceeds cap %v", n, d, p.MaxDelay)
		}
	}
}

// TestRetriableClassification: transport faults and server-side trouble
// retry; deterministic job failures and client errors do not.
func TestRetriableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{errors.New("connection reset"), true},
		{&httpStatusError{status: 500}, true},
		{&httpStatusError{status: 503}, true},
		{&httpStatusError{status: 429}, true},
		{&httpStatusError{status: 408}, true},
		{&httpStatusError{status: 400}, false},
		{&httpStatusError{status: 401}, false},
		{&httpStatusError{status: 404}, false},
		{&httpStatusError{status: 409}, false},
		{&jobFailedError{msg: "impossible geometry"}, false},
	}
	for _, c := range cases {
		if got := retriable(c.err); got != c.want {
			t.Errorf("retriable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetrierExhaustionAndShortCircuit: a persistent retriable failure
// burns every attempt and reports exhaustion; a permanent failure stops
// after one try and comes back unwrapped.
func TestRetrierExhaustionAndShortCircuit(t *testing.T) {
	r := newRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, 1)
	slept := 0
	r.sleep = func(context.Context, time.Duration) error { slept++; return nil }

	calls := 0
	err := r.do(context.Background(), "op", func(int) error {
		calls++
		return errors.New("boom")
	})
	if calls != 3 || slept != 2 {
		t.Errorf("retriable failure: %d calls and %d sleeps, want 3 and 2", calls, slept)
	}
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("exhaustion error = %v", err)
	}

	calls = 0
	permanent := &httpStatusError{status: 404}
	err = r.do(context.Background(), "op", func(int) error {
		calls++
		return permanent
	})
	if calls != 1 {
		t.Errorf("permanent failure retried: %d calls, want 1", calls)
	}
	if !errors.Is(err, permanent) {
		t.Errorf("permanent error came back wrapped or replaced: %v", err)
	}

	calls = 0
	err = r.do(context.Background(), "op", func(attempt int) error {
		calls++
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("eventual success: err=%v after %d calls, want nil after 3", err, calls)
	}
}
