// Package coord is the distributed sweep coordinator: it fans one
// design-space grid out to multiple waycached hosts and merges their
// results into output byte-identical to a single-host run.
//
// The grid is expanded exactly once, conceptually, by the deterministic
// sweep.Grid order: the coordinator splits it into n contiguous
// sweep.Shard slices by index arithmetic alone (no local expansion) and
// submits each shard as a named shard job ({"shard": "i/n"}) to a remote
// waycached instance. Each shard is tracked to completion over the
// host's Server-Sent Events progress stream (GET
// /api/v1/jobs/{id}/events) — one connection, push-based progress —
// falling back to the status poll loop when the stream cannot be
// established or breaks; a shard whose host dies — network error, 5xx,
// vanished process — is reassigned to a surviving host, and a host that
// fails is retired for the rest of the run. Finished shards are exported in canonical core.EncodeResult form
// (GET /api/v1/jobs/{id}/export), optionally bulk-ingested into a local
// result store, and concatenated in shard order, so the merged JSON/CSV
// is byte-identical to what cmd/sweep emits for the whole grid on one
// machine.
//
// Determinism contract: Grid.Configs order depends only on the grid;
// Shard slices are contiguous and concatenate to the full expansion
// (property-tested in internal/sweep); records are pure functions of
// results. Therefore merge order — and the merged bytes — cannot depend
// on which host ran what, how shards interleaved, or how many retries
// happened. Protocol and failure semantics: docs/DISTRIBUTED.md.
package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"waycache/internal/core"
	"waycache/internal/server"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

// Options configures a distributed run.
type Options struct {
	// Hosts lists waycached base URLs (e.g. "http://10.0.0.1:8080").
	// Required, at least one.
	Hosts []string
	// Shards is how many contiguous grid shards to create (default:
	// len(Hosts)). More shards than hosts gives finer-grained
	// reassignment when a host dies mid-run.
	Shards int
	// Client issues every request (default: a plain http.Client; each
	// request is additionally bounded by RequestTimeout).
	Client *http.Client
	// RequestTimeout bounds each control request — submit, poll, cancel,
	// evict — so a host that hangs (accepts connections but never
	// answers) is retired like one that errors, instead of blocking its
	// shard forever. Export streams, which carry whole shards, get ten
	// times this budget. Default 30s.
	RequestTimeout time.Duration
	// PollInterval is the per-shard status poll cadence (default 250ms).
	PollInterval time.Duration
	// MaxAttempts bounds submissions per shard across host reassignments
	// (default 3). A shard failing on its last attempt fails the run.
	MaxAttempts int
	// Backend, when non-nil, receives every remotely-computed result in
	// canonical encoded form (sweep.PutEncoded) as shards are merged —
	// pass a resultdb.DB to build one local corpus from a distributed
	// run.
	Backend sweep.Backend
	// TraceStore, when non-nil, is the coordinator's local
	// content-addressed trace store: the source of truth for pushing the
	// grid's trace://<hash> references to hosts that lack them before any
	// shard is submitted (see distributeTraces). Nil is fine even for
	// trace:// grids — as long as every referenced hash already exists on
	// at least one host, the coordinator relays it through an ephemeral
	// store.
	TraceStore *tracestore.Store
	// Progress, when non-nil, receives aggregated done/total config
	// counts across all shards. Calls are serialized.
	Progress sweep.Progress
	// Logf, when non-nil, receives coordinator events: shard
	// assignments, host failures, reassignments.
	Logf func(format string, args ...any)
	// Name tags the run's jobs ("<name>-shard-<i>") so operators can read
	// host job lists, and so resubmissions after a lost response are
	// idempotent. Default: a hash of the grid and shard count.
	Name string
	// Token, when non-empty, is sent as "Authorization: Bearer <token>"
	// on every request — job control, events streams, exports, and trace
	// distribution — for hosts running with -auth-tokens. One fleet, one
	// credential: all hosts must accept the same token.
	Token string
}

// ShardReport is one shard's provenance in the merged output: which host
// finally ran it, under which job, at which attempt. Reports let a caller
// audit exactly where every contiguous record range came from.
type ShardReport struct {
	Index    int    // shard index, also the merge position
	Host     string // host that completed the shard
	JobID    string // job id on that host
	Configs  int    // configurations in the shard
	Attempts int    // submissions needed (1 = no reassignment)
	// TraceFallbacks relays the remote engine's walker-fallback report
	// (benchmark -> reason) so a distributed -trace run that re-simulated
	// somewhere is visible at the coordinator.
	TraceFallbacks map[string]string
}

// Result is a completed distributed run.
type Result struct {
	// Sweep holds the merged records in grid order — byte-identical to a
	// single-host run of the same grid.
	Sweep *sweep.Sweep
	// Shards reports per-shard provenance, in shard order.
	Shards []ShardReport
	// Ingested counts results written to Options.Backend.
	Ingested int
}

// jobFailedError marks a deterministic remote failure (the job itself
// reached "failed"): retrying on another host would fail identically, so
// it aborts the run instead of burning attempts.
type jobFailedError struct{ msg string }

func (e *jobFailedError) Error() string { return e.msg }

// shardOutput is what one completed shard hands the merger.
type shardOutput struct {
	entries []server.ExportEntry // canonical key+payload, shard order
	results []*core.Result       // decoded payloads, same order
}

// Run executes the grid across the hosts and returns the merged result.
// The grid must expand within the hosts' job size limit
// (server.MaxGridSize); cancellation of ctx aborts the run promptly.
func Run(ctx context.Context, g sweep.Grid, o Options) (*Result, error) {
	if len(o.Hosts) == 0 {
		return nil, errors.New("coord: no hosts")
	}
	nShards := o.Shards
	if nShards <= 0 {
		nShards = len(o.Hosts)
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	poll := o.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	reqTimeout := o.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	maxAttempts := o.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Normalize exactly as the server will (an empty benchmark list means
	// the full suite, trace references validate): shard-size accounting
	// and the grid equality behind idempotent named re-submission must
	// both see the grid the hosts execute.
	g, err := g.Normalize()
	if err != nil {
		return nil, err
	}
	// Push every referenced trace to every host that lacks it before any
	// shard lands; hosts that cannot be brought up to date leave the run
	// here, like hosts that die mid-run.
	hosts, err := distributeTraces(ctx, g, o.Hosts, client, reqTimeout, o.TraceStore, o.Token, logf)
	if err != nil {
		return nil, err
	}
	if len(hosts) == 0 {
		return nil, errors.New("coord: no host can serve the grid's trace references")
	}
	name := o.Name
	if name == "" {
		name = defaultName(g, nShards)
	}
	total := g.Size()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	c := &run{
		client: client, grid: g, name: name, token: o.Token,
		nShards: nShards, total: total, poll: poll, reqTimeout: reqTimeout,
		progress:  o.Progress,
		logf:      logf,
		outputs:   make([]shardOutput, nShards),
		reports:   make([]ShardReport, nShards),
		attempts:  make([]int, nShards),
		shardDone: make([]int, nShards),
		remaining: nShards,
		liveHosts: len(hosts),
		pending:   make(chan int, nShards),
		allDone:   make(chan struct{}),
		cancel:    cancel,
	}
	for i := 0; i < nShards; i++ {
		c.pending <- i
	}

	var wg sync.WaitGroup
	for _, host := range hosts {
		wg.Add(1)
		go func(host string) {
			defer wg.Done()
			c.hostWorker(runCtx, host, maxAttempts)
		}(host)
	}
	workersIdle := make(chan struct{})
	go func() { wg.Wait(); close(workersIdle) }()

	select {
	case <-c.allDone:
	case <-workersIdle:
		// Every worker exited without completing the run: a fatal error
		// or all hosts dead.
	case <-ctx.Done():
	}
	cancel()
	<-workersIdle

	c.mu.Lock()
	err = c.fatal
	c.mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	if err == nil && c.remainingShards() > 0 {
		err = errors.New("coord: run stopped with unfinished shards")
	}
	if err != nil {
		return nil, err
	}
	return c.merge(o.Backend)
}

// run is the mutable state of one distributed execution.
type run struct {
	client     *http.Client
	grid       sweep.Grid
	name       string
	token      string
	nShards    int
	total      int
	poll       time.Duration
	reqTimeout time.Duration

	progress sweep.Progress
	logf     func(string, ...any)
	cancel   context.CancelFunc

	pending chan int
	allDone chan struct{}

	mu        sync.Mutex
	outputs   []shardOutput
	reports   []ShardReport
	attempts  []int
	shardDone []int
	remaining int
	liveHosts int
	fatal     error
}

func (c *run) remainingShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining
}

// fail records the first fatal error and aborts the run.
func (c *run) fail(err error) {
	c.mu.Lock()
	if c.fatal == nil {
		c.fatal = err
	}
	c.mu.Unlock()
	c.cancel()
}

// noteProgress folds one shard's done count into the aggregate feed.
func (c *run) noteProgress(shard, done int) {
	c.mu.Lock()
	c.shardDone[shard] = done
	sum := 0
	for _, d := range c.shardDone {
		sum += d
	}
	if c.progress != nil {
		c.progress(sum, c.total)
	}
	c.mu.Unlock()
}

// hostWorker pulls shards off the queue and runs their full lifecycle on
// one host until the host fails (then the in-flight shard is requeued for
// a surviving host and the worker retires) or the run ends.
func (c *run) hostWorker(ctx context.Context, host string, maxAttempts int) {
	for {
		select {
		case <-ctx.Done():
			return
		case i := <-c.pending:
			c.mu.Lock()
			c.attempts[i]++
			attempt := c.attempts[i]
			c.mu.Unlock()
			c.logf("coord: shard %d/%d -> %s (attempt %d)", i, c.nShards, host, attempt)

			out, jobID, fallbacks, err := c.runShard(ctx, host, i)
			if err == nil {
				c.completeShard(i, host, jobID, attempt, len(out.results), fallbacks, out)
				continue
			}
			var jf *jobFailedError
			if errors.As(err, &jf) {
				c.fail(fmt.Errorf("coord: shard %d failed deterministically on %s: %w", i, host, err))
				return
			}
			if ctx.Err() != nil {
				return
			}
			// Host-level failure: retire this host and hand the shard to a
			// survivor, unless the shard is out of attempts or no host is
			// left to take it.
			c.logf("coord: host %s failed on shard %d (attempt %d): %v", host, i, attempt, err)
			if jobID == "" {
				// The submit itself failed — but its response may have
				// been lost after the server enqueued the job. Hunt the
				// deterministic name down so no zombie job survives.
				c.abandonByName(host, c.shardName(i))
			}
			if attempt >= maxAttempts {
				c.fail(fmt.Errorf("coord: shard %d failed %d times, last on %s: %w", i, attempt, host, err))
				return
			}
			c.mu.Lock()
			c.liveHosts--
			dead := c.liveHosts == 0
			c.mu.Unlock()
			c.pending <- i
			if dead {
				c.fail(fmt.Errorf("coord: all hosts failed; last error from %s: %w", host, err))
			}
			return
		}
	}
}

// completeShard records a finished shard and closes allDone on the last.
func (c *run) completeShard(i int, host, jobID string, attempt, configs int, fallbacks map[string]string, out shardOutput) {
	c.mu.Lock()
	c.outputs[i] = out
	c.reports[i] = ShardReport{
		Index: i, Host: host, JobID: jobID,
		Configs: configs, Attempts: attempt,
		TraceFallbacks: fallbacks,
	}
	c.remaining--
	last := c.remaining == 0
	c.mu.Unlock()
	if last {
		close(c.allDone)
	}
}

// runShard drives one shard's lifecycle on one host: submit, follow the
// job to a terminal state (events stream, then polling), export
// canonical results, and (best-effort) evict the remote job. Any
// transport or server failure is a host-level error; a remote "failed"
// state is a *jobFailedError.
func (c *run) runShard(ctx context.Context, host string, i int) (shardOutput, string, map[string]string, error) {
	st, err := c.submit(ctx, host, i)
	if err != nil {
		return shardOutput{}, "", nil, err
	}
	if st, err = c.awaitTerminal(ctx, host, i, st); err != nil {
		c.abandon(host, st.ID)
		return shardOutput{}, st.ID, nil, err
	}
	switch st.State {
	case "failed":
		return shardOutput{}, st.ID, nil, &jobFailedError{msg: st.Error}
	case "cancelled":
		// Someone (an operator, or a previous coordinator run's
		// abandon) cancelled the job out from under us. Unlike a
		// "failed" job this says nothing about the work itself, so
		// it is a host-level error: retry the shard elsewhere.
		return shardOutput{}, st.ID, nil, fmt.Errorf("job %s was cancelled on %s", st.ID, host)
	}
	c.noteProgress(i, st.Done)

	out, err := c.export(ctx, host, st.ID)
	if err != nil {
		c.abandon(host, st.ID)
		return shardOutput{}, st.ID, nil, err
	}
	if want := sweep.ShardLen(c.total, i, c.nShards); len(out.results) != want {
		c.abandon(host, st.ID)
		return shardOutput{}, st.ID, nil,
			fmt.Errorf("shard %d export from %s holds %d results, want %d", i, host, len(out.results), want)
	}
	// Evict the remote job so completed shards do not pin their results
	// in host memory; the host's store keeps the simulations either way.
	c.evict(ctx, host, st.ID)
	return out, st.ID, st.TraceFallbacks, nil
}

// awaitTerminal follows a submitted job to a terminal state and returns
// that status. It prefers the host's SSE events stream — one connection,
// progress pushed the moment it changes — and falls back to the status
// poll loop when the stream cannot be established or breaks mid-flight
// (a host predating the endpoint, a buffering proxy, a dropped
// connection). A broken stream is not by itself a host failure: polling
// gets a clean shot at the same job before the shard is reassigned. The
// returned status always carries the job ID, even on error, so the
// caller can abandon the remote job.
func (c *run) awaitTerminal(ctx context.Context, host string, i int, st server.JobStatus) (server.JobStatus, error) {
	if term, err := c.streamStatus(ctx, host, i, st.ID); err == nil {
		return term, nil
	} else if ctx.Err() != nil {
		return st, ctx.Err()
	} else {
		c.logf("coord: events stream for %s on %s failed (%v); polling instead", st.ID, host, err)
	}
	for {
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		c.noteProgress(i, st.Done)
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(c.poll):
		}
		next, err := c.pollStatus(ctx, host, st.ID)
		if err != nil {
			return st, err // st keeps the job ID for the caller's abandon
		}
		st = next
	}
}

// streamStatus consumes the job's SSE progress stream until a terminal
// status event arrives, folding every event into the progress feed. Any
// setup or mid-stream failure is returned for the caller to fall back
// on polling. The stream has no overall deadline — a shard runs as long
// as it runs — but the server heartbeats idle streams, so a connection
// silent for a full request timeout means a dead or wedged host and
// trips the watchdog.
func (c *run) streamStatus(ctx context.Context, host string, i int, id string) (server.JobStatus, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := c.newRequest(sctx, http.MethodGet, host+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	watchdog := time.AfterFunc(c.reqTimeout, cancel)
	defer watchdog.Stop()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		watchdog.Reset(c.reqTimeout)
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // "event:" labels, heartbeat comments, blank separators
		}
		var st server.JobStatus
		if err := json.Unmarshal([]byte(data), &st); err != nil {
			return server.JobStatus{}, fmt.Errorf("bad event payload: %w", err)
		}
		c.noteProgress(i, st.Done)
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
	}
	if err := sc.Err(); err != nil {
		return server.JobStatus{}, err
	}
	return server.JobStatus{}, errors.New("stream ended without a terminal status")
}

// abandon best-effort cancels and evicts a job the coordinator is walking
// away from — a reassigned shard, a run aborting, Ctrl-C. It uses its own
// short-lived context because the run context may already be dead, and an
// abandoned job must still be stopped: left alone it would keep grinding
// on the host's sequential runner (exactly the starvation cancellation
// exists to prevent) with its export payloads pinned until eviction. The
// host may of course be truly dead, in which case nothing is listening
// and nothing is leaked.
func (c *run) abandon(host, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if req, err := c.newRequest(ctx, http.MethodPost, host+"/api/v1/jobs/"+id+"/cancel", nil); err == nil {
		if resp, err := c.client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	// Eviction needs a terminal state; a just-cancelled running job
	// drains first. Poll briefly within the abandon budget rather than
	// issuing one guaranteed-409 delete.
	for ctx.Err() == nil {
		st, err := c.pollStatus(ctx, host, id)
		if err != nil {
			return // host unreachable: nothing is running, nothing leaks
		}
		switch st.State {
		case "done", "failed", "cancelled":
			c.evict(ctx, host, id)
			return
		}
		select {
		case <-ctx.Done():
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// abandonByName handles the lost-submission case: the submit request
// errored after the server may have enqueued the job (e.g. a response
// timeout), leaving the coordinator without a job ID. Shard job names are
// deterministic, so look the job up by name on the host and abandon it if
// it exists — otherwise a zombie named job would grind the retired host
// and pin its export payloads.
func (c *run) abandonByName(host, name string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := c.newRequest(ctx, http.MethodGet, host+"/api/v1/jobs", nil)
	if err != nil {
		return
	}
	var jobs []server.JobStatus
	if err := c.doJSON(req, http.StatusOK, &jobs); err != nil {
		return
	}
	for _, st := range jobs {
		if st.Name == name && st.State != "done" && st.State != "failed" && st.State != "cancelled" {
			c.abandon(host, st.ID)
			return
		}
	}
}

// shardName is the deterministic remote job name for shard i.
func (c *run) shardName(i int) string { return fmt.Sprintf("%s-shard-%d", c.name, i) }

func (c *run) submit(ctx context.Context, host string, i int) (server.JobStatus, error) {
	body, err := json.Marshal(server.JobRequest{
		Grid:  c.grid,
		Name:  c.shardName(i),
		Shard: sweep.FormatShard(i, c.nShards),
	})
	if err != nil {
		return server.JobStatus{}, err
	}
	// Per-request deadline: a host that hangs instead of erroring must
	// still fail over, not freeze its shard.
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := c.newRequest(rctx, http.MethodPost, host+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return server.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var st server.JobStatus
	if err := c.doJSON(req, http.StatusAccepted, &st); err != nil {
		return server.JobStatus{}, fmt.Errorf("submitting shard %d to %s: %w", i, host, err)
	}
	return st, nil
}

func (c *run) pollStatus(ctx context.Context, host, id string) (server.JobStatus, error) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := c.newRequest(rctx, http.MethodGet, host+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	if err := c.doJSON(req, http.StatusOK, &st); err != nil {
		return server.JobStatus{}, fmt.Errorf("polling %s on %s: %w", id, host, err)
	}
	return st, nil
}

// export streams the job's canonical results and decodes every entry.
func (c *run) export(ctx context.Context, host, id string) (shardOutput, error) {
	// A whole shard flows through this response, so it gets a far larger
	// budget than a control request — but still a bounded one.
	rctx, cancel := context.WithTimeout(ctx, 10*c.reqTimeout)
	defer cancel()
	req, err := c.newRequest(rctx, http.MethodGet, host+"/api/v1/jobs/"+id+"/export", nil)
	if err != nil {
		return shardOutput{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return shardOutput{}, fmt.Errorf("exporting %s from %s: %w", id, host, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return shardOutput{}, fmt.Errorf("exporting %s from %s: status %d", id, host, resp.StatusCode)
	}
	var out shardOutput
	dec := json.NewDecoder(bufio.NewReaderSize(resp.Body, 1<<16))
	for {
		var e server.ExportEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return shardOutput{}, fmt.Errorf("decoding export of %s from %s: %w", id, host, err)
		}
		if e.Key == "" || len(e.Result) == 0 {
			return shardOutput{}, fmt.Errorf("export of %s from %s holds an empty entry", id, host)
		}
		res, err := core.DecodeResult(e.Result)
		if err != nil {
			return shardOutput{}, fmt.Errorf("export of %s from %s: %w", id, host, err)
		}
		out.entries = append(out.entries, e)
		out.results = append(out.results, res)
	}
	return out, nil
}

// evict best-effort-deletes a fully exported job on its host.
func (c *run) evict(ctx context.Context, host, id string) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := c.newRequest(rctx, http.MethodDelete, host+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// newRequest builds one API request, attaching the run's bearer token
// when the fleet is authenticated.
func (c *run) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// doJSON performs req, requiring status want and decoding the JSON body.
func (c *run) doJSON(req *http.Request, want int, out any) error {
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// merge concatenates the shard outputs in shard order into the final
// sweep, ingesting canonical payloads into the backend along the way.
func (c *run) merge(backend sweep.Backend) (*Result, error) {
	res := &Result{Shards: c.reports}
	records := make([]sweep.Record, 0, c.total)
	for i := range c.outputs {
		for k, r := range c.outputs[i].results {
			if backend != nil {
				e := c.outputs[i].entries[k]
				if err := sweep.PutEncoded(backend, e.Key, e.Result); err != nil {
					return nil, fmt.Errorf("coord: ingesting shard %d result: %w", i, err)
				}
				res.Ingested++
			}
			records = append(records, sweep.NewRecord(r))
		}
	}
	res.Sweep = &sweep.Sweep{Records: records}
	return res, nil
}

// defaultName derives a stable run identity from the grid and shard count
// so retried coordinator invocations of the same work share job names.
func defaultName(g sweep.Grid, shards int) string {
	b, _ := json.Marshal(g)
	h := fnv.New64a()
	h.Write(b)
	fmt.Fprintf(h, "|%d", shards)
	return fmt.Sprintf("grid-%012x", h.Sum64()&0xffffffffffff)
}
