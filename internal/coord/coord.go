// Package coord is the distributed sweep coordinator: it fans one
// design-space grid out to multiple waycached hosts and merges their
// results into output byte-identical to a single-host run.
//
// The grid is expanded exactly once, conceptually, by the deterministic
// sweep.Grid order; the coordinator never materializes it. Work moves
// through three shapes:
//
//   - A *unit* is a contiguous config-index span [lo, hi) waiting to
//     run. The initial units are the sweep.SpanOf partition of the grid;
//     failures and steals re-split them into smaller spans.
//   - A *flight* is one attempt to run a unit as a named span job
//     ({"span": "lo-hi"}) on one host, tracked to a terminal state over
//     the host's SSE events stream with a poll fallback.
//   - A *piece* is a completed, exported span: canonical
//     core.EncodeResult payloads covering [lo, hi). Pieces tile the full
//     grid exactly once; the merge sorts them by lo and concatenates.
//
// Elasticity comes from three mechanisms on top of that model. A host
// whose flight stalls (no progress for StallAfter) can be *stolen* from:
// an idle worker exports the victim job's finished prefix — the server's
// partial-progress watermark guarantees the prefix is complete and
// canonical — banks it as a piece, cancels the victim, and requeues the
// remainder span. In the tail, when the queue is empty, idle hosts
// *speculate*: they duplicate a stalled in-flight span outright; the
// first full export wins and the loser is cancelled, which determinism
// makes free — both copies would produce identical bytes. And membership
// is *elastic*: a HostsFile is watched for changes, added hosts receive
// the grid's traces and a worker mid-run, removed hosts drain (finish
// their current flight, take no more).
//
// Every request — submit, poll, export, trace distribution — runs under
// one RetryPolicy: capped exponential backoff with deterministic seeded
// jitter, retrying transport faults and 5xx while failing fast on
// deterministic job failures and 4xx (see retry.go).
//
// Determinism contract: Grid.Configs order depends only on the grid;
// spans are contiguous index ranges of that order, so pieces concatenate
// to the full expansion no matter how they were split, stolen, or
// duplicated; records are pure functions of results. Therefore merge
// order — and the merged bytes — cannot depend on which host ran what,
// how spans were re-split, or which duplicate won. Protocol and failure
// semantics: docs/DISTRIBUTED.md.
package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"waycache/internal/core"
	"waycache/internal/server"
	"waycache/internal/sweep"
	"waycache/internal/tracestore"
)

// Options configures a distributed run.
type Options struct {
	// Hosts lists waycached base URLs (e.g. "http://10.0.0.1:8080").
	// Required unless HostsFile is set.
	Hosts []string
	// HostsFile, when non-empty, names a file of host URLs (one per
	// line, #-comments allowed) that is read for initial membership and
	// then watched for changes: hosts added to the file join the run
	// mid-sweep (they receive the grid's traces first), hosts removed
	// from it drain — they finish their current flight and take no more
	// work. Hosts passed in Hosts directly are never drained by file
	// edits.
	HostsFile string
	// Shards is how many contiguous spans the grid is initially split
	// into (default: the host count). More spans than hosts gives the
	// scheduler finer-grained units; stealing re-splits them further as
	// needed either way.
	Shards int
	// Client issues every request (default: a plain http.Client; each
	// request is additionally bounded by RequestTimeout).
	Client *http.Client
	// RequestTimeout bounds each control request — submit, poll, cancel,
	// evict — so a host that hangs (accepts connections but never
	// answers) fails over like one that errors. Export streams, which
	// carry whole spans, get ten times this budget. Default 30s.
	RequestTimeout time.Duration
	// PollInterval is the status poll cadence and the scheduler's idle
	// re-scan tick (default 250ms).
	PollInterval time.Duration
	// MaxAttempts bounds submissions per span of work across host
	// reassignments (default 3). Work failing on its last attempt fails
	// the run. Request-level retries are separate — see Retry.
	MaxAttempts int
	// Retry shapes the per-request retry/backoff schedule shared by
	// every coordinator request (zero value: 4 attempts, 100ms base,
	// 5s cap). Jitter is deterministic, derived from Seed.
	Retry RetryPolicy
	// Seed keys the deterministic backoff jitter (default: a hash of the
	// run name). Two runs with the same seed back off on the same
	// schedule — what makes chaos tests reproducible.
	Seed uint64
	// StallAfter is how long a flight may go without progress before
	// idle workers may steal its remainder or speculate a duplicate
	// (default 10s). Raise it for grids with slow individual configs;
	// lower it in tests.
	StallAfter time.Duration
	// MinSteal is the minimum finished-prefix watermark worth stealing
	// (default 1). A stalled flight with less banked progress is left to
	// speculation, which duplicates instead of cancelling.
	MinSteal int
	// NoSpeculate disables tail speculation (stealing still happens).
	NoSpeculate bool
	// Backend, when non-nil, receives every remotely-computed result in
	// canonical encoded form (sweep.PutEncoded) as pieces are merged —
	// pass a resultdb.DB to build one local corpus from a distributed
	// run.
	Backend sweep.Backend
	// TraceStore, when non-nil, is the coordinator's local
	// content-addressed trace store: the source of truth for pushing the
	// grid's trace://<hash> references to hosts that lack them before
	// any span is submitted, and to late-joining hosts. Nil is fine even
	// for trace:// grids — as long as every referenced hash already
	// exists on at least one host, the coordinator relays it through an
	// ephemeral store.
	TraceStore *tracestore.Store
	// Progress, when non-nil, receives aggregated done/total config
	// counts across all flights and banked pieces. Calls are serialized.
	Progress sweep.Progress
	// Logf, when non-nil, receives coordinator events: span assignments,
	// host failures, steals, speculations, membership changes.
	Logf func(format string, args ...any)
	// Name tags the run's jobs ("<name>-u<lo>-<hi>") so operators can
	// read host job lists, and so resubmissions after a lost response
	// are idempotent. Default: a hash of the grid and shard count.
	Name string
	// Token, when non-empty, is sent as "Authorization: Bearer <token>"
	// on every request — job control, events streams, exports, and trace
	// distribution — for hosts running with -auth-tokens. One fleet, one
	// credential: all hosts must accept the same token.
	Token string
}

// ShardReport is one piece's provenance in the merged output: which span
// of the grid it covers, which host ran it, under which job, at which
// attempt, and whether stealing or speculation was involved. Reports are
// in merge (span) order and tile [0, grid size) exactly.
type ShardReport struct {
	Index    int    // merge position
	Lo, Hi   int    // config-index span [Lo, Hi) this piece covers
	Host     string // host that computed the piece
	JobID    string // job id on that host
	Configs  int    // configurations in the piece (Hi - Lo)
	Attempts int    // submissions this span of work needed (1 = clean)
	// Stolen marks a straggler's finished prefix banked by a steal;
	// Speculative marks a piece won by a tail duplicate.
	Stolen      bool
	Speculative bool
	// TraceFallbacks relays the remote engine's walker-fallback report
	// (benchmark -> reason) so a distributed -trace run that re-simulated
	// somewhere is visible at the coordinator.
	TraceFallbacks map[string]string
	// Warnings carries non-fatal anomalies touching this span: abandoned
	// jobs that could not be confirmed stopped, superseded duplicates,
	// and the like.
	Warnings []string
}

// HostReport is one host's participation summary.
type HostReport struct {
	Host         string
	State        string // "active", "retired", "draining", "drained"
	Joined       bool   // joined mid-run via the hosts file
	Pieces       int    // pieces banked from this host
	Configs      int    // configurations those pieces hold
	Flights      int    // span jobs launched on this host
	Steals       int    // steals this host performed on stragglers
	Speculations int    // speculative duplicates this host launched
}

// Result is a completed distributed run.
type Result struct {
	// Sweep holds the merged records in grid order — byte-identical to a
	// single-host run of the same grid.
	Sweep *sweep.Sweep
	// Shards reports per-piece provenance, in merge order.
	Shards []ShardReport
	// Hosts reports per-host participation, sorted by URL.
	Hosts []HostReport
	// Ingested counts results written to Options.Backend.
	Ingested int
	// Warnings aggregates every non-fatal anomaly of the run.
	Warnings []string
}

// jobFailedError marks a deterministic remote failure (the job itself
// reached "failed"): retrying on another host would fail identically, so
// it aborts the run instead of burning attempts.
type jobFailedError struct{ msg string }

func (e *jobFailedError) Error() string { return e.msg }

// errSuperseded marks a flight that ended "cancelled" because the
// coordinator itself stole or out-speculated it — expected, not a fault.
var errSuperseded = errors.New("flight superseded by a steal or duplicate")

// Host lifecycle states.
const (
	hostActive   = "active"
	hostDraining = "draining"
	hostDrained  = "drained"
	hostRetired  = "retired"
)

// Run executes the grid across the hosts and returns the merged result.
// The grid must expand within the hosts' job size limit
// (server.MaxGridSize); cancellation of ctx aborts the run promptly.
func Run(ctx context.Context, g sweep.Grid, o Options) (*Result, error) {
	initial, fileHosts, err := initialHosts(o)
	if err != nil {
		return nil, err
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	poll := o.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	reqTimeout := o.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	maxAttempts := o.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	stall := o.StallAfter
	if stall <= 0 {
		stall = 10 * time.Second
	}
	minSteal := o.MinSteal
	if minSteal <= 0 {
		minSteal = 1
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Normalize exactly as the server will (an empty benchmark list means
	// the full suite, trace references validate): span-size accounting
	// and the grid equality behind idempotent named re-submission must
	// both see the grid the hosts execute.
	g, err = g.Normalize()
	if err != nil {
		return nil, err
	}
	name := o.Name
	if name == "" {
		name = defaultName(g, o.Shards)
	}
	seed := o.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(name))
		seed = h.Sum64()
	}
	retry := newRetrier(o.Retry, seed)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The distributor outlives the initial push: late joiners get the
	// same traces before their worker starts. Its ephemeral relay store
	// (when no local one was given) lives until the run ends.
	dist, distCleanup, err := newDistributor(g, client, reqTimeout, o.TraceStore, o.Token, retry, logf)
	if err != nil {
		return nil, err
	}
	defer distCleanup()
	hosts, err := dist.init(runCtx, initial)
	if err != nil {
		return nil, err
	}
	if len(hosts) == 0 {
		return nil, errors.New("coord: no host can serve the grid's trace references")
	}

	total := g.Size()
	nShards := o.Shards
	if nShards <= 0 {
		nShards = len(hosts)
	}

	c := &run{
		client: client, grid: g, name: name, token: o.Token,
		total: total, poll: poll, reqTimeout: reqTimeout, stall: stall,
		minSteal: minSteal, maxAttempts: maxAttempts, speculate: !o.NoSpeculate,
		retry: retry, dist: dist,
		progress: o.Progress, logf: logf, cancel: cancel,
		wake:  make(chan struct{}),
		done:  make(chan struct{}),
		idle:  make(chan struct{}),
		hosts: make(map[string]*hostState),
	}
	for i := 0; i < nShards; i++ {
		lo, hi := sweep.SpanOf(total, i, nShards)
		if hi > lo {
			c.queue = append(c.queue, &unit{lo: lo, hi: hi})
		}
	}
	if total == 0 {
		// Degenerate but well-defined: nothing to run, nothing to merge.
		return c.merge(o.Backend)
	}

	c.mu.Lock()
	for _, h := range hosts {
		c.hosts[h] = &hostState{url: h, state: hostActive, workerLive: true}
		c.liveWorkers++
	}
	c.mu.Unlock()
	for _, h := range hosts {
		go c.hostWorker(runCtx, h)
	}
	if o.HostsFile != "" {
		go c.watchHosts(runCtx, o.HostsFile, fileHosts)
	}

	select {
	case <-c.done:
	case <-c.idle: // every worker exited with work outstanding
	case <-ctx.Done():
	}
	cancel()
	<-c.idle // bounded: abandon budgets cap straggling workers

	c.mu.Lock()
	err = c.fatal
	c.mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	if err == nil && !c.finished() {
		err = errors.New("coord: run stopped with unfinished spans")
	}
	if err != nil {
		return nil, err
	}
	return c.merge(o.Backend)
}

// initialHosts resolves the starting membership: Hosts plus the hosts
// file's current contents, deduplicated in order. fileHosts records which
// came from the file (only those are drainable by later file edits).
func initialHosts(o Options) (hosts []string, fileHosts map[string]bool, err error) {
	fileHosts = make(map[string]bool)
	seen := make(map[string]bool)
	for _, h := range o.Hosts {
		if h != "" && !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	if o.HostsFile != "" {
		data, err := os.ReadFile(o.HostsFile)
		if err != nil {
			return nil, nil, fmt.Errorf("coord: reading hosts file: %w", err)
		}
		for _, h := range parseHostsFile(data) {
			fileHosts[h] = true
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
	}
	if len(hosts) == 0 {
		return nil, nil, errors.New("coord: no hosts")
	}
	return hosts, fileHosts, nil
}

// parseHostsFile extracts host URLs: one per line, blank lines and
// #-comments ignored.
func parseHostsFile(data []byte) []string {
	var hosts []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		hosts = append(hosts, line)
	}
	return hosts
}

// unit is a contiguous span of grid work waiting to run.
type unit struct {
	lo, hi    int
	attempts  int       // submissions so far (incremented when pulled)
	notBefore time.Time // backoff gate after a failure
}

// flight is one in-progress execution of a span on a host.
type flight struct {
	lo, hi int
	host   string
	jobID  string // set once the submit succeeds
	unit   *unit
	spec   bool // speculative duplicate of another live flight

	start        time.Time
	lastProgress time.Time // last time done advanced; stall detector input
	done         int       // configs finished, from status events

	stealing   bool // a thief is currently probing/banking this flight
	noSteal    bool // a steal attempt failed; don't retry stealing it
	stolen     bool // its prefix was banked and the job cancelled
	superseded bool // a duplicate's full export already covered its span
}

// piece is a completed, banked span of canonical results.
type piece struct {
	lo, hi    int
	entries   []server.ExportEntry
	results   []*core.Result
	host      string
	jobID     string
	attempts  int
	stolen    bool
	spec      bool
	fallbacks map[string]string
}

// hostState tracks one host's lifecycle and counters.
type hostState struct {
	url        string
	state      string
	joined     bool // added mid-run via the hosts file
	workerLive bool

	pieces, configs, flights, steals, specs int
}

type spanWarning struct {
	lo, hi int
	msg    string
}

// run is the mutable state of one distributed execution.
type run struct {
	client      *http.Client
	grid        sweep.Grid
	name, token string
	total       int

	poll, reqTimeout, stall time.Duration
	minSteal, maxAttempts   int
	speculate               bool

	retry    *retrier
	dist     *distributor
	progress sweep.Progress
	logf     func(string, ...any)
	cancel   context.CancelFunc

	done chan struct{} // closed when every config is banked
	idle chan struct{} // closed when no worker is live or joining

	mu          sync.Mutex
	wake        chan struct{} // closed+replaced on every state change
	queue       []*unit
	flights     []*flight
	pieces      []piece
	covered     int
	hosts       map[string]*hostState
	liveWorkers int
	joining     int
	idleClosed  bool
	doneClosed  bool
	warnings    []spanWarning
	fatal       error
}

func (c *run) finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.covered >= c.total
}

// bumpLocked broadcasts a state change to every idle worker.
func (c *run) bumpLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// fail records the first fatal error and aborts the run.
func (c *run) fail(err error) {
	c.mu.Lock()
	if c.fatal == nil {
		c.fatal = err
	}
	c.bumpLocked()
	c.mu.Unlock()
	c.cancel()
}

// finishLocked closes done once full coverage is reached.
func (c *run) finishLocked() {
	if c.covered >= c.total && !c.doneClosed {
		c.doneClosed = true
		close(c.done)
	}
}

// closeIdleLocked closes idle once no worker is live or pending.
func (c *run) closeIdleLocked() {
	if c.liveWorkers == 0 && c.joining == 0 && !c.idleClosed {
		c.idleClosed = true
		close(c.idle)
	}
}

// noteProgress folds one flight's done count into the aggregate feed and
// feeds the stall detector.
func (c *run) noteProgress(f *flight, done int) {
	c.mu.Lock()
	if done > f.done {
		f.done = done
		f.lastProgress = time.Now()
	}
	if c.progress != nil {
		sum := c.covered
		for _, fl := range c.flights {
			sum += fl.done
		}
		if sum > c.total {
			sum = c.total // speculative duplicates double-count; clamp
		}
		c.progress(sum, c.total)
	}
	c.mu.Unlock()
}

// noteWarning records a non-fatal anomaly touching [lo, hi).
func (c *run) noteWarning(lo, hi int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.logf("coord: warning: %s", msg)
	c.mu.Lock()
	c.warnings = append(c.warnings, spanWarning{lo: lo, hi: hi, msg: msg})
	c.mu.Unlock()
}

// uncoveredLocked returns the maximal subranges of [lo, hi) not yet
// covered by banked pieces, in order.
func (c *run) uncoveredLocked(lo, hi int) [][2]int {
	// Collect covering intervals, merge, subtract. Piece counts are small
	// (a few per host), so the quadratic-ish scan is irrelevant.
	var cov [][2]int
	for i := range c.pieces {
		p := &c.pieces[i]
		if p.hi > lo && p.lo < hi {
			cov = append(cov, [2]int{max(p.lo, lo), min(p.hi, hi)})
		}
	}
	sort.Slice(cov, func(i, j int) bool { return cov[i][0] < cov[j][0] })
	var out [][2]int
	at := lo
	for _, iv := range cov {
		if iv[0] > at {
			out = append(out, [2]int{at, iv[0]})
		}
		if iv[1] > at {
			at = iv[1]
		}
	}
	if at < hi {
		out = append(out, [2]int{at, hi})
	}
	return out
}

// bankLocked commits a completed span's output, trimmed to whatever is
// not already covered (a steal may have banked a prefix; a faster
// duplicate may have banked everything). Returns configs newly covered.
func (c *run) bankLocked(p piece) int {
	added := 0
	for _, iv := range c.uncoveredLocked(p.lo, p.hi) {
		sub := piece{
			lo: iv[0], hi: iv[1],
			entries: p.entries[iv[0]-p.lo : iv[1]-p.lo],
			results: p.results[iv[0]-p.lo : iv[1]-p.lo],
			host:    p.host, jobID: p.jobID, attempts: p.attempts,
			stolen: p.stolen, spec: p.spec, fallbacks: p.fallbacks,
		}
		c.pieces = append(c.pieces, sub)
		added += iv[1] - iv[0]
	}
	c.covered += added
	if added > 0 {
		if h := c.hosts[p.host]; h != nil {
			h.pieces++
			h.configs += added
		}
	}
	c.finishLocked()
	c.bumpLocked()
	return added
}

func (c *run) removeFlightLocked(f *flight) {
	for i, fl := range c.flights {
		if fl == f {
			c.flights = append(c.flights[:i], c.flights[i+1:]...)
			return
		}
	}
}

// --- the scheduler ---

type actionKind int

const (
	actDone actionKind = iota
	actRun
	actSteal
)

type action struct {
	kind   actionKind
	flight *flight // actRun
	victim *flight // actSteal
}

// nextWork blocks until the worker for host has something to do: a
// queued unit to fly, a straggler to steal from, a tail span to
// speculate on, or nothing ever again (run over, host drained or
// retired, fatal error). It is the single place scheduling policy lives.
func (c *run) nextWork(ctx context.Context, host string) action {
	for {
		c.mu.Lock()
		h := c.hosts[host]
		if ctx.Err() != nil || c.fatal != nil || c.covered >= c.total || h.state != hostActive {
			c.mu.Unlock()
			return action{kind: actDone}
		}
		now := time.Now()

		// 1. A ready queued unit — earliest span first, for determinism
		// and because earlier spans gate the export watermark of nothing
		// (pieces are independent; this is just a stable choice).
		var next *unit
		nextIdx := -1
		backoffWait := time.Duration(-1)
		for idx, u := range c.queue {
			if !u.notBefore.After(now) {
				if next == nil || u.lo < next.lo {
					next, nextIdx = u, idx
				}
			} else if d := u.notBefore.Sub(now); backoffWait < 0 || d < backoffWait {
				backoffWait = d
			}
		}
		if next != nil {
			c.queue = append(c.queue[:nextIdx], c.queue[nextIdx+1:]...)
			next.attempts++
			f := &flight{
				lo: next.lo, hi: next.hi, host: host, unit: next,
				start: now, lastProgress: now,
			}
			c.flights = append(c.flights, f)
			h.flights++
			c.mu.Unlock()
			return action{kind: actRun, flight: f}
		}

		// 2. Steal a stalled flight's remainder.
		if v := c.stealVictimLocked(host, now); v != nil {
			v.stealing = true
			h.steals++
			c.mu.Unlock()
			return action{kind: actSteal, victim: v}
		}

		// 3. Speculate a duplicate of a stalled tail flight.
		if c.speculate {
			if v := c.specVictimLocked(host, now); v != nil {
				f := &flight{
					lo: v.lo, hi: v.hi, host: host, unit: v.unit, spec: true,
					start: now, lastProgress: now,
				}
				c.flights = append(c.flights, f)
				h.flights++
				h.specs++
				c.mu.Unlock()
				c.logf("coord: speculating span %s on idle %s (duplicate of %s's flight)",
					sweep.FormatSpan(f.lo, f.hi), host, v.host)
				return action{kind: actRun, flight: f}
			}
		}

		// Idle: wait for a state change, a backoff gate, or a re-scan
		// tick (stall ages cross thresholds without any event firing).
		w := c.wake
		c.mu.Unlock()
		d := c.poll
		if backoffWait >= 0 && backoffWait < d {
			d = backoffWait
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return action{kind: actDone}
		case <-w:
			t.Stop()
		case <-t.C:
		}
	}
}

// stalled reports whether a flight has gone StallAfter without progress.
func (c *run) stalledLocked(f *flight, now time.Time) bool {
	return now.Sub(f.lastProgress) >= c.stall
}

// duplicatedLocked reports whether another live flight covers f's span.
func (c *run) duplicatedLocked(f *flight) bool {
	for _, o := range c.flights {
		if o != f && o.lo == f.lo && o.hi == f.hi {
			return true
		}
	}
	return false
}

// stealVictimLocked picks the stalled flight most worth stealing from:
// submitted, progressing nowhere, not already being stolen or hedged by
// a duplicate, and not on the asking host. Oldest stall first.
func (c *run) stealVictimLocked(host string, now time.Time) *flight {
	var best *flight
	for _, f := range c.flights {
		if f.host == host || f.jobID == "" || f.spec ||
			f.stealing || f.noSteal || f.stolen || f.superseded {
			continue
		}
		// A flight that has not even reached MinSteal progress has nothing
		// worth banking — don't burn a probe on a host that is likely
		// frozen solid; speculation handles it without touching the victim.
		if f.done < c.minSteal {
			continue
		}
		if !c.stalledLocked(f, now) || c.duplicatedLocked(f) {
			continue
		}
		if best == nil || f.lastProgress.Before(best.lastProgress) {
			best = f
		}
	}
	return best
}

// specVictimLocked picks a stalled primary flight to duplicate: the
// queue is already known empty, so an idle worker's time is free — the
// only gates are the stall threshold and not double-hedging a span.
func (c *run) specVictimLocked(host string, now time.Time) *flight {
	var best *flight
	for _, f := range c.flights {
		if f.host == host || f.spec || f.stolen || f.superseded || f.stealing {
			continue
		}
		if !c.stalledLocked(f, now) || c.duplicatedLocked(f) {
			continue
		}
		if best == nil || f.lastProgress.Before(best.lastProgress) {
			best = f
		}
	}
	return best
}

// hostWorker runs one host's lifecycle: take work, fly it, land or
// recover, until the run ends or the host leaves it.
func (c *run) hostWorker(ctx context.Context, host string) {
	defer c.workerExit(host)
	for {
		act := c.nextWork(ctx, host)
		switch act.kind {
		case actDone:
			return
		case actRun:
			c.fly(ctx, act.flight)
		case actSteal:
			c.stealFrom(ctx, host, act.victim)
		}
	}
}

// workerExit settles a departing worker's host state and, when it was
// the last one with work outstanding, fails the run.
func (c *run) workerExit(host string) {
	c.mu.Lock()
	h := c.hosts[host]
	h.workerLive = false
	if h.state == hostDraining {
		h.state = hostDrained
		c.logf("coord: host %s drained", host)
	}
	c.liveWorkers--
	starved := c.liveWorkers == 0 && c.joining == 0 && c.covered < c.total && c.fatal == nil
	c.closeIdleLocked()
	c.bumpLocked()
	c.mu.Unlock()
	if starved {
		c.fail(errors.New("coord: no live hosts remain with spans outstanding"))
	}
}

// fly runs one flight to completion and routes the outcome: bank the
// piece, absorb a benign supersede, abort on a deterministic failure, or
// retire the host and requeue what is still uncovered.
func (c *run) fly(ctx context.Context, f *flight) {
	out, fallbacks, err := c.runFlight(ctx, f)
	if err == nil {
		c.land(f, out, fallbacks)
		return
	}
	c.mu.Lock()
	c.removeFlightLocked(f)
	c.bumpLocked()
	c.mu.Unlock()
	if errors.Is(err, errSuperseded) {
		c.logf("coord: span %s flight on %s superseded", sweep.FormatSpan(f.lo, f.hi), f.host)
		return
	}
	var jf *jobFailedError
	if errors.As(err, &jf) {
		c.fail(fmt.Errorf("coord: span %s failed deterministically on %s: %w",
			sweep.FormatSpan(f.lo, f.hi), f.host, err))
		return
	}
	if ctx.Err() != nil || c.finished() {
		return
	}
	c.flightFailed(f, err)
}

// land banks a finished flight's output and cancels any duplicate
// flights its coverage made redundant.
func (c *run) land(f *flight, out flightOutput, fallbacks map[string]string) {
	c.mu.Lock()
	c.removeFlightLocked(f)
	added := c.bankLocked(piece{
		lo: f.lo, hi: f.hi, entries: out.entries, results: out.results,
		host: f.host, jobID: f.jobID, attempts: f.unit.attempts,
		spec: f.spec, fallbacks: fallbacks,
	})
	var rivals []*flight
	for _, o := range c.flights {
		if o != f && len(c.uncoveredLocked(o.lo, o.hi)) == 0 && !o.superseded {
			o.superseded = true
			if o.jobID != "" {
				rivals = append(rivals, o)
			}
		}
	}
	c.mu.Unlock()
	if added == 0 {
		c.logf("coord: span %s from %s arrived fully covered; dropped",
			sweep.FormatSpan(f.lo, f.hi), f.host)
	}
	for _, r := range rivals {
		c.logf("coord: cancelling superseded duplicate of span %s on %s (job %s)",
			sweep.FormatSpan(r.lo, r.hi), r.host, r.jobID)
		if outcome, clean := c.abandon(r.host, r.jobID); !clean {
			c.noteWarning(r.lo, r.hi, "superseded job %s on %s: %s", r.jobID, r.host, outcome)
		}
	}
}

// flightFailed retires the flight's host and requeues whatever part of
// its span is neither banked nor covered by another live flight, with a
// backoff gate so a flapping fleet doesn't thrash.
func (c *run) flightFailed(f *flight, err error) {
	c.logf("coord: host %s failed on span %s (attempt %d): %v",
		f.host, sweep.FormatSpan(f.lo, f.hi), f.unit.attempts, err)
	c.mu.Lock()
	h := c.hosts[f.host]
	if h.state == hostActive {
		h.state = hostRetired
	}
	missing := c.uncoveredLocked(f.lo, f.hi)
	// Subtract spans another live flight is already running (a
	// speculative duplicate outliving its failed primary, or vice
	// versa): requeueing those would only manufacture duplicate work.
	var requeue [][2]int
	for _, iv := range missing {
		flown := false
		for _, o := range c.flights {
			if o.lo <= iv[0] && o.hi >= iv[1] {
				flown = true
				break
			}
		}
		if !flown {
			requeue = append(requeue, iv)
		}
	}
	if len(requeue) > 0 && f.unit.attempts >= c.maxAttempts {
		c.mu.Unlock()
		c.fail(fmt.Errorf("coord: span %s failed %d times, last on %s: %w",
			sweep.FormatSpan(f.lo, f.hi), f.unit.attempts, f.host, err))
		return
	}
	gate := time.Now().Add(c.retry.policy.delay(c.retry.seed,
		"requeue "+sweep.FormatSpan(f.lo, f.hi), f.unit.attempts-1))
	for _, iv := range requeue {
		c.queue = append(c.queue, &unit{
			lo: iv[0], hi: iv[1], attempts: f.unit.attempts, notBefore: gate,
		})
	}
	c.bumpLocked()
	c.mu.Unlock()
	if f.jobID == "" {
		// The submit itself failed — but its response may have been lost
		// after the server enqueued the job. Hunt the deterministic name
		// down so no zombie job grinds the retired host.
		if outcome, clean := c.abandonByName(f.host, c.unitName(f.lo, f.hi)); !clean {
			c.noteWarning(f.lo, f.hi, "lost submission %s on %s: %s",
				c.unitName(f.lo, f.hi), f.host, outcome)
		}
	}
}

// --- stealing ---

// stealFrom attempts to bank the victim flight's finished prefix and
// requeue its remainder. Failure is non-destructive: the victim keeps
// flying, marked so no one retries the steal.
func (c *run) stealFrom(ctx context.Context, thief string, v *flight) {
	ok := c.trySteal(ctx, thief, v)
	c.mu.Lock()
	v.stealing = false
	if !ok {
		v.noSteal = true
	}
	c.bumpLocked()
	c.mu.Unlock()
}

func (c *run) trySteal(ctx context.Context, thief string, v *flight) bool {
	st, err := c.pollStatus(ctx, v.host, v.jobID)
	if err != nil || st.State != "running" {
		return false // dead or already terminal: the victim's worker handles it
	}
	w := st.Watermark
	span := v.hi - v.lo
	if w < c.minSteal || w >= span {
		return false // nothing worth banking, or the victim is about to finish
	}
	out, err := c.exportJob(ctx, v.host, v.jobID, w)
	if err != nil {
		c.logf("coord: steal of span %s from %s: prefix export failed: %v",
			sweep.FormatSpan(v.lo, v.hi), v.host, err)
		return false
	}
	c.mu.Lock()
	if v.stolen || v.superseded {
		c.mu.Unlock()
		return false
	}
	v.stolen = true
	c.bankLocked(piece{
		lo: v.lo, hi: v.lo + w, entries: out.entries, results: out.results,
		host: v.host, jobID: v.jobID, attempts: v.unit.attempts,
		stolen: true, fallbacks: st.TraceFallbacks,
	})
	// The remainder re-enters the queue as a fresh unit carrying the
	// victim's attempt count — the thief is awake and idle, so it is the
	// likely taker, but any worker may claim it.
	for _, iv := range c.uncoveredLocked(v.lo+w, v.hi) {
		c.queue = append(c.queue, &unit{lo: iv[0], hi: iv[1], attempts: v.unit.attempts})
	}
	c.bumpLocked()
	c.mu.Unlock()
	c.logf("coord: %s stole span %s from stalled %s: banked %d-config prefix, requeued remainder %s",
		thief, sweep.FormatSpan(v.lo, v.hi), v.host, w, sweep.FormatSpan(v.lo+w, v.hi))
	if outcome, clean := c.abandon(v.host, v.jobID); !clean {
		c.noteWarning(v.lo, v.hi, "stolen job %s on %s: %s", v.jobID, v.host, outcome)
	}
	return true
}

// --- membership ---

// watchHosts polls the hosts file for membership changes: new hosts join
// (traces first, then a worker), file-sourced hosts that disappear
// drain. fileHosts tracks which hosts the file is authoritative for.
func (c *run) watchHosts(ctx context.Context, path string, fileHosts map[string]bool) {
	var lastMod time.Time
	if st, err := os.Stat(path); err == nil {
		lastMod = st.ModTime()
	}
	tick := time.NewTicker(c.poll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		st, err := os.Stat(path)
		if err != nil {
			continue // transient (atomic-rename mid-swap); keep current membership
		}
		if st.ModTime().Equal(lastMod) {
			continue
		}
		lastMod = st.ModTime()
		data, err := os.ReadFile(path)
		if err != nil {
			c.logf("coord: hosts file %s unreadable (%v); keeping membership", path, err)
			continue
		}
		listed := make(map[string]bool)
		for _, h := range parseHostsFile(data) {
			listed[h] = true
		}
		c.applyMembership(ctx, listed, fileHosts)
	}
}

// applyMembership reconciles the run's hosts with the file's listing.
func (c *run) applyMembership(ctx context.Context, listed, fileHosts map[string]bool) {
	c.mu.Lock()
	var joins []string
	for h := range listed {
		fileHosts[h] = true
		hs, known := c.hosts[h]
		switch {
		case !known:
			joins = append(joins, h)
		case hs.state == hostDraining:
			// Re-listed before its worker noticed: cancel the drain.
			hs.state = hostActive
			c.logf("coord: host %s re-listed; drain cancelled", h)
		case !hs.workerLive && (hs.state == hostDrained || hs.state == hostRetired):
			// A drained or even retired host re-listed by the operator
			// gets a fresh chance (retired usually means it crashed; the
			// operator re-adding it asserts it is back).
			joins = append(joins, h)
		}
	}
	var drains []string
	for h, hs := range c.hosts {
		if fileHosts[h] && !listed[h] && hs.state == hostActive {
			hs.state = hostDraining
			drains = append(drains, h)
		}
	}
	if len(drains) > 0 {
		c.bumpLocked()
	}
	for _, h := range joins {
		c.joining++
		go c.admitHost(ctx, h)
	}
	c.mu.Unlock()
	for _, h := range drains {
		c.logf("coord: host %s removed from hosts file; draining (finishes its current span, takes no more)", h)
	}
}

// admitHost brings a joining host up to date on traces, then starts its
// worker. Called with c.joining already incremented.
func (c *run) admitHost(ctx context.Context, host string) {
	err := c.dist.ensureHost(ctx, host, c.activeHosts())
	c.mu.Lock()
	c.joining--
	if err != nil || ctx.Err() != nil || c.fatal != nil || c.idleClosed {
		c.closeIdleLocked()
		c.mu.Unlock()
		if err != nil {
			c.logf("coord: host %s cannot join: %v", host, err)
		}
		return
	}
	hs := c.hosts[host]
	if hs == nil {
		hs = &hostState{url: host, joined: true}
		c.hosts[host] = hs
	}
	hs.state = hostActive
	hs.workerLive = true
	c.liveWorkers++
	c.bumpLocked()
	c.mu.Unlock()
	c.logf("coord: host %s joined the run", host)
	go c.hostWorker(ctx, host)
}

// activeHosts snapshots the URLs of currently active hosts (trace
// donors for late joiners).
func (c *run) activeHosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for h, hs := range c.hosts {
		if hs.state == hostActive {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// --- one flight's remote lifecycle ---

// flightOutput is what one completed flight hands the banker.
type flightOutput struct {
	entries []server.ExportEntry // canonical key+payload, span order
	results []*core.Result       // decoded payloads, same order
}

// runFlight drives one span job on one host: submit, follow it to a
// terminal state (events stream, then polling), export canonical
// results, and (best-effort) evict the remote job. Any transport or
// server failure is a host-level error; a remote "failed" state is a
// *jobFailedError; a cancellation the coordinator itself caused (steal
// or supersede) is errSuperseded.
func (c *run) runFlight(ctx context.Context, f *flight) (flightOutput, map[string]string, error) {
	st, err := c.submit(ctx, f)
	if err != nil {
		return flightOutput{}, nil, err
	}
	c.mu.Lock()
	f.jobID = st.ID
	c.bumpLocked() // the flight is now stealable
	c.mu.Unlock()

	if st, err = c.awaitTerminal(ctx, f, st); err != nil {
		if outcome, clean := c.abandon(f.host, st.ID); !clean {
			c.noteWarning(f.lo, f.hi, "abandoned job %s on %s: %s", st.ID, f.host, outcome)
		}
		return flightOutput{}, nil, err
	}
	switch st.State {
	case "failed":
		return flightOutput{}, nil, &jobFailedError{msg: st.Error}
	case "cancelled":
		c.mu.Lock()
		benign := f.stolen || f.superseded
		c.mu.Unlock()
		if benign {
			return flightOutput{}, nil, errSuperseded
		}
		// Someone else (an operator, a previous coordinator run's
		// abandon) cancelled the job out from under us. Unlike a
		// "failed" job this says nothing about the work itself, so it is
		// a host-level error: retry the span elsewhere.
		return flightOutput{}, nil, fmt.Errorf("job %s was cancelled on %s", st.ID, f.host)
	}
	c.noteProgress(f, st.Done)

	out, err := c.exportJob(ctx, f.host, st.ID, -1)
	if err != nil {
		if outcome, clean := c.abandon(f.host, st.ID); !clean {
			c.noteWarning(f.lo, f.hi, "abandoned job %s on %s: %s", st.ID, f.host, outcome)
		}
		return flightOutput{}, nil, err
	}
	if want := f.hi - f.lo; len(out.results) != want {
		return flightOutput{}, nil,
			fmt.Errorf("span %s export from %s holds %d results, want %d",
				sweep.FormatSpan(f.lo, f.hi), f.host, len(out.results), want)
	}
	// Evict the remote job so completed spans do not pin their results
	// in host memory; the host's store keeps the simulations either way.
	c.evict(ctx, f.host, st.ID)
	return out, st.TraceFallbacks, nil
}

// awaitTerminal follows a submitted job to a terminal state and returns
// that status. It prefers the host's SSE events stream — one connection,
// progress pushed the moment it changes — and falls back to the status
// poll loop when the stream cannot be established or breaks mid-flight
// (a host predating the endpoint, a buffering proxy, a dropped or
// truncated connection). A broken stream is not by itself a host
// failure: polling gets a clean shot at the same job before the span is
// reassigned. The returned status always carries the job ID, even on
// error, so the caller can abandon the remote job.
func (c *run) awaitTerminal(ctx context.Context, f *flight, st server.JobStatus) (server.JobStatus, error) {
	if term, err := c.streamStatus(ctx, f, st.ID); err == nil {
		return term, nil
	} else if ctx.Err() != nil {
		return st, ctx.Err()
	} else {
		c.logf("coord: events stream for %s on %s failed (%v); polling instead", st.ID, f.host, err)
	}
	for {
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		c.noteProgress(f, st.Done)
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(c.poll):
		}
		next, err := c.pollStatus(ctx, f.host, st.ID)
		if err != nil {
			return st, err // st keeps the job ID for the caller's abandon
		}
		st = next
	}
}

// streamStatus consumes the job's SSE progress stream until a terminal
// status event arrives, folding every event into the progress feed. Any
// setup or mid-stream failure is returned for the caller to fall back
// on polling. The stream has no overall deadline — a span runs as long
// as it runs — but the server heartbeats idle streams, so a connection
// silent for a full request timeout means a dead or wedged host and
// trips the watchdog.
func (c *run) streamStatus(ctx context.Context, f *flight, id string) (server.JobStatus, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := c.newRequest(sctx, http.MethodGet, f.host+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	// The inactivity watchdog arms before the connection is even made: a
	// frozen host accepts the TCP connection and then never sends
	// response headers, which would otherwise block here indefinitely.
	// After setup it re-arms on every received line; the server
	// heartbeats idle streams, so reqTimeout of total silence means a
	// dead or wedged host.
	watchdog := time.AfterFunc(c.reqTimeout, cancel)
	defer watchdog.Stop()
	//wclint:retry-ok SSE stream: single long-lived connection guarded by the inactivity watchdog; any failure falls back to the retry-governed poll loop
	resp, err := c.client.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.JobStatus{}, &httpStatusError{status: resp.StatusCode}
	}
	watchdog.Reset(c.reqTimeout)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		watchdog.Reset(c.reqTimeout)
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // "event:" labels, heartbeat comments, blank separators
		}
		var st server.JobStatus
		if err := json.Unmarshal([]byte(data), &st); err != nil {
			return server.JobStatus{}, fmt.Errorf("bad event payload: %w", err)
		}
		c.noteProgress(f, st.Done)
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
	}
	if err := sc.Err(); err != nil {
		return server.JobStatus{}, err
	}
	return server.JobStatus{}, errors.New("stream ended without a terminal status")
}

// abandon best-effort cancels and evicts a job the coordinator is
// walking away from — a failed flight, a stolen straggler, a superseded
// duplicate, Ctrl-C. It uses its own short-lived context because the run
// context may already be dead, and an abandoned job must still be
// stopped: left alone it would keep grinding on the host with its export
// payloads pinned until eviction. The returned outcome says what
// actually happened; clean is false when the job may still be running or
// pinned, which callers surface as a ShardReport warning instead of
// silence.
func (c *run) abandon(host, id string) (outcome string, clean bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cctx, ccancel := context.WithTimeout(ctx, c.reqTimeout)
	if req, err := c.newRequest(cctx, http.MethodPost, host+"/api/v1/jobs/"+id+"/cancel", nil); err == nil {
		//wclint:retry-ok best-effort cancel inside the fixed abandon budget; the poll loop below confirms the outcome, so retrying here would only eat the budget
		if resp, err := c.client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	ccancel()
	// Eviction needs a terminal state; a just-cancelled running job
	// drains first. Poll briefly within the abandon budget rather than
	// issuing one guaranteed-409 delete.
	for ctx.Err() == nil {
		st, err := c.pollStatus(ctx, host, id)
		if err != nil {
			// Host unreachable: nothing provably running. If the host is
			// truly dead nothing is leaked either; if it is frozen the
			// job may thaw later, which the caller should know.
			return fmt.Sprintf("host unreachable while confirming cancellation (%v)", err), false
		}
		switch st.State {
		case "done", "failed", "cancelled":
			c.evict(ctx, host, id)
			return fmt.Sprintf("reached %q and was evicted", st.State), true
		}
		select {
		case <-ctx.Done():
		case <-time.After(250 * time.Millisecond):
		}
	}
	return "still running when the abandon budget expired", false
}

// abandonByName handles the lost-submission case: the submit request
// errored after the server may have enqueued the job (e.g. a response
// timeout), leaving the coordinator without a job ID. Span job names are
// deterministic, so look the job up by name on the host and abandon it
// if it exists — otherwise a zombie named job would grind the retired
// host and pin its export payloads.
func (c *run) abandonByName(host, name string) (outcome string, clean bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := c.newRequest(ctx, http.MethodGet, host+"/api/v1/jobs", nil)
	if err != nil {
		return "building the job-list request failed", false
	}
	var jobs []server.JobStatus
	if err := c.doJSON(req, http.StatusOK, &jobs); err != nil {
		return fmt.Sprintf("host unreachable while hunting the lost submission (%v)", err), false
	}
	for _, st := range jobs {
		if st.Name == name && st.State != "done" && st.State != "failed" && st.State != "cancelled" {
			return c.abandon(host, st.ID)
		}
	}
	return "no live job carries the lost submission's name", true
}

// unitName is the deterministic remote job name for span [lo, hi).
func (c *run) unitName(lo, hi int) string {
	return fmt.Sprintf("%s-u%d-%d", c.name, lo, hi)
}

func (c *run) submit(ctx context.Context, f *flight) (server.JobStatus, error) {
	name := c.unitName(f.lo, f.hi)
	body, err := json.Marshal(server.JobRequest{
		Grid: c.grid,
		Name: name,
		Span: sweep.FormatSpan(f.lo, f.hi),
	})
	if err != nil {
		return server.JobStatus{}, err
	}
	var st server.JobStatus
	// Submission is idempotent by name (a resubmission of the same work
	// gets the live job's status back), so request-level retries after a
	// lost response are safe.
	err = c.retry.do(ctx, "submit "+name, func(int) error {
		rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
		req, err := c.newRequest(rctx, http.MethodPost, f.host+"/api/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.doJSON(req, http.StatusAccepted, &st)
	})
	if err != nil {
		return server.JobStatus{}, fmt.Errorf("submitting span %s to %s: %w",
			sweep.FormatSpan(f.lo, f.hi), f.host, err)
	}
	return st, nil
}

func (c *run) pollStatus(ctx context.Context, host, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.retry.do(ctx, "poll "+id, func(int) error {
		rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
		req, err := c.newRequest(rctx, http.MethodGet, host+"/api/v1/jobs/"+id, nil)
		if err != nil {
			return err
		}
		return c.doJSON(req, http.StatusOK, &st)
	})
	if err != nil {
		return server.JobStatus{}, fmt.Errorf("polling %s on %s: %w", id, host, err)
	}
	return st, nil
}

// exportJob streams the job's canonical results and decodes every entry.
// prefix < 0 exports the finished job whole; prefix >= 0 asks for the
// first prefix entries of a (possibly still running) job — the partial
// export behind stealing. The whole request retries under the policy: a
// truncated stream re-fetches from scratch, which canonical encoding
// makes safe.
func (c *run) exportJob(ctx context.Context, host, id string, prefix int) (flightOutput, error) {
	url := host + "/api/v1/jobs/" + id + "/export"
	want := -1
	if prefix >= 0 {
		url = fmt.Sprintf("%s?prefix=%d", url, prefix)
		want = prefix
	}
	var out flightOutput
	err := c.retry.do(ctx, "export "+id, func(int) error {
		// A whole span flows through this response, so it gets a far
		// larger budget than a control request — but still a bounded one.
		rctx, cancel := context.WithTimeout(ctx, 10*c.reqTimeout)
		defer cancel()
		req, err := c.newRequest(rctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return &httpStatusError{status: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
		}
		out = flightOutput{}
		dec := json.NewDecoder(bufio.NewReaderSize(resp.Body, 1<<16))
		for {
			var e server.ExportEntry
			if err := dec.Decode(&e); err == io.EOF {
				break
			} else if err != nil {
				return fmt.Errorf("decoding export: %w", err)
			}
			if e.Key == "" || len(e.Result) == 0 {
				return errors.New("export holds an empty entry")
			}
			res, err := core.DecodeResult(e.Result)
			if err != nil {
				return err
			}
			out.entries = append(out.entries, e)
			out.results = append(out.results, res)
		}
		if want >= 0 && len(out.entries) != want {
			return fmt.Errorf("prefix export returned %d entries, want %d", len(out.entries), want)
		}
		return nil
	})
	if err != nil {
		return flightOutput{}, fmt.Errorf("exporting %s from %s: %w", id, host, err)
	}
	return out, nil
}

// evict best-effort-deletes a fully exported job on its host.
func (c *run) evict(ctx context.Context, host, id string) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := c.newRequest(rctx, http.MethodDelete, host+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	//wclint:retry-ok best-effort eviction of an already-exported job; a leaked terminal job is reclaimed by the host's own compaction, not worth retry backoff
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// newRequest builds one API request, attaching the run's bearer token
// when the fleet is authenticated.
func (c *run) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// doJSON performs req, requiring status want and decoding the JSON body.
// Status mismatches surface as *httpStatusError so the retry policy can
// classify them. It is the JSON transport funnel: every caller either
// wraps it in retry.do or is a deliberately single-shot best-effort
// path (abandonByName, whose run context may already be dead).
//
//wclint:retry-core
func (c *run) doJSON(req *http.Request, want int, out any) error {
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &httpStatusError{status: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// merge verifies the pieces tile the grid exactly, concatenates them in
// span order into the final sweep, and ingests canonical payloads into
// the backend along the way.
func (c *run) merge(backend sweep.Backend) (*Result, error) {
	c.mu.Lock()
	pieces := c.pieces
	warnings := c.warnings
	hostStates := c.hosts
	c.mu.Unlock()

	sort.Slice(pieces, func(i, j int) bool { return pieces[i].lo < pieces[j].lo })
	at := 0
	for _, p := range pieces {
		if p.lo != at {
			return nil, fmt.Errorf("coord: pieces do not tile the grid: gap or overlap at config %d (next piece %s)",
				at, sweep.FormatSpan(p.lo, p.hi))
		}
		at = p.hi
	}
	if at != c.total {
		return nil, fmt.Errorf("coord: pieces cover %d of %d configurations", at, c.total)
	}

	res := &Result{}
	records := make([]sweep.Record, 0, c.total)
	for i, p := range pieces {
		for k, r := range p.results {
			if backend != nil {
				e := p.entries[k]
				if err := sweep.PutEncoded(backend, e.Key, e.Result); err != nil {
					return nil, fmt.Errorf("coord: ingesting span %s result: %w",
						sweep.FormatSpan(p.lo, p.hi), err)
				}
				res.Ingested++
			}
			records = append(records, sweep.NewRecord(r))
		}
		rep := ShardReport{
			Index: i, Lo: p.lo, Hi: p.hi, Host: p.host, JobID: p.jobID,
			Configs: p.hi - p.lo, Attempts: p.attempts,
			Stolen: p.stolen, Speculative: p.spec,
			TraceFallbacks: p.fallbacks,
		}
		for _, w := range warnings {
			if w.hi > p.lo && w.lo < p.hi {
				rep.Warnings = append(rep.Warnings, w.msg)
			}
		}
		res.Shards = append(res.Shards, rep)
	}
	res.Sweep = &sweep.Sweep{Records: records}
	for _, w := range warnings {
		res.Warnings = append(res.Warnings, w.msg)
	}
	var urls []string
	for u := range hostStates {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		h := hostStates[u]
		res.Hosts = append(res.Hosts, HostReport{
			Host: u, State: h.state, Joined: h.joined,
			Pieces: h.pieces, Configs: h.configs, Flights: h.flights,
			Steals: h.steals, Speculations: h.specs,
		})
	}
	if c.progress != nil {
		c.progress(c.total, c.total)
	}
	return res, nil
}

// defaultName derives a stable run identity from the grid and shard count
// so retried coordinator invocations of the same work share job names.
func defaultName(g sweep.Grid, shards int) string {
	b, _ := json.Marshal(g)
	h := fnv.New64a()
	h.Write(b)
	fmt.Fprintf(h, "|%d", shards)
	return fmt.Sprintf("grid-%012x", h.Sum64()&0xffffffffffff)
}
