package coord

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waycache/internal/server"
	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
	"waycache/internal/workload"
)

// newTraceHost starts a waycached instance with its own trace store and
// returns its base URL and the store (for seeding and inspection).
func newTraceHost(t *testing.T) (string, *tracestore.Store) {
	t.Helper()
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Workers: 2, TraceStore: store})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts.URL, store
}

// seedCapture captures bench into store and returns the content hash.
func seedCapture(t *testing.T, store *tracestore.Store, bench string, n int64) string {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), bench+trace.FileExt)
	if err := p.CaptureFile(path, n); err != nil {
		t.Fatal(err)
	}
	hash, _, err := store.PutFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// TestTraceDistributionTwoHosts is the PR's distributed acceptance
// property: a trace uploaded to ONE host serves a trace:// sweep across
// TWO coordinated hosts — the coordinator relays the object to the host
// that lacks it (through an ephemeral store; no local -tracestore) —
// with zero walker fallbacks and merged output byte-identical to a
// single-host walker run of the same grid.
func TestTraceDistributionTwoHosts(t *testing.T) {
	const insts = 5_000
	h1, s1 := newTraceHost(t)
	h2, s2 := newTraceHost(t)
	hash := seedCapture(t, s1, "gcc", insts)

	g := sweep.Grid{
		Benchmarks: []string{"gcc"},
		DWays:      []int{1, 2, 4, 8},
		Insts:      insts,
		TraceRefs:  map[string]string{"gcc": trace.FormatRef(hash)},
	}
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{h1, h2},
		PollInterval: 10 * time.Millisecond,
		Name:         "t-trace-dist",
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !s2.Has(hash) {
		t.Error("trace was not pushed to the host that lacked it")
	}
	hostsSeen := map[string]bool{}
	for _, sh := range res.Shards {
		hostsSeen[sh.Host] = true
		if len(sh.TraceFallbacks) != 0 {
			t.Errorf("shard %d fell back to the walker: %v", sh.Index, sh.TraceFallbacks)
		}
	}
	if !hostsSeen[h1] || !hostsSeen[h2] {
		t.Errorf("shards did not span both hosts: %v", hostsSeen)
	}

	walk := g
	walk.TraceRefs = nil
	wantJSON, wantCSV := singleHostBytes(t, walk)
	gotJSON, gotCSV := coordBytes(t, res)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("distributed trace:// JSON differs from single-host walker JSON")
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Error("distributed trace:// CSV differs from single-host walker CSV")
	}
}

// TestTraceDistributionFromLocalStore: the coordinator's own -tracestore
// is the donor when no host has the object yet.
func TestTraceDistributionFromLocalStore(t *testing.T) {
	const insts = 2_000
	h1, s1 := newTraceHost(t)
	h2, s2 := newTraceHost(t)
	local, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash := seedCapture(t, local, "swim", insts)

	g := sweep.Grid{
		Benchmarks: []string{"swim"},
		DWays:      []int{2, 4},
		Insts:      insts,
		TraceRefs:  map[string]string{"swim": trace.FormatRef(hash)},
	}
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{h1, h2},
		PollInterval: 10 * time.Millisecond,
		TraceStore:   local,
		Name:         "t-trace-local",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Has(hash) || !s2.Has(hash) {
		t.Errorf("local trace was not pushed everywhere (host1=%v host2=%v)", s1.Has(hash), s2.Has(hash))
	}
	for _, sh := range res.Shards {
		if len(sh.TraceFallbacks) != 0 {
			t.Errorf("shard %d fell back: %v", sh.Index, sh.TraceFallbacks)
		}
	}
}

// TestTraceNowhereAbortsRun: a referenced hash that exists neither
// locally nor on any host fails fast, before any shard is submitted.
func TestTraceNowhereAbortsRun(t *testing.T) {
	h1, _ := newTraceHost(t)
	g := sweep.Grid{
		Benchmarks: []string{"gcc"},
		Insts:      1000,
		TraceRefs:  map[string]string{"gcc": trace.FormatRef(strings.Repeat("ab", 32))},
	}
	_, err := Run(context.Background(), g, Options{Hosts: []string{h1}, Name: "t-trace-nowhere"})
	if err == nil || !strings.Contains(err.Error(), "on no host") {
		t.Fatalf("err = %v, want a trace-nowhere abort", err)
	}
}

// TestHostWithoutTraceStoreIsDropped: a host running without -tracestore
// cannot replay references; the coordinator retires it up front and the
// run completes on the hosts that can.
func TestHostWithoutTraceStoreIsDropped(t *testing.T) {
	const insts = 2_000
	bare := newHost(t) // no trace store
	h1, s1 := newTraceHost(t)
	hash := seedCapture(t, s1, "gcc", insts)

	g := sweep.Grid{
		Benchmarks: []string{"gcc"},
		DWays:      []int{2, 4},
		Insts:      insts,
		TraceRefs:  map[string]string{"gcc": trace.FormatRef(hash)},
	}
	res, err := Run(context.Background(), g, Options{
		Hosts:        []string{bare, h1}, // storeless host listed first
		PollInterval: 10 * time.Millisecond,
		Name:         "t-trace-drop",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range res.Shards {
		if sh.Host != h1 {
			t.Errorf("shard %d ran on %s, want only the trace-capable host %s", sh.Index, sh.Host, h1)
		}
		if len(sh.TraceFallbacks) != 0 {
			t.Errorf("shard %d fell back: %v", sh.Index, sh.TraceFallbacks)
		}
	}
}
