package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"waycache/internal/access"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// captureBench records n instructions of the named benchmark to a trace
// file under dir and returns its path.
func captureBench(t *testing.T, dir, bench string, n int64) string {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, bench+trace.FileExt)
	if err := p.CaptureFile(path, n); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWalkerCaptureRoundTrip checks losslessness against a real workload:
// the decoded stream equals the walker's, instruction for instruction.
func TestWalkerCaptureRoundTrip(t *testing.T) {
	const bench, n = "gcc", 20_000
	path := captureBench(t, t.TempDir(), bench, n)

	p, _ := workload.ByName(bench)
	want := p.NewWalker()
	f, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var got, exp trace.Inst
	for i := 0; i < n; i++ {
		if !f.Next(&got) {
			t.Fatalf("trace ended at %d (err %v)", i, f.Err())
		}
		if !want.Next(&exp) {
			t.Fatalf("walker ended at %d", i)
		}
		if got != exp {
			t.Fatalf("instruction %d differs:\n got %+v\nwant %+v", i, got, exp)
		}
	}
	if f.Next(&got) {
		t.Fatal("trace has records beyond the declared count")
	}
}

// TestReplayMatchesWalker is the tentpole equivalence property: simulating
// from a captured trace yields results identical to simulating the live
// walker — same timing, cache, energy and processor statistics.
func TestReplayMatchesWalker(t *testing.T) {
	const bench, insts = "gcc", 30_000
	path := captureBench(t, t.TempDir(), bench, insts)

	cfg := Config{
		Benchmark: bench, Insts: insts,
		DPolicy: access.DSelDMWayPred, IPolicy: access.IWayPred,
	}
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Trace = path
	replay, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The configs differ (Trace path) by construction; every simulated
	// quantity must not.
	live.Config, replay.Config = Config{}, Config{}
	if !reflect.DeepEqual(live, replay) {
		t.Fatalf("replayed results differ from walker results:\n live  %+v\n replay %+v", live, replay)
	}
}

func TestReplayWithoutBenchmarkUsesHeaderName(t *testing.T) {
	const bench, insts = "swim", 5_000
	path := captureBench(t, t.TempDir(), bench, insts)
	res, err := Run(Config{Trace: path, Insts: insts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != bench {
		t.Fatalf("Benchmark = %q, want header name %q", res.Benchmark, bench)
	}
}

func TestReplayRejectsTooShortTrace(t *testing.T) {
	path := captureBench(t, t.TempDir(), "gcc", 1_000)
	if _, err := Run(Config{Trace: path, Insts: 10_000}); err == nil {
		t.Fatal("Run accepted a trace shorter than the requested instruction count")
	}
}

func TestReplayRejectsBenchmarkMismatch(t *testing.T) {
	path := captureBench(t, t.TempDir(), "gcc", 1_000)
	if _, err := Run(Config{Benchmark: "swim", Trace: path, Insts: 1_000}); err == nil {
		t.Fatal("Run accepted a gcc trace for a swim config")
	}
}

func TestKeySeparatesTraceFromWalker(t *testing.T) {
	cfg := Config{Benchmark: "gcc", Insts: 1000}
	walkKey, ok := cfg.Key()
	if !ok {
		t.Fatal("walker config must be memoizable")
	}
	cfg.Trace = "/tmp/gcc.wct"
	traceKey, ok := cfg.Key()
	if !ok {
		t.Fatal("trace config must be memoizable")
	}
	if walkKey == traceKey {
		t.Fatal("trace and walker runs share a memo key")
	}
}
