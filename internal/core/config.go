// Package core is the top-level simulator API: it assembles workloads,
// the out-of-order pipeline, cache access policies, and the energy models
// into single-call experiment runs, and computes the relative energy-delay
// metrics every figure in the paper reports.
//
// The typical usage is Run with a Config naming a benchmark and the d- and
// i-cache policies; Compare derives technique-vs-baseline metrics:
//
//	base, _ := core.Run(core.Config{Benchmark: "gcc", Insts: 1e6})
//	tech, _ := core.Run(core.Config{Benchmark: "gcc", Insts: 1e6,
//	    DPolicy: access.DSelDMWayPred})
//	cmp := core.Compare(base, tech)       // relative E·D, perf degradation
package core

import (
	"fmt"

	"waycache/internal/access"
	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/pipeline"
	"waycache/internal/predict"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// Config describes one simulation run. Zero values mean the paper's
// defaults (Table 1): 16 KB 4-way 32 B L1s, 1-cycle hit, 8-wide core,
// 1024-entry prediction tables, 16-entry victim list.
type Config struct {
	// Benchmark names a workload.Suite profile. Leave empty and set Source
	// or Trace to drive the simulator from a custom stream.
	Benchmark string
	// Source is an optional custom source (overrides Benchmark and Trace).
	// A config driving one has no canonical key or encoding, so such runs
	// are never memoized or persisted (see Key and EncodeResult).
	Source trace.Source `json:"-"`

	// Trace is the path of a captured trace file (trace.Writer format; see
	// docs/TRACE_FORMAT.md), or a content-addressed "trace://<sha256>"
	// reference resolved through TraceStore. When set, the simulation
	// replays the capture instead of walking Benchmark's generator — the
	// pipeline consumes the identical instruction stream either way, so
	// results match a live run of the captured workload byte for byte. The
	// capture must hold at least Insts instructions; when Benchmark is also
	// set, the capture's header must name the same benchmark.
	Trace string

	// TraceStore resolves trace:// references in Trace to local files
	// (typically a *tracestore.Store). It is plumbing, not identity — the
	// hash inside the reference already names the exact bytes, so the
	// store is excluded from Key and the canonical encoding, and the same
	// reference produces the same results whichever store serves it.
	TraceStore TraceStore `json:"-"`

	// Insts is the number of instructions to simulate (default 1,000,000).
	Insts int64

	DPolicy access.DPolicy
	IPolicy access.IPolicy

	// SelectiveWays, when positive, replaces the d-cache policy with the
	// Albonesi selective-cache-ways baseline: only this many of DWays are
	// enabled (reads probe them in parallel; capacity shrinks
	// accordingly). Used by the related-work comparison experiment.
	SelectiveWays int

	// DSize/DWays/DBlock configure the L1 d-cache geometry; ISize/IWays/
	// IBlock the i-cache.
	DSize, DWays, DBlock int
	ISize, IWays, IBlock int

	// DLatency is the base (parallel-access) d-cache hit latency in cycles
	// (1 or 2 in the paper).
	DLatency int

	// TableSize overrides the 1024-entry prediction tables; VictimSize the
	// 16-entry victim list.
	TableSize  int
	VictimSize int

	// UsePaperCosts switches the energy model from the mini-CACTI-derived
	// geometry-dependent costs to the paper's published Table 3 constants
	// (which are exact only for the 16 KB 4-way reference geometry).
	UsePaperCosts bool

	// Core overrides pipeline structure; zero means Table 1.
	Core pipeline.Config
}

// TraceStore maps a trace content hash (64 lowercase hex digits) to a
// local .wct file path. *tracestore.Store implements it; the indirection
// keeps core free of the store's on-disk concerns.
type TraceStore interface {
	Path(hash string) (string, error)
}

func (c Config) withDefaults() Config {
	if c.Insts == 0 {
		c.Insts = 1_000_000
	}
	if c.DSize == 0 {
		c.DSize = 16 << 10
	}
	if c.DWays == 0 {
		c.DWays = 4
	}
	if c.DBlock == 0 {
		c.DBlock = 32
	}
	if c.ISize == 0 {
		c.ISize = 16 << 10
	}
	if c.IWays == 0 {
		c.IWays = 4
	}
	if c.IBlock == 0 {
		c.IBlock = 32
	}
	if c.DLatency == 0 {
		c.DLatency = 1
	}
	// Materialize the prediction-structure defaults too, so Key() treats
	// an explicit 1024-entry table / 16-entry victim list and the zero
	// value as the identical simulation they are (branch.NewFrontEnd and
	// access both default to these same sizes).
	if c.TableSize == 0 {
		c.TableSize = predict.DefaultWayEntries
	}
	if c.VictimSize == 0 {
		c.VictimSize = cache.DefaultVictimEntries
	}
	if c.Core.ROBSize == 0 {
		c.Core = pipeline.DefaultConfig(c.Insts)
	}
	c.Core.MaxInsts = c.Insts
	return c
}

// Canonical returns the config with every default applied — the form under
// which results are memoized, compared and reported. Two configs with equal
// canonical forms describe the same simulation.
func (c Config) Canonical() Config { return c.withDefaults() }

// Key returns a canonical memoization key: configs with equal keys simulate
// identically, so their results are interchangeable. ok is false when the
// config drives a custom trace Source, whose behaviour a key cannot
// capture; such runs must not be memoized.
func (c Config) Key() (key string, ok bool) {
	if c.Source != nil {
		return "", false
	}
	c = c.withDefaults()
	key = fmt.Sprintf("%s|n%d|d%d.%d.%d.L%d.%v|i%d.%d.%d.%v|t%d|v%d|sw%d|pc%v|core%+v",
		c.Benchmark, c.Insts,
		c.DSize, c.DWays, c.DBlock, c.DLatency, c.DPolicy,
		c.ISize, c.IWays, c.IBlock, c.IPolicy,
		c.TableSize, c.VictimSize, c.SelectiveWays, c.UsePaperCosts, c.Core)
	// A replayed trace is keyed separately from the walker run it mirrors:
	// the two are byte-identical for a faithful capture, but the file's
	// contents are not provable from the config alone. A trace://<hash>
	// reference is the strong form of this: the key then names the exact
	// bytes, host-independently, so memoized results and traces link
	// durably across machines.
	if c.Trace != "" {
		key += "|tr:" + c.Trace
	}
	return key, true
}

// costsFor derives the energy cost model for one cache geometry.
func (c Config) costsFor(size, ways, block int) (energy.Costs, error) {
	if c.UsePaperCosts {
		return energy.PaperCosts(), nil
	}
	return energy.DefaultCacti().CostsFor(energy.Geometry{
		SizeBytes: size, Ways: ways, BlockBytes: block,
	})
}

// source builds the trace source. The returned finish func (nil for
// in-memory sources) releases the source and surfaces any streaming error
// once the run has drained it.
func (c Config) source() (src trace.Source, name string, finish func() error, err error) {
	if c.Source != nil {
		name := c.Benchmark
		if name == "" {
			name = "custom"
		}
		return trace.NewLimit(trace.Windowed(c.Source, sourceWindow), c.Insts), name, nil, nil
	}
	if c.Trace != "" {
		return c.traceSource()
	}
	if c.Benchmark == "" {
		return nil, "", nil, fmt.Errorf("core: config needs Benchmark, Trace or Source")
	}
	p, err := workload.ByName(c.Benchmark)
	if err != nil {
		return nil, "", nil, err
	}
	return trace.NewLimit(trace.Windowed(p.NewWalker(), sourceWindow), c.Insts), p.Name, nil, nil
}

// sourceWindow is the generate-ahead buffer (in instructions) put in front
// of non-window sources — live walkers and custom streams — so every run
// feeds the pipeline's batch fetch path. Replayed captures window natively
// and bypass it. 512 instructions is ~36KB: far past the fetch stride, far
// below any cache budget that matters.
const sourceWindow = 512

// traceSource resolves the captured trace named by c.Trace through the
// process-wide arena — each file is decoded once and every run replays the
// shared in-memory instructions — and validates it against the run: it
// must carry enough instructions and, when Benchmark is set too, come from
// that benchmark. Replay is byte-identical to streaming the file: the same
// records in the same order, with decode errors surfaced only if the run
// actually consumes the corrupt range.
func (c Config) traceSource() (trace.Source, string, func() error, error) {
	var src *trace.MemSource
	var err error
	if hash, ok := trace.ParseRef(c.Trace); ok {
		// Content-addressed reference: the store locates the bytes and the
		// arena verifies them against the hash while decoding.
		if c.TraceStore == nil {
			return nil, "", nil, fmt.Errorf("core: trace reference %s needs a trace store (-tracestore)", c.Trace)
		}
		path, perr := c.TraceStore.Path(hash)
		if perr != nil {
			return nil, "", nil, fmt.Errorf("core: resolving %s: %w", c.Trace, perr)
		}
		src, err = trace.SharedArena().LoadRef(path, hash)
	} else {
		src, err = trace.SharedArena().Load(c.Trace)
	}
	if err != nil {
		return nil, "", nil, err
	}
	h := src.Header()
	if h.Insts > 0 && h.Insts < c.Insts {
		return nil, "", nil, fmt.Errorf("core: trace %s holds %d instructions, run needs %d",
			c.Trace, h.Insts, c.Insts)
	}
	name := h.Benchmark
	if c.Benchmark != "" {
		if h.Benchmark != "" && h.Benchmark != c.Benchmark {
			return nil, "", nil, fmt.Errorf("core: trace %s was captured from %q, not %q",
				c.Trace, h.Benchmark, c.Benchmark)
		}
		name = c.Benchmark
	}
	if name == "" {
		name = "trace"
	}
	finish := func() error {
		if src.Count() < c.Insts {
			// The replay ran dry: corrupt suffix if the decoder stopped on
			// an error, plain short trace otherwise — exactly the errors a
			// streaming Reader would report at this consumption point.
			if err := src.Err(); err != nil {
				return err
			}
			return fmt.Errorf("trace ended after %d of %d instructions", src.Count(), c.Insts)
		}
		return nil
	}
	return trace.NewLimit(src, c.Insts), name, finish, nil
}

// dcacheConfig assembles the d-cache controller configuration.
func (c Config) dcacheConfig() (access.DConfig, error) {
	costs, err := c.costsFor(c.DSize, c.DWays, c.DBlock)
	if err != nil {
		return access.DConfig{}, err
	}
	return access.DConfig{
		Policy: c.DPolicy,
		Cache: cache.Config{
			Name: "L1d", SizeBytes: c.DSize, Ways: c.DWays, BlockBytes: c.DBlock,
		},
		BaseLatency: c.DLatency,
		Costs:       costs,
		TableSize:   c.TableSize,
		VictimSize:  c.VictimSize,
	}, nil
}

// icacheConfig assembles the i-cache controller configuration.
func (c Config) icacheConfig() (access.IConfig, error) {
	costs, err := c.costsFor(c.ISize, c.IWays, c.IBlock)
	if err != nil {
		return access.IConfig{}, err
	}
	return access.IConfig{
		Policy: c.IPolicy,
		Cache: cache.Config{
			Name: "L1i", SizeBytes: c.ISize, Ways: c.IWays, BlockBytes: c.IBlock,
		},
		BaseLatency: 1,
		Costs:       costs,
	}, nil
}
