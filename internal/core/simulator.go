package core

import (
	"fmt"

	"waycache/internal/access"
	"waycache/internal/branch"
	"waycache/internal/cache"
	"waycache/internal/energy"
	"waycache/internal/pipeline"
	"waycache/internal/wattch"
)

// Result holds everything a run produced: timing, cache behaviour, energy
// accounts, and the processor-wide energy breakdown.
type Result struct {
	Benchmark string
	Config    Config

	Pipeline pipeline.Stats
	DStats   access.DStats
	IStats   access.IStats
	DAcct    energy.Account
	IAcct    energy.Account
	DL1      cache.Stats
	IL1      cache.Stats
	Hier     cache.HierarchyStats
	Power    wattch.Breakdown
}

// Cycles returns the run's execution time in cycles.
func (r *Result) Cycles() int64 { return r.Pipeline.Cycles }

// DCacheEnergy returns total L1 d-cache energy (normalized units),
// including prediction-structure overhead.
func (r *Result) DCacheEnergy() float64 { return r.DAcct.Total() }

// ICacheEnergy returns total L1 i-cache energy.
func (r *Result) ICacheEnergy() float64 { return r.IAcct.Total() }

// ProcessorEnergy returns the Wattch-style whole-processor energy.
func (r *Result) ProcessorEnergy() float64 { return r.Power.Total() }

// DMissRate returns the d-cache miss rate over loads and stores.
func (r *Result) DMissRate() float64 { return r.DL1.MissRate() }

// WayPredAccuracy returns the fraction of d-cache loads whose first probe
// hit the right way (direct-mapped, way-predicted, parallel and sequential
// accesses all count as "right"; mispredictions as wrong). For pure
// way-prediction policies this matches the paper's accuracy metric.
func (r *Result) WayPredAccuracy() float64 {
	total := r.DStats.Loads
	if total == 0 {
		return 0
	}
	wrong := r.DStats.ByClass[access.ClassMispred]
	return 1 - float64(wrong)/float64(total)
}

// IWayAccuracy returns the fraction of i-cache fetches with a correct way
// prediction (SAWP + BTB/RAS correct over all fetches).
func (r *Result) IWayAccuracy() float64 {
	if r.IStats.Fetches == 0 {
		return 0
	}
	good := r.IStats.ByClass[access.IClassTableCorrect] + r.IStats.ByClass[access.IClassBTBCorrect]
	return float64(good) / float64(r.IStats.Fetches)
}

// Run executes one configuration and returns its results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	src, name, finish, err := cfg.source()
	if err != nil {
		return nil, err
	}
	dcfg, err := cfg.dcacheConfig()
	if err != nil {
		return nil, err
	}
	icfg, err := cfg.icacheConfig()
	if err != nil {
		return nil, err
	}

	// One unified L2 below both L1s, as in the paper.
	hier := cache.DefaultHierarchy(32)
	var dc access.DController
	if cfg.SelectiveWays > 0 {
		dc = access.NewSelectiveWays(dcfg, cfg.SelectiveWays, hier)
	} else {
		dc = access.NewDCache(dcfg, hier)
	}
	ic := access.NewICache(icfg, hier)
	fe := branch.NewFrontEnd()
	if cfg.TableSize > 0 {
		fe.SAWP = branch.NewSAWP(cfg.TableSize)
	}

	pipe := pipeline.New(cfg.Core, src, dc, ic, fe)
	ps := pipe.Run()
	if finish != nil {
		// A replayed file that ended early or decoded dirty must fail the
		// run: silently simulating a truncated stream would skew every
		// statistic while claiming the configured instruction count.
		if err := finish(); err != nil {
			return nil, fmt.Errorf("core: replaying %s: %w", cfg.Trace, err)
		}
	}

	res := &Result{
		Benchmark: name,
		Config:    cfg,
		Pipeline:  ps,
		DStats:    dc.Stats(),
		IStats:    ic.Stats(),
		DAcct:     *dc.Account(),
		IAcct:     *ic.Acct,
		DL1:       dc.CacheStats(),
		IL1:       ic.L1.Stats(),
		Hier:      hier.Stats(),
	}
	res.Power = wattch.Compute(ps, dc.Account(), ic.Acct, hier.Stats(), wattch.DefaultUnits())
	return res, nil
}

// MustRun is Run that panics on configuration errors; experiment configs
// are static data.
func MustRun(cfg Config) *Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Comparison holds technique-vs-baseline relative metrics, the quantities
// on the paper's figure axes. Values are ratios: RelDCacheED = 0.31 means
// a 69 % d-cache energy-delay reduction.
type Comparison struct {
	// Relative execution time and its inverse framing.
	RelTime  float64 // T_tech / T_base
	PerfLoss float64 // (T_tech - T_base) / T_base

	RelDCacheEnergy float64
	RelDCacheED     float64 // relative energy x relative time

	RelICacheEnergy float64
	RelICacheED     float64

	RelProcEnergy float64
	RelProcED     float64
}

// Compare derives relative metrics of tech against base. Both runs must
// have simulated the same benchmark and instruction count.
func Compare(base, tech *Result) Comparison {
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	relT := ratio(float64(tech.Cycles()), float64(base.Cycles()))
	c := Comparison{
		RelTime:         relT,
		PerfLoss:        relT - 1,
		RelDCacheEnergy: ratio(tech.DCacheEnergy(), base.DCacheEnergy()),
		RelICacheEnergy: ratio(tech.ICacheEnergy(), base.ICacheEnergy()),
		RelProcEnergy:   ratio(tech.ProcessorEnergy(), base.ProcessorEnergy()),
	}
	c.RelDCacheED = c.RelDCacheEnergy * relT
	c.RelICacheED = c.RelICacheEnergy * relT
	c.RelProcED = c.RelProcEnergy * relT
	return c
}

// PerfectWayPrediction derives the paper's "perfect way-prediction" bound
// from a parallel-baseline run: every load and fetch reads exactly one data
// way, with no mispredictions, no table overhead, and no performance loss.
// It returns the Comparison of that ideal against the same baseline.
func PerfectWayPrediction(base *Result) Comparison {
	perfect := func(a energy.Account) energy.Account {
		a.OneWayReads += a.ParallelReads
		a.ParallelReads = 0
		a.SecondProbes = 0
		a.TableAccesses = 0
		return a
	}
	dp := perfect(base.DAcct)
	ip := perfect(base.IAcct)

	c := Comparison{RelTime: 1, PerfLoss: 0}
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	c.RelDCacheEnergy = div(dp.Total(), base.DCacheEnergy())
	c.RelICacheEnergy = div(ip.Total(), base.ICacheEnergy())
	c.RelDCacheED = c.RelDCacheEnergy
	c.RelICacheED = c.RelICacheEnergy

	proc := base.Power
	proc.L1D = dp.Total()
	proc.L1I = ip.Total()
	c.RelProcEnergy = div(proc.Total(), base.ProcessorEnergy())
	c.RelProcED = c.RelProcEnergy
	return c
}
