package core

import (
	"reflect"
	"strings"
	"testing"

	"waycache/internal/access"
	"waycache/internal/trace"
	"waycache/internal/tracestore"
)

// TestTraceRefReplayMatchesWalker extends the replay equivalence property
// to content-addressed references: a capture resolved via trace://<hash>
// through a store simulates identically to the live walker.
func TestTraceRefReplayMatchesWalker(t *testing.T) {
	const bench, insts = "gcc", 30_000
	path := captureBench(t, t.TempDir(), bench, insts)
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, _, err := store.PutFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Benchmark: bench, Insts: insts,
		DPolicy: access.DSelDMWayPred, IPolicy: access.IWayPred,
	}
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg
	refCfg.Trace = trace.FormatRef(hash)
	refCfg.TraceStore = store
	replay, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	live.Config, replay.Config = Config{}, Config{}
	if !reflect.DeepEqual(live, replay) {
		t.Fatalf("trace:// replay differs from walker results:\n live   %+v\n replay %+v", live, replay)
	}
}

func TestTraceRefNeedsStore(t *testing.T) {
	ref := trace.FormatRef(strings.Repeat("ab", 32))
	_, err := Run(Config{Trace: ref, Insts: 1000})
	if err == nil || !strings.Contains(err.Error(), "trace store") {
		t.Fatalf("Run without a store = %v, want a needs-a-trace-store error", err)
	}
}

func TestTraceRefNotFound(t *testing.T) {
	store, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref := trace.FormatRef(strings.Repeat("ab", 32))
	_, err = Run(Config{Trace: ref, Insts: 1000, TraceStore: store})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("Run with a missing object = %v, want a not-found error", err)
	}
}

// TestTraceRefKeyIsStoreIndependent pins the durability property: the
// memo key depends on the reference (the bytes), never on which store
// serves it — so results computed anywhere are interchangeable.
func TestTraceRefKeyIsStoreIndependent(t *testing.T) {
	ref := trace.FormatRef(strings.Repeat("cd", 32))
	a := Config{Benchmark: "gcc", Insts: 1000, Trace: ref}
	storeA, err := tracestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.TraceStore = storeA

	ka, oka := a.Key()
	kb, okb := b.Key()
	if !oka || !okb || ka != kb {
		t.Fatalf("keys differ with/without a store:\n %q (%v)\n %q (%v)", ka, oka, kb, okb)
	}
	if !strings.Contains(ka, "|tr:"+ref) {
		t.Fatalf("key %q does not embed the trace reference", ka)
	}

	// And the canonical JSON encoding is store-independent too.
	res, err := Run(Config{Benchmark: "gcc", Insts: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res.Config.Trace = ref
	enc1, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	res.Config.TraceStore = storeA
	enc2, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc1) != string(enc2) {
		t.Fatal("EncodeResult leaks the trace store into the canonical encoding")
	}
}
