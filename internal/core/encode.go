package core

// Stable Result serialization: the byte encoding the on-disk result store
// (internal/resultdb) persists and every future reader must keep decoding.
// The encoding is canonical JSON of the Result struct with the Config
// canonicalized first, so encoding the same simulation always yields the
// same bytes:
//
//   - Go's encoding/json emits struct fields in declaration order and
//     renders floats in their shortest round-trippable form, so the bytes
//     are a pure function of the Result's values.
//   - Config.Canonical() materializes every default before encoding, so a
//     zero-valued field and its explicit default encode identically — the
//     same equivalence Config.Key establishes for memoization.
//
// JSON (rather than a packed binary form like the .wct trace format) keeps
// the records self-describing: fields added to Result in a future version
// decode as their zero value from old records, and old readers ignore
// fields they do not know. Container-level versioning (magic + version
// byte, checksums) is the store's job, not the payload's.

import (
	"encoding/json"
	"fmt"
)

// EncodeResult renders r into its canonical, stable byte encoding. Two
// results of the same simulation encode byte-identically. Results driven
// by a custom trace Source cannot be encoded (their behaviour is not
// captured by the config, mirroring Config.Key's refusal to key them).
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("core: cannot encode nil result")
	}
	if r.Config.Source != nil {
		return nil, fmt.Errorf("core: result of a custom-Source run has no canonical encoding")
	}
	rr := *r
	rr.Config = rr.Config.Canonical()
	data, err := json.Marshal(&rr)
	if err != nil {
		return nil, fmt.Errorf("core: encoding result: %w", err)
	}
	return data, nil
}

// DecodeResult decodes bytes produced by EncodeResult. Decoding is
// tolerant of unknown fields, so records written by a newer waycache still
// decode (new fields are simply dropped); fields absent from old records
// decode as zero values.
func DecodeResult(data []byte) (*Result, error) {
	r := new(Result)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	return r, nil
}
