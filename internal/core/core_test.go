package core

import (
	"testing"

	"waycache/internal/access"
)

const testInsts = 250_000

// runPair runs baseline (parallel/parallel) and a technique on the same
// benchmark and returns both plus the comparison.
func runPair(t *testing.T, bench string, d access.DPolicy, i access.IPolicy) (*Result, *Result, Comparison) {
	t.Helper()
	base, err := Run(Config{Benchmark: bench, Insts: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	tech, err := Run(Config{Benchmark: bench, Insts: testInsts, DPolicy: d, IPolicy: i})
	if err != nil {
		t.Fatal(err)
	}
	return base, tech, Compare(base, tech)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("config without benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "gcc", Insts: 1000, DSize: 10000}); err == nil {
		t.Fatal("invalid cache geometry accepted")
	}
}

func TestBaselineSanity(t *testing.T) {
	r := MustRun(Config{Benchmark: "gcc", Insts: testInsts})
	if r.Pipeline.Committed != testInsts {
		t.Fatalf("committed %d", r.Pipeline.Committed)
	}
	if ipc := r.Pipeline.IPC(); ipc < 0.3 || ipc > 8 {
		t.Fatalf("implausible IPC %v", ipc)
	}
	// The paper: L1 i+d are 10-16% of processor energy for this config.
	if s := r.Power.L1Share(); s < 0.07 || s > 0.20 {
		t.Fatalf("L1 energy share %v outside plausible band", s)
	}
	if r.DCacheEnergy() <= 0 || r.ICacheEnergy() <= 0 {
		t.Fatal("cache energies not accumulated")
	}
}

func TestSequentialTradeoff(t *testing.T) {
	// Fig. 4 shape: sequential access saves most of the d-cache energy but
	// degrades performance far more than prediction-based schemes.
	_, _, seq := runPair(t, "gcc", access.DSequential, access.IParallel)
	if seq.RelDCacheED > 0.45 {
		t.Fatalf("sequential relative E-D %v; expected large savings", seq.RelDCacheED)
	}
	if seq.PerfLoss < 0.02 {
		t.Fatalf("sequential perf loss %v too small — latency not modeled", seq.PerfLoss)
	}
	_, _, sdm := runPair(t, "gcc", access.DSelDMWayPred, access.IParallel)
	if sdm.PerfLoss >= seq.PerfLoss {
		t.Fatalf("selective-DM perf loss %v not below sequential %v", sdm.PerfLoss, seq.PerfLoss)
	}
}

func TestSelDMBeatsPCWayPredED(t *testing.T) {
	// Table 5 shape: selective-DM + way-prediction achieves at least the
	// energy-delay of plain PC way-prediction (69% vs 63% savings).
	_, _, wp := runPair(t, "gcc", access.DWayPredPC, access.IParallel)
	_, _, sdm := runPair(t, "gcc", access.DSelDMWayPred, access.IParallel)
	if sdm.RelDCacheED > wp.RelDCacheED+0.01 {
		t.Fatalf("SelDM+WP E-D %v worse than PC waypred %v", sdm.RelDCacheED, wp.RelDCacheED)
	}
}

func TestXORBeatsPCAccuracy(t *testing.T) {
	// Fig. 5 shape: XOR-based prediction is more accurate than PC-based.
	pc := MustRun(Config{Benchmark: "li", Insts: testInsts, DPolicy: access.DWayPredPC})
	xor := MustRun(Config{Benchmark: "li", Insts: testInsts, DPolicy: access.DWayPredXOR})
	if xor.WayPredAccuracy() < pc.WayPredAccuracy()-0.02 {
		t.Fatalf("XOR accuracy %v below PC accuracy %v", xor.WayPredAccuracy(), pc.WayPredAccuracy())
	}
}

func TestSelDMCapturesMajorityAsDM(t *testing.T) {
	// The paper: selective-DM correctly predicts ~77% of reads as
	// non-conflicting; our synthetic suite should land in that region for
	// a conflict-light benchmark.
	r := MustRun(Config{Benchmark: "mgrid", Insts: testInsts, DPolicy: access.DSelDMWayPred})
	dm := float64(r.DStats.ByClass[access.ClassDM]) / float64(r.DStats.Loads)
	if dm < 0.5 {
		t.Fatalf("direct-mapped fraction %v too low", dm)
	}
}

func TestICacheWayPrediction(t *testing.T) {
	// Fig. 10 shape: i-cache way prediction is highly accurate with
	// negligible performance loss, except fpppp which thrashes.
	for _, b := range []string{"m88ksim", "swim"} {
		base, tech, c := runPair(t, b, access.DParallel, access.IWayPred)
		_ = base
		if acc := tech.IWayAccuracy(); acc < 0.85 {
			t.Errorf("%s: i-cache way accuracy %v < 0.85", b, acc)
		}
		if c.PerfLoss > 0.01 {
			t.Errorf("%s: i-cache way-prediction perf loss %v > 1%%", b, c.PerfLoss)
		}
		if c.RelICacheED > 0.6 {
			t.Errorf("%s: i-cache relative E-D %v; expected big savings", b, c.RelICacheED)
		}
	}
	fp := MustRun(Config{Benchmark: "fpppp", Insts: testInsts, IPolicy: access.IWayPred})
	sw := MustRun(Config{Benchmark: "swim", Insts: testInsts, IPolicy: access.IWayPred})
	if fp.IWayAccuracy() > sw.IWayAccuracy() {
		t.Error("fpppp (i-cache thrasher) should not beat swim on way accuracy")
	}
}

func TestOverallProcessorED(t *testing.T) {
	// Fig. 11 shape: combining d-SelDM+WP with i-waypred cuts overall
	// processor E-D by several percent, bounded by perfect way-prediction.
	base, _, c := runPair(t, "gcc", access.DSelDMWayPred, access.IWayPred)
	perfect := PerfectWayPrediction(base)
	if c.RelProcED > 0.99 {
		t.Fatalf("overall E-D %v shows no saving", c.RelProcED)
	}
	if perfect.RelProcED > c.RelProcED+1e-9 {
		t.Fatalf("perfect bound %v worse than technique %v", perfect.RelProcED, c.RelProcED)
	}
	if perfect.RelProcED < 0.80 || perfect.RelProcED > 0.97 {
		t.Fatalf("perfect-waypred processor E-D %v outside plausible band", perfect.RelProcED)
	}
}

func TestAssociativityTrend(t *testing.T) {
	// Fig. 8 shape: energy savings grow with associativity.
	var prev float64 = 1
	for _, ways := range []int{2, 4, 8} {
		base := MustRun(Config{Benchmark: "m88ksim", Insts: testInsts, DWays: ways})
		tech := MustRun(Config{Benchmark: "m88ksim", Insts: testInsts, DWays: ways,
			DPolicy: access.DSelDMWayPred})
		c := Compare(base, tech)
		if c.RelDCacheED >= prev {
			t.Fatalf("%d-way relative E-D %v not below %d/2-way's %v", ways, c.RelDCacheED, ways, prev)
		}
		prev = c.RelDCacheED
	}
}

func TestTwoCycleCache(t *testing.T) {
	// Fig. 9 shape: with a 2-cycle base d-cache the techniques still work;
	// sequential still degrades performance the most.
	base2 := MustRun(Config{Benchmark: "gcc", Insts: testInsts, DLatency: 2})
	seq2 := MustRun(Config{Benchmark: "gcc", Insts: testInsts, DLatency: 2, DPolicy: access.DSequential})
	sdm2 := MustRun(Config{Benchmark: "gcc", Insts: testInsts, DLatency: 2, DPolicy: access.DSelDMWayPred})
	cSeq := Compare(base2, seq2)
	cSdm := Compare(base2, sdm2)
	if cSeq.PerfLoss <= cSdm.PerfLoss {
		t.Fatalf("2-cycle: sequential perf loss %v not above SelDM+WP %v", cSeq.PerfLoss, cSdm.PerfLoss)
	}
	if cSdm.RelDCacheED > 0.5 {
		t.Fatalf("2-cycle SelDM+WP relative E-D %v", cSdm.RelDCacheED)
	}
}

func TestCustomSource(t *testing.T) {
	// The public API accepts user traces.
	base := MustRun(Config{Benchmark: "troff", Insts: 50_000})
	p := base // reuse benchmark name only
	_ = p
	r := MustRun(Config{Benchmark: "troff", Insts: 50_000, DPolicy: access.DSelDMSequential})
	if r.Pipeline.Committed != 50_000 {
		t.Fatalf("committed %d", r.Pipeline.Committed)
	}
}

func TestDeterministicResults(t *testing.T) {
	a := MustRun(Config{Benchmark: "vortex", Insts: 100_000, DPolicy: access.DSelDMWayPred, IPolicy: access.IWayPred})
	b := MustRun(Config{Benchmark: "vortex", Insts: 100_000, DPolicy: access.DSelDMWayPred, IPolicy: access.IWayPred})
	if a.Pipeline != b.Pipeline || a.DAcct != b.DAcct || a.IAcct != b.IAcct {
		t.Fatal("identical configs produced different results")
	}
}

func TestPaperCostsOption(t *testing.T) {
	r := MustRun(Config{Benchmark: "troff", Insts: 50_000, UsePaperCosts: true})
	if r.DCacheEnergy() <= 0 {
		t.Fatal("paper-cost run accumulated no energy")
	}
}

func TestPolicyMatrix(t *testing.T) {
	// Every d-policy x every benchmark must run clean with consistent
	// accounting: classes sum to loads, energy positive, accuracy sane.
	if testing.Short() {
		t.Skip("matrix is slow")
	}
	policies := []access.DPolicy{
		access.DParallel, access.DSequential, access.DWayPredPC,
		access.DWayPredXOR, access.DWayPredMRU,
		access.DSelDMParallel, access.DSelDMWayPred, access.DSelDMSequential,
	}
	for _, bench := range []string{"applu", "fpppp", "gcc", "go", "li",
		"m88ksim", "mgrid", "perl", "swim", "troff", "vortex"} {
		for _, pol := range policies {
			r := MustRun(Config{Benchmark: bench, Insts: 60_000, DPolicy: pol, IPolicy: access.IWayPred})
			var classSum int64
			for _, c := range r.DStats.ByClass {
				classSum += c
			}
			if classSum != r.DStats.Loads {
				t.Errorf("%s/%v: class sum %d != loads %d", bench, pol, classSum, r.DStats.Loads)
			}
			if r.DCacheEnergy() <= 0 || r.ProcessorEnergy() <= 0 {
				t.Errorf("%s/%v: non-positive energy", bench, pol)
			}
			if acc := r.WayPredAccuracy(); acc < 0.3 || acc > 1.0 {
				t.Errorf("%s/%v: accuracy %v out of range", bench, pol, acc)
			}
			if r.Pipeline.Committed != 60_000 {
				t.Errorf("%s/%v: committed %d", bench, pol, r.Pipeline.Committed)
			}
		}
	}
}

func TestSelectiveWaysInCore(t *testing.T) {
	base := MustRun(Config{Benchmark: "gcc", Insts: 100_000})
	sw := MustRun(Config{Benchmark: "gcc", Insts: 100_000, SelectiveWays: 2})
	c := Compare(base, sw)
	if c.RelDCacheEnergy >= 1 {
		t.Fatalf("2-of-4 selective ways should save energy, rel %v", c.RelDCacheEnergy)
	}
	if sw.DMissRate() < base.DMissRate() {
		t.Fatal("halving capacity should not reduce the miss rate")
	}
}

func TestMRUPolicyInCore(t *testing.T) {
	base := MustRun(Config{Benchmark: "troff", Insts: 100_000})
	mru := MustRun(Config{Benchmark: "troff", Insts: 100_000, DPolicy: access.DWayPredMRU})
	c := Compare(base, mru)
	if c.RelDCacheED >= 0.6 {
		t.Fatalf("MRU way-prediction rel E-D %v; expected large savings", c.RelDCacheED)
	}
}
