package core

import (
	"bytes"
	"reflect"
	"testing"

	"waycache/internal/access"
	"waycache/internal/trace"
)

// encodeTestResult simulates one small real run; shared across the encode
// tests so the suite pays for it once.
var encodeTestResult *Result

func testResult(t *testing.T) *Result {
	t.Helper()
	if encodeTestResult == nil {
		r, err := Run(Config{
			Benchmark: "gcc", Insts: 20_000,
			DPolicy: access.DSelDMWayPred, IPolicy: access.IWayPred,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		encodeTestResult = r
	}
	return encodeTestResult
}

func TestEncodeResultRoundTrip(t *testing.T) {
	r := testResult(t)
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip lost information:\n got %+v\nwant %+v", got, r)
	}
}

func TestEncodeResultDeterministic(t *testing.T) {
	r := testResult(t)
	a, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("two encodes of the same result differ:\n%s\n%s", a, b)
	}
}

func TestEncodeResultCanonicalizesConfig(t *testing.T) {
	// A result whose config still carries zero-valued defaults must encode
	// identically to one with the defaults spelled out: the store keys both
	// under the same canonical key, so their bytes must agree too.
	r := testResult(t)
	sparse := *r
	sparse.Config.DSize = 0 // back to "use the default", the same value
	sparse.Config.TableSize = 0

	a, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	b, err := EncodeResult(&sparse)
	if err != nil {
		t.Fatalf("EncodeResult(sparse): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("zero-default config encodes differently from explicit default")
	}
}

func TestEncodeResultRejectsCustomSource(t *testing.T) {
	r := *testResult(t)
	r.Config.Source = trace.NewLimit(nil, 0)
	if _, err := EncodeResult(&r); err == nil {
		t.Errorf("EncodeResult accepted a custom-Source result")
	}
	if _, err := EncodeResult(nil); err == nil {
		t.Errorf("EncodeResult accepted nil")
	}
}

func TestDecodeResultRejectsGarbage(t *testing.T) {
	if _, err := DecodeResult([]byte("{not json")); err == nil {
		t.Errorf("DecodeResult accepted malformed bytes")
	}
}

// benchResult simulates one small run for the codec benchmarks.
func benchResult(b *testing.B) *Result {
	b.Helper()
	r, err := Run(Config{Benchmark: "gcc", Insts: 20_000, DPolicy: access.DSelDMWayPred})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkEncodeResult(b *testing.B) {
	r := benchResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeResult(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResult(b *testing.B) {
	data, err := EncodeResult(benchResult(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResult(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeResultToleratesUnknownFields(t *testing.T) {
	// Forward compatibility: a record written by a newer waycache with an
	// extra field still decodes.
	r := testResult(t)
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	patched := append([]byte(`{"FutureField":42,`), data[1:]...)
	got, err := DecodeResult(patched)
	if err != nil {
		t.Fatalf("DecodeResult with unknown field: %v", err)
	}
	if got.Cycles() != r.Cycles() {
		t.Errorf("decoded Cycles = %d, want %d", got.Cycles(), r.Cycles())
	}
}
