package cache

// VictimList is the small, fully-associative list of recently evicted block
// addresses that selective direct-mapping uses to identify conflicting
// blocks (Section 2.2.2 of the paper).
//
// On every L1 eviction the evicted block address is recorded: if already
// present its counter is incremented, otherwise a new entry replaces the
// LRU entry. A block whose eviction count exceeds ConflictThreshold is
// deemed conflicting and is subsequently filled in its set-associative
// (LRU) position instead of its direct-mapping way.
type VictimList struct {
	entries []victimEntry
	clock   uint64

	// Threshold above which a block is deemed conflicting. The paper uses
	// "count exceeds two".
	threshold uint32

	stats VictimStats
}

type victimEntry struct {
	valid bool
	addr  uint64
	count uint32
	lru   uint64
}

// VictimStats counts victim-list events.
type VictimStats struct {
	Records     int64 // eviction records processed
	NewEntries  int64 // allocations of a fresh entry
	Increments  int64 // hits on an existing entry
	Lookups     int64 // Conflicting queries
	Conflicting int64 // Conflicting queries answered true
}

// DefaultVictimEntries is the paper's victim list size.
const DefaultVictimEntries = 16

// DefaultConflictThreshold is the paper's "count exceeds two" rule.
const DefaultConflictThreshold = 2

// NewVictimList returns a victim list with n entries and the given conflict
// threshold. n must be positive.
func NewVictimList(n int, threshold uint32) *VictimList {
	if n <= 0 {
		panic("cache: victim list needs at least one entry")
	}
	return &VictimList{
		entries:   make([]victimEntry, n),
		threshold: threshold,
	}
}

// RecordEviction notes that blockAddr was evicted and returns its updated
// eviction count.
func (v *VictimList) RecordEviction(blockAddr uint64) uint32 {
	v.stats.Records++
	v.clock++
	if e := v.find(blockAddr); e != nil {
		e.count++
		e.lru = v.clock
		v.stats.Increments++
		return e.count
	}
	// Allocate over an invalid or LRU entry.
	victim := &v.entries[0]
	for i := range v.entries {
		e := &v.entries[i]
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	*victim = victimEntry{valid: true, addr: blockAddr, count: 1, lru: v.clock}
	v.stats.NewEntries++
	return 1
}

// Conflicting reports whether blockAddr is currently deemed conflicting:
// present in the list with an eviction count exceeding the threshold.
// Blocks are non-conflicting by default, including after their entry ages
// out of the list.
func (v *VictimList) Conflicting(blockAddr uint64) bool {
	v.stats.Lookups++
	if e := v.find(blockAddr); e != nil && e.count > v.threshold {
		v.stats.Conflicting++
		return true
	}
	return false
}

// Count returns the recorded eviction count for blockAddr (0 if absent).
func (v *VictimList) Count(blockAddr uint64) uint32 {
	if e := v.find(blockAddr); e != nil {
		return e.count
	}
	return 0
}

// Len returns the number of valid entries.
func (v *VictimList) Len() int {
	n := 0
	for i := range v.entries {
		if v.entries[i].valid {
			n++
		}
	}
	return n
}

// Capacity returns the configured entry count.
func (v *VictimList) Capacity() int { return len(v.entries) }

// Stats returns a copy of the event counters.
func (v *VictimList) Stats() VictimStats { return v.stats }

func (v *VictimList) find(addr uint64) *victimEntry {
	for i := range v.entries {
		if v.entries[i].valid && v.entries[i].addr == addr {
			return &v.entries[i]
		}
	}
	return nil
}
