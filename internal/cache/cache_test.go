package cache

import (
	"testing"
	"testing/quick"

	"waycache/internal/prng"
)

func l1Config() Config {
	return Config{Name: "L1d", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32}
}

func TestConfigValidate(t *testing.T) {
	good := l1Config()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "block", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 33},
		{Name: "div", SizeBytes: 10000, Ways: 4, BlockBytes: 32},
		{Name: "sets", SizeBytes: 24 << 10, Ways: 4, BlockBytes: 32}, // 192 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestGeometryDerivation(t *testing.T) {
	c := New(l1Config())
	if c.NumSets() != 128 {
		t.Fatalf("16K/4w/32B should have 128 sets, got %d", c.NumSets())
	}
	addr := uint64(0x12345678)
	if c.BlockAddr(addr) != addr&^31 {
		t.Errorf("BlockAddr(%#x) = %#x", addr, c.BlockAddr(addr))
	}
	if c.Index(addr) != int((addr>>5)&127) {
		t.Errorf("Index(%#x) = %d", addr, c.Index(addr))
	}
	if c.Tag(addr) != addr>>12 {
		t.Errorf("Tag(%#x) = %#x", addr, c.Tag(addr))
	}
	if c.DMWay(addr) != int((addr>>12)&3) {
		t.Errorf("DMWay(%#x) = %d", addr, c.DMWay(addr))
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(l1Config())
	hit, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("first access hit an empty cache")
	}
	hit, _ = c.Access(0x1008, false) // same block
	if !hit {
		t.Fatal("second access to same block missed")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(l1Config())
	// Five distinct blocks mapping to set 0: index bits are addr[11:5].
	mk := func(i uint64) uint64 { return i << 12 } // same index 0, different tags
	for i := uint64(0); i < 4; i++ {
		c.Access(mk(i), false)
	}
	// Touch block 0 to make block 1 the LRU.
	c.Access(mk(0), false)
	// Fill a fifth block: block 1 must be evicted.
	_, ev := c.Access(mk(4), false)
	if !ev.Valid || ev.Addr != mk(1) {
		t.Fatalf("evicted %+v, want block %#x", ev, mk(1))
	}
	if c.Contains(mk(1)) {
		t.Fatal("evicted block still resident")
	}
	for _, b := range []uint64{mk(0), mk(2), mk(3), mk(4)} {
		if !c.Contains(b) {
			t.Fatalf("block %#x should be resident", b)
		}
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New(l1Config())
	c.Access(0x0<<12, true) // store miss: line starts dirty
	for i := uint64(1); i <= 4; i++ {
		_, ev := c.Access(i<<12, false)
		if i == 4 {
			if !ev.Valid || !ev.Dirty {
				t.Fatalf("eviction of dirty block reported %+v", ev)
			}
		}
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := New(l1Config())
	c.Access(0x1000, false)
	before := c.Stats()
	for i := 0; i < 10; i++ {
		if _, hit := c.Probe(0x1000); !hit {
			t.Fatal("probe missed resident block")
		}
		if _, hit := c.Probe(0x99999000); hit {
			t.Fatal("probe hit absent block")
		}
	}
	if c.Stats() != before {
		t.Fatal("Probe changed statistics")
	}
}

func TestTouchPanicsOnWrongWay(t *testing.T) {
	c := New(l1Config())
	c.Access(0x1000, false)
	way, _ := c.Probe(0x1000)
	defer func() {
		if recover() == nil {
			t.Fatal("Touch with wrong way did not panic")
		}
	}()
	c.Touch(0x1000, (way+1)%4, false)
}

func TestDMPlacement(t *testing.T) {
	c := New(l1Config())
	addr := uint64(7) << 12 // tag 7 -> DM way 3
	ev, way := c.Fill(addr, true, false)
	if ev.Valid {
		t.Fatalf("fill into empty cache evicted %+v", ev)
	}
	if want := c.DMWay(addr); way != want {
		t.Fatalf("DM fill chose way %d, want %d", way, want)
	}
	if !c.WasDMPlaced(addr, way) {
		t.Fatal("line not marked DM-placed")
	}
	// An LRU fill of a different block must not mark DM placement.
	addr2 := uint64(8) << 12
	_, way2 := c.Fill(addr2, false, false)
	if c.WasDMPlaced(addr2, way2) {
		t.Fatal("LRU fill marked as DM-placed")
	}
}

func TestDMPlacementEvictsOccupant(t *testing.T) {
	c := New(l1Config())
	// Fill all 4 ways of set 0 via LRU.
	for i := uint64(0); i < 4; i++ {
		c.Fill(i<<12, false, false)
	}
	// DM-fill a block whose DM way is 2 (tag 6 & 3 == 2).
	addr := uint64(6) << 12
	ev, way := c.Fill(addr, true, false)
	if way != 2 {
		t.Fatalf("DM fill chose way %d, want 2", way)
	}
	if !ev.Valid {
		t.Fatal("DM fill into a full set must evict")
	}
	if !c.Contains(addr) {
		t.Fatal("DM-filled block not resident")
	}
}

func TestAccessSequenceInvariants(t *testing.T) {
	c := New(l1Config())
	r := prng.New(99)
	for i := 0; i < 200000; i++ {
		addr := r.Uint64() % (1 << 20)
		switch r.Intn(3) {
		case 0:
			c.Access(addr, r.Bool(0.3))
		case 1:
			if way, hit := c.Probe(addr); hit {
				c.Touch(addr, way, false)
			} else {
				c.Fill(addr, r.Bool(0.5), false)
			}
		case 2:
			c.Contains(addr)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.ResidentBlocks() > c.NumSets()*c.Ways() {
		t.Fatal("more resident blocks than capacity")
	}
}

func TestInvariantsProperty(t *testing.T) {
	// Property: after any access sequence, a just-accessed block is
	// resident and invariants hold.
	cfg := Config{Name: "p", SizeBytes: 1 << 10, Ways: 2, BlockBytes: 32}
	f := func(addrs []uint16, writes []bool) bool {
		c := New(cfg)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectMappedCache(t *testing.T) {
	c := New(Config{Name: "dm", SizeBytes: 16 << 10, Ways: 1, BlockBytes: 32})
	if c.NumSets() != 512 {
		t.Fatalf("sets = %d", c.NumSets())
	}
	// Two blocks with the same index always conflict.
	a, b := uint64(0x0000), uint64(0x4000)
	if c.Index(a) != c.Index(b) {
		t.Fatal("test addresses should share an index")
	}
	c.Access(a, false)
	_, ev := c.Access(b, false)
	if !ev.Valid || ev.Addr != a {
		t.Fatalf("direct-mapped conflict did not evict %#x: %+v", a, ev)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("empty stats should report 0 miss rate")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
}

func TestDMWayMaskMatchesModulo(t *testing.T) {
	// DMWay has a mask fast path for power-of-two associativity and a
	// modulo fallback for the partial-ways geometries of selective cache
	// ways; both must implement "low tag bits select the way".
	rng := prng.New(0xd31c7)
	for _, ways := range []int{1, 2, 3, 4, 5, 8, 16} {
		c := New(Config{
			Name: "dm", SizeBytes: 128 * 32 * ways, Ways: ways, BlockBytes: 32,
		})
		for i := 0; i < 2000; i++ {
			addr := rng.Uint64()
			want := int(c.Tag(addr) % uint64(ways))
			if got := c.DMWay(addr); got != want {
				t.Fatalf("ways=%d DMWay(%#x) = %d, want %d", ways, addr, got, want)
			}
		}
	}
}

func TestPrecomputedMasksMatchGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "a", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32},
		{Name: "b", SizeBytes: 8 << 10, Ways: 1, BlockBytes: 64},
		{Name: "c", SizeBytes: 3 << 10, Ways: 3, BlockBytes: 16},
	} {
		c := New(cfg)
		rng := prng.New(uint64(cfg.Ways))
		for i := 0; i < 2000; i++ {
			addr := rng.Uint64()
			if got, want := c.BlockAddr(addr), addr/uint64(cfg.BlockBytes)*uint64(cfg.BlockBytes); got != want {
				t.Fatalf("%s: BlockAddr(%#x) = %#x, want %#x", cfg.Name, addr, got, want)
			}
			if got, want := c.Index(addr), int(addr/uint64(cfg.BlockBytes))%c.NumSets(); got != want {
				t.Fatalf("%s: Index(%#x) = %d, want %d", cfg.Name, addr, got, want)
			}
			if got, want := c.Tag(addr), addr/uint64(cfg.BlockBytes)/uint64(c.NumSets()); got != want {
				t.Fatalf("%s: Tag(%#x) = %#x, want %#x", cfg.Name, addr, got, want)
			}
		}
	}
}
