// Package cache models set-associative caches, the victim list used by
// selective direct-mapping to identify conflicting blocks, and the L2 +
// memory hierarchy below the L1s.
//
// The model is behavioural: it tracks tags, LRU state, dirtiness and the
// direct-mapped/set-associative placement of every block. Probing and
// filling are exposed as separate operations because the paper's access
// policies (parallel, sequential, way-predicted, selective-DM) differ in
// which data ways they probe and when, while the tag array is always read
// in full.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache array.
type Config struct {
	Name       string // for error messages and reports
	SizeBytes  int    // total data capacity
	Ways       int    // associativity (1 = direct mapped)
	BlockBytes int    // line size
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	if c.SizeBytes%(c.BlockBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*block", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Ways) }

type line struct {
	valid    bool
	dirty    bool
	dmPlaced bool // resident in its direct-mapped way by selective-DM placement
	tag      uint64
	lru      uint64 // last-touch stamp; larger = more recent
}

// Stats counts cache-array events. Probe-level energy accounting lives with
// the access policies; these are architectural hit/miss counts.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
	Dirty     int64 // dirty evictions (writebacks)
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache array with LRU replacement and optional
// per-fill direct-mapped placement.
//
// The address-decomposition masks and shifts are precomputed at
// construction: Probe, Index, Tag, BlockAddr and DMWay run on every
// simulated memory access, so they must stay branch-light, division-free
// and allocation-free.
type Cache struct {
	cfg        Config
	sets       []line // numSets * ways, row-major
	numSets    int
	ways       int
	blockShift uint
	indexBits  uint
	blockMask  uint64 // BlockBytes - 1
	indexMask  uint64 // numSets - 1
	tagShift   uint   // blockShift + indexBits
	wayMask    int    // ways - 1 when ways is a power of two, else -1
	clock      uint64
	stats      Stats
}

// New constructs a cache. It panics on invalid geometry: configurations are
// static and produced by code, so an invalid one is a programming error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	blockShift := uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	indexBits := uint(bits.TrailingZeros(uint(sets)))
	wayMask := -1
	if cfg.Ways&(cfg.Ways-1) == 0 {
		wayMask = cfg.Ways - 1
	}
	return &Cache{
		cfg:        cfg,
		sets:       make([]line, sets*cfg.Ways),
		numSets:    sets,
		ways:       cfg.Ways,
		blockShift: blockShift,
		indexBits:  indexBits,
		blockMask:  uint64(cfg.BlockBytes) - 1,
		indexMask:  uint64(sets) - 1,
		tagShift:   blockShift + indexBits,
		wayMask:    wayMask,
	}
}

// Config returns the cache geometry. Hot paths should use the dedicated
// accessors (BlockBytes, Ways, NumSets) instead of copying the struct per
// access.
func (c *Cache) Config() Config { return c.cfg }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// BlockBytes returns the line size.
func (c *Cache) BlockBytes() int { return c.cfg.BlockBytes }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr returns addr rounded down to its block boundary.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr &^ c.blockMask
}

// Index returns the set index of addr.
func (c *Cache) Index(addr uint64) int {
	return int((addr >> c.blockShift) & c.indexMask)
}

// Tag returns the tag of addr.
func (c *Cache) Tag(addr uint64) uint64 {
	return addr >> c.tagShift
}

// DMWay returns the direct-mapping way of addr: the low tag bits select
// the way the block would occupy if the array were treated as a
// direct-mapped cache of the same capacity ("index bits extended with
// bits borrowed from the tag"). For power-of-two associativity this is a
// bit mask; the modulo form also supports the partial-ways configurations
// of the selective-cache-ways baseline.
//
//wclint:hotpath
func (c *Cache) DMWay(addr uint64) int {
	if c.wayMask >= 0 {
		return int(addr>>c.tagShift) & c.wayMask
	}
	return int((addr >> c.tagShift) % uint64(c.ways))
}

// addrOf reconstructs a block address from a set index and tag.
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return tag<<(c.blockShift+c.indexBits) | uint64(set)<<c.blockShift
}

func (c *Cache) set(i int) []line {
	return c.sets[i*c.ways : (i+1)*c.ways]
}

// Probe performs a tag-array lookup and returns the matching way, if any.
// It does not update replacement state and counts no statistics: every
// access policy begins with exactly one Probe and then decides which data
// ways to read.
//
//wclint:hotpath
func (c *Cache) Probe(addr uint64) (way int, hit bool) {
	tag := addr >> c.tagShift
	set := c.set(c.Index(addr))
	for w := range set {
		if set[w].tag == tag && set[w].valid {
			return w, true
		}
	}
	return -1, false
}

// Touch records a hit on addr in way: it bumps LRU state and hit counters.
// If write is true the line is marked dirty. Touch panics if the line does
// not contain addr; callers must pass a way obtained from Probe.
//
//wclint:hotpath
func (c *Cache) Touch(addr uint64, way int, write bool) {
	idx := c.Index(addr)
	set := c.set(idx)
	if way < 0 || way >= c.ways || !set[way].valid || set[way].tag != c.Tag(addr) {
		panic(fmt.Sprintf("cache %s: Touch(%#x, way %d) on non-matching line", c.cfg.Name, addr, way))
	}
	c.clock++
	set[way].lru = c.clock
	if write {
		set[way].dirty = true
	}
	c.stats.Accesses++
	c.stats.Hits++
}

// WasDMPlaced reports whether the line holding addr (which must be resident
// in way) was placed in its direct-mapped position by a selective-DM fill.
//
//wclint:hotpath
func (c *Cache) WasDMPlaced(addr uint64, way int) bool {
	return c.set(c.Index(addr))[way].dmPlaced
}

// MRUWay returns the most-recently-used valid way of addr's set, or 0 for
// an untouched set. It is the prediction source of MRU-based way
// prediction (Inoue et al.), which the paper discusses as related work.
//
//wclint:hotpath
func (c *Cache) MRUWay(addr uint64) int {
	set := c.set(c.Index(addr))
	best, stamp := 0, uint64(0)
	for w := range set {
		if set[w].valid && set[w].lru >= stamp {
			best, stamp = w, set[w].lru
		}
	}
	return best
}

// Eviction describes a block displaced by a fill.
type Eviction struct {
	Addr     uint64 // block address of the displaced line
	Dirty    bool   // needed a writeback
	DMPlaced bool   // was resident in its direct-mapped way
	Valid    bool   // false if the fill used an empty way
}

// Fill installs the block containing addr. If dmPlace is true the block is
// forced into its direct-mapping way (evicting whatever lives there);
// otherwise the LRU way of the set is the victim. It returns the eviction,
// if any, and the way filled. If write is true the new line starts dirty
// (a store miss). Fill counts one access and one miss.
//
//wclint:hotpath
func (c *Cache) Fill(addr uint64, dmPlace, write bool) (Eviction, int) {
	idx := c.Index(addr)
	set := c.set(idx)
	tag := c.Tag(addr)

	victim := -1
	if dmPlace {
		victim = c.DMWay(addr)
	} else {
		// Prefer an invalid way; otherwise LRU.
		best := uint64(1<<64 - 1)
		for w := range set {
			if !set[w].valid {
				victim = w
				break
			}
			if set[w].lru < best {
				best = set[w].lru
				victim = w
			}
		}
	}

	var ev Eviction
	if set[victim].valid {
		ev = Eviction{
			Addr:     c.addrOf(idx, set[victim].tag),
			Dirty:    set[victim].dirty,
			DMPlaced: set[victim].dmPlaced,
			Valid:    true,
		}
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Dirty++
		}
	}

	c.clock++
	// When dmPlace is set the victim *is* the direct-mapping way, so the
	// new line is DM-placed exactly when the caller asked for it.
	set[victim] = line{
		valid:    true,
		dirty:    write,
		dmPlaced: dmPlace,
		tag:      tag,
		lru:      c.clock,
	}
	c.stats.Accesses++
	c.stats.Misses++
	return ev, victim
}

// Access is the conventional combined operation: probe, touch on hit, fill
// (LRU placement) on miss. It is what the baseline caches and the L2 use.
// It returns whether the access hit and any eviction a miss caused.
//
//wclint:hotpath
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction) {
	if way, ok := c.Probe(addr); ok {
		c.Touch(addr, way, write)
		return true, Eviction{}
	}
	ev, _ = c.Fill(addr, false, write)
	return false, ev
}

// Contains reports whether the block holding addr is resident. It is a
// debugging/verification helper and updates nothing.
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.Probe(addr)
	return ok
}

// ResidentBlocks returns the number of valid lines. Used by invariant tests.
func (c *Cache) ResidentBlocks() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}

// CheckInvariants verifies structural invariants: no duplicate tags within
// a set and LRU stamps not exceeding the internal clock. It returns an
// error describing the first violation, or nil. Tests call this after
// random access sequences.
func (c *Cache) CheckInvariants() error {
	for s := 0; s < c.numSets; s++ {
		set := c.set(s)
		seen := make(map[uint64]int, c.ways)
		for w := range set {
			if !set[w].valid {
				continue
			}
			if prev, dup := seen[set[w].tag]; dup {
				return fmt.Errorf("cache %s: set %d has tag %#x in ways %d and %d",
					c.cfg.Name, s, set[w].tag, prev, w)
			}
			seen[set[w].tag] = w
			if set[w].lru > c.clock {
				return fmt.Errorf("cache %s: set %d way %d lru %d exceeds clock %d",
					c.cfg.Name, s, w, set[w].lru, c.clock)
			}
		}
	}
	return nil
}
