package cache

// Hierarchy models everything below an L1: a unified L2 and main memory.
// L1 misses call FillLatency to learn how many cycles the fill takes and to
// keep L2/memory statistics, mirroring the paper's configuration:
// 1 MB 8-way L2 with 12-cycle latency, and memory at 80 cycles plus
// 4 cycles per 8 bytes transferred.
type Hierarchy struct {
	L2 *Cache

	// L2HitLatency is the total L1-miss/L2-hit latency in cycles.
	L2HitLatency int

	// MemBaseLatency and MemCyclesPer8B define the memory access time for
	// an L2 miss: MemBaseLatency + MemCyclesPer8B * blockBytes/8.
	MemBaseLatency int
	MemCyclesPer8B int

	stats HierarchyStats
}

// HierarchyStats counts below-L1 traffic.
type HierarchyStats struct {
	L2Accesses   int64
	L2Hits       int64
	L2Misses     int64
	MemAccesses  int64
	Writebacks   int64 // dirty L1 evictions written to L2
	L2Writebacks int64 // dirty L2 evictions written to memory
}

// DefaultHierarchy builds the paper's L2 and memory: 1M, 8-way, 12-cycle
// L2; 80 + 4 per 8 bytes memory.
func DefaultHierarchy(l2Block int) *Hierarchy {
	return &Hierarchy{
		L2: New(Config{
			Name:       "L2",
			SizeBytes:  1 << 20,
			Ways:       8,
			BlockBytes: l2Block,
		}),
		L2HitLatency:   12,
		MemBaseLatency: 80,
		MemCyclesPer8B: 4,
	}
}

// FillLatency services an L1 miss for the block containing addr and returns
// the fill latency in cycles (not including the L1's own access time).
func (h *Hierarchy) FillLatency(addr uint64) int {
	h.stats.L2Accesses++
	hit, ev := h.L2.Access(addr, false)
	if hit {
		h.stats.L2Hits++
		return h.L2HitLatency
	}
	h.stats.L2Misses++
	h.stats.MemAccesses++
	if ev.Valid && ev.Dirty {
		h.stats.L2Writebacks++
	}
	return h.L2HitLatency + h.MemBaseLatency + h.MemCyclesPer8B*h.L2.BlockBytes()/8
}

// Writeback accepts a dirty L1 eviction. Writebacks are off the load
// critical path; only traffic is recorded.
func (h *Hierarchy) Writeback(addr uint64) {
	h.stats.Writebacks++
	hit, ev := h.L2.Access(addr, true)
	_ = hit
	if ev.Valid && ev.Dirty {
		h.stats.L2Writebacks++
	}
}

// Stats returns a copy of the traffic counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }
