package cache

import "testing"

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy(32)
	// Cold access: L2 miss -> memory. 12 + 80 + 4*32/8 = 108.
	if got := h.FillLatency(0x10000); got != 12+80+16 {
		t.Fatalf("cold fill latency = %d, want 108", got)
	}
	// Second access to same block: L2 hit.
	if got := h.FillLatency(0x10000); got != 12 {
		t.Fatalf("L2 hit latency = %d, want 12", got)
	}
	st := h.Stats()
	if st.L2Accesses != 2 || st.L2Hits != 1 || st.L2Misses != 1 || st.MemAccesses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchyWriteback(t *testing.T) {
	h := DefaultHierarchy(32)
	h.Writeback(0x20000)
	st := h.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d", st.Writebacks)
	}
	// The written-back block is now in L2: fetching it is a hit.
	if got := h.FillLatency(0x20000); got != 12 {
		t.Fatalf("fill after writeback = %d, want L2 hit (12)", got)
	}
}

func TestDefaultHierarchyGeometry(t *testing.T) {
	h := DefaultHierarchy(32)
	cfg := h.L2.Config()
	if cfg.SizeBytes != 1<<20 || cfg.Ways != 8 {
		t.Fatalf("L2 geometry = %+v, want 1M 8-way", cfg)
	}
}
