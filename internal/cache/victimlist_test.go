package cache

import (
	"testing"

	"waycache/internal/prng"
)

func TestVictimListCounting(t *testing.T) {
	v := NewVictimList(DefaultVictimEntries, DefaultConflictThreshold)
	addr := uint64(0x1000)
	for i := uint32(1); i <= 5; i++ {
		if got := v.RecordEviction(addr); got != i {
			t.Fatalf("count after %d evictions = %d", i, got)
		}
	}
}

func TestConflictThreshold(t *testing.T) {
	v := NewVictimList(16, 2)
	addr := uint64(0x2000)
	// Counts 1 and 2 are not conflicting ("exceeds two" rule).
	v.RecordEviction(addr)
	if v.Conflicting(addr) {
		t.Fatal("count 1 flagged conflicting")
	}
	v.RecordEviction(addr)
	if v.Conflicting(addr) {
		t.Fatal("count 2 flagged conflicting")
	}
	v.RecordEviction(addr)
	if !v.Conflicting(addr) {
		t.Fatal("count 3 not flagged conflicting")
	}
}

func TestUnknownBlockNonConflicting(t *testing.T) {
	v := NewVictimList(16, 2)
	if v.Conflicting(0xdead000) {
		t.Fatal("never-seen block flagged conflicting")
	}
	if v.Count(0xdead000) != 0 {
		t.Fatal("never-seen block has nonzero count")
	}
}

func TestLRUReplacementInVictimList(t *testing.T) {
	v := NewVictimList(4, 2)
	for i := uint64(0); i < 4; i++ {
		v.RecordEviction(i << 12)
	}
	// Touch entry 0 so entry 1 is LRU.
	v.RecordEviction(0 << 12)
	// A fifth block displaces entry for block 1.
	v.RecordEviction(5 << 12)
	if v.Count(1<<12) != 0 {
		t.Fatal("LRU victim-list entry not replaced")
	}
	if v.Count(0<<12) != 2 {
		t.Fatalf("recently touched entry lost, count = %d", v.Count(0<<12))
	}
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
}

func TestAgedOutBlockRevertsToNonConflicting(t *testing.T) {
	v := NewVictimList(2, 2)
	hot := uint64(0xa000)
	for i := 0; i < 3; i++ {
		v.RecordEviction(hot)
	}
	if !v.Conflicting(hot) {
		t.Fatal("setup: block should be conflicting")
	}
	// Push two new blocks through, evicting hot's entry.
	v.RecordEviction(0xb000)
	v.RecordEviction(0xc000)
	if v.Conflicting(hot) {
		t.Fatal("aged-out block should revert to non-conflicting default")
	}
}

func TestVictimListCapacityBound(t *testing.T) {
	v := NewVictimList(16, 2)
	r := prng.New(4)
	for i := 0; i < 10000; i++ {
		v.RecordEviction(r.Uint64() &^ 31)
	}
	if v.Len() > v.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", v.Len(), v.Capacity())
	}
	st := v.Stats()
	if st.Records != 10000 {
		t.Fatalf("Records = %d", st.Records)
	}
	if st.NewEntries+st.Increments != st.Records {
		t.Fatal("NewEntries + Increments != Records")
	}
}

func TestVictimListPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVictimList(0, ...) did not panic")
		}
	}()
	NewVictimList(0, 2)
}
