package lint_test

import (
	"testing"

	"waycache/internal/lint"
	"waycache/internal/lint/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockOrder, "lockord")
}
