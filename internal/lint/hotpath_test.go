package lint_test

import (
	"testing"

	"waycache/internal/lint"
	"waycache/internal/lint/analysistest"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Hotpath, "hot")
}
