// Package analysistest runs a wclint analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	resp, _ := http.Get(url) // want `http\.Get hard-wires`
//
// A `want` comment holds one or more quoted regular expressions
// (backquoted or double-quoted); each must match a diagnostic reported
// on that line, and every diagnostic must be claimed by exactly one
// expectation. Block comments work too — `/* want `...` */` — which is
// the only way to attach an expectation to a line that ends in a wclint
// directive comment.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"waycache/internal/lint/analysis"
)

// expectation is one `want` regexp waiting to be claimed by a
// diagnostic on its line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantTokenRE extracts the quoted regexp tokens of a want comment.
var wantTokenRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package at <testdata>/src/<pkg>, applies the
// analyzer, and reports mismatches between its diagnostics and the
// fixture's want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		fset := token.NewFileSet()
		u, err := analysis.LoadDir(fset, dir, pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		findings, err := analysis.RunAnalyzers(u, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		wants := collectWants(t, u)
		for _, f := range findings {
			if !claim(wants, f) {
				t.Errorf("%s: unexpected diagnostic: %s", f.Posn, f.Message)
			}
		}
		for _, e := range wants {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matched %s", e.file, e.line, e.raw)
			}
		}
	}
}

// collectWants parses every want comment in the loaded fixture.
func collectWants(t *testing.T, u *analysis.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(stripMarkers(c.Text))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				p := u.Fset.Position(c.Pos())
				tokens := wantTokenRE.FindAllString(rest, -1)
				if len(tokens) == 0 {
					t.Errorf("%s:%d: want comment with no quoted regexp", p.Filename, p.Line)
					continue
				}
				for _, tok := range tokens {
					pat, err := unquoteToken(tok)
					if err != nil {
						t.Errorf("%s:%d: bad want token %s: %v", p.Filename, p.Line, tok, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %s: %v", p.Filename, p.Line, tok, err)
						continue
					}
					wants = append(wants, &expectation{file: p.Filename, line: p.Line, re: re, raw: tok})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation on the finding's line
// whose regexp matches its message; false means nothing claimed it.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, e := range wants {
		if !e.matched && e.file == f.Posn.Filename && e.line == f.Posn.Line && e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func stripMarkers(text string) string {
	if rest, ok := strings.CutPrefix(text, "//"); ok {
		return rest
	}
	text = strings.TrimPrefix(text, "/*")
	return strings.TrimSuffix(text, "*/")
}

func unquoteToken(tok string) (string, error) {
	if strings.HasPrefix(tok, "`") {
		return strings.Trim(tok, "`"), nil
	}
	return strconv.Unquote(tok)
}
