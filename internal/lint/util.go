package lint

import (
	"go/ast"
	"go/types"

	"waycache/internal/lint/analysis"
)

// stdCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now), resolved through the type info so
// aliased imports and shadowed identifiers are handled correctly.
func stdCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Require a qualified identifier (pkg.F), not a method named F: the
	// selector base must resolve to the imported package itself.
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isPkg := pass.TypesInfo.Uses[base].(*types.PkgName); !isPkg {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeObject resolves the object a call's function expression refers
// to: a package-level func, a method, or nil for builtins, func-typed
// values and dynamic calls.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[fun.Sel] // qualified identifier pkg.F
	}
	return nil
}

// namedType unwraps pointers and aliases and returns the named type of
// t, or nil.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isNamed reports whether t (or *t) is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// declaredFuncs maps each function/method object defined in the package
// to its declaration, for one-level intra-package call analysis.
func declaredFuncs(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	m := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					m[obj] = fd
				}
			}
		}
	}
	return m
}
