package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"waycache/internal/lint/analysis"
)

// Hotpath enforces the zero-alloc contract on functions annotated
// //wclint:hotpath (the simulation inner loop: d-cache load dispatch,
// pipeline commit/issue/fetch, trace window decode). Inside an
// annotated function it forbids the constructs that allocate in steady
// state: closures (function literals), defer and go statements,
// fmt.*/errors.New calls, conversions of non-pointer values to
// interfaces, and append to a locally-declared slice without
// make(len, cap) preallocation. The AllocsPerRun tests prove the hot
// path IS zero-alloc today; this analyzer stops a regression at vet
// time, and `wclint escape` cross-checks the same annotations against
// the compiler's -gcflags=-m escape analysis. Suppress a finding with
// //wclint:alloc-ok <reason>.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //wclint:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *analysis.Pass) (any, error) {
	h := newHatches(pass, "alloc")
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
				continue
			}
			checkHotpathFunc(pass, h, fd)
		}
	}
	return nil, nil
}

func checkHotpathFunc(pass *analysis.Pass, h *hatches, fd *ast.FuncDecl) {
	name := fd.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		if !h.suppressed(pos) {
			pass.Reportf(pos, format, args...)
		}
	}
	localSliceDecl := localSliceDecls(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			report(n.Pos(), "defer in hotpath %s allocates a defer record on every call", name)
		case *ast.GoStmt:
			report(n.Pos(), "go statement in hotpath %s spawns a goroutine per call", name)
		case *ast.FuncLit:
			report(n.Pos(), "closure in hotpath %s may escape and allocate; straight-line the body or hoist the function", name)
			return false // its body is not hot-path code
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return false // a taken panic ends the run; its argument is cold
				}
			}
			checkHotpathCall(pass, report, name, n, localSliceDecl)
		case *ast.AssignStmt:
			if n.Tok.String() == "=" {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					checkIfaceConversion(pass, report, name, pass.TypesInfo.Types[lhs].Type, n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			sig, _ := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkIfaceConversion(pass, report, name, sig.Results().At(i).Type(), res)
				}
			}
		}
		return true
	})
}

func checkHotpathCall(pass *analysis.Pass, report func(token.Pos, string, ...any), fname string, call *ast.CallExpr, localSlice map[types.Object]*ast.CallExpr) {
	// Explicit conversion T(x) where T is an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkIfaceConversion(pass, report, fname, tv.Type, call.Args[0])
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "fmt":
				report(call.Pos(), "fmt.%s in hotpath %s allocates (boxing + formatting); precompute or move off the hot path", obj.Name(), fname)
				return
			case "errors":
				if obj.Name() == "New" {
					report(call.Pos(), "errors.New in hotpath %s allocates; declare the error once at package level", fname)
					return
				}
			}
		}
	}
	// append to a local slice that was not preallocated with a capacity.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				obj := pass.TypesInfo.Uses[target]
				if decl, isLocal := localSlice[obj]; isLocal && !isMakeWithCap(decl) {
					report(call.Pos(), "append to %s in hotpath %s may grow and allocate: preallocate with make(..., 0, cap)", target.Name, fname)
				}
			}
			return
		}
	}
	// Implicit conversions at call boundaries: concrete value passed to
	// an interface parameter.
	sig := calleeSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkIfaceConversion(pass, report, fname, pt, arg)
	}
}

func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkIfaceConversion flags dst := src where dst is an interface and
// src's concrete type does not fit the interface data word — the
// conversion heap-allocates a box.
func checkIfaceConversion(pass *analysis.Pass, report func(token.Pos, string, ...any), fname string, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if st == types.Typ[types.UntypedNil] {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // already boxed or pointer-shaped: fits the data word
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	report(src.Pos(), "conversion of non-pointer %s to interface in hotpath %s heap-allocates a box", types.TypeString(st, types.RelativeTo(pass.Pkg)), fname)
}

// localSliceDecls maps slice variables declared inside fd to the
// make(...) call that created them (nil when declared without make).
func localSliceDecls(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]*ast.CallExpr {
	decls := make(map[types.Object]*ast.CallExpr)
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		var mk *ast.CallExpr
		if rhs != nil {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" {
					if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); isBuiltin {
						mk = call
					}
				} else {
					return // value from another call: assume caller sized it
				}
			}
		}
		decls[obj] = mk
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() == ":=" && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				record(id, rhs)
			}
		}
		return true
	})
	return decls
}

// isMakeWithCap reports whether mk is make([]T, len, cap) — the only
// local-slice construction append may target on the hot path.
func isMakeWithCap(mk *ast.CallExpr) bool {
	return mk != nil && len(mk.Args) == 3
}
