// Package lint is wclint's analyzer suite: four go/analysis-style
// checkers that turn the platform's load-bearing conventions — the
// byte-identical determinism contract, the zero-alloc hot path, the
// one-retry-policy rule, and the declared lock order — from review lore
// into build failures. See docs/STATIC_ANALYSIS.md for the contracts,
// the //wclint annotations, and how to justify an escape hatch.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"waycache/internal/lint/analysis"
)

// Directives recognized in comments. All share the //wclint: prefix so
// they survive gofmt and grep alike:
//
//	//wclint:deterministic            package opts into the determinism contract
//	//wclint:hotpath                  function must be zero-alloc in steady state
//	//wclint:retryclient              package's outbound HTTP is contract-bearing
//	//wclint:retry-core               function IS the sanctioned transport funnel
//	//wclint:lockrank N               on a mutex field: its rank in the lock order
//	//wclint:nondeterministic-ok WHY  suppress one determinism finding
//	//wclint:alloc-ok WHY             suppress one hotpath/escape finding
//	//wclint:retry-ok WHY             suppress one retryhygiene finding
//	//wclint:lockorder-ok WHY         suppress one lockorder finding
//
// The *-ok hatches demand a reason: a hatch with nothing after the
// directive name is itself reported.
const directivePrefix = "//wclint:"

// parseDirective splits a comment into directive name and trailing
// argument text ("" when the comment is not a wclint directive).
func parseDirective(c *ast.Comment) (name, arg string, ok bool) {
	rest, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return "", "", false
	}
	name, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(arg), name != ""
}

// commentGroupHasDirective reports whether any comment in g is the named
// directive.
func commentGroupHasDirective(g *ast.CommentGroup, want string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if name, _, ok := parseDirective(c); ok && name == want {
			return true
		}
	}
	return false
}

// pkgHasDirective reports whether any file-level comment in the package
// carries the named directive (conventionally placed on or near the
// package clause).
func pkgHasDirective(pass *analysis.Pass, want string) bool {
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			if commentGroupHasDirective(g, want) {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether fd's doc comment carries the named
// directive.
func funcHasDirective(fd *ast.FuncDecl, want string) bool {
	return commentGroupHasDirective(fd.Doc, want)
}

// hatches indexes every *-ok escape-hatch comment in the package by file
// and line, so an analyzer can ask "is this finding suppressed?" in
// O(1). A hatch suppresses findings on its own line and on the line
// directly below it (a hatch comment on its own line covers the next
// statement).
type hatches struct {
	pass     *analysis.Pass
	kind     string // directive name, e.g. "nondeterministic-ok"
	byLine   map[string]map[int]*hatchEntry
	reported map[*hatchEntry]bool
}

type hatchEntry struct {
	pos    token.Pos
	reason string
}

// newHatches indexes the kind-ok hatches of every file in the pass.
func newHatches(pass *analysis.Pass, kind string) *hatches {
	h := &hatches{
		pass:     pass,
		kind:     kind + "-ok",
		byLine:   make(map[string]map[int]*hatchEntry),
		reported: make(map[*hatchEntry]bool),
	}
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				name, arg, ok := parseDirective(c)
				if !ok || name != h.kind {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := h.byLine[p.Filename]
				if m == nil {
					m = make(map[int]*hatchEntry)
					h.byLine[p.Filename] = m
				}
				m[p.Line] = &hatchEntry{pos: c.Pos(), reason: arg}
			}
		}
	}
	return h
}

// suppressed reports whether a finding at pos is covered by a hatch. A
// hatch that carries no reason does not suppress — it is reported once
// as its own finding, so the escape route always documents why.
func (h *hatches) suppressed(pos token.Pos) bool {
	p := h.pass.Fset.Position(pos)
	m := h.byLine[p.Filename]
	if m == nil {
		return false
	}
	e := m[p.Line]
	if e == nil {
		e = m[p.Line-1]
	}
	if e == nil {
		return false
	}
	if e.reason == "" {
		if !h.reported[e] {
			h.reported[e] = true
			h.pass.Reportf(e.pos, "//wclint:%s needs a reason: say why this is safe", h.kind)
		}
		return false
	}
	return true
}
