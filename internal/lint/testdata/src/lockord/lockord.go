// Package lockord is a wclint fixture: positive, negative, and
// escape-hatch cases for the lockorder analyzer. The struct below
// declares the lock-order table with //wclint:lockrank directives.
package lockord

import "sync"

type server struct {
	mu    sync.Mutex //wclint:lockrank 10
	jobMu sync.Mutex //wclint:lockrank 20
	dbMu  sync.Mutex //wclint:lockrank 30

	//wclint:lockrank 40
	count int // want `not a sync\.Mutex`
}

func (s *server) inverted() {
	s.jobMu.Lock()
	s.mu.Lock() // want `server\.mu \(rank 10\) acquired while server\.jobMu \(rank 20\) is held`
	s.mu.Unlock()
	s.jobMu.Unlock()
}

func (s *server) reacquire() {
	s.mu.Lock()
	s.mu.Lock() // want `server\.mu acquired while already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

// ordered acquires strictly increasing ranks: no findings.
func (s *server) ordered() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.dbMu.Lock()
	s.dbMu.Unlock()
}

// unlockEndsRegion: a same-level Unlock releases the held region, so
// the later low-rank acquisition is legal.
func (s *server) unlockEndsRegion() {
	s.dbMu.Lock()
	s.dbMu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *server) lockLow() {
	s.mu.Lock()
	s.mu.Unlock()
}

// transitive: the helper's acquisition is found through the
// same-package call-graph summary.
func (s *server) transitive() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.lockLow() // want `lockLow \(possibly via callees\) acquires server\.mu \(rank 10\) while server\.jobMu \(rank 20\) is held`
}

// viaHelper: calling a helper that re-takes an already-held lock is the
// classic hidden self-deadlock.
func (s *server) viaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockLow() // want `lockLow \(possibly via callees\) re-acquires server\.mu`
}

// hatched shows the sanctioned escape: a reasoned hatch.
func (s *server) hatched() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	//wclint:lockorder-ok callers serialize on dbMu before entering; see design note in doc.go
	s.mu.Lock()
	s.mu.Unlock()
}

// emptyHatch shows a hatch without a reason: it suppresses nothing and
// is itself reported.
func (s *server) emptyHatch() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	/* want `needs a reason` */ //wclint:lockorder-ok
	s.mu.Lock()                 // want `server\.mu \(rank 10\) acquired while server\.jobMu \(rank 20\) is held`
	s.mu.Unlock()
}

// branchCopy: an unlock inside one branch must not release the
// fallthrough path, but the in-order acquisition after the branch is
// still legal.
func (s *server) branchCopy(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.jobMu.Lock()
	s.jobMu.Unlock()
	s.mu.Unlock()
}

// literalEscapes: a function literal's body runs later, not under the
// locks held at its creation site: no findings.
func (s *server) literalEscapes() func() {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return func() {
		s.mu.Lock()
		s.mu.Unlock()
	}
}
