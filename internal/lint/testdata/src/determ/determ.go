// Package determ is a wclint fixture: positive, negative, and
// escape-hatch cases for the determinism analyzer. The package opts
// into the contract with the directive below instead of appearing in
// the built-in package list.
//
//wclint:deterministic
package determ

import (
	"fmt"
	"io"
	mrand "math/rand" // want `use waycache/internal/prng`
	"sort"
	"sync"
	"time"
)

func randomWay(n int) int {
	return mrand.Intn(n)
}

func wallClock() int64 {
	return time.Now().Unix() // want `time\.Now in deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic package`
}

// hatchedClock shows the sanctioned escape: a reasoned hatch on the
// line above the read suppresses the finding.
func hatchedClock() int64 {
	//wclint:nondeterministic-ok throughput display on stderr only, never reaches records
	t := time.Now()
	return t.Unix()
}

// emptyHatch shows a hatch without a reason: it suppresses nothing and
// is itself reported.
func emptyHatch() int64 {
	/* want `needs a reason` */ //wclint:nondeterministic-ok
	t := time.Now()             // want `time\.Now in deterministic package`
	return t.Unix()
}

func orderedSink(m map[string]int, w io.Writer) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `ordered sink Fprintf`
	}
}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration`
	}
	return keys
}

// appendSorted is the deterministic collect-then-sort idiom: no finding.
func appendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sendOrder(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

func pickAny(m map[string]int) string {
	for k := range m {
		return k // want `map-iteration-dependent`
	}
	return ""
}

func syncMapRange(m *sync.Map) int {
	n := 0
	m.Range(func(k, v any) bool { // want `sync\.Map\.Range iterates in unspecified order`
		n++
		return true
	})
	return n
}

// sliceRange iterates a slice, which is ordered: no finding.
func sliceRange(s []string, w io.Writer) {
	for _, v := range s {
		fmt.Fprintln(w, v)
	}
}
