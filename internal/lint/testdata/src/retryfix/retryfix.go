// Package retryfix is a wclint fixture: positive, negative, and
// escape-hatch cases for the retryhygiene analyzer. The package opts in
// with the directive below instead of appearing in the built-in list.
//
//wclint:retryclient
package retryfix

import (
	"context"
	"net/http"
	"time"
)

var client = &http.Client{}

func convenience(url string) {
	resp, _ := http.Get(url) // want `http\.Get hard-wires context\.Background`
	_ = resp
}

func bareRequest(url string) {
	req, _ := http.NewRequest("GET", url, nil) // want `http\.NewRequest carries context\.Background`
	_ = req
}

func bareContext(url string) {
	req, _ := http.NewRequestWithContext(context.Background(), "GET", url, nil) // want `no deadline`
	_ = req
}

func nakedDo(req *http.Request) {
	resp, _ := client.Do(req) // want `outside the retry policy`
	_ = resp
}

// do is this fixture's sanctioned transport funnel.
//
//wclint:retry-core
func do(fn func(attempt int) error) error {
	return fn(0)
}

// blessed sends inside a retry-core function: allowed.
//
//wclint:retry-core
func blessed(req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// throughFunnel sends inside a literal passed directly to the funnel:
// allowed.
func throughFunnel(req *http.Request) error {
	return do(func(attempt int) error {
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		return resp.Body.Close()
	})
}

// watchdog shows the sanctioned escape: a reasoned hatch.
func watchdog(req *http.Request) {
	//wclint:retry-ok SSE stream; lifetime is governed by an inactivity watchdog, not a deadline
	resp, _ := client.Do(req)
	_ = resp
}

// emptyHatch shows a hatch without a reason: it suppresses nothing and
// is itself reported.
func emptyHatch(req *http.Request) {
	/* want `needs a reason` */ //wclint:retry-ok
	resp, _ := client.Do(req)   // want `outside the retry policy`
	_ = resp
}

// deadline builds the request the sanctioned way: context.Background is
// fine as the PARENT of a timeout-deriving context.
func deadline(url string) (*http.Request, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	return req, cancel, err
}
