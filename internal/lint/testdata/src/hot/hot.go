// Package hot is a wclint fixture: positive, negative, and escape-hatch
// cases for the hotpath analyzer. Only functions annotated
// //wclint:hotpath are checked.
package hot

import (
	"errors"
	"fmt"
)

func trace()            {}
func sink(v any)        {}
func sum(vs ...any) int { return len(vs) }

// load collects every construct the zero-alloc contract forbids.
//
//wclint:hotpath
func load(vals []int) int {
	defer trace()                // want `defer in hotpath load`
	go trace()                   // want `go statement in hotpath load`
	f := func() int { return 1 } // want `closure in hotpath load`
	_ = f
	s := fmt.Sprintf("%d", len(vals)) // want `fmt\.Sprintf in hotpath load`
	_ = s
	err := errors.New("hot") // want `errors\.New in hotpath load`
	_ = err
	var out []int
	for _, v := range vals {
		out = append(out, v) // want `append to out in hotpath load`
	}
	sink(len(vals)) // want `conversion of non-pointer int to interface in hotpath load`
	return len(out)
}

//wclint:hotpath
func boxedReturn(v int) any {
	return v // want `conversion of non-pointer int to interface in hotpath boxedReturn`
}

//wclint:hotpath
func boxedAssign(v int) {
	var x any
	x = v // want `conversion of non-pointer int to interface in hotpath boxedAssign`
	_ = x
}

//wclint:hotpath
func boxedVariadic(a, b int) int {
	return sum(a, b) // want `conversion of non-pointer int to interface` `conversion of non-pointer int to interface`
}

// loadOK is the clean shape of the same work: preallocated append,
// pointer-shaped interface values, panic arguments exempt (a taken
// panic ends the run, so its formatting is cold by definition).
//
//wclint:hotpath
func loadOK(vals []int) int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
	}
	if len(out) > cap(out) {
		panic(fmt.Sprintf("impossible: %d > %d", len(out), cap(out)))
	}
	sink(&out)
	return len(out)
}

// loadHatched shows the sanctioned escape.
//
//wclint:hotpath
func loadHatched(vals []int) {
	//wclint:alloc-ok cold configuration edge, measured zero allocs in steady state
	sink(len(vals))
}

// loadEmptyHatch shows a hatch without a reason: it suppresses nothing
// and is itself reported.
//
//wclint:hotpath
func loadEmptyHatch(vals []int) {
	/* want `needs a reason` */ //wclint:alloc-ok
	sink(len(vals))             // want `conversion of non-pointer int to interface`
}

// cold is unannotated: the same constructs draw no findings.
func cold(vals []int) string {
	defer trace()
	return fmt.Sprint(len(vals))
}
