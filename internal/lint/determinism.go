package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"waycache/internal/lint/analysis"
)

// Determinism enforces the byte-identical replay contract in
// contract-bearing packages: no wall-clock reads, no math/rand (the
// seeded waycache/internal/prng is the sanctioned source), and no map
// iteration whose order can reach an encoder, writer, hash, channel or
// returned value. A package is covered when it carries a
// //wclint:deterministic file comment or appears in the built-in
// contract list; _test.go files are exempt. Findings are suppressed by
// //wclint:nondeterministic-ok <reason> on or above the offending line.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, math/rand and order-dependent map iteration in contract-bearing packages",
	Run:  runDeterminism,
}

// deterministicPkgs is the safety net behind the //wclint:deterministic
// directive: the packages whose outputs the golden fixtures pin stay
// covered even if a refactor drops the comment.
var deterministicPkgs = map[string]bool{
	"waycache/internal/core":     true,
	"waycache/internal/cache":    true,
	"waycache/internal/pipeline": true,
	"waycache/internal/access":   true,
	"waycache/internal/trace":    true,
	"waycache/internal/resultdb": true,
	"waycache/internal/sweep":    true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !deterministicPkgs[pass.Pkg.Path()] && !pkgHasDirective(pass, "deterministic") {
		return nil, nil
	}
	h := newHatches(pass, "nondeterministic")
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == "math/rand" || path == "math/rand/v2") && !h.suppressed(imp.Pos()) {
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package: use waycache/internal/prng (prng.FromSeed) so streams are seeded and replayable", path)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminismFunc(pass, h, fd)
		}
	}
	return nil, nil
}

func checkDeterminismFunc(pass *analysis.Pass, h *hatches, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, fn := range [...]string{"Now", "Since", "Until"} {
				if stdCall(pass, n, "time", fn) && !h.suppressed(n.Pos()) {
					pass.Reportf(n.Pos(),
						"time.%s in deterministic package: results must not depend on the wall clock", fn)
				}
			}
			if isSyncMapRange(pass, n) && !h.suppressed(n.Pos()) {
				pass.Reportf(n.Pos(),
					"sync.Map.Range iterates in unspecified order; collect and sort keys before anything order-sensitive")
			}
		case *ast.RangeStmt:
			checkMapRange(pass, h, fd, n)
		}
		return true
	})
}

func isSyncMapRange(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	return t != nil && isNamed(t, "sync", "Map")
}

// checkMapRange flags a range over a map whose iteration order can
// escape: the body appends to a slice declared outside the loop (and
// the slice is not subsequently sorted in the same function), calls an
// ordered sink (Write*/Encode*/Print*/Fprint*/Sum*/Marshal*), sends on
// a channel, or returns a value derived from the iteration variables.
func checkMapRange(pass *analysis.Pass, h *hatches, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	iterVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !h.suppressed(rng.Pos()) && !h.suppressed(pos) {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := sinkCallName(n); ok {
				report(n.Pos(), "map iteration order reaches ordered sink %s; iterate sorted keys instead", name)
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if target, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					obj := pass.TypesInfo.Uses[target]
					if obj != nil && !posWithin(obj.Pos(), rng) && !sortedLater(pass, fd, rng, obj) {
						report(n.Pos(), "append to %s inside map iteration: element order follows map order; sort afterwards or iterate sorted keys", target.Name)
					}
				}
			}
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside map iteration: receive order follows map order")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				used := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && iterVars[pass.TypesInfo.Uses[id]] {
						used = true
					}
					return !used
				})
				if used {
					report(n.Pos(), "return of a map-iteration-dependent value: which entry is picked varies run to run")
					break
				}
			}
		}
		return true
	})
}

func posWithin(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}

// sinkCallName reports calls whose name marks an ordered data sink.
func sinkCallName(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	for _, prefix := range [...]string{"Write", "Encode", "Print", "Fprint", "Sum", "Marshal", "Hash"} {
		if strings.HasPrefix(name, prefix) {
			return name, true
		}
	}
	return "", false
}

// sortedLater reports whether obj is passed to a sort.* or slices.Sort*
// call somewhere after rng in fd's body — the collect-then-sort idiom,
// which is deterministic.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pass.TypesInfo.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
