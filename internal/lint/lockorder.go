package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"waycache/internal/lint/analysis"
)

// LockOrder enforces a declared lock hierarchy. A mutex field opts in
// by annotating its declaration with //wclint:lockrank N; the contract
// is that locks are only ever acquired in strictly increasing rank
// order, so no cycle — and no deadlock — is possible between ranked
// locks. The analyzer tracks Lock/RLock acquisitions through each
// function body (a held region ends at a same-level Unlock; a deferred
// Unlock holds to the end) and reports:
//
//   - a direct acquisition of rank <= a held lock's rank;
//   - a call, while holding rank r, to a same-package function that
//     (transitively) acquires rank <= r;
//   - re-acquiring a lock already held (sync.Mutex self-deadlocks).
//
// Analysis is per-package: calls that cross packages are checked only
// against the callee's exported summary-free body when it is in the
// same package, which matches how the ranked locks here are actually
// nested (Server.mu -> job.mu, Store.mu, resultdb.DB.mu). Suppress
// with //wclint:lockorder-ok <reason>.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "acquire //wclint:lockrank-annotated locks in strictly increasing rank order",
	Run:  runLockOrder,
}

// rankedLock is one annotated mutex field.
type rankedLock struct {
	obj  *types.Var
	rank int
	name string // "Server.mu" for messages
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	ranks := collectLockRanks(pass)
	if len(ranks) == 0 {
		return nil, nil
	}
	h := newHatches(pass, "lockorder")
	funcs := declaredFuncs(pass)

	// Direct-acquisition summary per function, then a transitive closure
	// over same-package calls so one level of helper indirection does not
	// hide an inversion.
	direct := make(map[*ast.FuncDecl]map[*types.Var]bool)
	calls := make(map[*ast.FuncDecl]map[*ast.FuncDecl]bool)
	for _, fd := range funcs {
		if fd.Body == nil {
			continue
		}
		acq := make(map[*types.Var]bool)
		callees := make(map[*ast.FuncDecl]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lk, kind := lockCall(pass, ranks, call); lk != nil && (kind == "Lock" || kind == "RLock") {
				acq[lk.obj] = true
			}
			if callee, ok := funcs[calleeObject(pass, call)]; ok {
				callees[callee] = true
			}
			return true
		})
		direct[fd] = acq
		calls[fd] = callees
	}
	summary := transitiveAcquires(direct, calls)

	for _, fd := range sortedFuncs(funcs) {
		if fd.Body == nil || pass.InTestFile(fd.Pos()) {
			continue
		}
		c := &lockChecker{pass: pass, h: h, ranks: ranks, funcs: funcs, summary: summary}
		c.scanBlock(fd.Body.List, nil)
	}
	return nil, nil
}

// collectLockRanks finds sync.Mutex / sync.RWMutex struct fields whose
// declaration carries //wclint:lockrank N.
func collectLockRanks(pass *analysis.Pass) map[*types.Var]*rankedLock {
	ranks := make(map[*types.Var]*rankedLock)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rank, ok := lockrankDirective(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					obj, _ := pass.TypesInfo.Defs[name].(*types.Var)
					if obj == nil {
						continue
					}
					if !isNamed(obj.Type(), "sync", "Mutex") && !isNamed(obj.Type(), "sync", "RWMutex") {
						pass.Reportf(field.Pos(), "//wclint:lockrank on %s.%s, which is not a sync.Mutex or sync.RWMutex", ts.Name.Name, name.Name)
						continue
					}
					ranks[obj] = &rankedLock{
						obj:  obj,
						rank: rank,
						name: fmt.Sprintf("%s.%s", ts.Name.Name, name.Name),
					}
				}
			}
			return true
		})
	}
	return ranks
}

func lockrankDirective(field *ast.Field) (int, bool) {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if name, arg, ok := parseDirective(c); ok && name == "lockrank" {
				if n, err := strconv.Atoi(arg); err == nil {
					return n, true
				}
			}
		}
	}
	return 0, false
}

// lockCall resolves call as <expr>.<ranked field>.Lock/RLock/Unlock/RUnlock.
func lockCall(pass *analysis.Pass, ranks map[*types.Var]*rankedLock, call *ast.CallExpr) (*rankedLock, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	kind := sel.Sel.Name
	switch kind {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	obj, _ := pass.TypesInfo.Uses[recv.Sel].(*types.Var)
	if obj == nil {
		return nil, ""
	}
	lk, ok := ranks[obj]
	if !ok {
		return nil, ""
	}
	return lk, kind
}

// transitiveAcquires closes the direct-acquisition sets over the
// same-package call graph.
func transitiveAcquires(direct map[*ast.FuncDecl]map[*types.Var]bool, calls map[*ast.FuncDecl]map[*ast.FuncDecl]bool) map[*ast.FuncDecl]map[*types.Var]bool {
	out := make(map[*ast.FuncDecl]map[*types.Var]bool, len(direct))
	for fd, acq := range direct {
		s := make(map[*types.Var]bool, len(acq))
		for v := range acq {
			s[v] = true
		}
		out[fd] = s
	}
	for changed := true; changed; {
		changed = false
		for fd, callees := range calls {
			for callee := range callees {
				for v := range out[callee] {
					if !out[fd][v] {
						out[fd][v] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

func sortedFuncs(funcs map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(funcs))
	for _, fd := range funcs {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// lockChecker walks one function's statements tracking which ranked
// locks are held.
type lockChecker struct {
	pass    *analysis.Pass
	h       *hatches
	ranks   map[*types.Var]*rankedLock
	funcs   map[types.Object]*ast.FuncDecl
	summary map[*ast.FuncDecl]map[*types.Var]bool
}

// scanBlock walks stmts in order with the locks in held on entry. A
// same-level Unlock of a held lock ends its region; nested blocks see a
// copy of the held set (an unlock inside a conditional branch does not
// release the fallthrough path).
func (c *lockChecker) scanBlock(stmts []ast.Stmt, held []*rankedLock) {
	held = append([]*rankedLock(nil), held...)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if lk, kind := lockCall(c.pass, c.ranks, call); lk != nil {
					switch kind {
					case "Lock", "RLock":
						c.checkAcquire(call.Pos(), lk, held)
						held = append(held, lk)
					case "Unlock", "RUnlock":
						held = removeLock(held, lk)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// A deferred Unlock releases at return: the lock is held for
			// the rest of the region, which is what held already models.
			// Deferred calls into other functions run with whatever is
			// held at return; checking them against the current held set
			// is the conservative approximation.
			if lk, kind := lockCall(c.pass, c.ranks, s.Call); lk != nil && (kind == "Unlock" || kind == "RUnlock") {
				continue
			}
		}
		c.checkNested(stmt, held)
	}
}

// checkNested checks calls inside one statement (and recurses into its
// blocks) against the currently held locks.
func (c *lockChecker) checkNested(stmt ast.Stmt, held []*rankedLock) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		c.scanBlock(s.List, held)
		return
	case *ast.IfStmt:
		c.checkExprCalls(s.Cond, held)
		if s.Init != nil {
			c.checkNested(s.Init, held)
		}
		c.scanBlock(s.Body.List, held)
		if s.Else != nil {
			c.checkNested(s.Else, held)
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			c.checkNested(s.Init, held)
		}
		c.checkExprCalls(s.Cond, held)
		c.scanBlock(s.Body.List, held)
		return
	case *ast.RangeStmt:
		c.checkExprCalls(s.X, held)
		c.scanBlock(s.Body.List, held)
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.checkNested(s.Init, held)
		}
		c.checkExprCalls(s.Tag, held)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.scanBlock(cl.Body, held)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.scanBlock(cl.Body, held)
			}
		}
		return
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.scanBlock(cl.Body, held)
			}
		}
		return
	case *ast.LabeledStmt:
		c.checkNested(s.Stmt, held)
		return
	}
	// Leaf statements (assignments, returns, sends, expression
	// statements that were not bare lock calls): check every call within.
	c.checkExprCalls(stmt, held)
}

// checkExprCalls inspects any node for calls and acquisitions while
// held locks are in force.
func (c *lockChecker) checkExprCalls(n ast.Node, held []*rankedLock) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // a literal's body runs later, not under these locks
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lk, kind := lockCall(c.pass, c.ranks, call); lk != nil {
			if kind == "Lock" || kind == "RLock" {
				c.checkAcquire(call.Pos(), lk, held)
			}
			return true
		}
		c.checkCall(call, held)
		return true
	})
}

// checkCall verifies a call to a same-package function against the held
// locks using the callee's transitive acquisition summary.
func (c *lockChecker) checkCall(call *ast.CallExpr, held []*rankedLock) {
	callee, ok := c.funcs[calleeObject(c.pass, call)]
	if !ok {
		return
	}
	for v := range c.summary[callee] {
		lk := c.ranks[v]
		for _, hl := range held {
			if lk.obj == hl.obj {
				if !c.h.suppressed(call.Pos()) {
					c.pass.Reportf(call.Pos(),
						"%s (possibly via callees) re-acquires %s while it is already held: deadlock", calleeName(call, callee), lk.name)
				}
			} else if lk.rank <= hl.rank {
				if !c.h.suppressed(call.Pos()) {
					c.pass.Reportf(call.Pos(),
						"%s (possibly via callees) acquires %s (rank %d) while %s (rank %d) is held; declared order requires strictly increasing ranks",
						calleeName(call, callee), lk.name, lk.rank, hl.name, hl.rank)
				}
			}
		}
	}
}

func (c *lockChecker) checkAcquire(pos token.Pos, lk *rankedLock, held []*rankedLock) {
	for _, hl := range held {
		if hl.obj == lk.obj {
			if !c.h.suppressed(pos) {
				c.pass.Reportf(pos, "%s acquired while already held: sync mutexes are not reentrant, this deadlocks", lk.name)
			}
		} else if lk.rank <= hl.rank {
			if !c.h.suppressed(pos) {
				c.pass.Reportf(pos, "%s (rank %d) acquired while %s (rank %d) is held; declared order requires strictly increasing ranks",
					lk.name, lk.rank, hl.name, hl.rank)
			}
		}
	}
}

func calleeName(call *ast.CallExpr, fd *ast.FuncDecl) string {
	return fd.Name.Name
}

func removeLock(held []*rankedLock, lk *rankedLock) []*rankedLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].obj == lk.obj {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
