// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that wclint's analyzers are
// written against. The module deliberately has no third-party
// dependencies, so rather than importing x/tools this package provides
// the same shape — Analyzer, Pass, Diagnostic — plus the two drivers the
// suite needs: the `go vet -vettool` unitchecker protocol
// (unitchecker.go) and a standalone source-mode loader (load.go).
//
// Analyzers written here port to the real x/tools API mechanically: the
// field and method names match, only fact support and sub-analyzer
// requirements are omitted (no wclint analyzer uses either).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Contract
// analyzers skip test files: tests legitimately use wall clocks,
// unordered maps and ad-hoc HTTP requests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// NewInfo returns a types.Info with every map allocated, as analyzers
// expect from a driver.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
