package analysis

// Standalone (non-vettool) loading: parse and type-check one package
// directly from source, resolving imports with the stdlib source
// importer. This is the path `wclint ./...` and the analysistest fixture
// runner use; the vet protocol in unitchecker.go is the fast path that
// reads export data instead.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one loaded, type-checked package ready to analyze.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadDir loads the non-test package rooted at dir under import path
// path. All imports — standard library and intra-module — are resolved
// from source via the shared fset, so no pre-compiled export data is
// required.
func LoadDir(fset *token.FileSet, dir, path string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := NewInfo()
	pkg, err := tconf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// RunAnalyzers applies each analyzer to u and returns the diagnostics in
// position order.
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			Report: func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Posn:     u.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.Pkg.Path(), err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Posn, out[j].Posn
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}

// Finding is a resolved diagnostic from a standalone run.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// String formats the finding as "file:line:col: message [analyzer]",
// the same shape vet prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Posn, f.Message, f.Analyzer)
}
