package analysis

// The `go vet -vettool` protocol. cmd/go invokes the tool three ways:
//
//	wclint -V=full            print a version line (cache key for vet results)
//	wclint -flags             print a JSON description of supported flags
//	wclint [-json] <file.cfg> analyze one package described by the cfg file
//
// The cfg file is JSON written by cmd/go: source file lists, the import
// map, and paths to the export data of every dependency (already
// compiled by the go command). Type-checking therefore needs no network,
// no GOPATH walking and no source for dependencies — the gc importer
// reads export data through the lookup hook. This mirrors
// golang.org/x/tools/go/analysis/unitchecker, minus facts: wclint's
// analyzers are all intra-package, so dependency runs only need to
// produce the (empty) .vetx file cmd/go expects.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// vetConfig is the package description cmd/go writes for -vettool
// invocations. Field names are fixed by cmd/go/internal/work.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetInvocation reports whether args look like a cmd/go vettool
// invocation rather than a direct command-line run.
func IsVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// VetMain implements the vettool protocol for the given analyzers and
// returns the process exit code: 0 clean, 1 driver/typecheck error,
// 2 diagnostics reported (matching x/tools unitchecker).
func VetMain(args []string, analyzers []*Analyzer) int {
	jsonOut := false
	cfgFile := ""
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			fmt.Println(versionLine())
			return 0
		case a == "-flags":
			fmt.Println("[]")
			return 0
		case a == "-json":
			jsonOut = true
		case strings.HasSuffix(a, ".cfg"):
			cfgFile = a
		}
	}
	if cfgFile == "" {
		fmt.Fprintf(os.Stderr, "wclint: no .cfg argument in vet invocation %q\n", args)
		return 1
	}
	diags, err := runVetUnit(cfgFile, analyzers, jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wclint: %v\n", err)
		return 1
	}
	if len(diags) > 0 && !jsonOut {
		return 2
	}
	return 0
}

// versionLine identifies this build to cmd/go's vet result cache: it
// hashes the executable so a rebuilt wclint invalidates cached results.
func versionLine() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("wclint version devel buildID=%x", h.Sum(nil)[:12])
}

type vetDiag struct {
	analyzer string
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

func runVetUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) ([]vetDiag, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// Facts output is mandatory even when empty: cmd/go records the file
	// as the unit's product and feeds it to dependents via PackageVetx.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("wclint-nofacts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	// Dependency runs exist only to produce facts; wclint has none, so
	// skip the parse and typecheck entirely.
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})
	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, goarch()),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	byAnalyzer := make(map[string][]vetDiag)
	var all []vetDiag
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				vd := vetDiag{
					analyzer: a.Name,
					Posn:     fset.Position(d.Pos).String(),
					Message:  d.Message,
				}
				all = append(all, vd)
				byAnalyzer[a.Name] = append(byAnalyzer[a.Name], vd)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Posn < all[j].Posn })

	if jsonOut {
		// cmd/go -json shape: {"<pkg>": {"<analyzer>": [diag...]}}.
		out := map[string]map[string][]vetDiag{cfg.ImportPath: {}}
		for name, ds := range byAnalyzer {
			out[cfg.ImportPath][name] = ds
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
	} else {
		for _, d := range all {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Posn, d.Message, d.analyzer)
		}
	}
	return all, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
