package lint_test

import (
	"testing"

	"waycache/internal/lint"
	"waycache/internal/lint/analysistest"
)

func TestRetryHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", lint.RetryHygiene, "retryfix")
}
