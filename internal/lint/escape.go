package lint

// The hotpath analyzer reasons about syntax; the compiler's escape
// analysis is ground truth. EscapeCheck runs both and reports where
// they disagree: any `escapes to heap` / `moved to heap` diagnostic
// from -gcflags=-m=1 that lands inside a //wclint:hotpath function (and
// is not excused by //wclint:alloc-ok) fails the check. The Go build
// cache replays compiler diagnostics, so repeated runs are cheap and a
// cached build still produces the -m output.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// funcSpan is one annotated hot-path function's extent.
type funcSpan struct {
	name       string
	file       string // absolute path
	start, end int    // line range, inclusive
	allocOK    map[int]bool
	coldLines  map[int]bool // lines inside panic(...) calls: cold by definition
}

// escDiagRE matches compiler -m output: "file.go:12:34: x escapes to heap".
var escDiagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// EscapeCheck builds patterns with -gcflags=-m=1 and cross-checks the
// escape diagnostics against //wclint:hotpath annotations. It returns
// human-readable findings (empty means the annotation list and the
// compiler agree) and logs progress to logf.
func EscapeCheck(patterns []string, logf func(string, ...any)) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := goListDirs(patterns)
	if err != nil {
		return nil, err
	}
	spans, err := hotpathSpans(dirs)
	if err != nil {
		return nil, err
	}
	logf("wclint escape: %d hotpath functions across %d packages", len(spans), len(dirs))
	if len(spans) == 0 {
		return nil, nil
	}

	args := append([]string{"build", "-gcflags=-m=1"}, patterns...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out.String())
	}

	var findings []string
	for _, line := range strings.Split(out.String(), "\n") {
		m := escDiagRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file, _ := filepath.Abs(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		for _, sp := range spans {
			if sp.file != file || lineNo < sp.start || lineNo > sp.end {
				continue
			}
			if sp.allocOK[lineNo] || sp.allocOK[lineNo-1] || sp.coldLines[lineNo] {
				continue
			}
			findings = append(findings,
				fmt.Sprintf("%s:%d: compiler: %s — inside //wclint:hotpath %s; fix the escape or annotate //wclint:alloc-ok <reason>",
					m[1], lineNo, m[4], sp.name))
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// goListDirs resolves package patterns to source directories.
func goListDirs(patterns []string) ([]string, error) {
	args := append([]string{"list", "-f", "{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var dirs []string
	for _, d := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if d != "" {
			dirs = append(dirs, d)
		}
	}
	return dirs, nil
}

// hotpathSpans parses every non-test file in dirs (syntax only — no
// type information is needed to read annotations) and records the line
// extents of //wclint:hotpath functions plus their //wclint:alloc-ok
// lines.
func hotpathSpans(dirs []string) ([]funcSpan, error) {
	var spans []funcSpan
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			allocOK := make(map[int]bool)
			for _, g := range f.Comments {
				for _, c := range g.List {
					if dname, _, ok := parseDirective(c); ok && dname == "alloc-ok" {
						allocOK[fset.Position(c.Pos()).Line] = true
					}
				}
			}
			abs, _ := filepath.Abs(path)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
					continue
				}
				cold := make(map[int]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						for l := fset.Position(call.Pos()).Line; l <= fset.Position(call.End()).Line; l++ {
							cold[l] = true
						}
						return false
					}
					return true
				})
				spans = append(spans, funcSpan{
					name:      fd.Name.Name,
					file:      abs,
					start:     fset.Position(fd.Pos()).Line,
					end:       fset.Position(fd.End()).Line,
					allocOK:   allocOK,
					coldLines: cold,
				})
			}
		}
	}
	return spans, nil
}
