package lint

import "waycache/internal/lint/analysis"

// Analyzers returns the full wclint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Determinism, Hotpath, RetryHygiene, LockOrder}
}
