package lint

import (
	"go/ast"
	"go/types"

	"waycache/internal/lint/analysis"
)

// RetryHygiene enforces the one-retry-policy rule on the coordinator's
// outbound HTTP: every remote call must flow through the
// coord.RetryPolicy funnel (functions annotated //wclint:retry-core)
// and must carry a context that can expire. In covered packages
// (//wclint:retryclient or the built-in list) it forbids:
//
//   - net/http convenience calls (http.Get, http.Post, http.Head,
//     http.PostForm) and http.NewRequest — both hard-wire
//     context.Background(), so a dead host hangs the caller forever;
//   - (*http.Client).Do/Get/Post/PostForm/Head outside a retry-core
//     function or a function literal passed directly to one — a bare
//     Do is a request that neither retries transport faults nor
//     classifies failures;
//   - http.NewRequestWithContext(context.Background()/context.TODO(),
//     ...) — a context with no deadline upstream is an unbounded wait.
//
// Suppress with //wclint:retry-ok <reason> (e.g. the SSE stream, whose
// lifetime is governed by an inactivity watchdog instead).
var RetryHygiene = &analysis.Analyzer{
	Name: "retryhygiene",
	Doc:  "outbound HTTP must flow through the retry policy and carry a deadline",
	Run:  runRetryHygiene,
}

var retryClientPkgs = map[string]bool{
	"waycache/internal/coord":  true,
	"waycache/internal/server": true,
}

func runRetryHygiene(pass *analysis.Pass) (any, error) {
	if !retryClientPkgs[pass.Pkg.Path()] && !pkgHasDirective(pass, "retryclient") {
		return nil, nil
	}
	h := newHatches(pass, "retry")
	retryCore := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && funcHasDirective(fd, "retry-core") {
				retryCore[pass.TypesInfo.Defs[fd.Name]] = true
			}
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRetryFunc(pass, h, retryCore, fd)
		}
	}
	return nil, nil
}

func checkRetryFunc(pass *analysis.Pass, h *hatches, retryCore map[types.Object]bool, fd *ast.FuncDecl) {
	isCore := funcHasDirective(fd, "retry-core")
	// Stack of "am I inside a FuncLit whose call target is retry-core"
	// scopes; ast.Inspect gives no exit hook per node, so track by span.
	type litScope struct {
		lit     *ast.FuncLit
		blessed bool
	}
	var scopes []litScope
	inBlessedScope := func(pos ast.Node) bool {
		for i := len(scopes) - 1; i >= 0; i-- {
			if pos.Pos() >= scopes[i].lit.Pos() && pos.End() <= scopes[i].lit.End() {
				return scopes[i].blessed
			}
		}
		return isCore
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Record function literals passed directly to a retry-core call:
		// their bodies are the sanctioned place for transport calls.
		if retryCore[calleeObject(pass, call)] {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					scopes = append(scopes, litScope{lit: lit, blessed: true})
				}
			}
		}

		for _, fn := range [...]string{"Get", "Post", "PostForm", "Head"} {
			if stdCall(pass, call, "net/http", fn) && !h.suppressed(call.Pos()) {
				pass.Reportf(call.Pos(),
					"http.%s hard-wires context.Background() and bypasses the retry policy; build the request with a deadline context and send it through a //wclint:retry-core funnel", fn)
				return true
			}
		}
		if stdCall(pass, call, "net/http", "NewRequest") && !h.suppressed(call.Pos()) {
			pass.Reportf(call.Pos(),
				"http.NewRequest carries context.Background(); use http.NewRequestWithContext with a deadline-carrying context")
			return true
		}
		if stdCall(pass, call, "net/http", "NewRequestWithContext") && len(call.Args) > 0 {
			if isBareContext(pass, call.Args[0]) && !h.suppressed(call.Pos()) {
				pass.Reportf(call.Args[0].Pos(),
					"request context has no deadline: derive it with context.WithTimeout so a dead host cannot hang this call forever")
			}
		}
		if name, ok := clientTransportCall(pass, call); ok {
			if !inBlessedScope(call) && !h.suppressed(call.Pos()) {
				pass.Reportf(call.Pos(),
					"(*http.Client).%s outside the retry policy: route this request through a //wclint:retry-core funnel so transport faults retry with backoff", name)
			}
		}
		return true
	})
}

// clientTransportCall reports method calls on *net/http.Client that put
// a request on the wire.
func clientTransportCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Do", "Get", "Post", "PostForm", "Head":
	default:
		return "", false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil || !isNamed(t, "net/http", "Client") {
		return "", false
	}
	return sel.Sel.Name, true
}

// isBareContext reports whether expr is a direct context.Background()
// or context.TODO() call.
func isBareContext(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	return stdCall(pass, call, "context", "Background") || stdCall(pass, call, "context", "TODO")
}
