package lint_test

import (
	"testing"

	"waycache/internal/lint"
	"waycache/internal/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Determinism, "determ")
}
