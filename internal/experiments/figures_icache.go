package experiments

import (
	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/stats"
	"waycache/internal/sweep"
)

// Figure10 reproduces "Way-prediction for i-caches": 2-, 4- and 8-way
// i-caches with BTB/RAS/SAWP way prediction, each relative to the parallel
// i-cache of the same associativity, plus the access-source breakdown.
func Figure10(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(sweep.Grid{
		IWays:     []int{2, 4, 8},
		IPolicies: []access.IPolicy{access.IParallel, access.IWayPred},
	})
	t := stats.NewTable("Figure 10: i-cache way-prediction by associativity (relative E-D | perf)",
		"benchmark", "2-way", "4-way", "8-way")
	bd := stats.NewTable("Figure 10 (bottom): 4-way access breakdown",
		"benchmark", "table correct", "BTB/RAS correct", "no prediction", "misprediction", "miss")
	eds := map[int][]float64{}
	var accs []float64
	for _, bench := range r.opts.Benchmarks {
		cells := []string{bench}
		for _, ways := range []int{2, 4, 8} {
			base := r.run(core.Config{Benchmark: bench, IWays: ways})
			res := r.run(core.Config{Benchmark: bench, IWays: ways, IPolicy: access.IWayPred})
			c := core.Compare(base, res)
			cells = append(cells, stats.F3(c.RelICacheED)+" | "+stats.Pct(c.PerfLoss))
			eds[ways] = append(eds[ways], c.RelICacheED)
		}
		t.Add(cells...)

		res4 := r.run(core.Config{Benchmark: bench, IPolicy: access.IWayPred})
		fetches := float64(res4.IStats.Fetches)
		frac := func(c access.IClass) string {
			if fetches == 0 {
				return "0.0%"
			}
			return stats.Pct(float64(res4.IStats.ByClass[c]) / fetches)
		}
		bd.Add(bench, frac(access.IClassTableCorrect), frac(access.IClassBTBCorrect),
			frac(access.IClassNoPred), frac(access.IClassMispred), frac(access.IClassMiss))
		accs = append(accs, res4.IWayAccuracy())
	}
	t.Add("average", stats.F3(stats.Mean(eds[2])), stats.F3(stats.Mean(eds[4])), stats.F3(stats.Mean(eds[8])))
	return &Report{
		Name:   "fig10",
		Tables: []*stats.Table{t, bd},
		Summary: map[string]float64{
			"ed2": stats.Mean(eds[2]), "ed4": stats.Mean(eds[4]), "ed8": stats.Mean(eds[8]),
			"avgAccuracy": stats.Mean(accs),
		},
	}
}

// Figure11 reproduces "Overall processor energy": selective-DM +
// way-prediction d-cache combined with the way-predicted i-cache, reported
// as relative processor energy and energy-delay against the all-parallel
// baseline, with the perfect-way-prediction bound.
func Figure11(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(
		sweep.Grid{},
		sweep.Grid{
			DPolicies: []access.DPolicy{access.DSelDMWayPred},
			IPolicies: []access.IPolicy{access.IWayPred},
		})
	t := stats.NewTable("Figure 11: overall processor energy (d: SelDM+waypred, i: waypred)",
		"benchmark", "rel energy", "rel E-D", "perf degradation", "perfect-waypred E-D", "L1 share (base)")
	var relE, relED, perfs, perfED, shares []float64
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench})
		tech := r.run(core.Config{
			Benchmark: bench,
			DPolicy:   access.DSelDMWayPred,
			IPolicy:   access.IWayPred,
		})
		c := core.Compare(base, tech)
		perfect := core.PerfectWayPrediction(base)
		t.Add(bench, stats.F3(c.RelProcEnergy), stats.F3(c.RelProcED),
			stats.Pct(c.PerfLoss), stats.F3(perfect.RelProcED), stats.Pct(base.Power.L1Share()))
		relE = append(relE, c.RelProcEnergy)
		relED = append(relED, c.RelProcED)
		perfs = append(perfs, c.PerfLoss)
		perfED = append(perfED, perfect.RelProcED)
		shares = append(shares, base.Power.L1Share())
	}
	t.Add("average", stats.F3(stats.Mean(relE)), stats.F3(stats.Mean(relED)),
		stats.Pct(stats.Mean(perfs)), stats.F3(stats.Mean(perfED)), stats.Pct(stats.Mean(shares)))
	return &Report{
		Name:   "fig11",
		Tables: []*stats.Table{t},
		Summary: map[string]float64{
			"relEnergy": stats.Mean(relE),
			"relED":     stats.Mean(relED),
			"perfLoss":  stats.Mean(perfs),
			"perfectED": stats.Mean(perfED),
			"l1Share":   stats.Mean(shares),
		},
	}
}
