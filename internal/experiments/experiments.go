// Package experiments regenerates every table and figure in the paper's
// evaluation (Tables 3-5, Figures 4-11) on the synthetic benchmark suite.
//
// Each experiment function runs the simulations it needs (memoizing shared
// baselines), returns a Report with the same rows/series the paper plots,
// and records headline numbers in Report.Summary for tests and benchmarks.
// cmd/experiments exposes them on the command line; the repository-level
// benchmark suite (bench_test.go) wraps each one.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"waycache/internal/core"
	"waycache/internal/stats"
	"waycache/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Insts per benchmark per configuration (default 400,000).
	Insts int64
	// Benchmarks to include (default: the full Table 2 suite).
	Benchmarks []string
}

func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = 400_000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	return o
}

// Report is the output of one experiment.
type Report struct {
	Name    string
	Tables  []*stats.Table
	Summary map[string]float64
}

// WriteTo renders all tables.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, t := range r.Tables {
		n, err := t.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Func is an experiment entry point.
type Func func(Options) *Report

// Registry maps experiment names (table3..table5, fig4..fig11) to their
// functions, in the paper's order.
func Registry() []struct {
	Name string
	Desc string
	Run  Func
} {
	return []struct {
		Name string
		Desc string
		Run  Func
	}{
		{"table3", "cache energy and prediction overhead", Table3},
		{"table4", "d-cache miss rates, direct-mapped vs 4-way", Table4},
		{"table5", "d-cache technique summary", Table5},
		{"fig4", "sequential-access cache energy-delay", Figure4},
		{"fig5", "PC- and XOR-based way-prediction", Figure5},
		{"fig6", "selective-DM schemes", Figure6},
		{"fig7", "effect of cache size on selective-DM", Figure7},
		{"fig8", "effect of associativity on selective-DM", Figure8},
		{"fig9", "selective-DM schemes, 2-cycle cache", Figure9},
		{"fig10", "way-prediction for i-caches", Figure10},
		{"fig11", "overall processor energy", Figure11},
		{"ablation-tables", "prediction-table size sensitivity", AblationTableSize},
		{"ablation-victim", "victim-list size sensitivity", AblationVictimList},
		{"related", "selective cache ways and MRU way-prediction baselines", Related},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Func, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Run, nil
		}
	}
	var known []string
	for _, e := range Registry() {
		known = append(known, e.Name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, known)
}

// runner memoizes simulation results within one experiment invocation so
// shared baselines are simulated once.
type runner struct {
	opts Options
	memo map[string]*core.Result
}

func newRunner(o Options) *runner {
	return &runner{opts: o.withDefaults(), memo: make(map[string]*core.Result)}
}

func (r *runner) run(cfg core.Config) *core.Result {
	cfg.Insts = r.opts.Insts
	key := fmt.Sprintf("%s|%d|%d|%d%d%d|%d%d%d|%d|%v|%d|%d|%d",
		cfg.Benchmark, cfg.Insts, cfg.DPolicy,
		cfg.DSize, cfg.DWays, cfg.DBlock,
		cfg.ISize, cfg.IWays, cfg.IBlock,
		cfg.DLatency, cfg.IPolicy, cfg.TableSize, cfg.VictimSize,
		cfg.SelectiveWays)
	if res, ok := r.memo[key]; ok {
		return res
	}
	res := core.MustRun(cfg)
	r.memo[key] = res
	return res
}
