// Package experiments regenerates every table and figure in the paper's
// evaluation (Tables 3-5, Figures 4-11) on the synthetic benchmark suite.
//
// Each experiment function runs the simulations it needs (memoizing shared
// baselines), returns a Report with the same rows/series the paper plots,
// and records headline numbers in Report.Summary for tests and benchmarks.
// cmd/experiments exposes them on the command line; the repository-level
// benchmark suite (bench_test.go) wraps each one.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"waycache/internal/core"
	"waycache/internal/stats"
	"waycache/internal/sweep"
	"waycache/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Insts per benchmark per configuration (default 400,000).
	Insts int64
	// Benchmarks to include (default: the full Table 2 suite).
	Benchmarks []string
	// Workers bounds concurrent simulations (default: runtime.NumCPU()).
	Workers int
	// Engine optionally shares a sweep engine — and with it a memoized
	// result store — across experiments, so baselines common to several
	// tables/figures are simulated exactly once. Nil means a private
	// engine with Workers workers.
	Engine *sweep.Engine
}

func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = 400_000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Engine == nil {
		o.Engine = sweep.New(sweep.Options{Workers: o.Workers})
	}
	return o
}

// Report is the output of one experiment.
type Report struct {
	Name    string
	Tables  []*stats.Table
	Summary map[string]float64
}

// WriteTo renders all tables.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, t := range r.Tables {
		n, err := t.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Func is an experiment entry point.
type Func func(Options) *Report

// Registry maps experiment names (table3..table5, fig4..fig11) to their
// functions, in the paper's order.
func Registry() []struct {
	Name string
	Desc string
	Run  Func
} {
	return []struct {
		Name string
		Desc string
		Run  Func
	}{
		{"table3", "cache energy and prediction overhead", Table3},
		{"table4", "d-cache miss rates, direct-mapped vs 4-way", Table4},
		{"table5", "d-cache technique summary", Table5},
		{"fig4", "sequential-access cache energy-delay", Figure4},
		{"fig5", "PC- and XOR-based way-prediction", Figure5},
		{"fig6", "selective-DM schemes", Figure6},
		{"fig7", "effect of cache size on selective-DM", Figure7},
		{"fig8", "effect of associativity on selective-DM", Figure8},
		{"fig9", "selective-DM schemes, 2-cycle cache", Figure9},
		{"fig10", "way-prediction for i-caches", Figure10},
		{"fig11", "overall processor energy", Figure11},
		{"ablation-tables", "prediction-table size sensitivity", AblationTableSize},
		{"ablation-victim", "victim-list size sensitivity", AblationVictimList},
		{"related", "selective cache ways and MRU way-prediction baselines", Related},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Func, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Run, nil
		}
	}
	var known []string
	for _, e := range Registry() {
		known = append(known, e.Name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, known)
}

// runner submits an experiment's simulations through the sweep engine.
// run is memoized by canonical config (cross-experiment when
// Options.Engine is shared); prefetch fans a whole grid out over the
// engine's worker pool so the serial table-building loops that follow hit
// the memo instead of simulating one config at a time.
type runner struct {
	opts Options
	eng  *sweep.Engine
}

func newRunner(o Options) *runner {
	o = o.withDefaults()
	return &runner{opts: o, eng: o.Engine}
}

// cfg pins the run's instruction budget onto an experiment config.
func (r *runner) cfg(c core.Config) core.Config {
	c.Insts = r.opts.Insts
	return c
}

func (r *runner) run(c core.Config) *core.Result {
	res, err := r.eng.Result(r.cfg(c))
	if err != nil {
		// Experiment configs are static data, exactly as with core.MustRun
		// before the sweep engine existed.
		panic(err)
	}
	return res
}

// prefetch simulates configs in parallel ahead of the serial reporting
// loops. Grids passed here may include cells an experiment only sometimes
// reads; the memo makes the extra cost at most one simulation per cell.
func (r *runner) prefetch(cfgs ...core.Config) {
	for i := range cfgs {
		cfgs[i] = r.cfg(cfgs[i])
	}
	if _, err := r.eng.RunConfigs(context.Background(), cfgs); err != nil {
		panic(err)
	}
}

// prefetchGrid expands grids and prefetches all their cells at once.
func (r *runner) prefetchGrid(grids ...sweep.Grid) {
	var cfgs []core.Config
	for _, g := range grids {
		g.Benchmarks = r.opts.Benchmarks
		cfgs = append(cfgs, g.Configs()...)
	}
	r.prefetch(cfgs...)
}
