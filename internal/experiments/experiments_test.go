package experiments

import (
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: three representative benchmarks,
// short runs.
func fastOpts() Options {
	return Options{Insts: 120_000, Benchmarks: []string{"gcc", "swim", "fpppp"}}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table3", "table4", "table5", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11",
		"ablation-tables", "ablation-victim", "related"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].Name, name)
		}
	}
	if _, err := ByName("fig4"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable3Shape(t *testing.T) {
	rep := Table3(fastOpts())
	if rep.Summary["oneWay"] > 0.25 || rep.Summary["oneWay"] < 0.15 {
		t.Errorf("one-way read %v out of Table 3 band", rep.Summary["oneWay"])
	}
	out := rep.Tables[0].String()
	if !strings.Contains(out, "parallel access") {
		t.Error("table missing parallel access row")
	}
}

func TestTable4Shape(t *testing.T) {
	rep := Table4(fastOpts())
	// Direct-mapped must be worse than 4-way for gcc, and swim must invert.
	if rep.Summary["dm_gcc"] <= rep.Summary["sa_gcc"] {
		t.Errorf("gcc: DM %v not worse than SA %v", rep.Summary["dm_gcc"], rep.Summary["sa_gcc"])
	}
	if rep.Summary["sa_swim"] < rep.Summary["dm_swim"]-0.01 {
		t.Errorf("swim: SA %v should not beat DM %v", rep.Summary["sa_swim"], rep.Summary["dm_swim"])
	}
}

func TestFigure4Shape(t *testing.T) {
	rep := Figure4(fastOpts())
	if rep.Summary["avgRelED"] > 0.5 {
		t.Errorf("sequential avg relative E-D %v: savings too small", rep.Summary["avgRelED"])
	}
	if rep.Summary["avgPerfLoss"] <= 0 {
		t.Errorf("sequential avg perf loss %v should be positive", rep.Summary["avgPerfLoss"])
	}
}

func TestFigure5Shape(t *testing.T) {
	rep := Figure5(fastOpts())
	if rep.Summary["xorAcc"] < rep.Summary["pcAcc"]-0.03 {
		t.Errorf("XOR accuracy %v below PC %v", rep.Summary["xorAcc"], rep.Summary["pcAcc"])
	}
}

func TestFigure6Shape(t *testing.T) {
	rep := Figure6(fastOpts())
	// SelDM+sequential saves at least as much energy-delay as SelDM+parallel.
	if rep.Summary["sdmSeqED"] > rep.Summary["sdmParED"]+0.02 {
		t.Errorf("SelDM+seq E-D %v worse than SelDM+parallel %v",
			rep.Summary["sdmSeqED"], rep.Summary["sdmParED"])
	}
	if rep.Summary["dmFrac"] < 0.4 {
		t.Errorf("direct-mapped fraction %v too low", rep.Summary["dmFrac"])
	}
	if len(rep.Tables) != 2 {
		t.Fatal("figure 6 should produce the E-D table and the breakdown")
	}
}

func TestFigure8Trend(t *testing.T) {
	rep := Figure8(fastOpts())
	if !(rep.Summary["ed8"] < rep.Summary["ed4"] && rep.Summary["ed4"] < rep.Summary["ed2"]) {
		t.Errorf("E-D not monotone in associativity: 2w %v, 4w %v, 8w %v",
			rep.Summary["ed2"], rep.Summary["ed4"], rep.Summary["ed8"])
	}
}

func TestFigure10Trend(t *testing.T) {
	rep := Figure10(fastOpts())
	if !(rep.Summary["ed8"] < rep.Summary["ed4"] && rep.Summary["ed4"] < rep.Summary["ed2"]) {
		t.Errorf("i-cache E-D not monotone in associativity: %v / %v / %v",
			rep.Summary["ed2"], rep.Summary["ed4"], rep.Summary["ed8"])
	}
	if rep.Summary["avgAccuracy"] < 0.8 {
		t.Errorf("i-cache way accuracy %v too low", rep.Summary["avgAccuracy"])
	}
}

func TestFigure11Bounds(t *testing.T) {
	rep := Figure11(fastOpts())
	ed, perfect := rep.Summary["relED"], rep.Summary["perfectED"]
	if ed >= 1 {
		t.Errorf("overall relative E-D %v shows no savings", ed)
	}
	if perfect > ed+1e-9 {
		t.Errorf("perfect bound %v worse than technique %v", perfect, ed)
	}
	if s := rep.Summary["l1Share"]; s < 0.05 || s > 0.25 {
		t.Errorf("baseline L1 share %v implausible", s)
	}
}

func TestReportRendering(t *testing.T) {
	rep := Table3(fastOpts())
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 3") {
		t.Error("render missing title")
	}
}

func TestAblationTableSizeInsensitive(t *testing.T) {
	rep := AblationTableSize(fastOpts())
	// The paper: 1024 -> 2048 changes results by <1%. Allow 2 points of
	// E-D drift on our short runs.
	for _, pol := range []string{"waypred-pc", "seldm+waypred"} {
		e1024 := rep.Summary[pol+"_1024"]
		e2048 := rep.Summary[pol+"_2048"]
		if diff := e2048 - e1024; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: 1024->2048 entry table moved E-D by %v", pol, diff)
		}
	}
}

func TestAblationVictimListPlateau(t *testing.T) {
	rep := AblationVictimList(fastOpts())
	// 16 -> 64 entries should be a plateau; 4 entries may degrade (more
	// mapping mispredictions) but never improve E-D materially.
	if diff := rep.Summary["ed_64"] - rep.Summary["ed_16"]; diff > 0.02 || diff < -0.02 {
		t.Errorf("victim list 16->64 moved E-D by %v; expected plateau", diff)
	}
	// A 4-entry list ages conflict records out before the threshold is
	// reached, so conflicting blocks keep being DM-placed and ping-pong as
	// misses: energy-delay must not *improve* over the 16-entry list.
	if rep.Summary["ed_4"] < rep.Summary["ed_16"]-0.02 {
		t.Errorf("4-entry victim list E-D %v materially better than 16-entry %v",
			rep.Summary["ed_4"], rep.Summary["ed_16"])
	}
}

func TestRelatedWorkOrdering(t *testing.T) {
	rep := Related(fastOpts())
	// Selective-DM must beat selective cache ways on energy-delay: the
	// paper's Section 5 comparison.
	if rep.Summary["sdmED"] >= rep.Summary["selWaysED"] {
		t.Errorf("SelDM+WP E-D %v not better than selective ways %v",
			rep.Summary["sdmED"], rep.Summary["selWaysED"])
	}
}
