package experiments

import (
	"fmt"

	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/stats"
	"waycache/internal/sweep"
)

// AblationTableSize sweeps the prediction-table size (512/1024/2048) for
// PC-based way-prediction and selective-DM. The paper fixes 1024 entries
// after observing that 2048 changes energy-delay and performance by less
// than 1 % — this experiment regenerates that insensitivity claim.
func AblationTableSize(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(
		sweep.Grid{},
		sweep.Grid{
			DPolicies:  []access.DPolicy{access.DWayPredPC, access.DSelDMWayPred},
			TableSizes: []int{512, 1024, 2048},
		})
	t := stats.NewTable("Ablation: prediction-table size (relative E-D | perf)",
		"benchmark", "policy", "512", "1024", "2048")
	sum := map[string]float64{}
	for _, pol := range []access.DPolicy{access.DWayPredPC, access.DSelDMWayPred} {
		var eds [3][]float64
		for _, bench := range r.opts.Benchmarks {
			base := r.run(core.Config{Benchmark: bench})
			cells := []string{bench, pol.String()}
			for i, size := range []int{512, 1024, 2048} {
				res := r.run(core.Config{Benchmark: bench, DPolicy: pol, TableSize: size})
				c := core.Compare(base, res)
				cells = append(cells, stats.F3(c.RelDCacheED)+" | "+stats.Pct(c.PerfLoss))
				eds[i] = append(eds[i], c.RelDCacheED)
			}
			t.Add(cells...)
		}
		for i, size := range []int{512, 1024, 2048} {
			sum[fmt.Sprintf("%s_%d", pol, size)] = stats.Mean(eds[i])
		}
	}
	return &Report{Name: "ablation-tables", Tables: []*stats.Table{t}, Summary: sum}
}

// AblationVictimList sweeps the victim-list size (4/16/64 entries). The
// paper uses 16 entries; too few entries age conflict records out before
// the threshold is reached, misclassifying conflicting blocks as
// non-conflicting and paying extra mapping mispredictions.
func AblationVictimList(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(
		sweep.Grid{},
		sweep.Grid{
			DPolicies:   []access.DPolicy{access.DSelDMWayPred},
			VictimSizes: []int{4, 16, 64},
		})
	t := stats.NewTable("Ablation: victim-list size, SelDM+waypred (relative E-D | mapping mispredicts per 1k loads)",
		"benchmark", "4 entries", "16 entries", "64 entries")
	sum := map[string]float64{}
	var eds [3][]float64
	var mpk [3][]float64
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench})
		cells := []string{bench}
		for i, size := range []int{4, 16, 64} {
			res := r.run(core.Config{Benchmark: bench, DPolicy: access.DSelDMWayPred, VictimSize: size})
			c := core.Compare(base, res)
			perK := 1000 * float64(res.DStats.MispredDM) / float64(res.DStats.Loads)
			cells = append(cells, stats.F3(c.RelDCacheED)+" | "+fmt.Sprintf("%.1f", perK))
			eds[i] = append(eds[i], c.RelDCacheED)
			mpk[i] = append(mpk[i], perK)
		}
		t.Add(cells...)
	}
	for i, size := range []int{4, 16, 64} {
		sum[fmt.Sprintf("ed_%d", size)] = stats.Mean(eds[i])
		sum[fmt.Sprintf("mpk_%d", size)] = stats.Mean(mpk[i])
	}
	return &Report{Name: "ablation-victim", Tables: []*stats.Table{t}, Summary: sum}
}

// Related compares the paper's techniques against the related-work
// baselines discussed in its Section 5: Albonesi's selective cache ways
// (way-masking with a per-application way count chosen for <4 %
// performance loss) and Inoue et al.'s MRU way-prediction (modelled
// optimistically, without its critical-path liability).
func Related(o Options) *Report {
	r := newRunner(o)
	// Prefetch every cell the comparison can touch, including all three
	// selective-ways settings (the tuning loop below may stop early, but
	// simulating the rest in parallel is cheaper than serializing).
	pre := sweep.Grid{
		Benchmarks: r.opts.Benchmarks,
		DPolicies:  []access.DPolicy{access.DParallel, access.DWayPredMRU, access.DSelDMWayPred},
	}.Configs()
	for _, bench := range r.opts.Benchmarks {
		for _, active := range []int{1, 2, 3} {
			pre = append(pre, core.Config{Benchmark: bench, SelectiveWays: active})
		}
	}
	r.prefetch(pre...)
	t := stats.NewTable("Related work: selective ways and MRU way-prediction vs selective-DM (16K 4-way)",
		"benchmark", "sel-ways best", "sel-ways E-D | perf", "MRU E-D | perf", "SelDM+WP E-D | perf")
	sum := map[string]float64{}
	var swED, mruED, sdmED []float64
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench})

		// Albonesi tuning: smallest active-way count whose performance
		// loss stays under 4 %; if even 3 ways violates it, keep all 4
		// (no savings possible) — the paper's criticism of the scheme.
		chosen, chosenC := 4, core.Comparison{RelTime: 1, RelDCacheED: 1}
		for _, active := range []int{1, 2, 3} {
			res := r.run(core.Config{Benchmark: bench, SelectiveWays: active})
			c := core.Compare(base, res)
			if c.PerfLoss < 0.04 {
				chosen, chosenC = active, c
				break
			}
		}

		mru := r.run(core.Config{Benchmark: bench, DPolicy: access.DWayPredMRU})
		sdm := r.run(core.Config{Benchmark: bench, DPolicy: access.DSelDMWayPred})
		cMRU, cSDM := core.Compare(base, mru), core.Compare(base, sdm)

		t.Add(bench,
			fmt.Sprintf("%d/4 ways", chosen),
			stats.F3(chosenC.RelDCacheED)+" | "+stats.Pct(chosenC.PerfLoss),
			stats.F3(cMRU.RelDCacheED)+" | "+stats.Pct(cMRU.PerfLoss),
			stats.F3(cSDM.RelDCacheED)+" | "+stats.Pct(cSDM.PerfLoss))
		swED = append(swED, chosenC.RelDCacheED)
		mruED = append(mruED, cMRU.RelDCacheED)
		sdmED = append(sdmED, cSDM.RelDCacheED)
	}
	t.Add("average", "", stats.F3(stats.Mean(swED)), stats.F3(stats.Mean(mruED)), stats.F3(stats.Mean(sdmED)))
	sum["selWaysED"] = stats.Mean(swED)
	sum["mruED"] = stats.Mean(mruED)
	sum["sdmED"] = stats.Mean(sdmED)
	return &Report{Name: "related", Tables: []*stats.Table{t}, Summary: sum}
}
