package experiments

import (
	"waycache/internal/access"
	"waycache/internal/core"
	"waycache/internal/stats"
	"waycache/internal/sweep"
)

// Figure4 reproduces "Sequential-access cache energy-delay": relative
// d-cache energy-delay and performance degradation per benchmark, vs the
// 1-cycle parallel-access baseline.
func Figure4(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(sweep.Grid{DPolicies: []access.DPolicy{access.DParallel, access.DSequential}})
	t := stats.NewTable("Figure 4: sequential-access cache, relative to 1-cycle parallel",
		"benchmark", "relative E-D", "perf degradation")
	var eds, perfs []float64
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench})
		seq := r.run(core.Config{Benchmark: bench, DPolicy: access.DSequential})
		c := core.Compare(base, seq)
		t.Add(bench, stats.F3(c.RelDCacheED), stats.Pct(c.PerfLoss))
		eds = append(eds, c.RelDCacheED)
		perfs = append(perfs, c.PerfLoss)
	}
	t.Add("average", stats.F3(stats.Mean(eds)), stats.Pct(stats.Mean(perfs)))
	return &Report{
		Name:   "fig4",
		Tables: []*stats.Table{t},
		Summary: map[string]float64{
			"avgRelED":    stats.Mean(eds),
			"avgPerfLoss": stats.Mean(perfs),
			"maxPerfLoss": stats.Max(perfs),
		},
	}
}

// Figure5 reproduces "PC- and XOR-based way-prediction": relative
// energy-delay, performance degradation and prediction accuracy for both
// handles.
func Figure5(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(sweep.Grid{DPolicies: []access.DPolicy{
		access.DParallel, access.DWayPredPC, access.DWayPredXOR}})
	t := stats.NewTable("Figure 5: PC- vs XOR-based way-prediction",
		"benchmark", "PC rel E-D", "PC perf", "PC accuracy",
		"XOR rel E-D", "XOR perf", "XOR accuracy")
	var pcED, pcPerf, pcAcc, xorED, xorPerf, xorAcc []float64
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench})
		pc := r.run(core.Config{Benchmark: bench, DPolicy: access.DWayPredPC})
		xor := r.run(core.Config{Benchmark: bench, DPolicy: access.DWayPredXOR})
		cp, cx := core.Compare(base, pc), core.Compare(base, xor)
		t.Add(bench,
			stats.F3(cp.RelDCacheED), stats.Pct(cp.PerfLoss), stats.Pct(pc.WayPredAccuracy()),
			stats.F3(cx.RelDCacheED), stats.Pct(cx.PerfLoss), stats.Pct(xor.WayPredAccuracy()))
		pcED = append(pcED, cp.RelDCacheED)
		pcPerf = append(pcPerf, cp.PerfLoss)
		pcAcc = append(pcAcc, pc.WayPredAccuracy())
		xorED = append(xorED, cx.RelDCacheED)
		xorPerf = append(xorPerf, cx.PerfLoss)
		xorAcc = append(xorAcc, xor.WayPredAccuracy())
	}
	t.Add("average",
		stats.F3(stats.Mean(pcED)), stats.Pct(stats.Mean(pcPerf)), stats.Pct(stats.Mean(pcAcc)),
		stats.F3(stats.Mean(xorED)), stats.Pct(stats.Mean(xorPerf)), stats.Pct(stats.Mean(xorAcc)))
	return &Report{
		Name:   "fig5",
		Tables: []*stats.Table{t},
		Summary: map[string]float64{
			"pcAcc": stats.Mean(pcAcc), "xorAcc": stats.Mean(xorAcc),
			"pcRelED": stats.Mean(pcED), "xorRelED": stats.Mean(xorED),
			"pcPerf": stats.Mean(pcPerf), "xorPerf": stats.Mean(xorPerf),
		},
	}
}

// breakdownRow renders a d-cache access-class breakdown as fractions of
// loads.
func breakdownRow(res *core.Result) []string {
	loads := float64(res.DStats.Loads)
	frac := func(c access.LoadClass) string {
		if loads == 0 {
			return "0.0%"
		}
		return stats.Pct(float64(res.DStats.ByClass[c]) / loads)
	}
	return []string{
		frac(access.ClassDM), frac(access.ClassParallel), frac(access.ClassWayPred),
		frac(access.ClassSeq), frac(access.ClassMispred), frac(access.ClassMiss),
	}
}

// Figure6 reproduces "Selective-DM schemes": energy-delay and performance
// for selective-DM with parallel, way-predicted and sequential handling of
// conflicting accesses, plus the access breakdown.
func Figure6(o Options) *Report {
	r := newRunner(o)
	ed := stats.NewTable("Figure 6: selective-DM schemes (relative E-D | perf degradation)",
		"benchmark", "SelDM+parallel", "SelDM+waypred", "SelDM+sequential",
		"waypred-PC (ref)", "sequential (ref)")
	bd := stats.NewTable("Figure 6 (bottom): access breakdown for SelDM+waypred",
		"benchmark", "direct-mapped", "parallel", "way-predicted", "sequential", "mispredicted", "miss")

	pols := []access.DPolicy{
		access.DSelDMParallel, access.DSelDMWayPred, access.DSelDMSequential,
		access.DWayPredPC, access.DSequential,
	}
	r.prefetchGrid(sweep.Grid{DPolicies: append([]access.DPolicy{access.DParallel}, pols...)})
	sums := make(map[access.DPolicy][]float64)
	perfs := make(map[access.DPolicy][]float64)
	var dmFracs []float64
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench})
		cells := []string{bench}
		for _, pol := range pols {
			res := r.run(core.Config{Benchmark: bench, DPolicy: pol})
			c := core.Compare(base, res)
			cells = append(cells, stats.F3(c.RelDCacheED)+" | "+stats.Pct(c.PerfLoss))
			sums[pol] = append(sums[pol], c.RelDCacheED)
			perfs[pol] = append(perfs[pol], c.PerfLoss)
		}
		ed.Add(cells...)

		wp := r.run(core.Config{Benchmark: bench, DPolicy: access.DSelDMWayPred})
		bd.Add(append([]string{bench}, breakdownRow(wp)...)...)
		dmFracs = append(dmFracs, float64(wp.DStats.ByClass[access.ClassDM])/float64(wp.DStats.Loads))
	}
	avg := []string{"average"}
	for _, pol := range pols {
		avg = append(avg, stats.F3(stats.Mean(sums[pol]))+" | "+stats.Pct(stats.Mean(perfs[pol])))
	}
	ed.Add(avg...)

	return &Report{
		Name:   "fig6",
		Tables: []*stats.Table{ed, bd},
		Summary: map[string]float64{
			"sdmParED":  stats.Mean(sums[access.DSelDMParallel]),
			"sdmWpED":   stats.Mean(sums[access.DSelDMWayPred]),
			"sdmSeqED":  stats.Mean(sums[access.DSelDMSequential]),
			"wpED":      stats.Mean(sums[access.DWayPredPC]),
			"seqED":     stats.Mean(sums[access.DSequential]),
			"sdmWpPerf": stats.Mean(perfs[access.DSelDMWayPred]),
			"dmFrac":    stats.Mean(dmFracs),
		},
	}
}

// Figure7 reproduces "Effect of cache size on selective-DM": 16 KB vs
// 32 KB selective-DM + way-prediction, each relative to the parallel cache
// of the same size.
func Figure7(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(sweep.Grid{
		DSizes:    []int{16 << 10, 32 << 10},
		DPolicies: []access.DPolicy{access.DParallel, access.DSelDMWayPred},
	})
	t := stats.NewTable("Figure 7: selective-DM+waypred, 16K vs 32K (relative E-D | perf)",
		"benchmark", "16K", "32K")
	sum := map[string]float64{}
	var ed16, ed32 []float64
	for _, bench := range r.opts.Benchmarks {
		cells := []string{bench}
		for _, size := range []int{16 << 10, 32 << 10} {
			base := r.run(core.Config{Benchmark: bench, DSize: size})
			res := r.run(core.Config{Benchmark: bench, DSize: size, DPolicy: access.DSelDMWayPred})
			c := core.Compare(base, res)
			cells = append(cells, stats.F3(c.RelDCacheED)+" | "+stats.Pct(c.PerfLoss))
			if size == 16<<10 {
				ed16 = append(ed16, c.RelDCacheED)
			} else {
				ed32 = append(ed32, c.RelDCacheED)
			}
		}
		t.Add(cells...)
	}
	t.Add("average", stats.F3(stats.Mean(ed16)), stats.F3(stats.Mean(ed32)))
	sum["ed16"] = stats.Mean(ed16)
	sum["ed32"] = stats.Mean(ed32)
	return &Report{Name: "fig7", Tables: []*stats.Table{t}, Summary: sum}
}

// Figure8 reproduces "Effect of associativity on selective-DM": 2-, 4- and
// 8-way selective-DM + way-prediction, each relative to the parallel cache
// of the same associativity, with the access breakdown.
func Figure8(o Options) *Report {
	r := newRunner(o)
	r.prefetchGrid(sweep.Grid{
		DWays:     []int{2, 4, 8},
		DPolicies: []access.DPolicy{access.DParallel, access.DSelDMWayPred},
	})
	t := stats.NewTable("Figure 8: selective-DM+waypred by associativity (relative E-D | perf)",
		"benchmark", "2-way", "4-way", "8-way")
	bd := stats.NewTable("Figure 8 (bottom): 8-way access breakdown",
		"benchmark", "direct-mapped", "parallel", "way-predicted", "sequential", "mispredicted", "miss")
	eds := map[int][]float64{}
	for _, bench := range r.opts.Benchmarks {
		cells := []string{bench}
		for _, ways := range []int{2, 4, 8} {
			base := r.run(core.Config{Benchmark: bench, DWays: ways})
			res := r.run(core.Config{Benchmark: bench, DWays: ways, DPolicy: access.DSelDMWayPred})
			c := core.Compare(base, res)
			cells = append(cells, stats.F3(c.RelDCacheED)+" | "+stats.Pct(c.PerfLoss))
			eds[ways] = append(eds[ways], c.RelDCacheED)
		}
		t.Add(cells...)
		res8 := r.run(core.Config{Benchmark: bench, DWays: 8, DPolicy: access.DSelDMWayPred})
		bd.Add(append([]string{bench}, breakdownRow(res8)...)...)
	}
	t.Add("average", stats.F3(stats.Mean(eds[2])), stats.F3(stats.Mean(eds[4])), stats.F3(stats.Mean(eds[8])))
	return &Report{
		Name:   "fig8",
		Tables: []*stats.Table{t, bd},
		Summary: map[string]float64{
			"ed2": stats.Mean(eds[2]), "ed4": stats.Mean(eds[4]), "ed8": stats.Mean(eds[8]),
		},
	}
}

// Figure9 reproduces "Selective-DM schemes (high-latency)": the 2-cycle
// base d-cache, where a mispredicted or sequential access takes 3 cycles.
// Everything is relative to the 2-cycle parallel cache.
func Figure9(o Options) *Report {
	r := newRunner(o)
	t := stats.NewTable("Figure 9: 2-cycle d-cache (relative E-D | perf degradation)",
		"benchmark", "SelDM+waypred", "SelDM+sequential", "sequential")
	pols := []access.DPolicy{access.DSelDMWayPred, access.DSelDMSequential, access.DSequential}
	r.prefetchGrid(sweep.Grid{
		DLatencies: []int{2},
		DPolicies:  append([]access.DPolicy{access.DParallel}, pols...),
	})
	eds := map[access.DPolicy][]float64{}
	perfs := map[access.DPolicy][]float64{}
	for _, bench := range r.opts.Benchmarks {
		base := r.run(core.Config{Benchmark: bench, DLatency: 2})
		cells := []string{bench}
		for _, pol := range pols {
			res := r.run(core.Config{Benchmark: bench, DLatency: 2, DPolicy: pol})
			c := core.Compare(base, res)
			cells = append(cells, stats.F3(c.RelDCacheED)+" | "+stats.Pct(c.PerfLoss))
			eds[pol] = append(eds[pol], c.RelDCacheED)
			perfs[pol] = append(perfs[pol], c.PerfLoss)
		}
		t.Add(cells...)
	}
	avg := []string{"average"}
	for _, pol := range pols {
		avg = append(avg, stats.F3(stats.Mean(eds[pol]))+" | "+stats.Pct(stats.Mean(perfs[pol])))
	}
	t.Add(avg...)
	return &Report{
		Name:   "fig9",
		Tables: []*stats.Table{t},
		Summary: map[string]float64{
			"sdmWpED":   stats.Mean(eds[access.DSelDMWayPred]),
			"sdmSeqED":  stats.Mean(eds[access.DSelDMSequential]),
			"seqED":     stats.Mean(eds[access.DSequential]),
			"seqPerf":   stats.Mean(perfs[access.DSequential]),
			"sdmWpPerf": stats.Mean(perfs[access.DSelDMWayPred]),
		},
	}
}
