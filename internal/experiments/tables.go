package experiments

import (
	"waycache/internal/access"
	"waycache/internal/cache"
	"waycache/internal/core"
	"waycache/internal/energy"
	"waycache/internal/isa"
	"waycache/internal/stats"
	"waycache/internal/sweep"
	"waycache/internal/trace"
	"waycache/internal/workload"
)

// Table3 reproduces "Cache energy and prediction overhead": the relative
// energies of the reference 16 KB 4-way cache's access types, from both
// the paper's published constants and our mini-CACTI model.
func Table3(o Options) *Report {
	paper := energy.PaperCosts()
	cacti := energy.DefaultCacti().MustCostsFor(energy.ReferenceGeometry)

	t := stats.NewTable("Table 3: cache energy and prediction overhead (relative units)",
		"energy component", "paper", "mini-cacti")
	row := func(name string, p, c float64) {
		t.Add(name, stats.F3(p), stats.F3(c))
	}
	row("parallel access cache read (4 ways read)", paper.ParallelRead(), cacti.ParallelRead())
	row("sequential/way-predicted/direct-mapped read (1 way)", paper.OneWayRead(), cacti.OneWayRead())
	row("mispredicted read (second probe)", paper.MispredictedRead(), cacti.MispredictedRead())
	row("cache write", paper.Write(), cacti.Write())
	row("tag array (included in all rows above)", paper.Tag, cacti.Tag)
	row("1024 x 4 bit prediction table access", paper.Table, cacti.Table)

	return &Report{
		Name:   "table3",
		Tables: []*stats.Table{t},
		Summary: map[string]float64{
			"oneWay": cacti.OneWayRead(),
			"write":  cacti.Write(),
			"tag":    cacti.Tag,
			"table":  cacti.Table,
		},
	}
}

// Table4 reproduces the d-cache miss-rate table: 16 KB direct-mapped vs
// 16 KB 4-way set-associative, per benchmark. It drives the caches
// directly from the instruction stream (no timing model), exactly like a
// functional cache simulation.
func Table4(o Options) *Report {
	o = o.withDefaults()
	t := stats.NewTable("Table 4: d-cache miss rates (16 KB, 32 B blocks)",
		"benchmark", "direct-mapped", "4-way set-assoc")
	sum := map[string]float64{}
	for _, name := range o.Benchmarks {
		p, err := workload.ByName(name)
		if err != nil {
			continue
		}
		dm := cache.New(cache.Config{Name: "dm", SizeBytes: 16 << 10, Ways: 1, BlockBytes: 32})
		sa := cache.New(cache.Config{Name: "sa", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 32})
		w := p.NewWalker()
		var in trace.Inst
		for i := int64(0); i < o.Insts; i++ {
			if !w.Next(&in) {
				break
			}
			if in.Kind.IsMem() {
				write := in.Kind == isa.KindStore
				dm.Access(in.Addr, write)
				sa.Access(in.Addr, write)
			}
		}
		t.Add(name, stats.Pct(dm.Stats().MissRate()), stats.Pct(sa.Stats().MissRate()))
		sum["dm_"+name] = dm.Stats().MissRate()
		sum["sa_"+name] = sa.Stats().MissRate()
	}
	return &Report{Name: "table4", Tables: []*stats.Table{t}, Summary: sum}
}

// Table5 reproduces the d-cache technique summary: average energy-delay
// savings and average performance loss for the six design options.
func Table5(o Options) *Report {
	r := newRunner(o)
	type tech struct {
		name string
		pol  access.DPolicy
	}
	techs := []tech{
		{"sequential-access cache", access.DSequential},
		{"PC-based way-prediction", access.DWayPredPC},
		{"XOR-based way-prediction", access.DWayPredXOR},
		{"SelDM + parallel access", access.DSelDMParallel},
		{"SelDM + way-prediction", access.DSelDMWayPred},
		{"SelDM + sequential access", access.DSelDMSequential},
	}
	pols := []access.DPolicy{access.DParallel}
	for _, tc := range techs {
		pols = append(pols, tc.pol)
	}
	r.prefetchGrid(sweep.Grid{DPolicies: pols})
	t := stats.NewTable("Table 5: d-cache summary (averages over the suite)",
		"technique", "avg E-D savings", "avg perf loss", "max perf loss")
	sum := map[string]float64{}
	for _, tc := range techs {
		var eds, perfs []float64
		for _, bench := range r.opts.Benchmarks {
			base := r.run(core.Config{Benchmark: bench})
			res := r.run(core.Config{Benchmark: bench, DPolicy: tc.pol})
			c := core.Compare(base, res)
			eds = append(eds, 1-c.RelDCacheED)
			perfs = append(perfs, c.PerfLoss)
		}
		t.Add(tc.name, stats.Pct(stats.Mean(eds)), stats.Pct(stats.Mean(perfs)), stats.Pct(stats.Max(perfs)))
		sum["ed_"+tc.pol.String()] = stats.Mean(eds)
		sum["perf_"+tc.pol.String()] = stats.Mean(perfs)
	}
	return &Report{Name: "table5", Tables: []*stats.Table{t}, Summary: sum}
}
