package predict

import (
	"fmt"
	"math/bits"
)

// WayTable is a direct-mapped table of predicted way numbers, the structure
// behind both PC-based and XOR-based d-cache way prediction (Section 2.2.1).
// The handle used to index it is chosen by the caller: a load PC (early
// available, less accurate) or the XOR approximation of the load address
// (late available, more accurate).
//
// Entries start invalid; Lookup reports whether a prediction exists. Every
// resolved access calls Update with the true matching way.
type WayTable struct {
	entries []wayEntry
	mask    uint64
	shift   uint
	stats   WayTableStats
}

type wayEntry struct {
	valid bool
	way   uint8
}

// WayTableStats counts predictor events. Lookups that find no valid entry
// are Cold; the caller decides how to access the cache in that case (the
// paper probes the predicted way anyway for d-caches — an invalid entry
// predicts way 0 — while i-caches fall back to parallel).
type WayTableStats struct {
	Lookups int64
	Cold    int64
	Updates int64
}

// DefaultWayEntries is the paper's prediction-table size.
const DefaultWayEntries = 1024

// NewWayTable builds a table with n entries indexed by PC-like handles
// (4-byte granular); n must be a power of two.
func NewWayTable(n int) *WayTable {
	return NewWayTableShift(n, 2)
}

// NewWayTableShift builds a table whose handles carry no information below
// the given bit: 2 for PCs, log2(blockBytes) for block-address handles like
// the XOR approximation or the SAWP's fetch-block index. Choosing the wrong
// shift either discards entropy (index bits that are always zero) or
// fragments one block's accesses across entries.
func NewWayTableShift(n int, shift uint) *WayTable {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("predict: way table size %d not a power of two", n))
	}
	return &WayTable{entries: make([]wayEntry, n), mask: uint64(n - 1), shift: shift}
}

// index hashes a handle into the table: drop the always-zero low bits,
// then fold high bits down so large strides still spread across entries.
func (t *WayTable) index(handle uint64) uint64 {
	h := handle >> t.shift
	h ^= h >> bits.Len64(t.mask)
	return h & t.mask
}

// Lookup returns the predicted way for handle. ok is false for a cold
// entry, in which case way is 0.
func (t *WayTable) Lookup(handle uint64) (way int, ok bool) {
	t.stats.Lookups++
	e := t.entries[t.index(handle)]
	if !e.valid {
		t.stats.Cold++
		return 0, false
	}
	return int(e.way), true
}

// Update records the true way for handle.
func (t *WayTable) Update(handle uint64, way int) {
	t.stats.Updates++
	t.entries[t.index(handle)] = wayEntry{valid: true, way: uint8(way)}
}

// Len returns the table size.
func (t *WayTable) Len() int { return len(t.entries) }

// Stats returns a copy of the counters.
func (t *WayTable) Stats() WayTableStats { return t.stats }
