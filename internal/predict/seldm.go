package predict

import "fmt"

// Mapping is the binary choice the selective-DM predictor makes per access.
type Mapping uint8

// Mapping values.
const (
	MapDirect Mapping = iota // probe the direct-mapping way
	MapSetAssoc
)

// String names the mapping.
func (m Mapping) String() string {
	if m == MapDirect {
		return "direct"
	}
	return "set-assoc"
}

// SelDM is the selective direct-mapping choice predictor: a PC-indexed
// table of 2-bit saturating counters (Section 2.2.2). Counter values 0 and
// 1 flag direct mapping; 2 and 3 flag set-associative mapping. A hit in
// the block's direct-mapping way decrements the load's counter; a hit in
// any other way increments it.
//
// The same table optionally carries a predicted way number per entry,
// which implements the paper's "incremental extension ... adds a way
// number to the prediction table, allowing way-prediction instead of
// sequential access" for the accesses flagged set-associative.
type SelDM struct {
	counters []SatCounter
	ways     []wayEntry
	mask     uint64
	stats    SelDMStats
}

// SelDMStats counts choice-predictor events.
type SelDMStats struct {
	Lookups    int64
	PredDirect int64
	PredAssoc  int64
	IncAssoc   int64 // updates toward set-associative
	DecDirect  int64 // updates toward direct
}

// NewSelDM builds the predictor with n entries (power of two). Counters
// start at 0: blocks are non-conflicting by default, so loads begin life
// predicted direct-mapped, matching the paper.
func NewSelDM(n int) *SelDM {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("predict: selective-DM table size %d not a power of two", n))
	}
	s := &SelDM{
		counters: make([]SatCounter, n),
		ways:     make([]wayEntry, n),
		mask:     uint64(n - 1),
	}
	for i := range s.counters {
		s.counters[i] = NewSat(2, 0)
	}
	return s
}

func (s *SelDM) index(pc uint64) uint64 {
	h := pc >> 2
	h ^= h >> 10
	return h & s.mask
}

// Predict returns the mapping choice for the load at pc.
func (s *SelDM) Predict(pc uint64) Mapping {
	s.stats.Lookups++
	if s.counters[s.index(pc)].High() {
		s.stats.PredAssoc++
		return MapSetAssoc
	}
	s.stats.PredDirect++
	return MapDirect
}

// PredictWay returns the auxiliary way prediction for pc, used when the
// access is flagged set-associative and the configuration supplements
// selective-DM with way-prediction.
func (s *SelDM) PredictWay(pc uint64) (way int, ok bool) {
	e := s.ways[s.index(pc)]
	if !e.valid {
		return 0, false
	}
	return int(e.way), true
}

// Update trains the predictor after the access resolves: hitDM is true if
// the access hit in (or was filled into) the block's direct-mapping way;
// way is the true matching way, recorded for the auxiliary way predictor.
func (s *SelDM) Update(pc uint64, hitDM bool, way int) {
	i := s.index(pc)
	if hitDM {
		s.counters[i].Dec()
		s.stats.DecDirect++
	} else {
		s.counters[i].Inc()
		s.stats.IncAssoc++
	}
	s.ways[i] = wayEntry{valid: true, way: uint8(way)}
}

// Counter returns the raw counter value for pc (testing/inspection).
func (s *SelDM) Counter(pc uint64) uint8 { return s.counters[s.index(pc)].V }

// Len returns the table size.
func (s *SelDM) Len() int { return len(s.counters) }

// Stats returns a copy of the counters.
func (s *SelDM) Stats() SelDMStats { return s.stats }
