package predict

import (
	"testing"
	"testing/quick"

	"waycache/internal/prng"
)

func TestSatCounter(t *testing.T) {
	c := NewSat(2, 0)
	if c.High() {
		t.Fatal("counter 0 should be low")
	}
	c.Inc()
	if c.V != 1 || c.High() {
		t.Fatalf("after one Inc: V=%d High=%v", c.V, c.High())
	}
	c.Inc()
	if c.V != 2 || !c.High() {
		t.Fatalf("after two Inc: V=%d High=%v", c.V, c.High())
	}
	c.Inc()
	c.Inc() // saturate
	if c.V != 3 {
		t.Fatalf("saturation failed: V=%d", c.V)
	}
	for i := 0; i < 5; i++ {
		c.Dec()
	}
	if c.V != 0 {
		t.Fatalf("floor failed: V=%d", c.V)
	}
}

func TestSatCounterClampsInitial(t *testing.T) {
	c := NewSat(2, 9)
	if c.V != 3 {
		t.Fatalf("initial value not clamped: %d", c.V)
	}
}

func TestSatCounterProperty(t *testing.T) {
	f := func(ops []bool) bool {
		c := NewSat(2, 1)
		for _, up := range ops {
			if up {
				c.Inc()
			} else {
				c.Dec()
			}
			if c.V > c.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWayTableColdThenTrained(t *testing.T) {
	w := NewWayTable(1024)
	if _, ok := w.Lookup(0x400000); ok {
		t.Fatal("cold table returned a valid prediction")
	}
	w.Update(0x400000, 3)
	way, ok := w.Lookup(0x400000)
	if !ok || way != 3 {
		t.Fatalf("Lookup after Update = (%d, %v)", way, ok)
	}
	st := w.Stats()
	if st.Lookups != 2 || st.Cold != 1 || st.Updates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWayTableAliasing(t *testing.T) {
	// Two handles separated by exactly the table span (after the >>2
	// shift) collide; the most recent update wins.
	w := NewWayTable(8)
	a := uint64(0x1000)
	w.Update(a, 1)
	// Find a colliding address by brute force.
	var b uint64
	for cand := a + 4; ; cand += 4 {
		wayA, _ := w.Lookup(a)
		w2 := NewWayTable(8)
		w2.Update(cand, 2)
		if wayB, ok := w2.Lookup(a); ok && wayB == 2 {
			b = cand
			_ = wayA
			break
		}
	}
	w.Update(b, 2)
	if way, _ := w.Lookup(a); way != 2 {
		t.Fatalf("aliased entry not overwritten: way=%d", way)
	}
}

func TestWayTableRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWayTable(1000) did not panic")
		}
	}()
	NewWayTable(1000)
}

func TestWayTablePerPCLocality(t *testing.T) {
	// A load that keeps hitting the same way should be predicted correctly
	// after the first access — the PC-based scheme's bread and butter.
	w := NewWayTable(1024)
	pc := uint64(0x40001c)
	w.Update(pc, 2)
	correct := 0
	for i := 0; i < 100; i++ {
		if way, ok := w.Lookup(pc); ok && way == 2 {
			correct++
		}
		w.Update(pc, 2)
	}
	if correct != 100 {
		t.Fatalf("stable-way load predicted %d/100", correct)
	}
}

func TestSelDMDefaultsToDirect(t *testing.T) {
	s := NewSelDM(1024)
	if got := s.Predict(0x400000); got != MapDirect {
		t.Fatalf("cold prediction = %v, want direct", got)
	}
}

func TestSelDMCounterRules(t *testing.T) {
	s := NewSelDM(1024)
	pc := uint64(0x400100)
	// Two SA hits flip the prediction to set-associative (0 -> 1 -> 2).
	s.Update(pc, false, 1)
	if s.Predict(pc) != MapDirect {
		t.Fatal("counter 1 should still predict direct")
	}
	s.Update(pc, false, 1)
	if s.Predict(pc) != MapSetAssoc {
		t.Fatal("counter 2 should predict set-associative")
	}
	// DM hits walk it back down.
	s.Update(pc, true, 0)
	s.Update(pc, true, 0)
	if s.Predict(pc) != MapDirect {
		t.Fatal("counter decremented twice should predict direct")
	}
}

func TestSelDMWaySidecar(t *testing.T) {
	s := NewSelDM(1024)
	pc := uint64(0x400200)
	if _, ok := s.PredictWay(pc); ok {
		t.Fatal("cold way sidecar returned valid")
	}
	s.Update(pc, false, 3)
	way, ok := s.PredictWay(pc)
	if !ok || way != 3 {
		t.Fatalf("PredictWay = (%d, %v), want (3, true)", way, ok)
	}
}

func TestSelDMStatsConsistency(t *testing.T) {
	s := NewSelDM(256)
	r := prng.New(8)
	for i := 0; i < 10000; i++ {
		pc := uint64(r.Intn(4096)) * 4
		s.Predict(pc)
		s.Update(pc, r.Bool(0.7), r.Intn(4))
	}
	st := s.Stats()
	if st.Lookups != 10000 || st.PredDirect+st.PredAssoc != st.Lookups {
		t.Fatalf("stats = %+v", st)
	}
	if st.IncAssoc+st.DecDirect != 10000 {
		t.Fatalf("update counts = %+v", st)
	}
}

func TestSelDMMostlyDirectUnderDMHits(t *testing.T) {
	// If ~80% of hits land in the DM way, most predictions stay direct —
	// the regime the paper reports (70-80% of accesses use direct mapping).
	s := NewSelDM(1024)
	r := prng.New(21)
	direct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(r.Intn(64)) * 4
		if s.Predict(pc) == MapDirect {
			direct++
		}
		s.Update(pc, r.Bool(0.8), r.Intn(4))
	}
	frac := float64(direct) / n
	if frac < 0.55 {
		t.Fatalf("direct fraction %v too low for an 80%%-DM workload", frac)
	}
}
