// Package predict implements the paper's prediction structures for d-cache
// accesses: PC- and XOR-indexed way-prediction tables and the selective
// direct-mapping choice predictor (a table of 2-bit saturating counters
// indexed by load PC).
package predict

// SatCounter is an n-bit saturating counter. The zero value is a counter
// saturated at 0 with Max unset; use NewSat or set Max explicitly.
type SatCounter struct {
	V   uint8 // current value, 0..Max
	Max uint8 // saturation ceiling (3 for a 2-bit counter)
}

// NewSat returns a counter with the given bits and initial value.
func NewSat(bits int, initial uint8) SatCounter {
	max := uint8(1<<bits - 1)
	if initial > max {
		initial = max
	}
	return SatCounter{V: initial, Max: max}
}

// Inc increments, saturating at Max.
func (c *SatCounter) Inc() {
	if c.V < c.Max {
		c.V++
	}
}

// Dec decrements, saturating at 0.
func (c *SatCounter) Dec() {
	if c.V > 0 {
		c.V--
	}
}

// High reports whether the counter is in its upper half (e.g. 2 or 3 for a
// 2-bit counter) — the "taken" / "set-associative" side.
func (c *SatCounter) High() bool {
	return c.V > c.Max/2
}
